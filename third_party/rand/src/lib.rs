//! A first-party, offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access; this crate provides
//! the small API subset the workspace's tests and benches may use: the
//! [`Rng`] trait with `gen`, `gen_range`, `gen_bool` and `fill_bytes`,
//! [`SeedableRng`], [`rngs::SmallRng`] / [`rngs::StdRng`] (both
//! xoshiro-free splitmix64 generators here) and [`thread_rng`]. All
//! generators are deterministic per seed; `thread_rng` seeds from the
//! system clock and a thread-local counter.

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface implemented by all generators.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly random value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in the given range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p.clamp(0.0, 1.0)
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types samplable uniformly over their whole domain.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! int_standard {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> f32 {
        f64::sample(rng) as f32
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $wide - self.start as $wide) as u128;
                (self.start as $wide + (u128::from(rng.next_u64()) % span) as $wide) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as $wide - lo as $wide) as u128 + 1;
                (lo as $wide + (u128::from(rng.next_u64()) % span) as $wide) as $t
            }
        }
    )*};
}

int_sample_range! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u128, usize => u128,
    i8 => i64, i16 => i64, i32 => i64, i64 => i128, isize => i128,
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Small fast deterministic generator (splitmix64 core).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// "Standard" generator — same engine as [`SmallRng`] here.
    pub type StdRng = SmallRng;
}

/// A clock-and-thread seeded generator, one per call.
pub fn thread_rng() -> rngs::SmallRng {
    use std::cell::Cell;
    use std::time::{SystemTime, UNIX_EPOCH};
    thread_local! {
        static COUNTER: Cell<u64> = const { Cell::new(0) };
    }
    let count = COUNTER.with(|c| {
        let v = c.get();
        c.set(v + 1);
        v
    });
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0);
    SeedableRng::seed_from_u64(nanos ^ (count << 32) ^ 0xA5A5_5A5A_1234_5678)
}

/// A single value from [`thread_rng`].
pub fn random<T: Standard>() -> T {
    T::sample(&mut thread_rng())
}

/// Common imports.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::{random, thread_rng, Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_determinism() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..200 {
            let x: u32 = a.gen_range(5..50);
            assert!((5..50).contains(&x));
            assert_eq!(a.next_u64(), b.skip_one());
        }
    }

    trait SkipOne {
        fn skip_one(&mut self) -> u64;
    }

    impl SkipOne for SmallRng {
        fn skip_one(&mut self) -> u64 {
            let _ = self.gen_range(5u32..50);
            self.next_u64()
        }
    }

    #[test]
    fn fill_bytes_covers_slice() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = thread_rng();
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
