//! A first-party, offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of the proptest API the workspace actually
//! uses: the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`any`],
//! `proptest::collection::vec`, `prop_assert!` / `prop_assert_eq!`, and
//! [`ProptestConfig::with_cases`]. Cases are generated from a
//! deterministic per-test PRNG (seeded from the test name, overridable
//! with `PROPTEST_SEED`), so failures are reproducible. There is no
//! shrinking: a failing case panics with the ordinary assertion message.

use std::ops::{Range, RangeInclusive};

/// Deterministic split-mix style PRNG driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` for a non-zero `bound`.
    pub fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        u128::from(self.next_u64()) % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Per-`proptest!` configuration. Only the case count is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Drives one property test: owns the case count and the PRNG.
pub struct TestRunner {
    cases: u32,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner for the named test. The seed derives from the
    /// test name (FNV-1a) unless `PROPTEST_SEED` is set.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(v) => v.parse().unwrap_or(0xDEAD_BEEF),
            Err(_) => {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in name.bytes() {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                h
            }
        };
        TestRunner {
            cases: config.cases,
            rng: TestRng::from_seed(seed),
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The runner's PRNG.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// A generator of random values (no shrinking in this stand-in).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide - self.start as $wide) as u128;
                (self.start as $wide + rng.below(span) as $wide) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as $wide - lo as $wide) as u128 + 1;
                (lo as $wide + rng.below(span) as $wide) as $t
            }
        }
    )*};
}

int_range_strategies! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u128, usize => u128,
    i8 => i64, i16 => i64, i32 => i64, i64 => i128, isize => i128,
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($n:ident $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64() * 2e6 - 1e6
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.next_u64() as u32 % 0xD800).unwrap_or('\u{FFFD}')
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy: unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a vec-length specification.
    pub trait IntoSizeRange {
        /// Lower and inclusive upper length bound.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy generating vectors of `element` with a length drawn from
    /// `size`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.max > self.min {
                self.min + rng.below((self.max - self.min + 1) as u128) as usize
            } else {
                self.min
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

/// Everything a property test module usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test (no shrinking: delegates
/// to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` running `ProptestConfig::cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __runner = $crate::TestRunner::new(__config, stringify!($name));
            for __case in 0..__runner.cases() {
                $(let $arg = $crate::Strategy::generate(&($strat), __runner.rng());)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(3u32..10), &mut rng);
            assert!((3..10).contains(&v));
            let w = crate::Strategy::generate(&(-5i32..=5), &mut rng);
            assert!((-5..=5).contains(&w));
            let f = crate::Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn full_u32_range_does_not_overflow() {
        let mut rng = crate::TestRng::from_seed(11);
        let mut high = false;
        for _ in 0..64 {
            let v = crate::Strategy::generate(&(0u32..=u32::MAX), &mut rng);
            high |= v > u32::MAX / 2;
        }
        assert!(high, "full-range u32 should reach the upper half");
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = crate::TestRng::from_seed(3);
        for _ in 0..100 {
            let v = crate::Strategy::generate(&crate::collection::vec(any::<u8>(), 0..5), &mut rng);
            assert!(v.len() < 5);
            let w = crate::Strategy::generate(&crate::collection::vec(0u8..9, 7usize), &mut rng);
            assert_eq!(w.len(), 7);
        }
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = crate::TestRng::from_seed(42);
        let mut b = crate::TestRng::from_seed(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_cases(x in 0u8..100, pair in (0u16..10, -4i8..=4)) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 10);
            prop_assert!((-4..=4).contains(&pair.1));
        }

        #[test]
        fn map_and_flat_map_compose(v in (1usize..=4).prop_flat_map(|n| {
            crate::collection::vec(0u8..10, n).prop_map(|xs| (xs.len(), xs))
        })) {
            prop_assert_eq!(v.0, v.1.len());
            prop_assert!(v.0 >= 1 && v.0 <= 4);
        }
    }
}
