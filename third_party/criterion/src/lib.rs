//! A first-party, offline stand-in for the `criterion` benchmark crate.
//!
//! The build environment has no crates.io access, so this crate
//! implements the subset of the criterion API the workspace's bench
//! targets use: `Criterion::benchmark_group`, group knobs
//! (`sample_size`, `measurement_time`, `warm_up_time`, `throughput`),
//! `bench_function` with a `Bencher::iter` body, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: after a warm-up period, each sample times a batch
//! of iterations sized so one sample lasts roughly
//! `measurement_time / sample_size`; the per-iteration median, minimum
//! and maximum over the samples are printed to stdout in a
//! criterion-like single-line format.

use std::time::{Duration, Instant};

/// Throughput annotation attached to a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The measured body processes this many logical elements.
    Elements(u64),
    /// The measured body processes this many bytes.
    Bytes(u64),
}

/// Prevents the optimiser from discarding a value (best-effort on
/// stable: `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
    default_warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement_time: Duration::from_secs(1),
            default_warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: AsRef<str>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.as_ref().to_string(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            warm_up_time: self.default_warm_up_time,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<S: AsRef<str>, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up period per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput unit.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<S: AsRef<str>, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = if self.name.is_empty() {
            id.as_ref().to_string()
        } else {
            format!("{}/{}", self.name, id.as_ref())
        };

        // Warm-up: run the body repeatedly until the warm-up budget is
        // spent, remembering the per-iteration cost estimate.
        let warm_start = Instant::now();
        let mut iters_done: u64 = 0;
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        while warm_start.elapsed() < self.warm_up_time || iters_done == 0 {
            f(&mut bencher);
            iters_done += bencher.iters;
            if warm_start.elapsed() > self.warm_up_time * 4 {
                break; // a single very slow iteration: stop warming
            }
        }
        let est_iter = warm_start.elapsed().as_secs_f64() / iters_done.max(1) as f64;

        // Sampling: size each sample so the whole run fits the budget.
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((per_sample / est_iter.max(1e-9)) as u64).max(1);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let (lo, hi) = (samples[0], samples[samples.len() - 1]);
        let mut line = format!(
            "{label:<50} time: [{} {} {}]",
            fmt_time(lo),
            fmt_time(median),
            fmt_time(hi)
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            line.push_str(&format!("  thrpt: {:.2} {unit}", count / median.max(1e-12)));
        }
        println!("{line}");
        self
    }

    /// Ends the group (printing nothing extra; retained for API parity).
    pub fn finish(&mut self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Times the closure over the batch of iterations criterion chose.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs and times `f` for the current sample's iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = t0.elapsed();
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags like `--bench`; none are
            // meaningful to this stand-in, so they are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(10));
        group.warm_up_time(Duration::from_millis(1));
        group.throughput(Throughput::Elements(4));
        let mut runs = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
