//! Property-based tests over the full codecs: random content must
//! round-trip through every encoder/decoder pair with bounded error and
//! without panics, and random garbage must never crash a decoder.

use hd_videobench::bench::{create_decoder, create_encoder, CodecId, CodingOptions};
use hd_videobench::dsp::SimdLevel;
use hd_videobench::frame::{Frame, Resolution, SequencePsnr};
use proptest::prelude::*;

/// Builds a frame whose luma is an arbitrary mix of gradient + noise and
/// whose chroma carries structure too.
fn arbitrary_frame(w: usize, h: usize, seed: u64, noise: u8) -> Frame {
    let mut f = Frame::new(w, h);
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    for y in 0..h {
        for x in 0..w {
            let base = (x * 2 + y * 3) % 200;
            let n = next() % (u32::from(noise) + 1);
            f.y_mut().set(x, y, ((base as u32 + n) % 256) as u8);
        }
    }
    for y in 0..h / 2 {
        for x in 0..w / 2 {
            f.cb_mut().set(x, y, (100 + (next() % 60)) as u8);
            f.cr_mut().set(x, y, (100 + (next() % 60)) as u8);
        }
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_content_roundtrips_all_codecs(
        seed in any::<u64>(),
        noise in 0u8..80,
        qscale in 2u16..20,
    ) {
        let (w, h) = (48, 32);
        let options = CodingOptions::default().with_qscale(qscale);
        for codec in CodecId::ALL {
            let mut enc = create_encoder(codec, Resolution::new(w as u32, h as u32), &options)
                .unwrap();
            let mut dec = create_decoder(codec, SimdLevel::detect());
            let frames: Vec<Frame> = (0..4)
                .map(|i| arbitrary_frame(w, h, seed.wrapping_add(i), noise))
                .collect();
            let mut packets = Vec::new();
            for f in &frames {
                packets.extend(enc.encode_frame(f).unwrap());
            }
            packets.extend(enc.finish().unwrap());
            let mut out = Vec::new();
            for p in &packets {
                out.extend(dec.decode_packet(&p.data).unwrap());
            }
            out.extend(dec.finish());
            prop_assert_eq!(out.len(), 4, "{} lost frames", codec);
            let mut acc = SequencePsnr::new();
            for (o, d) in frames.iter().zip(&out) {
                prop_assert_eq!((d.width(), d.height()), (w, h));
                acc.add(o, d);
            }
            // Even at the coarsest quantiser in range, reconstruction
            // must stay recognisable.
            prop_assert!(acc.y_psnr() > 20.0, "{}: psnr {:.1}", codec, acc.y_psnr());
        }
    }

    #[test]
    fn random_garbage_never_panics_decoders(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        for codec in CodecId::ALL {
            let mut dec = create_decoder(codec, SimdLevel::detect());
            let _ = dec.decode_packet(&data); // error or empty, never panic
        }
    }

    #[test]
    fn bitflipped_streams_never_panic_decoders(
        seed in any::<u64>(),
        flip_byte in 0usize..2000,
        flip_mask in 1u8..=255,
    ) {
        let options = CodingOptions::default();
        for codec in CodecId::ALL {
            let mut enc = create_encoder(codec, Resolution::new(48, 32), &options).unwrap();
            let mut packets = Vec::new();
            for i in 0..3u64 {
                let f = arbitrary_frame(48, 32, seed.wrapping_add(i), 30);
                packets.extend(enc.encode_frame(&f).unwrap());
            }
            packets.extend(enc.finish().unwrap());
            let mut dec = create_decoder(codec, SimdLevel::detect());
            for p in &mut packets {
                if !p.data.is_empty() {
                    let idx = flip_byte % p.data.len();
                    p.data[idx] ^= flip_mask;
                }
                // Corrupt packets may decode to garbage frames or error;
                // either is acceptable, panicking is not.
                let _ = dec.decode_packet(&p.data);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The future-work MJ2K-class codec must be bit-exact lossless at
    /// qscale 1 for arbitrary content — the defining property of the
    /// 5/3 reversible wavelet path.
    #[test]
    fn mj2k_is_lossless_on_arbitrary_frames(seed in any::<u64>(), noise in 0u8..=255) {
        use hd_videobench::mj2k::{Mj2kDecoder, Mj2kEncoder};
        let frame = arbitrary_frame(48, 32, seed, noise);
        let mut enc = Mj2kEncoder::new(48, 32, 1).unwrap();
        let mut dec = Mj2kDecoder::new();
        let packet = enc.encode(&frame).unwrap();
        prop_assert_eq!(dec.decode(&packet).unwrap(), frame);
    }

    #[test]
    fn mj2k_garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..400)) {
        use hd_videobench::mj2k::Mj2kDecoder;
        let _ = Mj2kDecoder::new().decode(&data);
    }
}
