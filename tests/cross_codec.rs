//! Cross-crate integration tests: full encode→decode pipelines through
//! the benchmark harness, asserting the paper's qualitative results
//! (Section VI) at reduced geometry.

use hd_videobench::bench::{
    decode_sequence, encode_sequence, measure_rd_point, CodecId, CodingOptions, PacketKind,
};
use hd_videobench::frame::Resolution;
use hd_videobench::seq::{Sequence, SequenceId};

fn small(id: SequenceId) -> Sequence {
    Sequence::new(id, Resolution::new(96, 80))
}

#[test]
fn all_codecs_roundtrip_all_sequences() {
    let options = CodingOptions::default();
    for codec in CodecId::ALL {
        for sid in SequenceId::ALL {
            let seq = small(sid);
            let rd = measure_rd_point(codec, seq, 5, &options)
                .unwrap_or_else(|e| panic!("{codec}/{sid}: {e}"));
            assert!(
                rd.psnr_y > 25.0,
                "{codec}/{sid}: psnr {:.2} too low",
                rd.psnr_y
            );
            assert!(rd.bitrate_kbps > 0.0);
        }
    }
}

#[test]
fn gop_structure_is_ipbb_with_single_intra() {
    let options = CodingOptions::default();
    for codec in CodecId::ALL {
        let enc = encode_sequence(codec, small(SequenceId::RushHour), 10, &options).unwrap();
        let kinds: Vec<PacketKind> = enc.packets.iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds.iter().filter(|&&k| k == PacketKind::I).count(),
            1,
            "{codec}: only the first frame is intra (paper Section IV)"
        );
        assert_eq!(kinds[0], PacketKind::I, "{codec}");
        // Two B pictures per anchor group.
        let bs = kinds.iter().filter(|&&k| k == PacketKind::B).count();
        assert_eq!(bs, 6, "{codec}: {kinds:?}");
    }
}

#[test]
fn decoded_frames_come_back_in_display_order() {
    let options = CodingOptions::default();
    for codec in CodecId::ALL {
        let seq = small(SequenceId::PedestrianArea);
        let enc = encode_sequence(codec, seq, 7, &options).unwrap();
        let dec = decode_sequence(codec, &enc.packets, options.simd).unwrap();
        assert_eq!(dec.frames.len(), 7, "{codec}");
        // Display order: each decoded frame must be closest (in PSNR) to
        // its own original, not to a neighbour.
        for (i, frame) in dec.frames.iter().enumerate() {
            let own = seq.frame(i as u32).y().sad(frame.y());
            for j in [i.wrapping_sub(1), i + 1] {
                if j < 7 && j != i {
                    let other = seq.frame(j as u32).y().sad(frame.y());
                    assert!(
                        own <= other,
                        "{codec}: decoded frame {i} matches original {j} better"
                    );
                }
            }
        }
    }
}

#[test]
fn rate_distortion_ordering_matches_the_paper() {
    // Table V's headline: at equal quality, bitrate(H.264) <
    // bitrate(MPEG-4) <= bitrate(MPEG-2), with H.264 well below both.
    let options = CodingOptions::default();
    let mut totals = [0.0f64; 3];
    let mut psnrs = [0.0f64; 3];
    // Mean per-sequence gains: [mpeg4 vs mpeg2, h264 vs mpeg2, h264 vs mpeg4].
    let mut gains = [0.0f64; 3];
    let frames = 8;
    for sid in SequenceId::ALL {
        let seq = Sequence::new(sid, Resolution::new(160, 128));
        let mut rates = [0.0f64; 3];
        for (ci, codec) in CodecId::ALL.iter().enumerate() {
            let rd = measure_rd_point(*codec, seq, frames, &options).unwrap();
            totals[ci] += rd.bitrate_kbps;
            rates[ci] = rd.bitrate_kbps;
            psnrs[ci] += rd.psnr_y / SequenceId::ALL.len() as f64;
        }
        let n = SequenceId::ALL.len() as f64;
        gains[0] += (1.0 - rates[1] / rates[0]) / n;
        gains[1] += (1.0 - rates[2] / rates[0]) / n;
        gains[2] += (1.0 - rates[2] / rates[1]) / n;
    }
    let [m2, m4, h264] = totals;
    assert!(m4 < m2, "MPEG-4 ({m4:.0}) must beat MPEG-2 ({m2:.0})");
    assert!(h264 < m4, "H.264 ({h264:.0}) must beat MPEG-4 ({m4:.0})");
    // The paper reports *average per-sequence* compression gains; assert
    // on the same statistic (gains average blue_sky..rush_hour equally
    // rather than letting riverbed's huge bitrate dominate).
    let [g_m4, g_h264_m2, g_h264_m4] = gains;
    assert!(
        g_m4 > 0.03,
        "mean MPEG-4 gain vs MPEG-2 only {:.1}%",
        g_m4 * 100.0
    );
    assert!(
        g_h264_m2 > 0.25,
        "mean H.264 gain vs MPEG-2 only {:.1}%",
        g_h264_m2 * 100.0
    );
    assert!(
        g_h264_m4 > 0.20,
        "mean H.264 gain vs MPEG-4 only {:.1}%",
        g_h264_m4 * 100.0
    );
    // Equal-quality protocol: all three PSNRs within a 1.5 dB band.
    let max = psnrs.iter().cloned().fold(f64::MIN, f64::max);
    let min = psnrs.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max - min < 1.5,
        "PSNRs diverge: {psnrs:?} (not an equal-quality comparison)"
    );
}

#[test]
fn riverbed_is_the_hardest_sequence_for_every_codec() {
    // The paper picks riverbed as "very hard to code": it must cost the
    // most bits at equal quantiser for every codec.
    let options = CodingOptions::default();
    for codec in CodecId::ALL {
        let bitrate = |sid: SequenceId| {
            measure_rd_point(codec, small(sid), 5, &options)
                .unwrap()
                .bitrate_kbps
        };
        let river = bitrate(SequenceId::Riverbed);
        for other in [
            SequenceId::BlueSky,
            SequenceId::PedestrianArea,
            SequenceId::RushHour,
        ] {
            assert!(
                river > bitrate(other),
                "{codec}: riverbed ({river:.0}) not harder than {other}"
            );
        }
    }
}

#[test]
fn higher_resolution_costs_proportionally_more_bits() {
    let options = CodingOptions::default();
    for codec in CodecId::ALL {
        let small_rd = measure_rd_point(
            codec,
            Sequence::new(SequenceId::RushHour, Resolution::new(96, 80)),
            4,
            &options,
        )
        .unwrap();
        let large_rd = measure_rd_point(
            codec,
            Sequence::new(SequenceId::RushHour, Resolution::new(192, 160)),
            4,
            &options,
        )
        .unwrap();
        assert!(
            large_rd.bitrate_kbps > 1.3 * small_rd.bitrate_kbps,
            "{codec}: 4x pixels should cost much more than 1.3x bits \
             ({:.0} vs {:.0})",
            large_rd.bitrate_kbps,
            small_rd.bitrate_kbps
        );
    }
}
