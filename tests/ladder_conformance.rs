//! Conformance layer for the ABR transcode ladder.
//!
//! An ABR ladder is only usable if the rung streams honour the
//! switching contract: every rung decodes cleanly on its own, segment
//! entry points are intra pictures at *identical display indices*
//! across rungs (so a player can jump rungs at any boundary), and a
//! stream spliced across rungs mid-sequence still decodes. On top of
//! that, the runner itself must be deterministic — pooled execution
//! and the serve-layer mapping must both reproduce the serial runner's
//! streams bit for bit.

use hd_videobench::bench::{
    decode_sequence, run_ladder, CodecId, CodingOptions, LadderSpec, Packet, PacketKind,
};
use hd_videobench::dsp::SimdLevel;
use hd_videobench::frame::{Frame, Resolution};
use hd_videobench::par::ThreadPool;
use hd_videobench::seq::{ScreenContent, Sequence, SequenceId};
use hd_videobench::serve::{run_ladder_serve, Server, ServerConfig};

const FRAMES: u32 = 12;
const SWITCH: u32 = 6; // two segments at the default GOP of 3

fn source_frames() -> Vec<Frame> {
    let seq = Sequence::new(SequenceId::BlueSky, Resolution::new(96, 64));
    (0..FRAMES).map(|i| seq.frame(i)).collect()
}

fn spec(codec: CodecId) -> LadderSpec {
    let mut s = LadderSpec::standard(codec, Resolution::new(96, 64), CodingOptions::default());
    s.switch_interval = SWITCH;
    s
}

#[test]
fn every_rung_decodes_cleanly_for_every_codec() {
    let source = source_frames();
    for codec in CodecId::ALL {
        let result = run_ladder(&source, &spec(codec), None).unwrap();
        assert!(
            result.rungs.len() >= 2,
            "{codec}: ladder collapsed to one rung"
        );
        for rung in &result.rungs {
            let decoded = decode_sequence(codec, &rung.packets, SimdLevel::detect()).unwrap();
            assert_eq!(
                decoded.frames.len(),
                source.len(),
                "{codec}/{}: rung lost frames",
                rung.resolution
            );
            for f in &decoded.frames {
                assert_eq!(f.width(), rung.resolution.width(), "{codec}");
                assert_eq!(f.height(), rung.resolution.height(), "{codec}");
            }
            assert!(
                rung.psnr_y > 20.0,
                "{codec}/{}: rung quality implausibly low ({:.2} dB)",
                rung.resolution,
                rung.psnr_y
            );
        }
    }
}

#[test]
fn segment_entries_are_intra_at_identical_display_indices() {
    let source = source_frames();
    let result = run_ladder(&source, &spec(CodecId::Mpeg2), None).unwrap();
    assert_eq!(result.segments, vec![(0, SWITCH), (SWITCH, FRAMES)]);
    for rung in &result.rungs {
        assert_eq!(
            rung.segment_starts.len(),
            result.segments.len(),
            "{}: wrong segment count",
            rung.resolution
        );
        for (k, &pi) in rung.segment_starts.iter().enumerate() {
            let p = &rung.packets[pi];
            assert_eq!(
                p.kind,
                PacketKind::I,
                "{}: segment {k} entry not intra",
                rung.resolution
            );
            assert_eq!(
                p.display_index, result.segments[k].0,
                "{}: segment {k} entry misaligned",
                rung.resolution
            );
        }
    }
    // Display-order coverage is identical across rungs: each rung codes
    // exactly frames 0..FRAMES, once each.
    for rung in &result.rungs {
        let mut seen: Vec<u32> = rung.packets.iter().map(|p| p.display_index).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..FRAMES).collect::<Vec<_>>(), "{}", rung.resolution);
    }
}

#[test]
fn mid_stream_rung_switch_is_decodable() {
    // A player downswitching at the segment boundary: segment 0 from
    // the top rung, segment 1 from a lower rung. Each segment is a
    // closed intra-led stream, so the splice decodes to the full frame
    // count with the rung geometry changing exactly at the boundary.
    let source = source_frames();
    for codec in CodecId::ALL {
        let result = run_ladder(&source, &spec(codec), None).unwrap();
        let (hi, lo) = (&result.rungs[0], &result.rungs[1]);
        let splice: Vec<Packet> = hi.packets[..hi.segment_starts[1]]
            .iter()
            .chain(&lo.packets[lo.segment_starts[1]..])
            .cloned()
            .collect();
        let decoded = decode_sequence(codec, &splice, SimdLevel::detect()).unwrap();
        assert_eq!(
            decoded.frames.len(),
            source.len(),
            "{codec}: splice lost frames"
        );
        for (i, f) in decoded.frames.iter().enumerate() {
            let expect = if (i as u32) < SWITCH {
                hi.resolution
            } else {
                lo.resolution
            };
            assert_eq!(f.width(), expect.width(), "{codec}: frame {i} geometry");
            assert_eq!(f.height(), expect.height(), "{codec}: frame {i} geometry");
        }
    }
}

#[test]
fn pooled_ladder_is_bit_identical_to_serial() {
    let source = source_frames();
    let spec = spec(CodecId::H264);
    let serial = run_ladder(&source, &spec, None).unwrap();
    let pool = ThreadPool::new(3);
    let pooled = run_ladder(&source, &spec, Some(&pool)).unwrap();
    assert_eq!(serial.rungs.len(), pooled.rungs.len());
    for (a, b) in serial.rungs.iter().zip(&pooled.rungs) {
        assert_eq!(a.resolution, b.resolution);
        assert_eq!(a.segment_starts, b.segment_starts, "{}", a.resolution);
        assert_eq!(
            a.packets, b.packets,
            "{}: pooled stream drifted",
            a.resolution
        );
        assert_eq!(a.bits, b.bits);
    }
}

#[test]
fn serve_ladder_is_bit_identical_to_core() {
    // Screen content through the serve mapping: one session per
    // (rung x segment) on a two-thread server must reproduce the batch
    // runner's spliced streams exactly.
    let screen = ScreenContent::new(Resolution::new(96, 64), 7);
    let source: Vec<Frame> = (0..FRAMES).map(|i| screen.frame(i)).collect();
    let spec = spec(CodecId::Mpeg2);
    let core = run_ladder(&source, &spec, None).unwrap();
    let server = Server::new(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let served = run_ladder_serve(&server, &source, &spec).unwrap();
    assert_eq!(served.frames, FRAMES);
    assert_eq!(core.rungs.len(), served.rungs.len());
    for (a, b) in core.rungs.iter().zip(&served.rungs) {
        assert_eq!(a.resolution, b.resolution);
        assert_eq!(a.segment_starts, b.segment_starts, "{}", a.resolution);
        assert_eq!(
            a.packets, b.packets,
            "{}: served stream drifted",
            a.resolution
        );
        assert_eq!(a.bits, b.bits);
    }
}

#[test]
fn bad_switch_interval_is_rejected() {
    let source = source_frames();
    let mut s = spec(CodecId::Mpeg2);
    s.switch_interval = 5; // not a multiple of the GOP (3)
    assert!(run_ladder(&source, &s, None).is_err());
    s.switch_interval = 0;
    assert!(run_ladder(&source, &s, None).is_err());
}
