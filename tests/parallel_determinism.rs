//! Determinism regression: the parallel sweep must be **bit-identical**
//! to the serial one.
//!
//! Each grid cell (resolution × sequence × codec) is an independent
//! encode→decode→PSNR pipeline, so fanning cells over the work-stealing
//! pool and merging in grid order may not change a single bit of any
//! packet, PSNR or bitrate relative to running the cells one after
//! another on the calling thread. `hdvb table5 --threads N` relies on
//! this to stay a faithful reproduction of the paper's Table V at any
//! thread count.

use hd_videobench::bench::{
    encode_sequence, measure_rd_point, CodecId, CodingOptions, ParallelRunner,
};
use hd_videobench::frame::Resolution;
use hd_videobench::par::ThreadPool;
use hd_videobench::seq::{Sequence, SequenceId};

const RES: (u32, u32) = (96, 80);
const FRAMES: u32 = 12;

/// Coded packets from a 4-thread pool are byte-identical to the serial
/// encoder's, for every codec and sequence of the small grid.
#[test]
fn parallel_sweep_packets_are_byte_identical_to_serial() {
    let resolution = Resolution::new(RES.0, RES.1);
    let options = CodingOptions::default();
    let mut cells = Vec::new();
    for codec in CodecId::ALL {
        for sid in SequenceId::ALL {
            cells.push((codec, sid));
        }
    }

    let serial: Vec<Vec<Vec<u8>>> = cells
        .iter()
        .map(|&(codec, sid)| {
            let seq = Sequence::new(sid, resolution);
            encode_sequence(codec, seq, FRAMES, &options)
                .expect("serial encode")
                .packets
                .into_iter()
                .map(|p| p.data)
                .collect()
        })
        .collect();

    let pool = ThreadPool::new(4);
    let parallel: Vec<Vec<Vec<u8>>> = pool
        .par_map(cells, |(codec, sid)| {
            let seq = Sequence::new(sid, resolution);
            encode_sequence(codec, seq, FRAMES, &options)
                .expect("parallel encode")
                .packets
                .into_iter()
                .map(|p| p.data)
                .collect()
        })
        .expect("no task panicked");

    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(
            s, p,
            "cell {i}: packet bytes differ between serial and parallel"
        );
    }
}

/// The assembled Table V rows (PSNR and bitrate) from a 4-thread
/// `ParallelRunner` are exactly equal — to the last f64 bit — to the
/// serial runner's, across all three codecs.
#[test]
fn table5_rows_identical_at_any_thread_count() {
    let resolutions = [Resolution::new(RES.0, RES.1)];
    let options = CodingOptions::default();

    let (serial_rows, serial_report) = ParallelRunner::new(1)
        .table5_rows(&resolutions, FRAMES, &options)
        .expect("serial sweep");
    let (parallel_rows, parallel_report) = ParallelRunner::new(4)
        .table5_rows(&resolutions, FRAMES, &options)
        .expect("parallel sweep");

    assert_eq!(serial_report.threads, 1);
    assert_eq!(parallel_report.threads, 4);
    assert_eq!(serial_report.cells, parallel_report.cells);
    assert_eq!(serial_rows.len(), parallel_rows.len());
    for (s, p) in serial_rows.iter().zip(&parallel_rows) {
        assert_eq!(s.resolution, p.resolution);
        assert_eq!(s.sequence, p.sequence);
        for (ci, (sp, pp)) in s.points.iter().zip(&p.points).enumerate() {
            assert_eq!(
                sp.0.to_bits(),
                pp.0.to_bits(),
                "{}/{:?}: PSNR differs",
                s.sequence.name(),
                CodecId::ALL[ci]
            );
            assert_eq!(
                sp.1.to_bits(),
                pp.1.to_bits(),
                "{}/{:?}: bitrate differs",
                s.sequence.name(),
                CodecId::ALL[ci]
            );
        }
    }
}

/// Turning the tracing subsystem on must not change a single bit of
/// the coded output: the probes only read clocks and write to
/// thread-local buffers, never touching codec state. A traced parallel
/// sweep is byte-identical to an untraced serial one, for every codec.
#[test]
fn traced_runs_are_bit_identical_to_untraced() {
    use hd_videobench::trace;

    let resolution = Resolution::new(RES.0, RES.1);
    let options = CodingOptions::default();

    let encode_all = || -> Vec<Vec<Vec<u8>>> {
        CodecId::ALL
            .iter()
            .map(|&codec| {
                let seq = Sequence::new(SequenceId::RushHour, resolution);
                encode_sequence(codec, seq, FRAMES, &options)
                    .expect("encode")
                    .packets
                    .into_iter()
                    .map(|p| p.data)
                    .collect()
            })
            .collect()
    };

    let untraced = encode_all();

    trace::reset();
    trace::set_enabled(true);
    let traced = encode_all();
    let pool = ThreadPool::new(4);
    let traced_parallel: Vec<Vec<Vec<u8>>> = pool
        .par_map(CodecId::ALL.to_vec(), |codec| {
            let seq = Sequence::new(SequenceId::RushHour, resolution);
            encode_sequence(codec, seq, FRAMES, &options)
                .expect("traced parallel encode")
                .packets
                .into_iter()
                .map(|p| p.data)
                .collect()
        })
        .expect("no task panicked");
    trace::set_enabled(false);
    let report = trace::collect();

    assert_eq!(untraced, traced, "tracing changed serial encoder output");
    assert_eq!(
        untraced, traced_parallel,
        "tracing changed pooled encoder output"
    );
    // The traced window really recorded codec activity — otherwise this
    // test would pass vacuously with the probes compiled out.
    assert!(
        report.stage_total(trace::Stage::EncodeFrame) > 0,
        "no encode_frame spans recorded while tracing was enabled"
    );
}

/// The rate-distortion measurement itself is a pure function of its
/// inputs: running the same cell on a pool worker and on the main
/// thread gives exactly equal PSNR/SSIM/bitrate.
#[test]
fn rd_point_is_reproducible_across_threads() {
    let resolution = Resolution::new(RES.0, RES.1);
    let options = CodingOptions::default();
    let pool = ThreadPool::new(2);
    for codec in CodecId::ALL {
        let seq = Sequence::new(SequenceId::PedestrianArea, resolution);
        let direct = measure_rd_point(codec, seq, FRAMES, &options).expect("direct");
        let pooled = pool
            .par_map(vec![()], |()| {
                measure_rd_point(codec, seq, FRAMES, &options).expect("pooled")
            })
            .expect("no panic")
            .remove(0);
        assert_eq!(direct.psnr_y.to_bits(), pooled.psnr_y.to_bits(), "{codec}");
        assert_eq!(direct.ssim_y.to_bits(), pooled.ssim_y.to_bits(), "{codec}");
        assert_eq!(
            direct.bitrate_kbps.to_bits(),
            pooled.bitrate_kbps.to_bits(),
            "{codec}"
        );
    }
}
