//! Table-driven robustness tests over the checked-in corruption corpus.
//!
//! Every `tests/corpus/*.hvb` vector is replayed through the decoders
//! under the scalar tier, every detected SIMD tier, and a 4-thread pool,
//! asserting:
//!
//! * nothing ever panics (`catch_unwind` guards every decode),
//! * vectors tagged `corrupt--` are rejected with a typed
//!   `BenchError::Corrupt { .. }`,
//! * vectors tagged `container--` never reach a codec at all,
//! * all execution configurations agree on the exact outcome.
//!
//! The corpus itself is regenerated deterministically by
//! `hdvb fuzz --write-golden tests/corpus`; a test below asserts the
//! checked-in bytes still match the generator, so the vectors cannot
//! silently drift from the code that documents them.

use hd_videobench::bench::{create_decoder, read_stream, BenchError};
use hd_videobench::dsp::SimdLevel;
use hd_videobench::fuzz::{differential_check, golden_vectors, Expectation};
use hd_videobench::par::ThreadPool;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn load_vectors() -> Vec<(String, Expectation, Vec<u8>)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(corpus_dir()).expect("tests/corpus exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_none_or(|e| e != "hvb") {
            continue;
        }
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("utf-8 corpus file name")
            .to_string();
        let (tag, _name) = stem
            .split_once("--")
            .unwrap_or_else(|| panic!("corpus file {stem} lacks an expectation tag"));
        let expect = Expectation::from_tag(tag)
            .unwrap_or_else(|| panic!("corpus file {stem} has unknown tag {tag}"));
        out.push((stem, expect, std::fs::read(&path).expect("readable vector")));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(out.len() >= 25, "corpus shrank to {} vectors", out.len());
    out
}

/// Decodes one vector under one tier; panics inside the decoder are the
/// failure being tested for, so each packet is unwind-guarded.
fn decode_vector(data: &[u8], simd: SimdLevel) -> Result<(), String> {
    let (header, packets) = match read_stream(data) {
        Ok(x) => x,
        Err(_) => return Ok(()), // container-level rejection is fine
    };
    let mut dec = create_decoder(header.codec, simd);
    for (i, p) in packets.iter().enumerate() {
        let result = catch_unwind(AssertUnwindSafe(|| dec.decode_packet(&p.data)));
        match result {
            Ok(_) => {}
            Err(_) => return Err(format!("packet {i} panicked under {simd:?}")),
        }
    }
    Ok(())
}

#[test]
fn no_vector_panics_under_any_tier() {
    for (name, _expect, data) in load_vectors() {
        for simd in SimdLevel::supported_tiers() {
            decode_vector(&data, simd).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}

#[test]
fn corrupt_vectors_fail_with_typed_errors() {
    for (name, expect, data) in load_vectors() {
        match expect {
            Expectation::ContainerError => {
                assert!(read_stream(&data[..]).is_err(), "{name}: container parsed");
            }
            Expectation::MustCorrupt => {
                let (header, packets) =
                    read_stream(&data[..]).unwrap_or_else(|e| panic!("{name}: {e}"));
                let mut dec = create_decoder(header.codec, SimdLevel::Scalar);
                let saw_corrupt = packets
                    .iter()
                    .any(|p| matches!(dec.decode_packet(&p.data), Err(BenchError::Corrupt { .. })));
                assert!(saw_corrupt, "{name}: no packet raised Corrupt");
            }
            Expectation::NoPanic => {} // covered by the panic sweep above
        }
    }
}

#[test]
fn all_tiers_and_a_thread_pool_agree_on_every_vector() {
    let pool = ThreadPool::new(4);
    for (name, _expect, data) in load_vectors() {
        let outcome = differential_check(&data, Some(&pool))
            .unwrap_or_else(|d| panic!("{name}: divergence {d:?}"));
        assert!(!outcome.has_panic(), "{name}: decoder panicked");
    }
}

#[test]
fn checked_in_corpus_matches_the_generator() {
    let vectors = golden_vectors();
    let on_disk = load_vectors();
    // Every generated vector must exist on disk with identical bytes
    // (extra on-disk entries — fuzz-found reproducers — are allowed).
    for g in &vectors {
        let stem = g.file_name();
        let stem = stem.trim_end_matches(".hvb");
        let found = on_disk
            .iter()
            .find(|(name, _, _)| name == stem)
            .unwrap_or_else(|| {
                panic!("golden vector {stem} missing from tests/corpus — run `hdvb fuzz --write-golden tests/corpus`")
            });
        assert_eq!(found.2, g.data, "{stem}: bytes drifted from generator");
    }
}
