//! End-to-end SIMD-invariance tests: the scalar and SIMD builds of every
//! codec must produce bit-identical streams and bit-identical decoded
//! pictures. This is the property that lets the Figure-1 harness reuse
//! one set of bitstreams across both decoder variants (as the original
//! benchmark does with FFmpeg/x264, whose assembly is bit-exact with
//! their C paths).

use hd_videobench::bench::{create_decoder, create_encoder, CodecId, CodingOptions, Packet};
use hd_videobench::dsp::SimdLevel;
use hd_videobench::frame::{Frame, Resolution};
use hd_videobench::seq::{Sequence, SequenceId};

fn encode_all(codec: CodecId, seq: Sequence, frames: u32, simd: SimdLevel) -> Vec<Packet> {
    let options = CodingOptions::default().with_simd(simd);
    let mut enc = create_encoder(codec, seq.resolution(), &options).unwrap();
    let mut packets = Vec::new();
    for i in 0..frames {
        packets.extend(enc.encode_frame(&seq.frame(i)).unwrap());
    }
    packets.extend(enc.finish().unwrap());
    packets
}

fn decode_all(codec: CodecId, packets: &[Packet], simd: SimdLevel) -> Vec<Frame> {
    let mut dec = create_decoder(codec, simd);
    let mut out = Vec::new();
    for p in packets {
        out.extend(dec.decode_packet(&p.data).unwrap());
    }
    out.extend(dec.finish());
    out
}

#[test]
fn encoders_are_simd_invariant() {
    for codec in CodecId::ALL {
        for sid in [SequenceId::BlueSky, SequenceId::Riverbed] {
            let seq = Sequence::new(sid, Resolution::new(96, 80));
            let scalar = encode_all(codec, seq, 5, SimdLevel::Scalar);
            let simd = encode_all(codec, seq, 5, SimdLevel::Sse2);
            assert_eq!(scalar.len(), simd.len(), "{codec}/{sid}");
            for (i, (a, b)) in scalar.iter().zip(&simd).enumerate() {
                assert_eq!(
                    a, b,
                    "{codec}/{sid}: packet {i} differs between SIMD levels"
                );
            }
        }
    }
}

#[test]
fn decoders_are_simd_invariant() {
    for codec in CodecId::ALL {
        let seq = Sequence::new(SequenceId::PedestrianArea, Resolution::new(96, 80));
        let packets = encode_all(codec, seq, 7, SimdLevel::detect());
        let scalar = decode_all(codec, &packets, SimdLevel::Scalar);
        let simd = decode_all(codec, &packets, SimdLevel::Sse2);
        assert_eq!(scalar.len(), simd.len(), "{codec}");
        for (i, (a, b)) in scalar.iter().zip(&simd).enumerate() {
            assert_eq!(
                a, b,
                "{codec}: decoded frame {i} differs between SIMD levels"
            );
        }
    }
}

#[test]
fn cross_level_streams_interoperate() {
    // Scalar-encoded stream decoded by the SIMD decoder and vice versa.
    for codec in CodecId::ALL {
        let seq = Sequence::new(SequenceId::RushHour, Resolution::new(96, 80));
        let scalar_stream = encode_all(codec, seq, 4, SimdLevel::Scalar);
        let a = decode_all(codec, &scalar_stream, SimdLevel::Sse2);
        let b = decode_all(codec, &scalar_stream, SimdLevel::Scalar);
        assert_eq!(a, b, "{codec}");
    }
}

#[test]
fn encoding_is_deterministic_across_runs() {
    for codec in CodecId::ALL {
        let seq = Sequence::new(SequenceId::BlueSky, Resolution::new(96, 80));
        let one = encode_all(codec, seq, 4, SimdLevel::detect());
        let two = encode_all(codec, seq, 4, SimdLevel::detect());
        assert_eq!(one, two, "{codec}: encoder is nondeterministic");
    }
}
