//! End-to-end SIMD-invariance tests: the scalar and SIMD builds of every
//! codec must produce bit-identical streams and bit-identical decoded
//! pictures. This is the property that lets the Figure-1 harness reuse
//! one set of bitstreams across both decoder variants (as the original
//! benchmark does with FFmpeg/x264, whose assembly is bit-exact with
//! their C paths).

use hd_videobench::bench::{create_decoder, create_encoder, CodecId, CodingOptions, Packet};
use hd_videobench::dsp::SimdLevel;
use hd_videobench::frame::{Frame, Resolution};
use hd_videobench::seq::{Sequence, SequenceId};

fn encode_all(codec: CodecId, seq: Sequence, frames: u32, simd: SimdLevel) -> Vec<Packet> {
    let options = CodingOptions::default().with_simd(simd);
    let mut enc = create_encoder(codec, seq.resolution(), &options).unwrap();
    let mut packets = Vec::new();
    for i in 0..frames {
        packets.extend(enc.encode_frame(&seq.frame(i)).unwrap());
    }
    packets.extend(enc.finish().unwrap());
    packets
}

fn decode_all(codec: CodecId, packets: &[Packet], simd: SimdLevel) -> Vec<Frame> {
    let mut dec = create_decoder(codec, simd);
    let mut out = Vec::new();
    for p in packets {
        out.extend(dec.decode_packet(&p.data).unwrap());
    }
    out.extend(dec.finish());
    out
}

#[test]
fn encoders_are_simd_invariant() {
    for codec in CodecId::ALL {
        for sid in [SequenceId::BlueSky, SequenceId::Riverbed] {
            let seq = Sequence::new(sid, Resolution::new(96, 80));
            let scalar = encode_all(codec, seq, 5, SimdLevel::Scalar);
            let simd = encode_all(codec, seq, 5, SimdLevel::Sse2);
            assert_eq!(scalar.len(), simd.len(), "{codec}/{sid}");
            for (i, (a, b)) in scalar.iter().zip(&simd).enumerate() {
                assert_eq!(
                    a, b,
                    "{codec}/{sid}: packet {i} differs between SIMD levels"
                );
            }
        }
    }
}

#[test]
fn decoders_are_simd_invariant() {
    for codec in CodecId::ALL {
        let seq = Sequence::new(SequenceId::PedestrianArea, Resolution::new(96, 80));
        let packets = encode_all(codec, seq, 7, SimdLevel::detect());
        let scalar = decode_all(codec, &packets, SimdLevel::Scalar);
        let simd = decode_all(codec, &packets, SimdLevel::Sse2);
        assert_eq!(scalar.len(), simd.len(), "{codec}");
        for (i, (a, b)) in scalar.iter().zip(&simd).enumerate() {
            assert_eq!(
                a, b,
                "{codec}: decoded frame {i} differs between SIMD levels"
            );
        }
    }
}

#[test]
fn cross_level_streams_interoperate() {
    // Scalar-encoded stream decoded by the SIMD decoder and vice versa.
    for codec in CodecId::ALL {
        let seq = Sequence::new(SequenceId::RushHour, Resolution::new(96, 80));
        let scalar_stream = encode_all(codec, seq, 4, SimdLevel::Scalar);
        let a = decode_all(codec, &scalar_stream, SimdLevel::Sse2);
        let b = decode_all(codec, &scalar_stream, SimdLevel::Scalar);
        assert_eq!(a, b, "{codec}");
    }
}

#[test]
fn encoding_is_deterministic_across_runs() {
    for codec in CodecId::ALL {
        let seq = Sequence::new(SequenceId::BlueSky, Resolution::new(96, 80));
        let one = encode_all(codec, seq, 4, SimdLevel::detect());
        let two = encode_all(codec, seq, 4, SimdLevel::detect());
        assert_eq!(one, two, "{codec}: encoder is nondeterministic");
    }
}

// --- Polyphase scaler invariance -----------------------------------------
//
// The ladder runner leans on the same guarantee the codecs do: the
// scaler's SSE2/AVX2 kernels must be bit-exact with the scalar
// reference, or rung streams would differ between machines. Exercised
// here at the geometries production ladders actually hit — odd widths,
// extreme downscale ratios, and half-size chroma planes.

use hd_videobench::dsp::{Dsp, Scaler};
use proptest::prelude::*;

/// Deterministic pseudo-random plane: positional splitmix-style hash so
/// the fixed-geometry tests need no RNG.
fn hashed_plane(w: usize, h: usize, seed: u64) -> Vec<u8> {
    (0..w * h)
        .map(|i| {
            let mut z = seed ^ ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            (z >> 56) as u8
        })
        .collect()
}

/// Scales `src` at every supported tier and asserts each output is
/// byte-identical to the scalar reference.
fn assert_scale_tier_exact(sw: usize, sh: usize, dw: usize, dh: usize, src: &[u8], what: &str) {
    let mut reference = vec![0u8; dw * dh];
    Scaler::new(Dsp::new(SimdLevel::Scalar), sw, sh, dw, dh).scale(src, &mut reference);
    for level in SimdLevel::supported_tiers() {
        if level == SimdLevel::Scalar {
            continue;
        }
        let mut out = vec![0u8; dw * dh];
        Scaler::new(Dsp::new(level), sw, sh, dw, dh).scale(src, &mut out);
        assert_eq!(
            reference,
            out,
            "{what}: {sw}x{sh} -> {dw}x{dh} differs at {}",
            level.tier_name()
        );
    }
}

#[test]
fn scaler_handles_extreme_ratio_1088p_to_160p() {
    // The ISSUE's stress case: full HD mezzanine down to a thumbnail
    // rung (1920x1088 -> 288x160), plus the matching 4:2:0 chroma
    // geometry (960x544 -> 144x80).
    let luma = hashed_plane(1920, 1088, 0xA1);
    assert_scale_tier_exact(1920, 1088, 288, 160, &luma, "luma");
    let chroma = hashed_plane(960, 544, 0xA2);
    assert_scale_tier_exact(960, 544, 144, 80, &chroma, "chroma");
}

#[test]
fn scaler_handles_upscale_back_to_1088p() {
    let src = hashed_plane(288, 160, 0xB1);
    assert_scale_tier_exact(288, 160, 1920, 1088, &src, "upscale luma");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Odd geometries in both directions, down- and up-scale, with
    /// random pixel data: every tier matches the scalar reference.
    #[test]
    fn scaler_is_tier_exact_at_odd_geometries(
        sw in (5usize..=96).prop_map(|v| v | 1),
        sh in (5usize..=64).prop_map(|v| v | 1),
        dw in (5usize..=96).prop_map(|v| v | 1),
        dh in (5usize..=64).prop_map(|v| v | 1),
        seed in any::<u64>(),
    ) {
        let src: Vec<u8> = hashed_plane(sw, sh, seed);
        let mut reference = vec![0u8; dw * dh];
        Scaler::new(Dsp::new(SimdLevel::Scalar), sw, sh, dw, dh).scale(&src, &mut reference);
        for level in SimdLevel::supported_tiers() {
            if level == SimdLevel::Scalar {
                continue;
            }
            let mut out = vec![0u8; dw * dh];
            Scaler::new(Dsp::new(level), sw, sh, dw, dh).scale(&src, &mut out);
            prop_assert_eq!(
                &reference, &out,
                "{}x{} -> {}x{} differs at {}", sw, sh, dw, dh, level.tier_name()
            );
        }
    }

    /// Chroma-subsampled planes: scaling the half-size plane with the
    /// half-size geometry is tier-exact too (the FrameScaler path).
    #[test]
    fn scaler_is_tier_exact_on_chroma_planes(
        sw in 4usize..=48,
        sh in 4usize..=32,
        dw in 4usize..=48,
        dh in 4usize..=32,
        seed in any::<u64>(),
    ) {
        let (sw, sh, dw, dh) = (sw * 2, sh * 2, dw * 2, dh * 2);
        let luma = hashed_plane(sw, sh, seed);
        let chroma = hashed_plane(sw / 2, sh / 2, seed ^ 0xC0);
        let mut reference = vec![0u8; dw * dh];
        Scaler::new(Dsp::new(SimdLevel::Scalar), sw, sh, dw, dh).scale(&luma, &mut reference);
        let mut c_reference = vec![0u8; (dw / 2) * (dh / 2)];
        Scaler::new(Dsp::new(SimdLevel::Scalar), sw / 2, sh / 2, dw / 2, dh / 2)
            .scale(&chroma, &mut c_reference);
        for level in SimdLevel::supported_tiers() {
            if level == SimdLevel::Scalar {
                continue;
            }
            let mut out = vec![0u8; dw * dh];
            Scaler::new(Dsp::new(level), sw, sh, dw, dh).scale(&luma, &mut out);
            prop_assert_eq!(&reference, &out, "luma {}", level.tier_name());
            let mut c_out = vec![0u8; (dw / 2) * (dh / 2)];
            Scaler::new(Dsp::new(level), sw / 2, sh / 2, dw / 2, dh / 2)
                .scale(&chroma, &mut c_out);
            prop_assert_eq!(&c_reference, &c_out, "chroma {}", level.tier_name());
        }
    }
}
