//! Integration tests of the benchmark harness itself: report
//! generation, the stream container, and Equation-1 behaviour across
//! the full pipeline.

use hd_videobench::bench::{
    encode_sequence, figure1_markdown, measure_figure1_row, measure_rd_point, read_stream,
    table5_markdown, write_stream, CodecId, CodingOptions, Figure1Row, StreamHeader, Table5Row,
};
use hd_videobench::dsp::SimdLevel;
use hd_videobench::frame::Resolution;
use hd_videobench::seq::{Sequence, SequenceId};

#[test]
fn table5_report_from_live_measurements() {
    let options = CodingOptions::default();
    let resolution = Resolution::new(96, 80);
    let mut rows = Vec::new();
    for sid in [SequenceId::BlueSky, SequenceId::RushHour] {
        let seq = Sequence::new(sid, resolution);
        let mut points = [(0.0, 0.0); 3];
        for (ci, codec) in CodecId::ALL.iter().enumerate() {
            let rd = measure_rd_point(*codec, seq, 4, &options).unwrap();
            points[ci] = (rd.psnr_y, rd.bitrate_kbps);
        }
        rows.push(Table5Row {
            resolution,
            sequence: sid,
            points,
        });
    }
    let md = table5_markdown(&rows);
    assert!(md.contains("blue_sky"));
    assert!(md.contains("rush_hour"));
    assert!(md.contains("compression gain"));
    // Every cell is a finite positive number (format sanity).
    for row in &rows {
        for (psnr, kbps) in row.points {
            assert!(psnr.is_finite() && psnr > 0.0);
            assert!(kbps.is_finite() && kbps > 0.0);
        }
    }
}

#[test]
fn figure1_report_from_live_measurements() {
    let resolution = Resolution::new(96, 80);
    let seq = Sequence::new(SequenceId::RushHour, resolution);
    let mut rows = Vec::new();
    for simd in [SimdLevel::Scalar, SimdLevel::Sse2] {
        let options = CodingOptions::default().with_simd(simd);
        let mut enc = [0.0; 3];
        let mut dec = [0.0; 3];
        for (ci, codec) in CodecId::ALL.iter().enumerate() {
            let t = measure_figure1_row(*codec, seq, 4, &options).unwrap();
            enc[ci] = t.encode_fps;
            dec[ci] = t.decode_fps;
        }
        rows.push(Figure1Row {
            resolution,
            decode: true,
            tier: simd,
            fps: dec,
        });
        rows.push(Figure1Row {
            resolution,
            decode: false,
            tier: simd,
            fps: enc,
        });
    }
    let md = figure1_markdown(&rows);
    for part in ["(a)", "(b)", "(c)", "(d)"] {
        assert!(md.contains(part), "missing subfigure {part}:\n{md}");
    }
    assert!(md.contains("SIMD speed-up"));
}

#[test]
fn container_roundtrips_real_streams() {
    let options = CodingOptions::default();
    for codec in CodecId::ALL {
        let seq = Sequence::new(SequenceId::PedestrianArea, Resolution::new(96, 80));
        let enc = encode_sequence(codec, seq, 4, &options).unwrap();
        let header = StreamHeader {
            codec,
            format: seq.format(),
        };
        let mut buf = Vec::new();
        write_stream(&mut buf, &header, &enc.packets).unwrap();
        let (h2, p2) = read_stream(&buf[..]).unwrap();
        assert_eq!(h2.codec, codec);
        assert_eq!(h2.format, seq.format());
        assert_eq!(p2, enc.packets);
    }
}

#[test]
fn equation_one_scaling_preserves_equal_quality_protocol() {
    // Moving the MPEG quantiser and mapping through Eq. 1 must move all
    // codecs in the same quality direction.
    let seq = Sequence::new(SequenceId::RushHour, Resolution::new(96, 80));
    for codec in CodecId::ALL {
        let fine =
            measure_rd_point(codec, seq, 4, &CodingOptions::default().with_qscale(3)).unwrap();
        let coarse =
            measure_rd_point(codec, seq, 4, &CodingOptions::default().with_qscale(16)).unwrap();
        assert!(
            fine.psnr_y > coarse.psnr_y + 2.0,
            "{codec}: qscale 3 ({:.1} dB) should beat qscale 16 ({:.1} dB)",
            fine.psnr_y,
            coarse.psnr_y
        );
        assert!(
            fine.bitrate_kbps > coarse.bitrate_kbps,
            "{codec}: finer quantiser must cost more bits"
        );
    }
}
