//! Integration tests of the benchmark harness itself: report
//! generation, the stream container, and Equation-1 behaviour across
//! the full pipeline.

use hd_videobench::bench::{
    encode_sequence, figure1_markdown, measure_figure1_row, measure_rd_point, read_stream,
    table5_markdown, write_stream, CodecId, CodingOptions, Figure1Row, StreamHeader, Table5Row,
};
use hd_videobench::dsp::SimdLevel;
use hd_videobench::frame::Resolution;
use hd_videobench::seq::{Sequence, SequenceId};

#[test]
fn table5_report_from_live_measurements() {
    let options = CodingOptions::default();
    let resolution = Resolution::new(96, 80);
    let mut rows = Vec::new();
    for sid in [SequenceId::BlueSky, SequenceId::RushHour] {
        let seq = Sequence::new(sid, resolution);
        let mut points = [(0.0, 0.0); 3];
        for (ci, codec) in CodecId::ALL.iter().enumerate() {
            let rd = measure_rd_point(*codec, seq, 4, &options).unwrap();
            points[ci] = (rd.psnr_y, rd.bitrate_kbps);
        }
        rows.push(Table5Row {
            resolution,
            sequence: sid,
            points,
        });
    }
    let md = table5_markdown(&rows);
    assert!(md.contains("blue_sky"));
    assert!(md.contains("rush_hour"));
    assert!(md.contains("compression gain"));
    // Every cell is a finite positive number (format sanity).
    for row in &rows {
        for (psnr, kbps) in row.points {
            assert!(psnr.is_finite() && psnr > 0.0);
            assert!(kbps.is_finite() && kbps > 0.0);
        }
    }
}

#[test]
fn figure1_report_from_live_measurements() {
    let resolution = Resolution::new(96, 80);
    let seq = Sequence::new(SequenceId::RushHour, resolution);
    let mut rows = Vec::new();
    for simd in [SimdLevel::Scalar, SimdLevel::Sse2] {
        let options = CodingOptions::default().with_simd(simd);
        let mut enc = [0.0; 3];
        let mut dec = [0.0; 3];
        for (ci, codec) in CodecId::ALL.iter().enumerate() {
            let t = measure_figure1_row(*codec, seq, 4, &options).unwrap();
            enc[ci] = t.encode_fps;
            dec[ci] = t.decode_fps;
        }
        rows.push(Figure1Row {
            resolution,
            decode: true,
            tier: simd,
            fps: dec,
            stages: [[0; 6]; 3],
        });
        rows.push(Figure1Row {
            resolution,
            decode: false,
            tier: simd,
            fps: enc,
            stages: [[0; 6]; 3],
        });
    }
    let md = figure1_markdown(&rows);
    for part in ["(a)", "(b)", "(c)", "(d)"] {
        assert!(md.contains(part), "missing subfigure {part}:\n{md}");
    }
    assert!(md.contains("SIMD speed-up"));
}

/// A strict JSON reader for validating the chrome-trace export: no
/// trailing commas, exact literal/number/escape grammar, nothing after
/// the top-level value. Any deviation the real chrome://tracing /
/// Perfetto importer would reject is an `Err` here.
mod strict_json {
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_num(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// Re-serialises the value; `parse(write(v)) == v` is the
        /// round-trip property under test.
        pub fn write(&self) -> String {
            match self {
                Value::Null => "null".to_string(),
                Value::Bool(b) => b.to_string(),
                Value::Num(n) => {
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        format!("{}", *n as i64)
                    } else {
                        format!("{n}")
                    }
                }
                Value::Str(s) => {
                    let mut out = String::from("\"");
                    for c in s.chars() {
                        match c {
                            '"' => out.push_str("\\\""),
                            '\\' => out.push_str("\\\\"),
                            '\n' => out.push_str("\\n"),
                            '\t' => out.push_str("\\t"),
                            '\r' => out.push_str("\\r"),
                            c if (c as u32) < 0x20 => {
                                out.push_str(&format!("\\u{:04x}", c as u32));
                            }
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                    out
                }
                Value::Arr(items) => {
                    let inner: Vec<String> = items.iter().map(Value::write).collect();
                    format!("[{}]", inner.join(","))
                }
                Value::Obj(pairs) => {
                    let inner: Vec<String> = pairs
                        .iter()
                        .map(|(k, v)| format!("{}:{}", Value::Str(k.clone()).write(), v.write()))
                        .collect();
                    format!("{{{}}}", inner.join(","))
                }
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let b = text.as_bytes();
        let mut pos = 0;
        let v = value(b, &mut pos)?;
        ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }

    fn ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {pos}", c as char))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Value::Str(string(b, pos)?)),
            Some(b't') => literal(b, pos, "true", Value::Bool(true)),
            Some(b'f') => literal(b, pos, "false", Value::Bool(false)),
            Some(b'n') => literal(b, pos, "null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
            other => Err(format!("unexpected {other:?} at offset {pos}")),
        }
    }

    fn literal(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {pos}"))
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut pairs = Vec::new();
        ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            ws(b, pos);
            let key = string(b, pos)?;
            ws(b, pos);
            expect(b, pos, b':')?;
            pairs.push((key, value(b, pos)?));
            ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(value(b, pos)?);
            ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = Vec::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    *pos += 1;
                    return String::from_utf8(out).map_err(|e| e.to_string());
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'b') => out.push(0x08),
                        Some(b'f') => out.push(0x0c),
                        Some(b'n') => out.push(b'\n'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'u') => {
                            let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                            let c = char::from_u32(code).ok_or("surrogate in \\u escape")?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            *pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *pos += 1;
                }
                Some(&c) if c < 0x20 => {
                    return Err(format!("raw control byte {c:#x} in string"));
                }
                Some(&c) => {
                    out.push(c);
                    *pos += 1;
                }
            }
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        // Integer part: "0" or nonzero-led digits (leading zeros are
        // not valid JSON).
        match b.get(*pos) {
            Some(b'0') => *pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while b.get(*pos).is_some_and(u8::is_ascii_digit) {
                    *pos += 1;
                }
            }
            _ => return Err(format!("bad number at offset {start}")),
        }
        if b.get(*pos) == Some(&b'.') {
            *pos += 1;
            if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
                return Err(format!("bad fraction at offset {pos}"));
            }
            while b.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
        }
        if matches!(b.get(*pos), Some(b'e' | b'E')) {
            *pos += 1;
            if matches!(b.get(*pos), Some(b'+' | b'-')) {
                *pos += 1;
            }
            if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
                return Err(format!("bad exponent at offset {pos}"));
            }
            while b.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
        }
        std::str::from_utf8(&b[start..*pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Value::Num)
            .map_err(|e| e.to_string())
    }
}

/// The chrome-trace export from a real traced encode+decode parses
/// under the strict grammar, has the Trace Event structure Perfetto
/// needs, and survives a parse → write → parse round trip unchanged.
#[test]
fn chrome_trace_export_round_trips_as_strict_json() {
    use hd_videobench::trace;

    trace::reset();
    trace::set_enabled(true);
    let seq = Sequence::new(SequenceId::BlueSky, Resolution::new(96, 80));
    measure_figure1_row(CodecId::Mpeg2, seq, 4, &CodingOptions::default()).unwrap();
    trace::set_enabled(false);
    let json = trace::collect().chrome_trace_json();

    let doc = strict_json::parse(&json).expect("export must be strict JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ms")
    );
    let strict_json::Value::Arr(events) = doc.get("traceEvents").expect("traceEvents") else {
        panic!("traceEvents must be an array");
    };
    assert!(!events.is_empty(), "traced run must produce events");
    let mut complete = 0;
    for ev in events {
        let ph = ev.get("ph").and_then(|v| v.as_str()).expect("ph");
        assert!(
            ["X", "M", "C"].contains(&ph),
            "unexpected event phase {ph:?}"
        );
        assert!(ev.get("pid").and_then(|v| v.as_num()).is_some());
        assert!(ev.get("tid").and_then(|v| v.as_num()).is_some());
        assert!(ev.get("name").and_then(|v| v.as_str()).is_some());
        if ph == "X" {
            complete += 1;
            let ts = ev.get("ts").and_then(|v| v.as_num()).expect("ts");
            let dur = ev.get("dur").and_then(|v| v.as_num()).expect("dur");
            assert!(ts >= 0.0 && dur >= 0.0, "negative timestamp");
        }
    }
    assert!(complete > 0, "no complete (ph=X) span events");

    let rewritten = doc.write();
    let doc2 = strict_json::parse(&rewritten).expect("re-serialised JSON must parse");
    assert_eq!(doc, doc2, "parse→write→parse must be lossless");
}

/// Traced Figure-1 rows render the per-stage attribution table.
#[test]
fn figure1_markdown_renders_stage_attribution() {
    let row = Figure1Row {
        resolution: Resolution::DVD_576,
        decode: false,
        tier: SimdLevel::Scalar,
        fps: [10.0, 12.0, 6.0],
        stages: [[50, 10, 15, 10, 15, 0]; 3],
    };
    assert!(row.has_stages());
    let md = figure1_markdown(std::slice::from_ref(&row));
    assert!(
        md.contains("motion_estimation %"),
        "missing stage column:\n{md}"
    );
    assert!(md.contains("50.0"), "missing stage percentage:\n{md}");

    let untraced = Figure1Row {
        stages: [[0; 6]; 3],
        ..row
    };
    assert!(!untraced.has_stages());
    assert!(!figure1_markdown(&[untraced]).contains("motion_estimation %"));
}

#[test]
fn container_roundtrips_real_streams() {
    let options = CodingOptions::default();
    for codec in CodecId::ALL {
        let seq = Sequence::new(SequenceId::PedestrianArea, Resolution::new(96, 80));
        let enc = encode_sequence(codec, seq, 4, &options).unwrap();
        let header = StreamHeader {
            codec,
            format: seq.format(),
        };
        let mut buf = Vec::new();
        write_stream(&mut buf, &header, &enc.packets).unwrap();
        let (h2, p2) = read_stream(&buf[..]).unwrap();
        assert_eq!(h2.codec, codec);
        assert_eq!(h2.format, seq.format());
        assert_eq!(p2, enc.packets);
    }
}

#[test]
fn equation_one_scaling_preserves_equal_quality_protocol() {
    // Moving the MPEG quantiser and mapping through Eq. 1 must move all
    // codecs in the same quality direction.
    let seq = Sequence::new(SequenceId::RushHour, Resolution::new(96, 80));
    for codec in CodecId::ALL {
        let fine =
            measure_rd_point(codec, seq, 4, &CodingOptions::default().with_qscale(3)).unwrap();
        let coarse =
            measure_rd_point(codec, seq, 4, &CodingOptions::default().with_qscale(16)).unwrap();
        assert!(
            fine.psnr_y > coarse.psnr_y + 2.0,
            "{codec}: qscale 3 ({:.1} dB) should beat qscale 16 ({:.1} dB)",
            fine.psnr_y,
            coarse.psnr_y
        );
        assert!(
            fine.bitrate_kbps > coarse.bitrate_kbps,
            "{codec}: finer quantiser must cost more bits"
        );
    }
}
