//! Wire-protocol robustness: golden vectors plus mutation fuzzing.
//!
//! The vectors under `tests/corpus/wire/` are regenerated
//! deterministically by `hdvb_net::golden::golden_vectors()`; a test
//! below asserts the checked-in bytes still match the generator
//! (regenerate with `HDVB_WRITE_GOLDEN=1 cargo test --test
//! wire_robustness`). Every `ok--` vector must decode completely,
//! every `err--` vector must fail with a typed `WireError`, and no
//! input — golden or fuzzed — may ever panic the decoder.

use hd_videobench::fuzz::{mutate, FuzzRng, Mutator};
use hd_videobench::net::golden::golden_vectors;
use hd_videobench::net::wire;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/wire")
}

/// Decodes a buffer as a stream of framed messages; `Ok(n)` when all
/// `n` messages parsed and nothing was left over.
fn decode_all(mut buf: &[u8]) -> Result<usize, wire::WireError> {
    let mut n = 0usize;
    while !buf.is_empty() {
        let (_msg, _seq, used) = wire::decode(buf)?;
        buf = &buf[used..];
        n += 1;
    }
    Ok(n)
}

#[test]
fn checked_in_vectors_match_the_generator() {
    let dir = corpus_dir();
    if std::env::var("HDVB_WRITE_GOLDEN").is_ok() {
        std::fs::create_dir_all(&dir).expect("create corpus dir");
        for g in golden_vectors() {
            std::fs::write(dir.join(format!("{}.bin", g.name)), &g.bytes)
                .expect("write golden vector");
        }
    }
    let vectors = golden_vectors();
    assert!(vectors.len() >= 10, "only {} golden vectors", vectors.len());
    for g in &vectors {
        let path = dir.join(format!("{}.bin", g.name));
        let on_disk = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "{} missing ({e}); regenerate with HDVB_WRITE_GOLDEN=1",
                g.name
            )
        });
        assert_eq!(
            on_disk, g.bytes,
            "{} drifted from the generator; regenerate with HDVB_WRITE_GOLDEN=1",
            g.name
        );
    }
    // No stray files either — the corpus is exactly the generator's set.
    let mut stems: Vec<String> = std::fs::read_dir(&dir)
        .expect("corpus dir readable")
        .filter_map(|e| {
            let p = e.expect("dir entry").path();
            (p.extension().is_some_and(|x| x == "bin"))
                .then(|| p.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    stems.sort();
    let mut expected: Vec<String> = vectors.iter().map(|g| g.name.to_string()).collect();
    expected.sort();
    assert_eq!(stems, expected);
}

#[test]
fn golden_vectors_decode_as_tagged_without_panicking() {
    for g in golden_vectors() {
        let outcome = catch_unwind(AssertUnwindSafe(|| decode_all(&g.bytes)))
            .unwrap_or_else(|_| panic!("{}: decoder panicked", g.name));
        assert_eq!(
            outcome.is_ok(),
            g.valid,
            "{}: expected valid={}, got {outcome:?}",
            g.name,
            g.valid
        );
    }
}

/// Structure-aware fuzzing: the `hdvb-fuzz` byte-level mutators chew on
/// valid framed session transcripts; whatever comes out, the decoder
/// must return a typed error or a clean parse — never panic. Mutants of
/// mutants keep the pressure on the resynchronisation paths.
#[test]
fn mutated_streams_never_panic_the_decoder() {
    let seeds: Vec<Vec<u8>> = golden_vectors().into_iter().map(|g| g.bytes).collect();
    let mutators = [
        Mutator::BitFlip,
        Mutator::ByteSet,
        Mutator::Truncate,
        Mutator::DuplicateSpan,
        Mutator::Splice,
    ];
    let mut corpus = seeds.clone();
    let mut rng = FuzzRng::new(0x5EED_0001);
    let mut decoded_ok = 0u32;
    let mut rejected = 0u32;
    for round in 0..2_000usize {
        let base = &corpus[round % corpus.len()];
        let other = &corpus[(round * 7 + 1) % corpus.len()];
        let mutator = mutators[round % mutators.len()];
        let mutant = mutate(base, mutator, other, &mut rng);
        let outcome = catch_unwind(AssertUnwindSafe(|| decode_all(&mutant))).unwrap_or_else(|_| {
            panic!(
                "decoder panicked on {} mutant of round {round}",
                mutator.name()
            )
        });
        match outcome {
            Ok(_) => decoded_ok += 1,
            Err(_) => rejected += 1,
        }
        // Grow a small rolling corpus so later rounds mutate mutants.
        if corpus.len() < 64 {
            corpus.push(mutant);
        } else {
            let slot = seeds.len() + round % (64 - seeds.len());
            corpus[slot] = mutant;
        }
    }
    // Sanity: the harness exercised both outcomes, so it is actually
    // reaching the decoder (not, say, truncating everything to empty).
    assert!(rejected > 0, "no mutant was ever rejected");
    assert!(
        decoded_ok + rejected == 2_000,
        "accounting broke: {decoded_ok} + {rejected}"
    );
}

/// Every rejection is a *typed* error whose Display text is stable
/// enough to log — exercising the error paths' formatting too.
#[test]
fn wire_errors_render_without_panicking() {
    let mut rng = FuzzRng::new(77);
    let seeds: Vec<Vec<u8>> = golden_vectors().into_iter().map(|g| g.bytes).collect();
    let mut errors = 0u32;
    for round in 0..500usize {
        let base = &seeds[round % seeds.len()];
        let mutant = mutate(base, Mutator::ByteSet, base, &mut rng);
        if let Err(e) = decode_all(&mutant) {
            errors += 1;
            let rendered = e.to_string();
            assert!(!rendered.is_empty());
        }
    }
    assert!(
        errors > 0,
        "byte-set mutation never produced a decode error"
    );
}
