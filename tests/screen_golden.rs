//! Golden frame hashes for the screen-content generator.
//!
//! The ladder and screen workloads are only reproducible across
//! machines if [`ScreenContent`] renders bit-identical frames
//! everywhere — it is all integer math, so any drift is a bug. The
//! vectors under `tests/corpus/screen/` record an FNV-1a hash per
//! frame for a grid of (resolution, seed) configurations; regenerate
//! with `HDVB_WRITE_GOLDEN=1 cargo test --test screen_golden` after an
//! *intentional* generator change.

use hd_videobench::bench::fnv1a64;
use hd_videobench::frame::Resolution;
use hd_videobench::seq::ScreenContent;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/screen")
}

/// The golden grid: small geometries render fast, the seeds cover the
/// layout-randomising paths, and the frame indices sample the start,
/// a scroll step, a clock flip (index 25) and a late frame.
const GEOMETRIES: [(u32, u32); 3] = [(96, 64), (160, 96), (288, 160)];
const SEEDS: [u64; 2] = [1, 7];
const FRAME_INDICES: [u32; 5] = [0, 1, 5, 25, 80];

struct Golden {
    name: String,
    lines: String,
}

/// One vector per (geometry, seed): a text file of `index hash` lines
/// covering [`FRAME_INDICES`], where each hash folds all three planes.
fn golden_vectors() -> Vec<Golden> {
    let mut out = Vec::new();
    for &(w, h) in &GEOMETRIES {
        for &seed in &SEEDS {
            let screen = ScreenContent::new(Resolution::new(w, h), seed);
            let mut lines = String::new();
            for &i in &FRAME_INDICES {
                let f = screen.frame(i);
                let mut hash = fnv1a64(f.y().data());
                hash ^= fnv1a64(f.cb().data()).rotate_left(1);
                hash ^= fnv1a64(f.cr().data()).rotate_left(2);
                lines.push_str(&format!("{i} {hash:016x}\n"));
            }
            out.push(Golden {
                name: format!("screen--{w}x{h}--seed{seed}"),
                lines,
            });
        }
    }
    out
}

#[test]
fn checked_in_hashes_match_the_generator() {
    let dir = corpus_dir();
    if std::env::var("HDVB_WRITE_GOLDEN").is_ok() {
        std::fs::create_dir_all(&dir).expect("create corpus dir");
        for g in golden_vectors() {
            std::fs::write(dir.join(format!("{}.txt", g.name)), &g.lines)
                .expect("write golden hashes");
        }
    }
    let vectors = golden_vectors();
    for g in &vectors {
        let path = dir.join(format!("{}.txt", g.name));
        let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{} missing ({e}); regenerate with HDVB_WRITE_GOLDEN=1",
                g.name
            )
        });
        assert_eq!(
            on_disk, g.lines,
            "{} drifted from the generator; regenerate with HDVB_WRITE_GOLDEN=1",
            g.name
        );
    }
    // No stray files — the corpus is exactly the generator's grid.
    let mut stems: Vec<String> = std::fs::read_dir(&dir)
        .expect("corpus dir readable")
        .filter_map(|e| {
            let p = e.expect("dir entry").path();
            (p.extension().is_some_and(|x| x == "txt"))
                .then(|| p.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    stems.sort();
    let mut expected: Vec<String> = vectors.iter().map(|g| g.name.clone()).collect();
    expected.sort();
    assert_eq!(stems, expected);
}

#[test]
fn hashes_are_stable_within_a_process() {
    // The generator is a pure function of (resolution, seed, index):
    // rendering the same frame twice must hash identically.
    let screen = ScreenContent::new(Resolution::new(96, 64), 3);
    for i in [0u32, 4, 31] {
        assert_eq!(
            fnv1a64(screen.frame(i).y().data()),
            fnv1a64(screen.frame(i).y().data()),
            "frame {i} is not pure"
        );
    }
}
