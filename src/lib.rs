//! HD-VideoBench — a benchmark for evaluating high definition digital
//! video applications.
//!
//! This facade crate re-exports every workspace crate under one roof so
//! downstream users can depend on a single package:
//!
//! ```
//! use hd_videobench::frame::{Frame, Resolution};
//!
//! let f = Frame::new(Resolution::DVD_576.width(), Resolution::DVD_576.height());
//! assert_eq!(f.width(), 720);
//! ```
//!
//! See the README for the benchmark methodology and `DESIGN.md` for the
//! system inventory.

#![warn(missing_docs)]

pub use hdvb_bits as bits;
pub use hdvb_core as bench;
pub use hdvb_dsp as dsp;
pub use hdvb_frame as frame;
pub use hdvb_fuzz as fuzz;
pub use hdvb_h264 as h264;
pub use hdvb_me as me;
pub use hdvb_mj2k as mj2k;
pub use hdvb_mpeg2 as mpeg2;
pub use hdvb_mpeg4 as mpeg4;
pub use hdvb_net as net;
pub use hdvb_par as par;
pub use hdvb_seq as seq;
pub use hdvb_serve as serve;
pub use hdvb_trace as trace;
