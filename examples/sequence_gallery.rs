//! Sequence gallery: renders each HD-VideoBench input sequence
//! (paper Table III) and prints the content statistics that justify the
//! selection — spatial detail, temporal predictability and colour
//! character. Optionally writes each clip to a `.y4m` file for viewing.
//!
//! Run with: `cargo run --release --example sequence_gallery [-- --write]`

use hd_videobench::frame::{Resolution, Y4mWriter};
use hd_videobench::seq::{Sequence, SequenceId};
use std::fs::File;
use std::io::BufWriter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let write_files = std::env::args().any(|a| a == "--write");
    let resolution = Resolution::new(320, 256);
    let frames = 25;

    println!("HD-VideoBench input sequences at {resolution}, {frames} frames\n");
    println!(
        "{:<16} {:>10} {:>12} {:>10} {:>10}",
        "sequence", "mean luma", "spatial det.", "temp. diff", "mean cb"
    );

    for id in SequenceId::ALL {
        let seq = Sequence::new(id, resolution);

        // Spatial detail: mean horizontal gradient of frame 0.
        let f0 = seq.frame(0);
        let (w, h) = (f0.width(), f0.height());
        let mut grad = 0u64;
        for y in 0..h {
            for x in 0..w - 1 {
                grad += u64::from(f0.y().get(x, y).abs_diff(f0.y().get(x + 1, y)));
            }
        }
        let spatial = grad as f64 / ((w - 1) * h) as f64;

        // Temporal predictability: mean |frame(t) - frame(t+1)|.
        let mut temporal = 0.0;
        for t in 0..4 {
            let a = seq.frame(t);
            let b = seq.frame(t + 1);
            temporal += a.y().sad(b.y()) as f64 / (w * h) as f64 / 4.0;
        }

        let mean_luma =
            f0.y().data().iter().map(|&v| f64::from(v)).sum::<f64>() / f0.y().data().len() as f64;
        let mean_cb =
            f0.cb().data().iter().map(|&v| f64::from(v)).sum::<f64>() / f0.cb().data().len() as f64;

        println!(
            "{:<16} {:>10.1} {:>12.2} {:>10.2} {:>10.1}",
            id.name(),
            mean_luma,
            spatial,
            temporal,
            mean_cb
        );

        if write_files {
            let path = format!("{}_{}x{}.y4m", id.name(), w, h);
            let mut writer = Y4mWriter::new(
                BufWriter::new(File::create(&path)?),
                resolution,
                seq.format().frame_rate,
            );
            for i in 0..frames {
                writer.write_frame(&seq.frame(i))?;
            }
            writer.into_inner()?;
            println!("    -> wrote {path}");
        }
    }

    println!(
        "\nNote how riverbed has by far the largest temporal difference — the\n\
         property the paper summarises as \"very hard to code\" — while\n\
         blue_sky pairs high spatial contrast with smooth rotational motion."
    );
    Ok(())
}
