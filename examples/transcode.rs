//! Transcoding example: decode an MPEG-2-class stream and re-encode it
//! with the H.264-class codec — the desktop transcoding workload the
//! paper cites as a core use of these applications (MEncoder,
//! GordianKnot). Reports the bitrate saved and the generation loss.
//!
//! Run with: `cargo run --release --example transcode`

use hd_videobench::bench::{create_decoder, create_encoder, CodecId, CodingOptions, Packet};
use hd_videobench::frame::{Frame, Resolution, SequencePsnr};
use hd_videobench::seq::{Sequence, SequenceId};

fn encode(
    codec: CodecId,
    frames: &[Frame],
    resolution: Resolution,
    options: &CodingOptions,
) -> Result<Vec<Packet>, Box<dyn std::error::Error>> {
    let mut enc = create_encoder(codec, resolution, options)?;
    let mut packets = Vec::new();
    for f in frames {
        packets.extend(enc.encode_frame(f)?);
    }
    packets.extend(enc.finish()?);
    Ok(packets)
}

fn decode(codec: CodecId, packets: &[Packet]) -> Result<Vec<Frame>, Box<dyn std::error::Error>> {
    let mut dec = create_decoder(codec, hd_videobench::dsp::SimdLevel::detect());
    let mut out = Vec::new();
    for p in packets {
        out.extend(dec.decode_packet(&p.data)?);
    }
    out.extend(dec.finish());
    Ok(out)
}

fn kbits(packets: &[Packet]) -> f64 {
    packets.iter().map(Packet::bits).sum::<u64>() as f64 / 1000.0
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let resolution = Resolution::new(320, 256);
    let frames_n = 15;
    let options = CodingOptions::default();
    let seq = Sequence::new(SequenceId::PedestrianArea, resolution);
    let originals: Vec<Frame> = (0..frames_n).map(|i| seq.frame(i)).collect();

    // Stage 1: "broadcast" MPEG-2 encode.
    let mpeg2_stream = encode(CodecId::Mpeg2, &originals, resolution, &options)?;
    let mpeg2_frames = decode(CodecId::Mpeg2, &mpeg2_stream)?;
    let mut first_gen = SequencePsnr::new();
    for (o, d) in originals.iter().zip(&mpeg2_frames) {
        first_gen.add(o, d);
    }

    // Stage 2: transcode the *decoded* MPEG-2 output to H.264.
    let h264_stream = encode(CodecId::H264, &mpeg2_frames, resolution, &options)?;
    let h264_frames = decode(CodecId::H264, &h264_stream)?;
    let mut second_gen = SequencePsnr::new();
    for (o, d) in originals.iter().zip(&h264_frames) {
        second_gen.add(o, d);
    }

    println!("transcode {} ({resolution}, {frames_n} frames)", seq.id());
    println!(
        "  mpeg2 source stream : {:>8.0} kbit  ({:.2} dB vs camera original)",
        kbits(&mpeg2_stream),
        first_gen.y_psnr()
    );
    println!(
        "  h264 transcoded     : {:>8.0} kbit  ({:.2} dB vs camera original)",
        kbits(&h264_stream),
        second_gen.y_psnr()
    );
    println!(
        "  bitrate saved       : {:>7.1}%   generation loss: {:.2} dB",
        100.0 * (1.0 - kbits(&h264_stream) / kbits(&mpeg2_stream)),
        first_gen.y_psnr() - second_gen.y_psnr()
    );
    Ok(())
}
