//! Mini Figure 1: measures encode and decode throughput for all three
//! codecs at both SIMD levels on one clip, printing the speed-up table
//! the paper's Figure 1 visualises (scalar vs SIMD builds).
//!
//! Run with: `cargo run --release --example simd_speedup`

use hd_videobench::bench::{measure_figure1_row, CodecId, CodingOptions};
use hd_videobench::dsp::SimdLevel;
use hd_videobench::frame::Resolution;
use hd_videobench::seq::{Sequence, SequenceId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let resolution = Resolution::new(320, 256);
    let frames = 12;
    let seq = Sequence::new(SequenceId::BlueSky, resolution);

    println!(
        "SIMD speed-ups on {} at {resolution}, {frames} frames (paper Figure 1 axis)\n",
        seq.id()
    );
    println!(
        "{:<7} {:>11} {:>11} {:>8} | {:>11} {:>11} {:>8}",
        "codec", "enc scalar", "enc simd", "speedup", "dec scalar", "dec simd", "speedup"
    );
    for codec in CodecId::ALL {
        let scalar = measure_figure1_row(
            codec,
            seq,
            frames,
            &CodingOptions::default().with_simd(SimdLevel::Scalar),
        )?;
        let simd = measure_figure1_row(
            codec,
            seq,
            frames,
            &CodingOptions::default().with_simd(SimdLevel::Sse2),
        )?;
        println!(
            "{:<7} {:>9.2}/s {:>9.2}/s {:>7.2}x | {:>9.2}/s {:>9.2}/s {:>7.2}x",
            codec.name(),
            scalar.encode_fps,
            simd.encode_fps,
            simd.encode_fps / scalar.encode_fps,
            scalar.decode_fps,
            simd.decode_fps,
            simd.decode_fps / scalar.decode_fps,
        );
    }
    println!(
        "\nThe paper reports encode speed-ups of ~2.3-2.5x and decode speed-ups\n\
         of ~1.5-2.1x for the same scalar-vs-SIMD comparison on real codecs."
    );
    Ok(())
}
