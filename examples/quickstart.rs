//! Quickstart: encode one synthetic HD-VideoBench sequence with all
//! three codecs at the paper's operating point and print the
//! rate-distortion comparison.
//!
//! Run with: `cargo run --release --example quickstart`

use hd_videobench::bench::{measure_rd_point, CodecId, CodingOptions};
use hd_videobench::frame::Resolution;
use hd_videobench::seq::{Sequence, SequenceId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A reduced-size run so the quickstart finishes in seconds; the full
    // benchmark (720x576 and up, 100 frames) lives in the `hdvb` CLI.
    let resolution = Resolution::new(320, 256);
    let frames = 10;
    let options = CodingOptions::default(); // vqscale 5 / H.264 QP 26
    let seq = Sequence::new(SequenceId::RushHour, resolution);

    println!(
        "sequence: {} at {}x{}, {frames} frames, qscale {} (H.264 QP {})",
        seq.id(),
        resolution.width(),
        resolution.height(),
        options.mpeg_qscale,
        options.h264_qp()
    );
    println!(
        "{:<8} {:>10} {:>14}",
        "codec", "psnr (dB)", "bitrate (kbps)"
    );
    for codec in CodecId::ALL {
        let rd = measure_rd_point(codec, seq, frames, &options)?;
        println!(
            "{:<8} {:>10.2} {:>14.0}",
            codec.name(),
            rd.psnr_y,
            rd.bitrate_kbps
        );
    }
    Ok(())
}
