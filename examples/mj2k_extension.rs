//! The paper's announced future-work codec (Section VII): a
//! Motion-JPEG-2000-class intra-only wavelet codec. Demonstrates its
//! defining properties against the inter-predictive codecs: lossless
//! operation at qscale 1, frame independence, and the very different
//! rate-distortion trade-off of intra-only coding.
//!
//! Run with: `cargo run --release --example mj2k_extension`

use hd_videobench::bench::{measure_rd_point, CodecId, CodingOptions};
use hd_videobench::frame::{Resolution, SequencePsnr};
use hd_videobench::mj2k::{Mj2kDecoder, Mj2kEncoder};
use hd_videobench::seq::{Sequence, SequenceId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let resolution = Resolution::new(320, 256);
    let frames = 10;
    let seq = Sequence::new(SequenceId::PedestrianArea, resolution);
    let (w, h) = (resolution.width(), resolution.height());

    // Lossless mode: the 5/3 reversible wavelet reconstructs exactly.
    let mut enc = Mj2kEncoder::new(w, h, 1)?;
    let mut dec = Mj2kDecoder::new();
    let f0 = seq.frame(0);
    let lossless = enc.encode(&f0)?;
    assert_eq!(dec.decode(&lossless)?, f0);
    println!(
        "lossless frame: {} -> {} bytes ({:.2}x compression, bit-exact)",
        f0.sample_count(),
        lossless.len(),
        f0.sample_count() as f64 / lossless.len() as f64
    );

    // Lossy mode at a quality comparable to the benchmark's operating
    // point, measured over the clip.
    let mut enc = Mj2kEncoder::new(w, h, 16)?;
    let mut bits = 0u64;
    let mut acc = SequencePsnr::new();
    for i in 0..frames {
        let f = seq.frame(i);
        let packet = enc.encode(&f)?;
        bits += packet.len() as u64 * 8;
        acc.add(&f, &dec.decode(&packet)?);
    }
    let mj2k_kbps = bits as f64 * 25.0 / f64::from(frames) / 1000.0;
    println!(
        "mj2k   (intra-only, qscale 16): {:>7.2} dB {:>8.0} kbit/s",
        acc.y_psnr(),
        mj2k_kbps
    );

    // The inter-predictive codecs at the paper's operating point.
    for codec in CodecId::ALL {
        let rd = measure_rd_point(codec, seq, frames, &CodingOptions::default())?;
        println!(
            "{:<6} (inter, paper options)  : {:>7.2} dB {:>8.0} kbit/s",
            codec.name(),
            rd.psnr_y,
            rd.bitrate_kbps
        );
    }
    println!(
        "\nIntra-only coding pays a large bitrate premium on predictable\n\
         content — the reason Motion JPEG 2000 serves editing and digital\n\
         cinema rather than distribution."
    );
    Ok(())
}
