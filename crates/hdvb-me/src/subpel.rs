//! Generic sub-pel refinement.
//!
//! Each codec interpolates differently (bilinear half-pel for MPEG-2,
//! quarter-pel for MPEG-4, 6-tap quarter-pel for H.264), so the ME crate
//! exposes refinement as a pattern loop over a caller-supplied cost
//! closure; the codecs plug in their own interpolation + SAD/SATD.

use crate::Mv;

/// One refinement stage: the sub-pel step size being tested.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubpelStep {
    /// ±1 in half-pel units around a full-pel centre.
    Half,
    /// ±1 in quarter-pel units around a half-pel centre.
    Quarter,
}

/// Refines `center` (in the target sub-pel units) by testing the 8
/// neighbours at `step` distance, returning the best vector and cost.
///
/// `cost` receives candidate vectors in the same units as `center` and
/// must return the full rate-distortion cost; `initial_cost` is the
/// already-known cost of `center` so it is not re-evaluated.
///
/// # Example
///
/// ```
/// use hdvb_me::{subpel_refine, Mv, SubpelStep};
///
/// // A synthetic cost bowl with its minimum at (3, -1).
/// let cost = |mv: Mv| {
///     let dx = i32::from(mv.x) - 3;
///     let dy = i32::from(mv.y) + 1;
///     (dx * dx + dy * dy) as u32
/// };
/// let (best, c) = subpel_refine(Mv::new(2, 0), cost(Mv::new(2, 0)), SubpelStep::Half, cost);
/// assert_eq!(best, Mv::new(3, -1));
/// assert_eq!(c, 0);
/// ```
pub fn subpel_refine<F>(center: Mv, initial_cost: u32, step: SubpelStep, mut cost: F) -> (Mv, u32)
where
    F: FnMut(Mv) -> u32,
{
    let _ = step; // step distance is always 1 in the caller's units
    let _me = hdvb_trace::zone!(hdvb_trace::Stage::MotionEstimation);
    let mut best = center;
    let mut best_cost = initial_cost;
    for dy in -1i16..=1 {
        for dx in -1i16..=1 {
            if dx == 0 && dy == 0 {
                continue;
            }
            let mv = center + Mv::new(dx, dy);
            let c = cost(mv);
            if c < best_cost {
                best = mv;
                best_cost = c;
            }
        }
    }
    (best, best_cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_center_when_already_best() {
        let calls = std::cell::Cell::new(0u32);
        let (best, c) = subpel_refine(Mv::ZERO, 5, SubpelStep::Half, |_| {
            calls.set(calls.get() + 1);
            10
        });
        assert_eq!(best, Mv::ZERO);
        assert_eq!(c, 5);
        assert_eq!(calls.get(), 8);
    }

    #[test]
    fn moves_to_cheaper_neighbour() {
        let cost = |mv: Mv| if mv == Mv::new(1, 1) { 1 } else { 9 };
        let (best, c) = subpel_refine(Mv::ZERO, 9, SubpelStep::Quarter, cost);
        assert_eq!(best, Mv::new(1, 1));
        assert_eq!(c, 1);
    }

    #[test]
    fn ties_prefer_center_then_scan_order() {
        // Equal costs everywhere: strict < keeps the centre.
        let (best, _) = subpel_refine(Mv::new(4, 4), 7, SubpelStep::Half, |_| 7);
        assert_eq!(best, Mv::new(4, 4));
    }
}
