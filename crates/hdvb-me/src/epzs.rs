//! Enhanced Predictive Zonal Search (Tourapis, 2002) — the motion search
//! the paper assigns to the MPEG-2 and MPEG-4 encoders.
//!
//! EPZS beats plain pattern searches by (1) testing a rich predictor set
//! (spatial neighbours, the median, the temporally collocated vector and
//! zero), (2) stopping early when a predictor is already good enough, and
//! (3) otherwise descending with a small pattern from the best predictor.

use crate::search::{BlockRef, Evaluator, SearchParams, SearchResult};
use crate::{median3, Mv};
use hdvb_dsp::Dsp;
use hdvb_frame::PaddedPlane;

/// Per-frame storage of the motion vectors chosen for each block, used as
/// temporal predictors for the next frame.
#[derive(Clone, Debug)]
pub struct MvField {
    mbs_x: usize,
    mbs_y: usize,
    mvs: Vec<Mv>,
}

impl MvField {
    /// Creates a zeroed field for a `mbs_x`×`mbs_y` block grid.
    pub fn new(mbs_x: usize, mbs_y: usize) -> Self {
        MvField {
            mbs_x,
            mbs_y,
            mvs: vec![Mv::ZERO; mbs_x.max(1) * mbs_y.max(1)],
        }
    }

    /// Grid width in blocks.
    pub fn mbs_x(&self) -> usize {
        self.mbs_x
    }

    /// Grid height in blocks.
    pub fn mbs_y(&self) -> usize {
        self.mbs_y
    }

    /// The vector stored for block `(bx, by)`; out-of-grid queries return
    /// zero (frame borders).
    pub fn get(&self, bx: isize, by: isize) -> Mv {
        if bx < 0 || by < 0 || bx as usize >= self.mbs_x || by as usize >= self.mbs_y {
            Mv::ZERO
        } else {
            self.mvs[by as usize * self.mbs_x + bx as usize]
        }
    }

    /// Records the vector chosen for block `(bx, by)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the grid.
    pub fn set(&mut self, bx: usize, by: usize, mv: Mv) {
        assert!(
            bx < self.mbs_x && by < self.mbs_y,
            "mv field index out of range"
        );
        self.mvs[by * self.mbs_x + bx] = mv;
    }

    /// Resets every vector to zero (new reference epoch).
    pub fn clear(&mut self) {
        self.mvs.fill(Mv::ZERO);
    }
}

/// The EPZS predictor set for one block.
#[derive(Clone, Copy, Debug, Default)]
pub struct Predictors {
    /// Vector of the block to the left (already decided this frame).
    pub left: Mv,
    /// Vector of the block above.
    pub top: Mv,
    /// Vector of the block above-right.
    pub top_right: Mv,
    /// Vector of the collocated block in the previous coded frame.
    pub collocated: Mv,
}

impl Predictors {
    /// Gathers predictors from the current frame's partially-filled field
    /// and the previous frame's field.
    pub fn gather(current: &MvField, previous: &MvField, bx: usize, by: usize) -> Self {
        let (bx, by) = (bx as isize, by as isize);
        Predictors {
            left: current.get(bx - 1, by),
            top: current.get(bx, by - 1),
            top_right: current.get(bx + 1, by - 1),
            collocated: previous.get(bx, by),
        }
    }

    /// The median spatial predictor (also the vector against which MV
    /// rate is usually coded).
    pub fn median(&self) -> Mv {
        median3(self.left, self.top, self.top_right)
    }
}

/// Early-termination thresholds, in SAD per block. The defaults follow
/// the spirit of Tourapis' adaptive thresholds, scaled for 16×16 blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpzsThresholds {
    /// Accept immediately if a predictor's SAD falls below this.
    pub t_good: u32,
    /// Skip pattern refinement if the best predictor is below this.
    pub t_skip_refine: u32,
}

impl Default for EpzsThresholds {
    fn default() -> Self {
        EpzsThresholds {
            t_good: 256,
            t_skip_refine: 768,
        }
    }
}

const SMALL_DIAMOND: [(i16, i16); 4] = [(0, -1), (1, 0), (0, 1), (-1, 0)];

/// Runs EPZS for one block.
///
/// `predictors` should be gathered with [`Predictors::gather`];
/// `params.pred` is used for the rate term (typically the median).
pub fn epzs_search(
    dsp: &Dsp,
    block: BlockRef<'_>,
    refp: &PaddedPlane,
    predictors: &Predictors,
    thresholds: &EpzsThresholds,
    params: &SearchParams,
) -> SearchResult {
    let _me = hdvb_trace::zone!(hdvb_trace::Stage::MotionEstimation);
    let mut ev = Evaluator::new(dsp, block, refp, params);
    let scale = (block.w * block.h) as u32;
    let t_good = thresholds.t_good * scale / 256;
    let t_skip = thresholds.t_skip_refine * scale / 256;

    // Phase 1: evaluate the predictor set (deduplicated).
    let mut candidates = [
        predictors.median(),
        Mv::ZERO,
        predictors.left,
        predictors.top,
        predictors.top_right,
        predictors.collocated,
    ];
    for c in &mut candidates {
        *c = c.clamped(ev.min.x, ev.max.x, ev.min.y, ev.max.y);
    }
    let mut best = candidates[0];
    let (mut best_cost, mut best_sad) = ev.cost(best);
    if best_sad < t_good {
        return SearchResult {
            mv: best,
            cost: best_cost,
            sad: best_sad,
            evaluations: ev.evaluations,
        };
    }
    for i in 1..candidates.len() {
        let mv = candidates[i];
        if candidates[..i].contains(&mv) {
            continue;
        }
        let (cost, sad) = ev.cost(mv);
        if cost < best_cost {
            best = mv;
            best_cost = cost;
            best_sad = sad;
            if sad < t_good {
                return SearchResult {
                    mv: best,
                    cost: best_cost,
                    sad: best_sad,
                    evaluations: ev.evaluations,
                };
            }
        }
    }

    // Phase 2: small-diamond descent from the best predictor unless it is
    // already adequate.
    if best_sad >= t_skip {
        let mut moved = true;
        let mut steps = 0;
        while moved && steps < 64 {
            moved = false;
            steps += 1;
            let center = best;
            for &(dx, dy) in &SMALL_DIAMOND {
                let mv = center + Mv::new(dx, dy);
                if !ev.in_bounds(mv) {
                    continue;
                }
                let (cost, sad) = ev.cost(mv);
                if cost < best_cost {
                    best = mv;
                    best_cost = cost;
                    best_sad = sad;
                    moved = true;
                }
            }
        }
    }
    SearchResult {
        mv: best,
        cost: best_cost,
        sad: best_sad,
        evaluations: ev.evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::full_search;
    use hdvb_frame::Plane;

    fn shifted_pair(dx: i32, dy: i32) -> (Plane, PaddedPlane) {
        let w = 96;
        let h = 80;
        let mut reference = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                // Smooth, unimodal-SAD content: fast searches assume a
                // cost surface that descends toward the true motion.
                let fx = x as f64;
                let fy = y as f64;
                let v = 128.0
                    + 60.0 * (fx * 0.18 + fy * 0.07).sin()
                    + 50.0 * (fx * 0.05 - fy * 0.15).cos();
                reference.set(x, y, v.clamp(0.0, 255.0) as u8);
            }
        }
        let mut cur = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let sx = (x as i32 - dx).clamp(0, w as i32 - 1) as usize;
                let sy = (y as i32 - dy).clamp(0, h as i32 - 1) as usize;
                cur.set(x, y, reference.get(sx, sy));
            }
        }
        (cur, PaddedPlane::from_plane(&reference, 32))
    }

    #[test]
    fn finds_global_motion_with_zero_predictors() {
        let (cur, refp) = shifted_pair(4, -3);
        let block = BlockRef {
            plane: &cur,
            x: 32,
            y: 32,
            w: 16,
            h: 16,
        };
        let r = epzs_search(
            &Dsp::default(),
            block,
            &refp,
            &Predictors::default(),
            &EpzsThresholds::default(),
            &SearchParams::new(16, 2),
        );
        assert_eq!(r.mv, Mv::new(-4, 3));
    }

    #[test]
    fn good_predictor_terminates_early() {
        let (cur, refp) = shifted_pair(6, 2);
        let block = BlockRef {
            plane: &cur,
            x: 32,
            y: 32,
            w: 16,
            h: 16,
        };
        let preds = Predictors {
            left: Mv::new(-6, -2),
            ..Predictors::default()
        };
        let with_pred = epzs_search(
            &Dsp::default(),
            block,
            &refp,
            &preds,
            &EpzsThresholds::default(),
            &SearchParams::new(16, 2).with_pred(preds.median()),
        );
        let without = epzs_search(
            &Dsp::default(),
            block,
            &refp,
            &Predictors::default(),
            &EpzsThresholds::default(),
            &SearchParams::new(16, 2),
        );
        assert_eq!(with_pred.mv, Mv::new(-6, -2));
        assert!(
            with_pred.evaluations <= without.evaluations,
            "{} > {}",
            with_pred.evaluations,
            without.evaluations
        );
    }

    #[test]
    fn epzs_is_much_cheaper_than_full_search_and_close_in_quality() {
        let (cur, refp) = shifted_pair(3, 5);
        let dsp = Dsp::default();
        let params = SearchParams::new(24, 2);
        let mut total_full = 0u64;
        let mut total_epzs = 0u64;
        for by in 0..4 {
            for bx in 0..5 {
                let block = BlockRef {
                    plane: &cur,
                    x: bx * 16,
                    y: by * 16,
                    w: 16,
                    h: 16,
                };
                let f = full_search(&dsp, block, &refp, Mv::ZERO, &params);
                let e = epzs_search(
                    &dsp,
                    block,
                    &refp,
                    &Predictors::default(),
                    &EpzsThresholds::default(),
                    &params,
                );
                total_full += u64::from(f.evaluations);
                total_epzs += u64::from(e.evaluations);
                // EPZS SAD within 2x of the exhaustive optimum (here both
                // should find the exact shift for interior blocks).
                assert!(e.sad <= f.sad.saturating_mul(2) + 64);
            }
        }
        assert!(total_epzs * 10 < total_full, "{total_epzs} vs {total_full}");
    }

    #[test]
    fn mv_field_roundtrip_and_border_behaviour() {
        let mut f = MvField::new(3, 2);
        f.set(2, 1, Mv::new(7, -7));
        assert_eq!(f.get(2, 1), Mv::new(7, -7));
        assert_eq!(f.get(-1, 0), Mv::ZERO);
        assert_eq!(f.get(3, 0), Mv::ZERO);
        assert_eq!(f.get(0, 5), Mv::ZERO);
        f.clear();
        assert_eq!(f.get(2, 1), Mv::ZERO);
    }

    #[test]
    fn predictors_gather_uses_both_fields() {
        let mut cur = MvField::new(4, 4);
        let mut prev = MvField::new(4, 4);
        cur.set(0, 1, Mv::new(1, 1)); // left of (1,1)
        cur.set(1, 0, Mv::new(2, 2)); // top of (1,1)
        cur.set(2, 0, Mv::new(3, 3)); // top-right of (1,1)
        prev.set(1, 1, Mv::new(4, 4));
        let p = Predictors::gather(&cur, &prev, 1, 1);
        assert_eq!(p.left, Mv::new(1, 1));
        assert_eq!(p.top, Mv::new(2, 2));
        assert_eq!(p.top_right, Mv::new(3, 3));
        assert_eq!(p.collocated, Mv::new(4, 4));
        assert_eq!(p.median(), Mv::new(2, 2));
    }
}
