use crate::{mv_bits, Mv};
use hdvb_dsp::{Dsp, SadFn};
use hdvb_frame::{PaddedPlane, Plane};

/// The current-frame block a motion search tries to match.
#[derive(Clone, Copy, Debug)]
pub struct BlockRef<'a> {
    /// Source plane (usually the luma plane being encoded).
    pub plane: &'a Plane,
    /// Block left edge in pixels.
    pub x: usize,
    /// Block top edge in pixels.
    pub y: usize,
    /// Block width (4..=16 in the benchmark codecs).
    pub w: usize,
    /// Block height.
    pub h: usize,
}

/// Search configuration: maximum displacement and the Lagrange
/// multiplier weighting motion-vector rate against distortion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchParams {
    /// Maximum displacement in full pels (the paper's x264 command uses
    /// `--merange 24`).
    pub range: u16,
    /// λ in `J = SAD + λ·R(mv − pred)`.
    pub lambda: u32,
    /// Motion-vector predictor; the rate term is measured against it and
    /// the search starts from it.
    pub pred: Mv,
}

impl SearchParams {
    /// Creates parameters with the given range and λ, predicting from the
    /// zero vector.
    pub fn new(range: u16, lambda: u32) -> Self {
        SearchParams {
            range,
            lambda,
            pred: Mv::ZERO,
        }
    }

    /// Sets the motion-vector predictor.
    pub fn with_pred(mut self, pred: Mv) -> Self {
        self.pred = pred;
        self
    }
}

/// Outcome of a motion search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchResult {
    /// Best full-pel motion vector found.
    pub mv: Mv,
    /// Its total cost `SAD + λ·R`.
    pub cost: u32,
    /// Its raw SAD (no rate term).
    pub sad: u32,
    /// Number of SAD evaluations performed (exposed for the
    /// motion-search ablation bench).
    pub evaluations: u32,
}

/// Shared candidate evaluator: clamps displacement bounds once, then
/// scores candidates.
///
/// The SAD kernel pointer is captured from the `Dsp`'s resolved kernel
/// table at construction, so the per-candidate loop pays one indirect
/// call with no dispatch lookup.
pub(crate) struct Evaluator<'a> {
    sad: SadFn,
    cur: &'a [u8],
    cur_stride: usize,
    refp: &'a PaddedPlane,
    block: BlockRef<'a>,
    lambda: u32,
    pred: Mv,
    pub(crate) min: Mv,
    pub(crate) max: Mv,
    pub(crate) evaluations: u32,
}

impl<'a> Evaluator<'a> {
    pub(crate) fn new(
        dsp: &'a Dsp,
        block: BlockRef<'a>,
        refp: &'a PaddedPlane,
        params: &SearchParams,
    ) -> Self {
        assert!(
            block.x + block.w <= block.plane.width() && block.y + block.h <= block.plane.height(),
            "block exceeds plane bounds"
        );
        // Keep slack inside the padding for sub-pel refinement around
        // the winner (±3 quarter-pel) plus the 6-tap filter support
        // (2 before / 3 after): full-pel candidates stay at least 8
        // samples away from the padded border.
        let pad = refp.pad() as i32 - 8;
        assert!(pad >= 0, "reference padding too small for motion search");
        let min_x = (-(block.x as i32) - pad).max(-i32::from(params.range));
        let max_x =
            ((refp.width() as i32 + pad) - (block.x + block.w) as i32).min(i32::from(params.range));
        let min_y = (-(block.y as i32) - pad).max(-i32::from(params.range));
        let max_y = ((refp.height() as i32 + pad) - (block.y + block.h) as i32)
            .min(i32::from(params.range));
        Evaluator {
            sad: dsp.sad_fn(),
            cur: &block.plane.data()[block.y * block.plane.stride() + block.x..],
            cur_stride: block.plane.stride(),
            refp,
            block,
            lambda: params.lambda,
            pred: params.pred,
            min: Mv::new(min_x.min(0) as i16, min_y.min(0) as i16),
            max: Mv::new(max_x.max(0) as i16, max_y.max(0) as i16),
            evaluations: 0,
        }
    }

    pub(crate) fn in_bounds(&self, mv: Mv) -> bool {
        mv.x >= self.min.x && mv.x <= self.max.x && mv.y >= self.min.y && mv.y <= self.max.y
    }

    pub(crate) fn sad(&mut self, mv: Mv) -> u32 {
        self.evaluations += 1;
        let rx = self.block.x as isize + isize::from(mv.x);
        let ry = self.block.y as isize + isize::from(mv.y);
        let refrow = self.refp.row_from(rx, ry);
        (self.sad)(
            self.cur,
            self.cur_stride,
            refrow,
            self.refp.stride(),
            self.block.w,
            self.block.h,
        )
    }

    pub(crate) fn cost(&mut self, mv: Mv) -> (u32, u32) {
        let sad = self.sad(mv);
        (sad + self.lambda * mv_bits(mv, self.pred), sad)
    }
}

/// Exhaustive search over the full `±range` window. The quality
/// reference for the ablation bench; far too slow for the HD encoders
/// themselves.
pub fn full_search(
    dsp: &Dsp,
    block: BlockRef<'_>,
    refp: &PaddedPlane,
    start: Mv,
    params: &SearchParams,
) -> SearchResult {
    let mut ev = Evaluator::new(dsp, block, refp, params);
    let mut best = start.clamped(ev.min.x, ev.max.x, ev.min.y, ev.max.y);
    let (mut best_cost, mut best_sad) = ev.cost(best);
    for dy in ev.min.y..=ev.max.y {
        for dx in ev.min.x..=ev.max.x {
            let mv = Mv::new(dx, dy);
            if mv == best {
                continue;
            }
            let (cost, sad) = ev.cost(mv);
            if cost < best_cost {
                best = mv;
                best_cost = cost;
                best_sad = sad;
            }
        }
    }
    SearchResult {
        mv: best,
        cost: best_cost,
        sad: best_sad,
        evaluations: ev.evaluations,
    }
}

const LARGE_DIAMOND: [(i16, i16); 8] = [
    (0, -2),
    (1, -1),
    (2, 0),
    (1, 1),
    (0, 2),
    (-1, 1),
    (-2, 0),
    (-1, -1),
];
const SMALL_DIAMOND: [(i16, i16); 4] = [(0, -1), (1, 0), (0, 1), (-1, 0)];
const HEXAGON: [(i16, i16); 6] = [(-2, 0), (-1, -2), (1, -2), (2, 0), (1, 2), (-1, 2)];
const SQUARE8: [(i16, i16); 8] = [
    (-1, -1),
    (0, -1),
    (1, -1),
    (-1, 0),
    (1, 0),
    (-1, 1),
    (0, 1),
    (1, 1),
];

fn pattern_descent(
    ev: &mut Evaluator<'_>,
    start: Mv,
    pattern: &[(i16, i16)],
    refine: &[(i16, i16)],
) -> (Mv, u32, u32) {
    let mut best = start.clamped(ev.min.x, ev.max.x, ev.min.y, ev.max.y);
    let (mut best_cost, mut best_sad) = ev.cost(best);
    // Coarse pattern: move while any neighbour improves.
    let mut moved = true;
    let mut steps = 0u32;
    while moved && steps < 64 {
        moved = false;
        steps += 1;
        let center = best;
        for &(dx, dy) in pattern {
            let mv = center + Mv::new(dx, dy);
            if !ev.in_bounds(mv) {
                continue;
            }
            let (cost, sad) = ev.cost(mv);
            if cost < best_cost {
                best = mv;
                best_cost = cost;
                best_sad = sad;
                moved = true;
            }
        }
    }
    // Fine refinement around the coarse winner.
    let center = best;
    for &(dx, dy) in refine {
        let mv = center + Mv::new(dx, dy);
        if !ev.in_bounds(mv) {
            continue;
        }
        let (cost, sad) = ev.cost(mv);
        if cost < best_cost {
            best = mv;
            best_cost = cost;
            best_sad = sad;
        }
    }
    (best, best_cost, best_sad)
}

/// Diamond search (large diamond descent + small diamond refinement) —
/// the classic fast search included as an ablation baseline.
pub fn diamond_search(
    dsp: &Dsp,
    block: BlockRef<'_>,
    refp: &PaddedPlane,
    start: Mv,
    params: &SearchParams,
) -> SearchResult {
    let _me = hdvb_trace::zone!(hdvb_trace::Stage::MotionEstimation);
    let mut ev = Evaluator::new(dsp, block, refp, params);
    let (mv, cost, sad) = pattern_descent(&mut ev, start, &LARGE_DIAMOND, &SMALL_DIAMOND);
    SearchResult {
        mv,
        cost,
        sad,
        evaluations: ev.evaluations,
    }
}

/// Hexagon-based search (Zhu, Lin, Chau 2002) — the H.264 search used by
/// the benchmark per the paper's `x264 --me hex` command line. Ends with
/// the 8-point square refinement x264 uses.
pub fn hexagon_search(
    dsp: &Dsp,
    block: BlockRef<'_>,
    refp: &PaddedPlane,
    start: Mv,
    params: &SearchParams,
) -> SearchResult {
    let _me = hdvb_trace::zone!(hdvb_trace::Stage::MotionEstimation);
    let mut ev = Evaluator::new(dsp, block, refp, params);
    let (mv, cost, sad) = pattern_descent(&mut ev, start, &HEXAGON, &SQUARE8);
    SearchResult {
        mv,
        cost,
        sad,
        evaluations: ev.evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds (current, reference) planes where the current frame is the
    /// reference shifted by `(dx, dy)` pixels.
    fn shifted_pair(dx: i32, dy: i32) -> (Plane, PaddedPlane) {
        let w = 96;
        let h = 80;
        let mut reference = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                // Smooth, unimodal-SAD content: fast searches assume a
                // cost surface that descends toward the true motion.
                let fx = x as f64;
                let fy = y as f64;
                let v = 128.0
                    + 60.0 * (fx * 0.18 + fy * 0.07).sin()
                    + 50.0 * (fx * 0.05 - fy * 0.15).cos();
                reference.set(x, y, v.clamp(0.0, 255.0) as u8);
            }
        }
        let mut cur = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let sx = (x as i32 - dx).clamp(0, w as i32 - 1) as usize;
                let sy = (y as i32 - dy).clamp(0, h as i32 - 1) as usize;
                cur.set(x, y, reference.get(sx, sy));
            }
        }
        (cur, PaddedPlane::from_plane(&reference, 32))
    }

    fn run_all(dx: i32, dy: i32) {
        let (cur, refp) = shifted_pair(dx, dy);
        let block = BlockRef {
            plane: &cur,
            x: 32,
            y: 32,
            w: 16,
            h: 16,
        };
        let dsp = Dsp::default();
        let params = SearchParams::new(16, 2);
        let expect = Mv::new(-dx as i16, -dy as i16);
        let full = full_search(&dsp, block, &refp, Mv::ZERO, &params);
        assert_eq!(full.mv, expect, "full search");
        assert_eq!(full.sad, 0);
        let dia = diamond_search(&dsp, block, &refp, Mv::ZERO, &params);
        assert_eq!(dia.mv, expect, "diamond search");
        let hex = hexagon_search(&dsp, block, &refp, Mv::ZERO, &params);
        assert_eq!(hex.mv, expect, "hexagon search");
        // Fast searches must evaluate far fewer candidates.
        assert!(dia.evaluations < full.evaluations / 4);
        assert!(hex.evaluations < full.evaluations / 4);
    }

    #[test]
    fn finds_small_displacements() {
        run_all(0, 0);
        run_all(3, 1);
        run_all(-2, -4);
        run_all(5, -3);
    }

    #[test]
    fn full_search_respects_range() {
        let (cur, refp) = shifted_pair(12, 0);
        let block = BlockRef {
            plane: &cur,
            x: 32,
            y: 32,
            w: 16,
            h: 16,
        };
        let r = full_search(
            &Dsp::default(),
            block,
            &refp,
            Mv::ZERO,
            &SearchParams::new(4, 2),
        );
        assert!(r.mv.x.abs() <= 4 && r.mv.y.abs() <= 4);
    }

    #[test]
    fn block_at_frame_edge_is_safe() {
        let (cur, refp) = shifted_pair(2, 2);
        let dsp = Dsp::default();
        let params = SearchParams::new(24, 2);
        for (x, y) in [(0, 0), (80, 0), (0, 64), (80, 64)] {
            let block = BlockRef {
                plane: &cur,
                x,
                y,
                w: 16,
                h: 16,
            };
            // Must not panic and must return an in-range vector.
            let r = hexagon_search(&dsp, block, &refp, Mv::ZERO, &params);
            assert!(r.mv.x.abs() <= 24 && r.mv.y.abs() <= 24);
        }
    }

    #[test]
    fn oversized_range_is_clamped_to_the_padding() {
        // A search range far beyond the reference padding must clamp,
        // leaving room for sub-pel refinement and 6-tap filter support.
        let (cur, refp) = shifted_pair(0, 0);
        let block = BlockRef {
            plane: &cur,
            x: 80,
            y: 64,
            w: 16,
            h: 16,
        };
        let r = full_search(
            &Dsp::default(),
            block,
            &refp,
            Mv::ZERO,
            &SearchParams::new(500, 1),
        );
        let pad = refp.pad() as i16;
        assert!(r.mv.x.abs() <= pad - 8 && r.mv.y.abs() <= pad - 8);
    }

    #[test]
    fn lambda_pulls_toward_predictor() {
        let (cur, refp) = shifted_pair(0, 0);
        let block = BlockRef {
            plane: &cur,
            x: 32,
            y: 32,
            w: 16,
            h: 16,
        };
        let dsp = Dsp::default();
        // A huge lambda with a nonzero predictor: the search should still
        // land on the SAD-zero vector when it is reachable, because the
        // predictor costs nothing there... but with pred=(2,0) the zero mv
        // costs 2 bits extra. With lambda dominating, the winner must be
        // the predictor itself.
        let params = SearchParams::new(8, 100_000).with_pred(Mv::new(2, 0));
        let r = full_search(&dsp, block, &refp, Mv::ZERO, &params);
        assert_eq!(r.mv, Mv::new(2, 0));
    }

    #[test]
    fn evaluation_counts_are_reported() {
        let (cur, refp) = shifted_pair(1, 1);
        let block = BlockRef {
            plane: &cur,
            x: 16,
            y: 16,
            w: 16,
            h: 16,
        };
        let r = full_search(
            &Dsp::default(),
            block,
            &refp,
            Mv::ZERO,
            &SearchParams::new(3, 1),
        );
        // 7x7 window (+1 for the duplicated start probe).
        assert!(
            r.evaluations >= 49 && r.evaluations <= 50,
            "{}",
            r.evaluations
        );
    }
}
