//! Block motion estimation for the HD-VideoBench codecs.
//!
//! The paper (Section IV) fixes the motion-search algorithms of the
//! benchmark: **EPZS** (Enhanced Predictive Zonal Search, Tourapis 2002)
//! for the MPEG-2 and MPEG-4 encoders, and **hexagon search**
//! (Zhu/Lin/Chau 2002, x264's `--me hex`) for the H.264 encoder. This
//! crate implements both, plus exhaustive full search and diamond search
//! as baselines for the motion-search ablation bench, and a generic
//! sub-pel refinement loop the codecs specialise with their own
//! interpolation filters.
//!
//! # Example
//!
//! ```
//! use hdvb_frame::{PaddedPlane, Plane};
//! use hdvb_dsp::Dsp;
//! use hdvb_me::{full_search, BlockRef, Mv, SearchParams};
//!
//! let cur = Plane::new(64, 64);
//! let reference = PaddedPlane::from_plane(&Plane::new(64, 64), 32);
//! let block = BlockRef { plane: &cur, x: 16, y: 16, w: 16, h: 16 };
//! let result = full_search(
//!     &Dsp::default(), block, &reference, Mv::ZERO, &SearchParams::new(8, 4),
//! );
//! assert_eq!(result.mv, Mv::ZERO); // identical planes: zero motion wins
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod epzs;
mod mv;
mod search;
mod subpel;

pub use epzs::{epzs_search, EpzsThresholds, MvField, Predictors};
pub use mv::{median3, mv_bits, Mv};
pub use search::{
    diamond_search, full_search, hexagon_search, BlockRef, SearchParams, SearchResult,
};
pub use subpel::{subpel_refine, SubpelStep};
