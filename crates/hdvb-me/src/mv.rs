use std::fmt;
use std::ops::{Add, Neg, Sub};

/// A motion vector. Units are context-dependent: full-pel during search,
/// half- or quarter-pel once a codec has refined it.
///
/// # Example
///
/// ```
/// use hdvb_me::Mv;
///
/// let a = Mv::new(3, -2);
/// let b = Mv::new(-1, 4);
/// assert_eq!(a + b, Mv::new(2, 2));
/// assert_eq!(-a, Mv::new(-3, 2));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Mv {
    /// Horizontal displacement (positive = rightward).
    pub x: i16,
    /// Vertical displacement (positive = downward).
    pub y: i16,
}

impl Mv {
    /// The zero vector.
    pub const ZERO: Mv = Mv { x: 0, y: 0 };

    /// Creates a vector from its components.
    pub const fn new(x: i16, y: i16) -> Self {
        Mv { x, y }
    }

    /// Component-wise clamp into `[min_x, max_x] × [min_y, max_y]`.
    pub fn clamped(self, min_x: i16, max_x: i16, min_y: i16, max_y: i16) -> Mv {
        Mv {
            x: self.x.clamp(min_x, max_x),
            y: self.y.clamp(min_y, max_y),
        }
    }

    /// Scales both components by `s` (e.g. full-pel → half-pel units).
    pub fn scaled(self, s: i16) -> Mv {
        Mv {
            x: self.x * s,
            y: self.y * s,
        }
    }

    /// Sum of component magnitudes (city-block length).
    pub fn abs_sum(self) -> u32 {
        self.x.unsigned_abs() as u32 + self.y.unsigned_abs() as u32
    }
}

impl Add for Mv {
    type Output = Mv;
    fn add(self, rhs: Mv) -> Mv {
        Mv::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Mv {
    type Output = Mv;
    fn sub(self, rhs: Mv) -> Mv {
        Mv::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for Mv {
    type Output = Mv;
    fn neg(self) -> Mv {
        Mv::new(-self.x, -self.y)
    }
}

impl fmt::Display for Mv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// Number of bits a signed Exp-Golomb code would spend on each component
/// of `mv - pred` — the rate term of the motion cost function
/// `J = SAD + λ·R(mv)` used by all searches.
pub fn mv_bits(mv: Mv, pred: Mv) -> u32 {
    fn se_len(v: i32) -> u32 {
        let mapped = if v > 0 {
            2 * v as u32 - 1
        } else {
            2 * (-v) as u32
        };
        let code = u64::from(mapped) + 1;
        2 * (64 - code.leading_zeros()) - 1
    }
    se_len(i32::from(mv.x - pred.x)) + se_len(i32::from(mv.y - pred.y))
}

/// Component-wise median of three vectors — the MPEG-4/H.264 motion
/// vector predictor.
pub fn median3(a: Mv, b: Mv, c: Mv) -> Mv {
    fn med(a: i16, b: i16, c: i16) -> i16 {
        a.max(b).min(a.min(b).max(c))
    }
    Mv::new(med(a.x, b.x, c.x), med(a.y, b.y, c.y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Mv::new(5, -3);
        assert_eq!(a - Mv::new(2, 2), Mv::new(3, -5));
        assert_eq!(a.scaled(4), Mv::new(20, -12));
        assert_eq!(a.abs_sum(), 8);
    }

    #[test]
    fn clamping() {
        assert_eq!(Mv::new(100, -100).clamped(-16, 16, -8, 8), Mv::new(16, -8));
    }

    #[test]
    fn median_is_order_free() {
        let (a, b, c) = (Mv::new(1, 9), Mv::new(5, 3), Mv::new(2, 7));
        let m = median3(a, b, c);
        assert_eq!(m, Mv::new(2, 7));
        assert_eq!(median3(c, a, b), m);
        assert_eq!(median3(b, c, a), m);
    }

    #[test]
    fn mv_bits_zero_residual_is_cheapest() {
        let p = Mv::new(4, -2);
        let base = mv_bits(p, p);
        assert_eq!(base, 2); // two one-bit ue(0) codes
        assert!(mv_bits(Mv::new(5, -2), p) > base);
        assert!(mv_bits(Mv::new(20, 20), p) > mv_bits(Mv::new(5, 1), p));
    }

    #[test]
    fn mv_bits_matches_actual_exp_golomb_cost() {
        use hdvb_bits::BitWriter;
        for dx in [-300i16, -17, -1, 0, 1, 9, 250] {
            for dy in [-45i16, 0, 3, 1000] {
                let mv = Mv::new(dx, dy);
                let mut w = BitWriter::new();
                w.put_se(i32::from(dx));
                w.put_se(i32::from(dy));
                assert_eq!(u64::from(mv_bits(mv, Mv::ZERO)), w.bit_len(), "({dx},{dy})");
            }
        }
    }

    #[test]
    fn mv_bits_symmetry() {
        let p = Mv::ZERO;
        assert_eq!(mv_bits(Mv::new(3, 0), p), mv_bits(Mv::new(-3, 0), p));
        assert_eq!(mv_bits(Mv::new(0, 7), p), mv_bits(Mv::new(0, -7), p));
    }
}
