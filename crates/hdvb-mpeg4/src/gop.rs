//! Display-order → coding-order scheduling for the I-P-B-B GOP structure
//! the paper prescribes (fixed B placement, only the first frame intra
//! unless a periodic intra interval is configured).

use crate::types::FrameType;
use hdvb_frame::Frame;

/// A frame scheduled for coding, in coding order.
#[derive(Debug)]
pub(crate) struct Scheduled {
    pub frame: Frame,
    pub frame_type: FrameType,
    pub display_index: u32,
}

/// Buffers incoming display-order frames and releases them in coding
/// order: anchors first, then the B frames that precede them in display
/// order.
#[derive(Debug)]
pub(crate) struct GopScheduler {
    b_frames: usize,
    intra_period: Option<u32>,
    next_display: u32,
    anchors_coded: u32,
    pending: Vec<(Frame, u32)>,
}

impl GopScheduler {
    pub(crate) fn new(b_frames: u8, intra_period: Option<u32>) -> Self {
        GopScheduler {
            b_frames: usize::from(b_frames),
            intra_period,
            next_display: 0,
            anchors_coded: 0,
            pending: Vec::new(),
        }
    }

    fn anchor_type(&mut self) -> FrameType {
        let is_intra = match (self.anchors_coded, self.intra_period) {
            (0, _) => true,
            (n, Some(p)) if p > 0 => n % p == 0,
            _ => false,
        };
        self.anchors_coded += 1;
        if is_intra {
            FrameType::I
        } else {
            FrameType::P
        }
    }

    /// Accepts the next display-order frame; returns the frames that can
    /// now be coded, in coding order.
    #[cfg(test)]
    pub(crate) fn push(&mut self, frame: Frame) -> Vec<Scheduled> {
        let mut out = Vec::new();
        self.push_into(frame, &mut out);
        out
    }

    /// Flushes remaining buffered frames (end of stream): the last
    /// pending frame becomes a P anchor and the rest are coded as B.
    #[cfg(test)]
    pub(crate) fn finish(&mut self) -> Vec<Scheduled> {
        let mut out = Vec::new();
        self.finish_into(&mut out);
        out
    }

    /// Allocation-free form of [`push`](Self::push): appends the frames
    /// that can now be coded (coding order) to `out`. Once `out` and the
    /// internal pending buffer have grown to the GOP size, submitting a
    /// frame performs no heap allocation.
    pub(crate) fn push_into(&mut self, frame: Frame, out: &mut Vec<Scheduled>) {
        let idx = self.next_display;
        self.next_display += 1;
        // The very first frame is always an immediate anchor.
        if idx == 0 {
            out.push(Scheduled {
                frame,
                frame_type: self.anchor_type(),
                display_index: 0,
            });
            return;
        }
        self.pending.push((frame, idx));
        if self.pending.len() == self.b_frames + 1 {
            self.release_into(out);
        }
    }

    /// Allocation-free form of [`finish`](Self::finish).
    pub(crate) fn finish_into(&mut self, out: &mut Vec<Scheduled>) {
        if !self.pending.is_empty() {
            self.release_into(out);
        }
    }

    fn release_into(&mut self, out: &mut Vec<Scheduled>) {
        // The newest pending frame becomes the anchor; the older ones
        // are coded as B pictures after it, in display order.
        let (anchor, anchor_idx) = self
            .pending
            .pop()
            .expect("release called with pending frames");
        out.push(Scheduled {
            frame: anchor,
            frame_type: self.anchor_type(),
            display_index: anchor_idx,
        });
        for (frame, idx) in self.pending.drain(..) {
            out.push(Scheduled {
                frame,
                frame_type: FrameType::B,
                display_index: idx,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Frame {
        Frame::new(16, 16)
    }

    fn types_of(s: &[Scheduled]) -> Vec<(FrameType, u32)> {
        s.iter().map(|x| (x.frame_type, x.display_index)).collect()
    }

    #[test]
    fn ipbb_coding_order() {
        let mut g = GopScheduler::new(2, None);
        assert_eq!(types_of(&g.push(frame())), vec![(FrameType::I, 0)]);
        assert!(g.push(frame()).is_empty()); // display 1 buffered
        assert!(g.push(frame()).is_empty()); // display 2 buffered
        assert_eq!(
            types_of(&g.push(frame())),
            vec![(FrameType::P, 3), (FrameType::B, 1), (FrameType::B, 2)]
        );
        assert!(g.push(frame()).is_empty());
        assert!(g.push(frame()).is_empty());
        assert_eq!(
            types_of(&g.push(frame())),
            vec![(FrameType::P, 6), (FrameType::B, 4), (FrameType::B, 5)]
        );
        assert!(g.finish().is_empty());
    }

    #[test]
    fn flush_promotes_trailing_frames() {
        let mut g = GopScheduler::new(2, None);
        let _ = g.push(frame()); // I0
        let _ = g.push(frame()); // buffered
        let _ = g.push(frame()); // buffered
        assert_eq!(
            types_of(&g.finish()),
            vec![(FrameType::P, 2), (FrameType::B, 1)]
        );
        assert!(g.finish().is_empty());
    }

    #[test]
    fn no_b_frames_is_ipp() {
        let mut g = GopScheduler::new(0, None);
        assert_eq!(types_of(&g.push(frame())), vec![(FrameType::I, 0)]);
        assert_eq!(types_of(&g.push(frame())), vec![(FrameType::P, 1)]);
        assert_eq!(types_of(&g.push(frame())), vec![(FrameType::P, 2)]);
    }

    #[test]
    fn periodic_intra() {
        let mut g = GopScheduler::new(0, Some(2));
        assert_eq!(types_of(&g.push(frame())), vec![(FrameType::I, 0)]);
        assert_eq!(types_of(&g.push(frame())), vec![(FrameType::P, 1)]);
        assert_eq!(types_of(&g.push(frame())), vec![(FrameType::I, 2)]);
        assert_eq!(types_of(&g.push(frame())), vec![(FrameType::P, 3)]);
    }

    #[test]
    fn only_first_frame_is_intra_by_default() {
        let mut g = GopScheduler::new(2, None);
        let mut types = Vec::new();
        for _ in 0..16 {
            types.extend(
                g.push(frame())
                    .iter()
                    .map(|s| s.frame_type)
                    .collect::<Vec<_>>(),
            );
        }
        types.extend(g.finish().iter().map(|s| s.frame_type).collect::<Vec<_>>());
        assert_eq!(types.iter().filter(|&&t| t == FrameType::I).count(), 1);
        assert_eq!(types[0], FrameType::I);
    }
}
