//! Entropy-coding tables: zigzag scan and the MPEG-4-style 3-D
//! `(last, run, level)` VLC.

use hdvb_bits::VlcTable;
use std::sync::OnceLock;

/// The classic 8×8 zigzag scan order.
pub(crate) const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, //
    17, 24, 32, 25, 18, 11, 4, 5, //
    12, 19, 26, 33, 40, 48, 41, 34, //
    27, 20, 13, 6, 7, 14, 21, 28, //
    35, 42, 49, 56, 57, 50, 43, 36, //
    29, 22, 15, 23, 30, 37, 44, 51, //
    58, 59, 52, 45, 38, 31, 39, 46, //
    53, 60, 61, 54, 47, 55, 62, 63,
];

/// Run range covered by the table (0..=MAX_RUN).
pub(crate) const MAX_RUN: u32 = 4;
/// Level magnitude range covered by the table (1..=MAX_LEVEL).
pub(crate) const MAX_LEVEL: u32 = 6;
/// Symbol index of the escape marker.
pub(crate) const SYM_ESCAPE: u32 = 60;

/// Symbol for a `(last, run, |level|)` event within the table range.
pub(crate) fn event_symbol(last: bool, run: u32, level_abs: u32) -> u32 {
    debug_assert!(run <= MAX_RUN && (1..=MAX_LEVEL).contains(&level_abs));
    u32::from(last) * 30 + run * MAX_LEVEL + (level_abs - 1)
}

/// Decomposes an event symbol into `(last, run, |level|)`.
pub(crate) fn symbol_event(symbol: u32) -> (bool, u32, u32) {
    debug_assert!(symbol < SYM_ESCAPE);
    let last = symbol >= 30;
    let idx = symbol % 30;
    (last, idx / MAX_LEVEL, idx % MAX_LEVEL + 1)
}

/// Code lengths in the spirit of MPEG-4's intra/inter B-tables: common
/// non-last events short, last events a little longer, 6-bit escape.
const EVENT_LENGTHS: [u8; 61] = [
    // last = 0, runs 0..=4 × |level| 1..=6
    2, 4, 5, 6, 7, 8, //
    3, 6, 8, 9, 10, 10, //
    4, 7, 9, 10, 11, 11, //
    5, 8, 10, 11, 12, 12, //
    6, 9, 11, 12, 13, 13, //
    // last = 1
    4, 6, 8, 9, 10, 10, //
    5, 8, 10, 11, 12, 12, //
    6, 9, 11, 12, 13, 13, //
    7, 10, 12, 13, 14, 14, //
    7, 10, 12, 13, 14, 14, //
    // escape
    6,
];

/// The shared 3-D event table.
pub(crate) fn event_table() -> &'static VlcTable {
    static TABLE: OnceLock<VlcTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        VlcTable::from_lengths("mpeg4-event", &EVENT_LENGTHS)
            .expect("static table lengths are valid")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_symbols_roundtrip() {
        for last in [false, true] {
            for run in 0..=MAX_RUN {
                for level in 1..=MAX_LEVEL {
                    let s = event_symbol(last, run, level);
                    assert!(s < SYM_ESCAPE);
                    assert_eq!(symbol_event(s), (last, run, level));
                }
            }
        }
    }

    #[test]
    fn table_builds_and_is_biased_toward_non_last() {
        let t = event_table();
        assert_eq!(t.len(), 61);
        assert!(t.code_len(event_symbol(false, 0, 1)) < t.code_len(event_symbol(true, 0, 1)));
        assert_eq!(t.code_len(SYM_ESCAPE), 6);
    }

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &i in &ZIGZAG {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    proptest::proptest! {
        // Robustness: the MPEG-4 event table fed random bytes must only ever
        // yield Eof/InvalidCode — never a panic — and must terminate
        // within a decode-step budget (each successful decode consumes
        // at least one bit).
        #[test]
        fn byte_soup_event_table_never_panics(data in proptest::collection::vec(0u8..=255, 0..256)) {
            use hdvb_bits::{BitReader, BitsError};
            let table = event_table();
            let mut r = BitReader::new(&data);
            let budget = 8 * data.len() + 2;
            let mut steps = 0usize;
            loop {
                steps += 1;
                proptest::prop_assert!(steps <= budget, "vlc decode-step budget exceeded");
                match table.decode(&mut r) {
                    Ok(sym) => proptest::prop_assert!((sym as usize) < table.len()),
                    Err(BitsError::Eof) | Err(BitsError::InvalidCode { .. }) => break,
                    Err(e) => proptest::prop_assert!(false, "unexpected error: {e}"),
                }
            }
        }
    }
}
