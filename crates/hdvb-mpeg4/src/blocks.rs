//! 3-D `(last, run, level)` (de)serialisation of quantised 8×8 blocks.
//!
//! Unlike the MPEG-2-style code there is no end-of-block symbol: the
//! final event carries a `last` flag, saving ~2 bits per coded block.
//! Blocks with no coefficients at all are signalled by the macroblock's
//! coded-block pattern, never through this module.

use crate::tables::{
    event_symbol, event_table, symbol_event, MAX_LEVEL, MAX_RUN, SYM_ESCAPE, ZIGZAG,
};
use crate::types::CodecError;
use hdvb_bits::{BitReader, BitWriter};
use hdvb_dsp::Block8;

/// Writes the coefficients of a block that has at least one nonzero
/// value in `ZIGZAG[start..]`.
///
/// # Panics
///
/// Debug-panics if the block is empty in the coded region (the caller
/// must use the coded-block pattern for that case).
pub(crate) fn write_coeffs(w: &mut BitWriter, block: &Block8, start: usize) {
    let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
    let table = event_table();
    let last_pos = ZIGZAG[start..]
        .iter()
        .rposition(|&p| block[p] != 0)
        .map(|i| i + start);
    let last_pos = match last_pos {
        Some(p) => p,
        None => {
            debug_assert!(false, "write_coeffs on an empty block");
            return;
        }
    };
    let mut run = 0u32;
    for (zi, &pos) in ZIGZAG.iter().enumerate().take(last_pos + 1).skip(start) {
        let level = block[pos];
        if level == 0 {
            run += 1;
            continue;
        }
        let last = zi == last_pos;
        let abs = level.unsigned_abs() as u32;
        if run <= MAX_RUN && abs <= MAX_LEVEL {
            table.encode(event_symbol(last, run, abs), w);
            w.put_bit(level < 0);
        } else if run <= MAX_RUN && abs <= 2 * MAX_LEVEL {
            // MPEG-4 type-1 escape: re-code with the level reduced by
            // LMAX, reusing the short event table.
            table.encode(SYM_ESCAPE, w);
            w.put_bits(0b0, 1);
            table.encode(event_symbol(last, run, abs - MAX_LEVEL), w);
            w.put_bit(level < 0);
        } else if run > MAX_RUN && run <= 2 * MAX_RUN + 1 && abs <= MAX_LEVEL {
            // Type-2 escape: re-code with the run reduced by RMAX+1.
            table.encode(SYM_ESCAPE, w);
            w.put_bits(0b10, 2);
            table.encode(event_symbol(last, run - (MAX_RUN + 1), abs), w);
            w.put_bit(level < 0);
        } else {
            // Type-3 (full) escape.
            table.encode(SYM_ESCAPE, w);
            w.put_bits(0b11, 2);
            w.put_bit(last);
            w.put_bits(run, 6);
            w.put_se(i32::from(level));
        }
        run = 0;
    }
}

/// Parses one coded block's coefficients into `block` (zeroed by the
/// caller).
pub(crate) fn read_coeffs(
    r: &mut BitReader<'_>,
    block: &mut Block8,
    start: usize,
) -> Result<(), CodecError> {
    let table = event_table();
    let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
    let mut pos = start;
    loop {
        let symbol = table.decode(r)?;
        let (last, run, level) = if symbol == SYM_ESCAPE {
            if !r.get_bit()? {
                // Type 1: level offset by LMAX.
                let inner = table.decode(r)?;
                if inner == SYM_ESCAPE {
                    return Err(CodecError::corrupt(
                        hdvb_bits::CorruptKind::BadCoefficients,
                        "nested escape in type-1 event",
                    ));
                }
                let (last, run, abs) = symbol_event(inner);
                let neg = r.get_bit()?;
                let abs = abs + MAX_LEVEL;
                (last, run, if neg { -(abs as i32) } else { abs as i32 })
            } else if !r.get_bit()? {
                // Type 2: run offset by RMAX+1.
                let inner = table.decode(r)?;
                if inner == SYM_ESCAPE {
                    return Err(CodecError::corrupt(
                        hdvb_bits::CorruptKind::BadCoefficients,
                        "nested escape in type-2 event",
                    ));
                }
                let (last, run, abs) = symbol_event(inner);
                let neg = r.get_bit()?;
                (
                    last,
                    run + MAX_RUN + 1,
                    if neg { -(abs as i32) } else { abs as i32 },
                )
            } else {
                // Type 3: explicit last/run/level.
                let last = r.get_bit()?;
                let run = r.get_bits(6)?;
                let level = r.get_se()?;
                if level == 0 {
                    return Err(CodecError::corrupt(
                        hdvb_bits::CorruptKind::BadCoefficients,
                        "escape level of zero",
                    ));
                }
                (last, run, level)
            }
        } else {
            let (last, run, abs) = symbol_event(symbol);
            let neg = r.get_bit()?;
            (last, run, if neg { -(abs as i32) } else { abs as i32 })
        };
        pos += run as usize;
        if pos >= 64 {
            return Err(CodecError::corrupt(
                hdvb_bits::CorruptKind::BadCoefficients,
                format!("coefficient run overflows block ({pos})"),
            ));
        }
        block[ZIGZAG[pos]] = level.clamp(-2047, 2047) as i16;
        pos += 1;
        if last {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(block: &Block8, start: usize) -> Block8 {
        let mut w = BitWriter::new();
        write_coeffs(&mut w, block, start);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let mut out = [0i16; 64];
        read_coeffs(&mut r, &mut out, start).unwrap();
        out
    }

    #[test]
    fn single_coefficient_blocks() {
        for pos in [0usize, 1, 5, 63] {
            let mut b = [0i16; 64];
            b[ZIGZAG[pos]] = -7;
            if pos == 0 {
                assert_eq!(roundtrip(&b, 0), b);
            } else {
                assert_eq!(roundtrip(&b, 1), b);
                assert_eq!(roundtrip(&b, 0), b);
            }
        }
    }

    #[test]
    fn three_d_coding_beats_eob_style_on_single_events() {
        // One small coefficient: (last=1,run,level) in one symbol; the
        // MPEG-2 style would need (run,level) + EOB.
        let mut b = [0i16; 64];
        b[0] = 1;
        let mut w = BitWriter::new();
        write_coeffs(&mut w, &b, 0);
        assert!(w.bit_len() <= 5, "{} bits", w.bit_len());
    }

    #[test]
    fn dense_random_blocks_roundtrip() {
        let mut state = 42u32;
        for _ in 0..60 {
            let mut b = [0i16; 64];
            for v in &mut b {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                if state.is_multiple_of(4) {
                    *v = ((state >> 20) as i16 % 901) - 450;
                }
            }
            if b.iter().all(|&v| v == 0) {
                b[10] = 3;
            }
            assert_eq!(roundtrip(&b, 0), b);
        }
    }

    #[test]
    fn escape_with_last_flag_roundtrips() {
        let mut b = [0i16; 64];
        b[ZIGZAG[50]] = 1200; // escape level, also the last event
        assert_eq!(roundtrip(&b, 0), b);
    }

    #[test]
    fn corrupt_overflow_is_error() {
        let table = event_table();
        let mut w = BitWriter::new();
        // Two max-run escapes force pos past 63.
        for _ in 0..2 {
            table.encode(SYM_ESCAPE, &mut w);
            w.put_bit(false);
            w.put_bits(63, 6);
            w.put_se(4);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let mut out = [0i16; 64];
        assert!(read_coeffs(&mut r, &mut out, 0).is_err());
    }

    #[test]
    fn truncation_is_error_not_panic() {
        let mut b = [0i16; 64];
        b[3] = 9;
        b[40] = -900;
        let mut w = BitWriter::new();
        write_coeffs(&mut w, &b, 0);
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let mut r = BitReader::new(&bytes[..cut]);
            let mut out = [0i16; 64];
            let _ = read_coeffs(&mut r, &mut out, 0);
        }
    }
}
