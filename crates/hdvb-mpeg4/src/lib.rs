//! An MPEG-4-ASP-class video encoder and decoder.
//!
//! HD-VideoBench's stand-in for the paper's Xvid application: the
//! MPEG-4 Advanced Simple Profile toolset on top of the same 8×8-DCT
//! macroblock machinery as the MPEG-2-class codec, *plus* the ASP tools
//! that give MPEG-4 its rate advantage at equal quality:
//!
//! * **quarter-pel** motion compensation (`qpel` in the paper's Xvid
//!   command line),
//! * **four-MV mode** (an independent vector per 8×8 luma block),
//! * **median motion-vector prediction** from three spatial neighbours,
//! * **adaptive intra DC prediction** (left-or-top by gradient rule),
//! * **3-D run-level entropy coding** (`(last, run, level)` events, no
//!   end-of-block symbol).
//!
//! The bitstream syntax is this crate's own; every tool and the
//! computational profile match the MPEG-4 ASP generation (see
//! DESIGN.md for the documented substitutions: 6-tap instead of 8-tap
//! quarter-pel filter, no GMC, no AC prediction).
//!
//! # Example
//!
//! ```
//! use hdvb_frame::Frame;
//! use hdvb_mpeg4::{EncoderConfig, Mpeg4Decoder, Mpeg4Encoder};
//!
//! let mut enc = Mpeg4Encoder::new(EncoderConfig::new(64, 48))?;
//! let mut dec = Mpeg4Decoder::new();
//! let mut packets = enc.encode(&Frame::new(64, 48))?;
//! packets.extend(enc.flush()?);
//! let mut out = Vec::new();
//! for p in &packets {
//!     out.extend(dec.decode(&p.data)?);
//! }
//! out.extend(dec.flush());
//! assert_eq!(out.len(), 1);
//! # Ok::<(), hdvb_mpeg4::CodecError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod blocks;
mod decoder;
mod encoder;
mod gop;
mod tables;
mod types;

pub use decoder::Mpeg4Decoder;
pub use encoder::Mpeg4Encoder;
pub use types::{CodecError, EncoderConfig, FrameType, Packet};
