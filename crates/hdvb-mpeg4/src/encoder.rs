use crate::blocks::write_coeffs;
use crate::gop::{GopScheduler, Scheduled};
use crate::types::{CodecError, EncoderConfig, FrameType, Packet};
use hdvb_bits::BitWriter;
use hdvb_dsp::{Block8, Dsp, MPEG_DEFAULT_INTRA, MPEG_DEFAULT_NONINTRA};
use hdvb_frame::{align_up, BufferPool, Frame, FramePool, PaddedPlane, Plane};
use hdvb_me::{
    diamond_search, epzs_search, median3, mv_bits, subpel_refine, BlockRef, EpzsThresholds, Mv,
    MvField, Predictors, SearchParams, SubpelStep,
};
use hdvb_par::CancelToken;

/// Magic number opening every coded picture.
pub(crate) const MAGIC: u32 = 0x4D34; // "M4"
/// Luma padding of reference pictures.
pub(crate) const LUMA_PAD: usize = 32;
/// Chroma padding of reference pictures.
pub(crate) const CHROMA_PAD: usize = 16;

/// A reconstructed reference picture.
pub(crate) struct RefPicture {
    pub y: PaddedPlane,
    pub cb: PaddedPlane,
    pub cr: PaddedPlane,
    /// Full-pel field for EPZS temporal predictors.
    pub mvs_fullpel: MvField,
    /// Quarter-pel field of the anchor's chosen vectors (B direct mode).
    pub mvs_qpel: MvField,
    /// Display index of the anchor (temporal distances of direct mode).
    pub display_index: u32,
}

impl RefPicture {
    pub(crate) fn from_frame(
        frame: &Frame,
        mvs_fullpel: MvField,
        mvs_qpel: MvField,
        display_index: u32,
    ) -> Self {
        // Reference-plane padding is part of motion compensation.
        let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionComp);
        RefPicture {
            y: PaddedPlane::from_plane(frame.y(), LUMA_PAD),
            cb: PaddedPlane::from_plane(frame.cb(), CHROMA_PAD),
            cr: PaddedPlane::from_plane(frame.cr(), CHROMA_PAD),
            mvs_fullpel,
            mvs_qpel,
            display_index,
        }
    }

    /// Re-extends a retired reference picture from a new reconstruction
    /// without reallocating its padded planes, swapping the freshly
    /// coded motion fields in (the stale ones are left in the arguments
    /// for the caller to clear and reuse). Bit-identical to
    /// [`from_frame`](Self::from_frame) on matching geometry.
    pub(crate) fn refill_from(
        &mut self,
        frame: &Frame,
        mvs_fullpel: &mut MvField,
        mvs_qpel: &mut MvField,
        display_index: u32,
    ) {
        let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionComp);
        self.y.refill(frame.y());
        self.cb.refill(frame.cb());
        self.cr.refill(frame.cr());
        std::mem::swap(&mut self.mvs_fullpel, mvs_fullpel);
        std::mem::swap(&mut self.mvs_qpel, mvs_qpel);
        self.display_index = display_index;
    }

    /// Whether this reference was built for a `w`×`h` picture.
    pub(crate) fn matches(&self, w: usize, h: usize) -> bool {
        self.y.width() == w && self.y.height() == h
    }
}

/// MPEG-4 temporal direct-mode vectors for one macroblock of a B picture
/// at display time `d_cur` between anchors `fwd`/`bwd`:
/// `MVf = MVcol·TRB/TRD`, `MVb = MVf − MVcol` (the collocated vector is
/// the backward anchor's motion toward the forward anchor).
pub(crate) fn direct_mvs(
    fwd: &RefPicture,
    bwd: &RefPicture,
    d_cur: u32,
    mbx: usize,
    mby: usize,
) -> (Mv, Mv) {
    let trd = bwd.display_index as i32 - fwd.display_index as i32;
    let trb = d_cur as i32 - fwd.display_index as i32;
    if trd <= 0 || trb <= 0 || trb >= trd {
        return (Mv::ZERO, Mv::ZERO);
    }
    let col = bwd.mvs_qpel.get(mbx as isize, mby as isize);
    // The collocated vector points from the backward anchor to the
    // forward anchor; the forward direct vector is its fraction, the
    // backward vector the remainder (negated direction).
    let fx = (i32::from(col.x) * trb).div_euclid(trd) as i16;
    let fy = (i32::from(col.y) * trb).div_euclid(trd) as i16;
    let mv_f = Mv::new(fx, fy);
    let mv_b = Mv::new(mv_f.x - col.x, mv_f.y - col.y);
    (mv_f, mv_b)
}

/// Per-frame adaptive DC-prediction store (MPEG-4 gradient rule).
pub(crate) struct DcStore {
    w: usize,
    vals: Vec<i32>,
    avail: Vec<bool>,
}

impl DcStore {
    pub(crate) fn new(w: usize, h: usize) -> Self {
        DcStore {
            w,
            vals: vec![0; w * h],
            avail: vec![false; w * h],
        }
    }

    /// Returns the store to its freshly constructed state (no block
    /// available), keeping the allocations for the next picture.
    fn reset(&mut self) {
        self.vals.fill(0);
        self.avail.fill(false);
    }

    fn get(&self, x: isize, y: isize) -> i32 {
        if x < 0 || y < 0 || x as usize >= self.w {
            return 128; // default predictor outside the picture
        }
        let idx = y as usize * self.w + x as usize;
        if idx < self.vals.len() && self.avail[idx] {
            self.vals[idx]
        } else {
            128
        }
    }

    pub(crate) fn set(&mut self, x: usize, y: usize, v: i32) {
        let idx = y * self.w + x;
        self.vals[idx] = v;
        self.avail[idx] = true;
    }

    /// MPEG-4 gradient predictor: compare the horizontal and vertical DC
    /// gradients among the left (A), top-left (B) and top (C) blocks.
    pub(crate) fn predict(&self, x: usize, y: usize) -> i32 {
        let (xi, yi) = (x as isize, y as isize);
        let a = self.get(xi - 1, yi);
        let b = self.get(xi - 1, yi - 1);
        let c = self.get(xi, yi - 1);
        if (a - b).abs() < (b - c).abs() {
            c
        } else {
            a
        }
    }
}

/// All three components' DC stores for one frame.
pub(crate) struct DcStores {
    pub y: DcStore,
    pub cb: DcStore,
    pub cr: DcStore,
}

impl DcStores {
    pub(crate) fn new(mbs_x: usize, mbs_y: usize) -> Self {
        DcStores {
            y: DcStore::new(mbs_x * 2, mbs_y * 2),
            cb: DcStore::new(mbs_x, mbs_y),
            cr: DcStore::new(mbs_x, mbs_y),
        }
    }

    /// Resets all three component stores for a new picture without
    /// releasing their storage.
    pub(crate) fn reset(&mut self) {
        self.y.reset();
        self.cb.reset();
        self.cr.reset();
    }
}

/// Motion-compensates one macroblock from `r`; `mvs` holds the four
/// quarter-pel luma vectors (all equal when `four_mv` is false). Shared
/// with the decoder.
#[allow(clippy::too_many_arguments)]
pub(crate) fn predict_mb(
    dsp: &Dsp,
    r: &RefPicture,
    mb_x: usize,
    mb_y: usize,
    mvs: &[Mv; 4],
    four_mv: bool,
    luma: &mut [u8; 256],
    cb: &mut [u8; 64],
    cr: &mut [u8; 64],
) {
    let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionComp);
    if four_mv {
        for k in 0..4 {
            let bx = mb_x * 16 + (k % 2) * 8;
            let by = mb_y * 16 + (k / 2) * 8;
            let mv = mvs[k];
            let ix = bx as isize + isize::from(mv.x >> 2) - 2;
            let iy = by as isize + isize::from(mv.y >> 2) - 2;
            let dst = &mut luma[(k / 2) * 8 * 16 + (k % 2) * 8..];
            dsp.qpel_luma(
                dst,
                16,
                r.y.row_from(ix, iy),
                r.y.stride(),
                (mv.x & 3) as u8,
                (mv.y & 3) as u8,
                8,
                8,
            );
        }
    } else {
        let mv = mvs[0];
        let ix = (mb_x * 16) as isize + isize::from(mv.x >> 2) - 2;
        let iy = (mb_y * 16) as isize + isize::from(mv.y >> 2) - 2;
        dsp.qpel_luma(
            luma,
            16,
            r.y.row_from(ix, iy),
            r.y.stride(),
            (mv.x & 3) as u8,
            (mv.y & 3) as u8,
            16,
            16,
        );
    }
    // Chroma: derived from the sum of the four luma vectors (all equal in
    // 16x16 mode), floor-divided to chroma half-pel units.
    let sx = mvs.iter().map(|m| i32::from(m.x)).sum::<i32>() >> 4;
    let sy = mvs.iter().map(|m| i32::from(m.y)).sum::<i32>() >> 4;
    let cx = (mb_x * 8) as isize + (sx >> 1) as isize;
    let cy = (mb_y * 8) as isize + (sy >> 1) as isize;
    let (cfx, cfy) = ((sx & 1) as u8, (sy & 1) as u8);
    dsp.hpel_interp(cb, 8, r.cb.row_from(cx, cy), r.cb.stride(), cfx, cfy, 8, 8);
    dsp.hpel_interp(cr, 8, r.cr.row_from(cx, cy), r.cr.stride(), cfx, cfy, 8, 8);
}

/// Loads an 8×8 pixel block as i16.
pub(crate) fn load_block(plane: &Plane, bx: usize, by: usize) -> Block8 {
    let mut out = [0i16; 64];
    for y in 0..8 {
        for x in 0..8 {
            out[y * 8 + x] = i16::from(plane.get(bx + x, by + y));
        }
    }
    out
}

/// Stores an 8×8 i16 block with pixel clamping.
pub(crate) fn store_block_clamped(plane: &mut Plane, bx: usize, by: usize, block: &Block8) {
    for y in 0..8 {
        for x in 0..8 {
            plane.set(bx + x, by + y, block[y * 8 + x].clamp(0, 255) as u8);
        }
    }
}

/// B-picture per-row prediction state (left-neighbour MV predictors).
pub(crate) struct BRowState {
    pub mv_pred: Mv,
    pub mv_pred_bwd: Mv,
    pub last_b: (u8, Mv, Mv),
}

impl BRowState {
    pub(crate) fn new() -> Self {
        BRowState {
            mv_pred: Mv::ZERO,
            mv_pred_bwd: Mv::ZERO,
            last_b: (0, Mv::ZERO, Mv::ZERO),
        }
    }

    pub(crate) fn reset_mv(&mut self) {
        self.mv_pred = Mv::ZERO;
        self.mv_pred_bwd = Mv::ZERO;
    }
}

/// Builds the B prediction for `mode` (0 fwd, 1 bwd, 2 bi); 16×16 only.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_b_prediction(
    dsp: &Dsp,
    fwd: &RefPicture,
    bwd: &RefPicture,
    mbx: usize,
    mby: usize,
    mode: u8,
    mv_f: Mv,
    mv_b: Mv,
    py: &mut [u8; 256],
    pcb: &mut [u8; 64],
    pcr: &mut [u8; 64],
) {
    let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionComp);
    match mode {
        0 => predict_mb(dsp, fwd, mbx, mby, &[mv_f; 4], false, py, pcb, pcr),
        1 => predict_mb(dsp, bwd, mbx, mby, &[mv_b; 4], false, py, pcb, pcr),
        _ => {
            let (mut fy, mut fcb, mut fcr) = ([0u8; 256], [0u8; 64], [0u8; 64]);
            let (mut by, mut bcb, mut bcr) = ([0u8; 256], [0u8; 64], [0u8; 64]);
            predict_mb(
                dsp, fwd, mbx, mby, &[mv_f; 4], false, &mut fy, &mut fcb, &mut fcr,
            );
            predict_mb(
                dsp, bwd, mbx, mby, &[mv_b; 4], false, &mut by, &mut bcb, &mut bcr,
            );
            dsp.avg_block(py, 16, &fy, 16, &by, 16, 16, 16);
            dsp.avg_block(pcb, 8, &fcb, 8, &bcb, 8, 8, 8);
            dsp.avg_block(pcr, 8, &fcr, 8, &bcr, 8, 8, 8);
        }
    }
}

/// Adds dequantised residuals onto a prediction. Shared with the decoder.
#[allow(clippy::too_many_arguments)]
pub(crate) fn reconstruct_inter(
    dsp: &Dsp,
    recon: &mut Frame,
    mbx: usize,
    mby: usize,
    py: &[u8; 256],
    pcb: &[u8; 64],
    pcr: &[u8; 64],
    blocks: &[Block8; 6],
    cbp: u8,
    qscale: u16,
) {
    let _z = hdvb_trace::zone!(hdvb_trace::Stage::Reconstruct);
    for b in 0..6 {
        let coded = cbp & (1 << (5 - b)) != 0;
        let (pred_slice, pred_stride): (&[u8], usize) = match b {
            0..=3 => (&py[(b / 2) * 8 * 16 + (b % 2) * 8..], 16),
            4 => (&pcb[..], 8),
            _ => (&pcr[..], 8),
        };
        let (plane, bx, by) = match b {
            0..=3 => (
                recon.y_mut(),
                mbx * 16 + (b % 2) * 8,
                mby * 16 + (b / 2) * 8,
            ),
            4 => (recon.cb_mut(), mbx * 8, mby * 8),
            _ => (recon.cr_mut(), mbx * 8, mby * 8),
        };
        let stride = plane.stride();
        let base = by * stride + bx;
        if coded {
            let mut res = blocks[b];
            dsp.dequant8(&mut res, &MPEG_DEFAULT_NONINTRA, qscale, false);
            dsp.idct8(&mut res);
            dsp.add_residual8(
                &mut plane.data_mut()[base..],
                stride,
                pred_slice,
                pred_stride,
                &res,
            );
        } else {
            dsp.copy_block(
                &mut plane.data_mut()[base..],
                stride,
                pred_slice,
                pred_stride,
                8,
                8,
            );
        }
    }
}

/// DC-store grid coordinates for coded block `b` of macroblock
/// `(mbx, mby)`.
pub(crate) fn dc_coords(mbx: usize, mby: usize, b: usize) -> (usize, usize) {
    match b {
        0..=3 => (mbx * 2 + b % 2, mby * 2 + b / 2),
        _ => (mbx, mby),
    }
}

/// Per-picture working storage, reused across the whole encode so the
/// steady-state hot path performs no heap allocation.
struct EncScratch {
    /// Reconstruction target, `aw`×`ah`; fully overwritten per picture.
    recon: Frame,
    /// Edge-replicated copy of unaligned input.
    aligned: Frame,
    /// Full-pel field of the picture being coded (EPZS temporal
    /// predictors; anchors swap it into their [`RefPicture`]).
    mvs_full: MvField,
    /// Quarter-pel field of the picture being coded (B direct mode).
    mvs_qpel: MvField,
    /// B-picture forward full-pel field (separate so anchors' fields
    /// survive).
    b_full: MvField,
    /// Adaptive DC-prediction stores, reset per picture.
    dc: DcStores,
}

/// The MPEG-4-ASP-class encoder. See the crate docs for the toolset.
pub struct Mpeg4Encoder {
    config: EncoderConfig,
    dsp: Dsp,
    gop: GopScheduler,
    aw: usize,
    ah: usize,
    mbs_x: usize,
    mbs_y: usize,
    prev_anchor: Option<RefPicture>,
    last_anchor: Option<RefPicture>,
    /// Reusable per-picture working storage.
    scratch: Option<EncScratch>,
    /// Reusable coding-order buffer handed to the GOP scheduler.
    sched: Vec<Scheduled>,
    /// Cooperative cancellation, checkpointed before each coded picture.
    cancel: CancelToken,
}

impl Mpeg4Encoder {
    /// Creates an encoder.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadConfig`] for invalid geometry or quantiser.
    pub fn new(config: EncoderConfig) -> Result<Self, CodecError> {
        config.validate()?;
        let aw = align_up(config.width, 16);
        let ah = align_up(config.height, 16);
        Ok(Mpeg4Encoder {
            config,
            dsp: Dsp::new(config.simd),
            gop: GopScheduler::new(config.b_frames, config.intra_period),
            aw,
            ah,
            mbs_x: aw / 16,
            mbs_y: ah / 16,
            prev_anchor: None,
            last_anchor: None,
            scratch: Some(EncScratch {
                recon: Frame::new(aw, ah),
                aligned: Frame::new(aw, ah),
                mvs_full: MvField::new(aw / 16, ah / 16),
                mvs_qpel: MvField::new(aw / 16, ah / 16),
                b_full: MvField::new(aw / 16, ah / 16),
                dc: DcStores::new(aw / 16, ah / 16),
            }),
            sched: Vec::new(),
            cancel: CancelToken::never(),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Installs a cancellation token checked before each coded picture,
    /// so a deadline or shutdown stops the encoder at the next picture
    /// boundary with [`CodecError::Cancelled`].
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// Submits the next display-order frame.
    ///
    /// # Errors
    ///
    /// [`CodecError::FrameMismatch`] on geometry mismatch.
    pub fn encode(&mut self, frame: &Frame) -> Result<Vec<Packet>, CodecError> {
        let mut out = Vec::new();
        self.encode_into(frame, &mut out)?;
        Ok(out)
    }

    /// Flushes buffered frames.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors (none in normal operation).
    pub fn flush(&mut self) -> Result<Vec<Packet>, CodecError> {
        let mut out = Vec::new();
        self.flush_into(&mut out)?;
        Ok(out)
    }

    /// Allocation-free form of [`encode`](Self::encode): appends coded
    /// packets to `out`. The input frame is copied into a pooled frame
    /// (recycled after coding), packet payloads come from the global
    /// [`BufferPool`], and all per-picture working state is reused — at
    /// steady state a submitted frame performs zero heap allocations.
    ///
    /// # Errors
    ///
    /// As [`encode`](Self::encode); packets appended before an error
    /// stay in `out`.
    pub fn encode_into(&mut self, frame: &Frame, out: &mut Vec<Packet>) -> Result<(), CodecError> {
        if frame.width() != self.config.width || frame.height() != self.config.height {
            return Err(CodecError::FrameMismatch {
                expected: (self.config.width, self.config.height),
                actual: (frame.width(), frame.height()),
            });
        }
        let pooled = {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::Reconstruct);
            let mut f = FramePool::global().take(frame.width(), frame.height());
            f.copy_from(frame);
            f
        };
        let mut sched = std::mem::take(&mut self.sched);
        self.gop.push_into(pooled, &mut sched);
        let result = self.encode_scheduled(&mut sched, out);
        self.sched = sched;
        result
    }

    /// Allocation-free form of [`flush`](Self::flush): appends the
    /// remaining coded packets to `out`.
    ///
    /// # Errors
    ///
    /// As [`flush`](Self::flush).
    pub fn flush_into(&mut self, out: &mut Vec<Packet>) -> Result<(), CodecError> {
        let mut sched = std::mem::take(&mut self.sched);
        self.gop.finish_into(&mut sched);
        let result = self.encode_scheduled(&mut sched, out);
        self.sched = sched;
        result
    }

    /// Codes every scheduled picture, recycling each input frame to the
    /// global pool afterwards (also on error/cancellation).
    fn encode_scheduled(
        &mut self,
        sched: &mut Vec<Scheduled>,
        out: &mut Vec<Packet>,
    ) -> Result<(), CodecError> {
        let mut result = Ok(());
        for s in sched.drain(..) {
            if result.is_ok() {
                if self.cancel.is_cancelled() {
                    result = Err(CodecError::Cancelled);
                } else {
                    out.push(self.encode_picture(&s.frame, s.frame_type, s.display_index));
                }
            }
            FramePool::global().put(s.frame);
        }
        result
    }

    fn encode_picture(
        &mut self,
        frame: &Frame,
        frame_type: FrameType,
        display_index: u32,
    ) -> Packet {
        let mut scratch = self.scratch.take().expect("encoder scratch in use");
        let packet = self.encode_picture_inner(frame, frame_type, display_index, &mut scratch);
        self.scratch = Some(scratch);
        packet
    }

    fn encode_picture_inner(
        &mut self,
        frame: &Frame,
        frame_type: FrameType,
        display_index: u32,
        scratch: &mut EncScratch,
    ) -> Packet {
        let EncScratch {
            recon,
            aligned,
            mvs_full,
            mvs_qpel,
            b_full,
            dc,
        } = scratch;
        let cur: &Frame = if frame.width() == self.aw && frame.height() == self.ah {
            frame
        } else {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::Reconstruct);
            aligned.replicate_from(frame);
            aligned
        };
        let mut w = {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
            let mut w = BitWriter::from_vec(BufferPool::global().take(self.aw * self.ah / 4));
            w.put_bits(MAGIC, 16);
            w.put_bits(frame_type.to_bits(), 2);
            w.put_bits(display_index, 32);
            w.put_ue(self.config.width as u32);
            w.put_ue(self.config.height as u32);
            w.put_ue(u32::from(self.config.qscale));
            w
        };

        // `recon` is fully overwritten by every picture type; the motion
        // fields and DC stores are cleared, so the recycled storage is
        // bit-identical to freshly allocated buffers.
        mvs_full.clear();
        mvs_qpel.clear();
        dc.reset();
        match frame_type {
            FrameType::I => self.encode_i(&mut w, cur, recon, dc),
            FrameType::P => self.encode_p(&mut w, cur, recon, mvs_full, mvs_qpel, dc),
            FrameType::B => {
                b_full.clear();
                self.encode_b(&mut w, cur, recon, display_index, b_full, dc);
            }
        }

        if frame_type != FrameType::B {
            let recycled = self.prev_anchor.take();
            self.prev_anchor = self.last_anchor.take();
            self.last_anchor = Some(match recycled {
                Some(mut rp) if rp.matches(self.aw, self.ah) => {
                    rp.refill_from(recon, mvs_full, mvs_qpel, display_index);
                    rp
                }
                _ => RefPicture::from_frame(
                    recon,
                    std::mem::replace(mvs_full, MvField::new(self.mbs_x, self.mbs_y)),
                    std::mem::replace(mvs_qpel, MvField::new(self.mbs_x, self.mbs_y)),
                    display_index,
                ),
            });
        }
        let data = {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
            w.finish()
        };
        Packet {
            data,
            frame_type,
            display_index,
        }
    }

    fn encode_i(&self, w: &mut BitWriter, cur: &Frame, recon: &mut Frame, dc: &mut DcStores) {
        for mby in 0..self.mbs_y {
            for mbx in 0..self.mbs_x {
                self.code_intra_mb(w, cur, recon, mbx, mby, dc);
            }
            w.byte_align();
        }
    }

    /// Codes one intra macroblock (cbp + per-block DC and AC) and
    /// reconstructs it.
    fn code_intra_mb(
        &self,
        w: &mut BitWriter,
        cur: &Frame,
        recon: &mut Frame,
        mbx: usize,
        mby: usize,
        dc: &mut DcStores,
    ) {
        // First pass: transform + quantise all six blocks to learn cbp.
        let mut coded = [[0i16; 64]; 6];
        let mut dcs = [0i32; 6];
        let mut cbp = 0u8;
        {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::TransformQuant);
            for b in 0..6 {
                let (plane, _, _, bx, by) = intra_geometry(cur, mbx, mby, b);
                let mut block = load_block(plane, bx, by);
                self.dsp.fdct8(&mut block);
                dcs[b] = ((i32::from(block[0]) + 4) >> 3).clamp(0, 255);
                block[0] = 0;
                let nz = self
                    .dsp
                    .quant8(&mut block, &MPEG_DEFAULT_INTRA, self.config.qscale, true);
                if nz > 0 {
                    cbp |= 1 << (5 - b);
                }
                coded[b] = block;
            }
        }
        // Second pass: DC prediction and bitstream writes.
        {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
            w.put_bits(u32::from(cbp), 6);
            for b in 0..6 {
                let store = match b {
                    0..=3 => &mut dc.y,
                    4 => &mut dc.cb,
                    _ => &mut dc.cr,
                };
                let (gx, gy) = dc_coords(mbx, mby, b);
                let pred = store.predict(gx, gy);
                w.put_se(dcs[b] - pred);
                store.set(gx, gy, dcs[b]);
                if cbp & (1 << (5 - b)) != 0 {
                    write_coeffs(w, &coded[b], 1);
                }
            }
        }
        // Third pass: reconstruction.
        {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::Reconstruct);
            for b in 0..6 {
                let mut block = coded[b];
                self.dsp
                    .dequant8(&mut block, &MPEG_DEFAULT_INTRA, self.config.qscale, true);
                block[0] = (dcs[b] * 8) as i16;
                self.dsp.idct8(&mut block);
                let (_, rplane, bx, by) = intra_recon_geometry(recon, mbx, mby, b);
                store_block_clamped(rplane, bx, by, &block);
            }
        }
    }

    fn encode_p(
        &self,
        w: &mut BitWriter,
        cur: &Frame,
        recon: &mut Frame,
        mvs_full: &mut MvField,
        qfield: &mut MvField,
        dc: &mut DcStores,
    ) {
        let reference = self
            .last_anchor
            .as_ref()
            .expect("P picture requires a previous anchor");
        let lambda = u32::from(self.config.qscale).max(1);
        for mby in 0..self.mbs_y {
            for mbx in 0..self.mbs_x {
                // One motion-estimation zone spans the full-pel search,
                // sub-pel refinement, four-MV trial and mode decision.
                let me_zone = hdvb_trace::zone!(hdvb_trace::Stage::MotionEstimation);
                let median = median_pred(qfield, mbx, mby);
                // Full-pel EPZS.
                let preds = Predictors::gather(mvs_full, &reference.mvs_fullpel, mbx, mby);
                let block16 = BlockRef {
                    plane: cur.y(),
                    x: mbx * 16,
                    y: mby * 16,
                    w: 16,
                    h: 16,
                };
                let fullpel = epzs_search(
                    &self.dsp,
                    block16,
                    &reference.y,
                    &preds,
                    &EpzsThresholds::default(),
                    &SearchParams::new(self.config.search_range, lambda)
                        .with_pred(Mv::new(median.x >> 2, median.y >> 2)),
                );
                // Quarter-pel refinement (half-pel lattice, then quarter).
                let (mv16, cost16) =
                    self.refine_qpel(cur, reference, mbx, mby, 0, fullpel.mv, median, lambda);
                mvs_full.set(mbx, mby, Mv::new(mv16.x >> 2, mv16.y >> 2));

                // Four-MV candidate: refine each 8x8 around the 16x16
                // winner.
                let mut mv4 = [mv16; 4];
                let mut cost4 = 2 * lambda; // mode-signalling overhead
                for k in 0..4 {
                    let sub = BlockRef {
                        plane: cur.y(),
                        x: mbx * 16 + (k % 2) * 8,
                        y: mby * 16 + (k / 2) * 8,
                        w: 8,
                        h: 8,
                    };
                    let sub_pred = if k == 0 { median } else { mv4[k - 1] };
                    let sub_full = diamond_search(
                        &self.dsp,
                        sub,
                        &reference.y,
                        Mv::new(mv16.x >> 2, mv16.y >> 2),
                        &SearchParams::new(self.config.search_range, lambda)
                            .with_pred(Mv::new(sub_pred.x >> 2, sub_pred.y >> 2)),
                    );
                    let (smv, scost) = self.refine_qpel(
                        cur,
                        reference,
                        mbx,
                        mby,
                        k + 1,
                        sub_full.mv,
                        sub_pred,
                        lambda,
                    );
                    mv4[k] = smv;
                    cost4 += scost;
                }
                let four_mv = cost4 < cost16;
                let (sel_mvs, inter_cost) = if four_mv {
                    (mv4, cost4)
                } else {
                    ([mv16; 4], cost16)
                };

                let intra_cost = self.mb_intra_activity(cur, mbx, mby);
                drop(me_zone);
                if intra_cost + 2048 < inter_cost {
                    w.put_bit(false);
                    w.put_bits(2, 2); // intra mode
                    self.code_intra_mb(w, cur, recon, mbx, mby, dc);
                    qfield.set(mbx, mby, Mv::ZERO);
                    mvs_full.set(mbx, mby, Mv::ZERO);
                    continue;
                }

                let (mut py, mut pcb, mut pcr) = ([0u8; 256], [0u8; 64], [0u8; 64]);
                predict_mb(
                    &self.dsp, reference, mbx, mby, &sel_mvs, four_mv, &mut py, &mut pcb, &mut pcr,
                );
                let (blocks, cbp) = self.transform_mb(cur, mbx, mby, &py, &pcb, &pcr);

                if !four_mv && sel_mvs[0] == Mv::ZERO && cbp == 0 {
                    w.put_bit(true); // skip
                    reconstruct_inter(
                        &self.dsp,
                        recon,
                        mbx,
                        mby,
                        &py,
                        &pcb,
                        &pcr,
                        &blocks,
                        0,
                        self.config.qscale,
                    );
                    qfield.set(mbx, mby, Mv::ZERO);
                    continue;
                }
                {
                    let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
                    w.put_bit(false);
                    if four_mv {
                        w.put_bits(1, 2);
                        let mut pred = median;
                        #[allow(clippy::needless_range_loop)]
                        for k in 0..4 {
                            w.put_se(i32::from(sel_mvs[k].x - pred.x));
                            w.put_se(i32::from(sel_mvs[k].y - pred.y));
                            pred = sel_mvs[k];
                        }
                        // Field entry: component-wise mean of the four.
                        let ax = (sel_mvs.iter().map(|m| i32::from(m.x)).sum::<i32>() >> 2) as i16;
                        let ay = (sel_mvs.iter().map(|m| i32::from(m.y)).sum::<i32>() >> 2) as i16;
                        qfield.set(mbx, mby, Mv::new(ax, ay));
                    } else {
                        w.put_bits(0, 2);
                        w.put_se(i32::from(sel_mvs[0].x - median.x));
                        w.put_se(i32::from(sel_mvs[0].y - median.y));
                        qfield.set(mbx, mby, sel_mvs[0]);
                    }
                    w.put_bits(u32::from(cbp), 6);
                    for (i, b) in blocks.iter().enumerate() {
                        if cbp & (1 << (5 - i)) != 0 {
                            write_coeffs(w, b, 0);
                        }
                    }
                }
                reconstruct_inter(
                    &self.dsp,
                    recon,
                    mbx,
                    mby,
                    &py,
                    &pcb,
                    &pcr,
                    &blocks,
                    cbp,
                    self.config.qscale,
                );
            }
            w.byte_align();
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn encode_b(
        &self,
        w: &mut BitWriter,
        cur: &Frame,
        recon: &mut Frame,
        display_index: u32,
        cur_full: &mut MvField,
        dc: &mut DcStores,
    ) {
        let fwd = self
            .prev_anchor
            .as_ref()
            .expect("B picture requires two anchors");
        let bwd = self
            .last_anchor
            .as_ref()
            .expect("B picture requires two anchors");
        let lambda = u32::from(self.config.qscale).max(1);
        for mby in 0..self.mbs_y {
            let mut row = BRowState::new();
            for mbx in 0..self.mbs_x {
                // Both directions' searches, the bi-prediction trial and
                // the mode decision are one motion-estimation zone.
                let me_zone = hdvb_trace::zone!(hdvb_trace::Stage::MotionEstimation);
                let block16 = BlockRef {
                    plane: cur.y(),
                    x: mbx * 16,
                    y: mby * 16,
                    w: 16,
                    h: 16,
                };
                let preds = Predictors::gather(cur_full, &bwd.mvs_fullpel, mbx, mby);
                let pf = SearchParams::new(self.config.search_range, lambda)
                    .with_pred(Mv::new(row.mv_pred.x >> 2, row.mv_pred.y >> 2));
                let f = epzs_search(
                    &self.dsp,
                    block16,
                    &fwd.y,
                    &preds,
                    &EpzsThresholds::default(),
                    &pf,
                );
                let pb = SearchParams::new(self.config.search_range, lambda)
                    .with_pred(Mv::new(row.mv_pred_bwd.x >> 2, row.mv_pred_bwd.y >> 2));
                let b = epzs_search(
                    &self.dsp,
                    block16,
                    &bwd.y,
                    &preds,
                    &EpzsThresholds::default(),
                    &pb,
                );
                cur_full.set(mbx, mby, f.mv);

                let (mv_f, cost_f) =
                    self.refine_qpel(cur, fwd, mbx, mby, 0, f.mv, row.mv_pred, lambda);
                let (mv_b, cost_b) =
                    self.refine_qpel(cur, bwd, mbx, mby, 0, b.mv, row.mv_pred_bwd, lambda);

                let (mut fy_buf, mut s1, mut s2) = ([0u8; 256], [0u8; 64], [0u8; 64]);
                let mut by_buf = [0u8; 256];
                predict_mb(
                    &self.dsp,
                    fwd,
                    mbx,
                    mby,
                    &[mv_f; 4],
                    false,
                    &mut fy_buf,
                    &mut s1,
                    &mut s2,
                );
                predict_mb(
                    &self.dsp,
                    bwd,
                    mbx,
                    mby,
                    &[mv_b; 4],
                    false,
                    &mut by_buf,
                    &mut s1,
                    &mut s2,
                );
                let mut bi_buf = [0u8; 256];
                self.dsp
                    .avg_block(&mut bi_buf, 16, &fy_buf, 16, &by_buf, 16, 16, 16);
                let cur_y = &cur.y().data()[mby * 16 * self.aw + mbx * 16..];
                let bi_sad = self.dsp.sad(cur_y, self.aw, &bi_buf, 16, 16, 16);
                let bi_cost =
                    bi_sad + lambda * (mv_bits(mv_f, row.mv_pred) + mv_bits(mv_b, row.mv_pred_bwd));

                let intra_cost = self.mb_intra_activity(cur, mbx, mby);
                let (mode, best_cost) = [cost_f, cost_b, bi_cost]
                    .iter()
                    .copied()
                    .enumerate()
                    .min_by_key(|&(_, c)| c)
                    .map(|(i, c)| (i as u8, c))
                    .unwrap_or((0, u32::MAX));
                drop(me_zone);
                if intra_cost + 2048 < best_cost {
                    w.put_bit(false);
                    w.put_bits(3, 2);
                    self.code_intra_mb(w, cur, recon, mbx, mby, dc);
                    row.reset_mv();
                    continue;
                }
                let (mut py, mut pcb, mut pcr) = ([0u8; 256], [0u8; 64], [0u8; 64]);
                build_b_prediction(
                    &self.dsp, fwd, bwd, mbx, mby, mode, mv_f, mv_b, &mut py, &mut pcb, &mut pcr,
                );
                let (blocks, cbp) = self.transform_mb(cur, mbx, mby, &py, &pcb, &pcr);

                // Direct-mode skip (MPEG-4 B direct): prediction from the
                // collocated anchor vectors costs a single bit.
                let (dir_f, dir_b) = direct_mvs(fwd, bwd, display_index, mbx, mby);
                let (mut dy_, mut dcb, mut dcr) = ([0u8; 256], [0u8; 64], [0u8; 64]);
                build_b_prediction(
                    &self.dsp, fwd, bwd, mbx, mby, 2, dir_f, dir_b, &mut dy_, &mut dcb, &mut dcr,
                );
                let (dblocks, dcbp) = self.transform_mb(cur, mbx, mby, &dy_, &dcb, &dcr);
                if dcbp == 0 {
                    w.put_bit(true);
                    reconstruct_inter(
                        &self.dsp,
                        recon,
                        mbx,
                        mby,
                        &dy_,
                        &dcb,
                        &dcr,
                        &dblocks,
                        0,
                        self.config.qscale,
                    );
                    continue;
                }
                {
                    let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
                    w.put_bit(false);
                    w.put_bits(u32::from(mode), 2);
                    if mode == 0 || mode == 2 {
                        w.put_se(i32::from(mv_f.x - row.mv_pred.x));
                        w.put_se(i32::from(mv_f.y - row.mv_pred.y));
                        row.mv_pred = mv_f;
                    }
                    if mode == 1 || mode == 2 {
                        w.put_se(i32::from(mv_b.x - row.mv_pred_bwd.x));
                        w.put_se(i32::from(mv_b.y - row.mv_pred_bwd.y));
                        row.mv_pred_bwd = mv_b;
                    }
                    w.put_bits(u32::from(cbp), 6);
                    for (i, bl) in blocks.iter().enumerate() {
                        if cbp & (1 << (5 - i)) != 0 {
                            write_coeffs(w, bl, 0);
                        }
                    }
                }
                reconstruct_inter(
                    &self.dsp,
                    recon,
                    mbx,
                    mby,
                    &py,
                    &pcb,
                    &pcr,
                    &blocks,
                    cbp,
                    self.config.qscale,
                );
            }
            w.byte_align();
        }
    }

    /// Two-stage sub-pel refinement: half-pel lattice then quarter-pel,
    /// for luma block `sub` (0 = whole 16×16, 1..=4 = 8×8 sub-block).
    /// Vectors are quarter-pel; returns (mv, cost).
    #[allow(clippy::too_many_arguments)]
    fn refine_qpel(
        &self,
        cur: &Frame,
        r: &RefPicture,
        mbx: usize,
        mby: usize,
        sub: usize,
        fullpel: Mv,
        pred_qpel: Mv,
        lambda: u32,
    ) -> (Mv, u32) {
        let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionEstimation);
        let (bx, by, bw, bh) = if sub == 0 {
            (mbx * 16, mby * 16, 16, 16)
        } else {
            let k = sub - 1;
            (mbx * 16 + (k % 2) * 8, mby * 16 + (k / 2) * 8, 8, 8)
        };
        let mut tmp = [0u8; 256];
        let cur_y = &cur.y().data()[by * self.aw + bx..];
        let mut cost_at = |qmv: Mv| -> u32 {
            let ix = bx as isize + isize::from(qmv.x >> 2) - 2;
            let iy = by as isize + isize::from(qmv.y >> 2) - 2;
            self.dsp.qpel_luma(
                &mut tmp,
                bw,
                r.y.row_from(ix, iy),
                r.y.stride(),
                (qmv.x & 3) as u8,
                (qmv.y & 3) as u8,
                bw,
                bh,
            );
            self.dsp.sad(cur_y, self.aw, &tmp, bw, bw, bh) + lambda * mv_bits(qmv, pred_qpel)
        };
        // Half-pel stage on the half-pel lattice (even quarter values).
        let center_h = fullpel.scaled(2);
        let initial = cost_at(center_h.scaled(2));
        let (best_h, cost_h) = subpel_refine(center_h, initial, SubpelStep::Half, |hmv| {
            cost_at(hmv.scaled(2))
        });
        // Quarter-pel stage.
        let center_q = best_h.scaled(2);
        subpel_refine(center_q, cost_h, SubpelStep::Quarter, cost_at)
    }

    /// Mean-removed SAD of the luma macroblock (intra cost estimate).
    fn mb_intra_activity(&self, cur: &Frame, mbx: usize, mby: usize) -> u32 {
        let data = cur.y().data();
        let base = mby * 16 * self.aw + mbx * 16;
        let mut sum = 0u32;
        for y in 0..16 {
            for x in 0..16 {
                sum += u32::from(data[base + y * self.aw + x]);
            }
        }
        let mean = (sum / 256) as i32;
        let mut act = 0u32;
        for y in 0..16 {
            for x in 0..16 {
                act += (i32::from(data[base + y * self.aw + x]) - mean).unsigned_abs();
            }
        }
        act
    }

    /// Transforms and quantises the six residual blocks; returns blocks
    /// and coded-block pattern.
    fn transform_mb(
        &self,
        cur: &Frame,
        mbx: usize,
        mby: usize,
        py: &[u8; 256],
        pcb: &[u8; 64],
        pcr: &[u8; 64],
    ) -> ([Block8; 6], u8) {
        let mut blocks = [[0i16; 64]; 6];
        let mut cbp = 0u8;
        let aw = self.aw;
        let _z = hdvb_trace::zone!(hdvb_trace::Stage::TransformQuant);
        for b in 0..6 {
            let (cur_slice, cur_stride, pred_slice, pred_stride): (&[u8], usize, &[u8], usize) =
                match b {
                    0..=3 => {
                        let bx = mbx * 16 + (b % 2) * 8;
                        let by = mby * 16 + (b / 2) * 8;
                        (
                            &cur.y().data()[by * aw + bx..],
                            aw,
                            &py[(b / 2) * 8 * 16 + (b % 2) * 8..],
                            16,
                        )
                    }
                    4 => (
                        &cur.cb().data()[mby * 8 * (aw / 2) + mbx * 8..],
                        aw / 2,
                        &pcb[..],
                        8,
                    ),
                    _ => (
                        &cur.cr().data()[mby * 8 * (aw / 2) + mbx * 8..],
                        aw / 2,
                        &pcr[..],
                        8,
                    ),
                };
            let mut block = [0i16; 64];
            self.dsp
                .diff_block8(&mut block, cur_slice, cur_stride, pred_slice, pred_stride);
            self.dsp.fdct8(&mut block);
            let nz = self.dsp.quant8(
                &mut block,
                &MPEG_DEFAULT_NONINTRA,
                self.config.qscale,
                false,
            );
            if nz > 0 {
                cbp |= 1 << (5 - b);
            }
            blocks[b] = block;
        }
        (blocks, cbp)
    }
}

/// Median motion-vector predictor from the left, top and top-right
/// macroblocks' quarter-pel vectors.
pub(crate) fn median_pred(qfield: &MvField, mbx: usize, mby: usize) -> Mv {
    let (x, y) = (mbx as isize, mby as isize);
    median3(
        qfield.get(x - 1, y),
        qfield.get(x, y - 1),
        qfield.get(x + 1, y - 1),
    )
}

/// Source-plane geometry of intra block `b`.
fn intra_geometry(
    cur: &Frame,
    mbx: usize,
    mby: usize,
    b: usize,
) -> (&Plane, usize, usize, usize, usize) {
    match b {
        0..=3 => {
            let bx = mbx * 16 + (b % 2) * 8;
            let by = mby * 16 + (b / 2) * 8;
            (cur.y(), 0, 0, bx, by)
        }
        4 => (cur.cb(), 0, 0, mbx * 8, mby * 8),
        _ => (cur.cr(), 0, 0, mbx * 8, mby * 8),
    }
}

/// Recon-plane geometry of intra block `b`.
fn intra_recon_geometry(
    recon: &mut Frame,
    mbx: usize,
    mby: usize,
    b: usize,
) -> (usize, &mut Plane, usize, usize) {
    match b {
        0..=3 => {
            let bx = mbx * 16 + (b % 2) * 8;
            let by = mby * 16 + (b / 2) * 8;
            (0, recon.y_mut(), bx, by)
        }
        4 => (0, recon.cb_mut(), mbx * 8, mby * 8),
        _ => (0, recon.cr_mut(), mbx * 8, mby * 8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdvb_dsp::SimdLevel;

    fn textured_frame(w: usize, h: usize, phase: f64) -> Frame {
        let mut f = Frame::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let v = 128.0
                    + 55.0 * ((x as f64 + phase) * 0.2 + y as f64 * 0.1).sin()
                    + 40.0 * (y as f64 * 0.15 - (x as f64 + phase) * 0.05).cos();
                f.y_mut().set(x, y, v.clamp(0.0, 255.0) as u8);
            }
        }
        for y in 0..h / 2 {
            for x in 0..w / 2 {
                f.cb_mut().set(x, y, 120 + ((x + y) % 16) as u8);
                f.cr_mut().set(x, y, 130 - ((x * 2 + y) % 16) as u8);
            }
        }
        f
    }

    #[test]
    fn gop_pattern_matches_paper() {
        let mut enc = Mpeg4Encoder::new(EncoderConfig::new(64, 48)).unwrap();
        let mut all = Vec::new();
        for i in 0..7 {
            all.extend(enc.encode(&textured_frame(64, 48, i as f64)).unwrap());
        }
        all.extend(enc.flush().unwrap());
        let types: Vec<FrameType> = all.iter().map(|p| p.frame_type).collect();
        assert_eq!(
            types,
            vec![
                FrameType::I,
                FrameType::P,
                FrameType::B,
                FrameType::B,
                FrameType::P,
                FrameType::B,
                FrameType::B
            ]
        );
    }

    #[test]
    fn dc_store_gradient_rule() {
        let mut s = DcStore::new(4, 4);
        // No neighbours: default.
        assert_eq!(s.predict(0, 0), 128);
        s.set(0, 0, 100); // B for (1,1)
        s.set(1, 0, 110); // C for (1,1)
        s.set(0, 1, 104); // A for (1,1)
                          // |A-B| = 4 < |B-C| = 10 -> predict from C.
        assert_eq!(s.predict(1, 1), 110);
        s.set(0, 1, 150);
        // |A-B| = 50 >= 10 -> predict from A.
        assert_eq!(s.predict(1, 1), 150);
    }

    #[test]
    fn higher_qscale_means_fewer_bits() {
        let frame = textured_frame(64, 48, 0.0);
        let bits = |q: u16| {
            let mut enc = Mpeg4Encoder::new(EncoderConfig::new(64, 48).with_qscale(q)).unwrap();
            enc.encode(&frame).unwrap()[0].bits()
        };
        assert!(bits(20) < bits(2));
    }

    #[test]
    fn scalar_and_simd_streams_are_identical() {
        let mut scalar =
            Mpeg4Encoder::new(EncoderConfig::new(64, 48).with_simd(SimdLevel::Scalar)).unwrap();
        let mut simd =
            Mpeg4Encoder::new(EncoderConfig::new(64, 48).with_simd(SimdLevel::Sse2)).unwrap();
        for i in 0..5 {
            let f = textured_frame(64, 48, i as f64 * 1.3);
            assert_eq!(scalar.encode(&f).unwrap(), simd.encode(&f).unwrap());
        }
        assert_eq!(scalar.flush().unwrap(), simd.flush().unwrap());
    }
}
