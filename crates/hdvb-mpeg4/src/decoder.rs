use crate::blocks::read_coeffs;
use crate::encoder::{
    build_b_prediction, dc_coords, direct_mvs, median_pred, predict_mb, reconstruct_inter,
    store_block_clamped, BRowState, DcStores, RefPicture, MAGIC,
};
use crate::types::{CodecError, FrameType, MAX_DECODE_PIXELS};
use hdvb_bits::{BitReader, CorruptKind};
use hdvb_dsp::{Dsp, SimdLevel, MPEG_DEFAULT_INTRA};
use hdvb_frame::{align_up, Frame, FramePool};
use hdvb_me::{Mv, MvField};
use hdvb_par::CancelToken;

/// Per-packet working storage, reused while the coded geometry stays the
/// same so steady-state decoding performs no heap allocation. All
/// buffers are fully overwritten (or cleared) per picture.
struct DecScratch {
    recon: Frame,
    mvs_full: MvField,
    mvs_qpel: MvField,
    dc: DcStores,
}

/// The MPEG-4-ASP-class decoder (mirror of
/// [`Mpeg4Encoder`](crate::Mpeg4Encoder)).
pub struct Mpeg4Decoder {
    dsp: Dsp,
    prev_anchor: Option<RefPicture>,
    last_anchor: Option<RefPicture>,
    pending: Option<Frame>,
    /// Reusable per-packet working storage.
    scratch: Option<DecScratch>,
    /// Cooperative cancellation, checkpointed at each packet boundary.
    cancel: CancelToken,
}

impl Default for Mpeg4Decoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Mpeg4Decoder {
    /// Creates a decoder at the CPU's best SIMD level.
    pub fn new() -> Self {
        Self::with_simd(SimdLevel::detect())
    }

    /// Creates a decoder at an explicit SIMD level.
    pub fn with_simd(simd: SimdLevel) -> Self {
        Mpeg4Decoder {
            dsp: Dsp::new(simd),
            prev_anchor: None,
            last_anchor: None,
            pending: None,
            scratch: None,
            cancel: CancelToken::never(),
        }
    }

    /// Installs a cancellation token checked at each packet boundary,
    /// so a deadline or shutdown stops the decoder before the next
    /// packet with [`CodecError::Cancelled`].
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// Decodes one packet; returns display-order frames.
    ///
    /// # Errors
    ///
    /// [`CodecError::Corrupt`] on malformed input, carrying the bit
    /// offset the parse stopped at and a [`CorruptKind`] classification.
    /// A failed packet leaves the decoder's reference state untouched.
    pub fn decode(&mut self, data: &[u8]) -> Result<Vec<Frame>, CodecError> {
        let mut out = Vec::new();
        self.decode_into(data, &mut out)?;
        Ok(out)
    }

    /// Allocation-free form of [`decode`](Self::decode): appends
    /// display-order frames to `out`. Output frames come from the
    /// global [`FramePool`]; return them with `FramePool::global().put`
    /// to make steady-state decoding allocation-free.
    ///
    /// # Errors
    ///
    /// Same contract as [`decode`](Self::decode); on error nothing is
    /// appended to `out`.
    pub fn decode_into(&mut self, data: &[u8], out: &mut Vec<Frame>) -> Result<(), CodecError> {
        if self.cancel.is_cancelled() {
            return Err(CodecError::Cancelled);
        }
        let mut r = BitReader::new(data);
        let result = self.decode_inner(&mut r, out);
        let pos = r.bit_pos();
        result.map_err(|e| e.at_bit(pos))
    }

    fn decode_inner(
        &mut self,
        r: &mut BitReader<'_>,
        out: &mut Vec<Frame>,
    ) -> Result<(), CodecError> {
        if r.get_bits(16)? != MAGIC {
            return Err(CodecError::corrupt(
                CorruptKind::BadMagic,
                "bad picture magic",
            ));
        }
        let frame_type = FrameType::from_bits(r.get_bits(2)?)
            .ok_or_else(|| CodecError::corrupt(CorruptKind::BadHeaderField, "bad frame type"))?;
        let display_index = r.get_bits(32)?;
        let width = r.get_ue()? as usize;
        let height = r.get_ue()? as usize;
        let qscale = r.get_ue()?;
        if width < 16
            || height < 16
            || width > 16384
            || height > 16384
            || !width.is_multiple_of(2)
            || !height.is_multiple_of(2)
            || width.saturating_mul(height) > MAX_DECODE_PIXELS
        {
            return Err(CodecError::corrupt(
                CorruptKind::BadDimensions,
                format!("implausible dimensions {width}x{height}"),
            ));
        }
        if !(1..=62).contains(&qscale) {
            return Err(CodecError::corrupt(
                CorruptKind::BadHeaderField,
                "qscale out of range",
            ));
        }
        let qscale = qscale as u16;
        let aw = align_up(width, 16);
        let ah = align_up(height, 16);
        let (mbs_x, mbs_y) = (aw / 16, ah / 16);

        let mut scratch = match self.scratch.take() {
            Some(s) if s.recon.width() == aw && s.recon.height() == ah => s,
            other => {
                let _z = hdvb_trace::zone!(hdvb_trace::Stage::Reconstruct);
                if let Some(s) = other {
                    FramePool::global().put(s.recon);
                }
                DecScratch {
                    recon: FramePool::global().take(aw, ah),
                    mvs_full: MvField::new(mbs_x, mbs_y),
                    mvs_qpel: MvField::new(mbs_x, mbs_y),
                    dc: DcStores::new(mbs_x, mbs_y),
                }
            }
        };
        let result = self.decode_picture(
            r,
            frame_type,
            display_index,
            qscale,
            width,
            height,
            &mut scratch,
            out,
        );
        self.scratch = Some(scratch);
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn decode_picture(
        &mut self,
        r: &mut BitReader<'_>,
        frame_type: FrameType,
        display_index: u32,
        qscale: u16,
        width: usize,
        height: usize,
        scratch: &mut DecScratch,
        out: &mut Vec<Frame>,
    ) -> Result<(), CodecError> {
        let DecScratch {
            recon,
            mvs_full,
            mvs_qpel,
            dc,
        } = scratch;
        let aw = recon.width();
        let ah = recon.height();
        let (mbs_x, mbs_y) = (aw / 16, ah / 16);
        // Recycled scratch carries the previous picture's state; the
        // decode paths only write the entries they code, so clear the
        // motion fields and DC predictors per picture. `recon` needs no
        // clearing: every macroblock path overwrites its samples.
        mvs_full.clear();
        mvs_qpel.clear();
        dc.reset();
        match frame_type {
            FrameType::I => self.decode_i(r, recon, qscale, mbs_x, mbs_y, dc)?,
            FrameType::P => {
                self.decode_p(r, recon, mvs_full, mvs_qpel, qscale, mbs_x, mbs_y, dc)?
            }
            FrameType::B => self.decode_b(r, recon, display_index, qscale, mbs_x, mbs_y, dc)?,
        }

        let display = {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::Reconstruct);
            let mut d = FramePool::global().take(width, height);
            d.crop_from(recon);
            d
        };
        if frame_type == FrameType::B {
            out.push(display);
        } else {
            if let Some(prev) = self.pending.take() {
                out.push(prev);
            }
            self.pending = Some(display);
            let recycled = self.prev_anchor.take();
            self.prev_anchor = self.last_anchor.take();
            self.last_anchor = Some(match recycled {
                Some(mut rp) if rp.matches(aw, ah) => {
                    rp.refill_from(recon, mvs_full, mvs_qpel, display_index);
                    rp
                }
                _ => RefPicture::from_frame(
                    recon,
                    std::mem::replace(mvs_full, MvField::new(mbs_x, mbs_y)),
                    std::mem::replace(mvs_qpel, MvField::new(mbs_x, mbs_y)),
                    display_index,
                ),
            });
        }
        Ok(())
    }

    /// Returns the final buffered anchor at end of stream.
    pub fn flush(&mut self) -> Vec<Frame> {
        let mut out = Vec::new();
        self.flush_into(&mut out);
        out
    }

    /// Allocation-free form of [`flush`](Self::flush).
    pub fn flush_into(&mut self, out: &mut Vec<Frame>) {
        if let Some(prev) = self.pending.take() {
            out.push(prev);
        }
    }

    fn decode_i(
        &mut self,
        r: &mut BitReader<'_>,
        recon: &mut Frame,
        qscale: u16,
        mbs_x: usize,
        mbs_y: usize,
        dc: &mut DcStores,
    ) -> Result<(), CodecError> {
        for mby in 0..mbs_y {
            for mbx in 0..mbs_x {
                self.decode_intra_mb(r, recon, qscale, mbx, mby, dc)?;
            }
            r.byte_align();
        }
        Ok(())
    }

    fn decode_intra_mb(
        &mut self,
        r: &mut BitReader<'_>,
        recon: &mut Frame,
        qscale: u16,
        mbx: usize,
        mby: usize,
        dc: &mut DcStores,
    ) -> Result<(), CodecError> {
        // First pass: entropy decode all six blocks and DC levels.
        let mut blocks = [[0i16; 64]; 6];
        let mut dc_levels = [0i32; 6];
        {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
            let cbp = r.get_bits(6)? as u8;
            for b in 0..6 {
                let store = match b {
                    0..=3 => &mut dc.y,
                    4 => &mut dc.cb,
                    _ => &mut dc.cr,
                };
                let (gx, gy) = dc_coords(mbx, mby, b);
                let pred = store.predict(gx, gy);
                dc_levels[b] = (pred + r.get_se()?).clamp(0, 255);
                store.set(gx, gy, dc_levels[b]);
                if cbp & (1 << (5 - b)) != 0 {
                    read_coeffs(r, &mut blocks[b], 1)?;
                }
            }
        }
        // Second pass: reconstruction.
        let _z = hdvb_trace::zone!(hdvb_trace::Stage::Reconstruct);
        for (b, block) in blocks.iter_mut().enumerate() {
            self.dsp.dequant8(block, &MPEG_DEFAULT_INTRA, qscale, true);
            block[0] = (dc_levels[b] * 8) as i16;
            self.dsp.idct8(block);
            let (plane, bx, by) = match b {
                0..=3 => (
                    recon.y_mut(),
                    mbx * 16 + (b % 2) * 8,
                    mby * 16 + (b / 2) * 8,
                ),
                4 => (recon.cb_mut(), mbx * 8, mby * 8),
                _ => (recon.cr_mut(), mbx * 8, mby * 8),
            };
            store_block_clamped(plane, bx, by, block);
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn decode_p(
        &mut self,
        r: &mut BitReader<'_>,
        recon: &mut Frame,
        mvs_full: &mut MvField,
        qfield: &mut MvField,
        qscale: u16,
        mbs_x: usize,
        mbs_y: usize,
        dc: &mut DcStores,
    ) -> Result<(), CodecError> {
        let reference = self.last_anchor.take().ok_or_else(|| {
            CodecError::corrupt(CorruptKind::MissingReference, "P picture without reference")
        })?;
        let result = (|| -> Result<(), CodecError> {
            check_ref_geometry(&reference, mbs_x, mbs_y)?;
            for mby in 0..mbs_y {
                for mbx in 0..mbs_x {
                    let skip = r.get_bit()?;
                    if skip {
                        let (mut py, mut pcb, mut pcr) = ([0u8; 256], [0u8; 64], [0u8; 64]);
                        predict_mb(
                            &self.dsp,
                            &reference,
                            mbx,
                            mby,
                            &[Mv::ZERO; 4],
                            false,
                            &mut py,
                            &mut pcb,
                            &mut pcr,
                        );
                        reconstruct_inter(
                            &self.dsp,
                            recon,
                            mbx,
                            mby,
                            &py,
                            &pcb,
                            &pcr,
                            &[[0i16; 64]; 6],
                            0,
                            qscale,
                        );
                        qfield.set(mbx, mby, Mv::ZERO);
                        continue;
                    }
                    let mode = r.get_bits(2)?;
                    match mode {
                        2 => {
                            self.decode_intra_mb(r, recon, qscale, mbx, mby, dc)?;
                            qfield.set(mbx, mby, Mv::ZERO);
                        }
                        0 => {
                            let median = median_pred(qfield, mbx, mby);
                            let mv = Mv::new(
                                read_mv_component(r, median.x)?,
                                read_mv_component(r, median.y)?,
                            );
                            qfield.set(mbx, mby, mv);
                            mvs_full.set(mbx, mby, Mv::new(mv.x >> 2, mv.y >> 2));
                            self.decode_inter_residual(
                                r, recon, &reference, mbx, mby, &[mv; 4], false, qscale,
                            )?;
                        }
                        1 => {
                            let median = median_pred(qfield, mbx, mby);
                            let mut mvs = [Mv::ZERO; 4];
                            let mut pred = median;
                            for m in &mut mvs {
                                *m = Mv::new(
                                    read_mv_component(r, pred.x)?,
                                    read_mv_component(r, pred.y)?,
                                );
                                pred = *m;
                            }
                            let ax = (mvs.iter().map(|m| i32::from(m.x)).sum::<i32>() >> 2) as i16;
                            let ay = (mvs.iter().map(|m| i32::from(m.y)).sum::<i32>() >> 2) as i16;
                            qfield.set(mbx, mby, Mv::new(ax, ay));
                            mvs_full.set(mbx, mby, Mv::new(ax >> 2, ay >> 2));
                            self.decode_inter_residual(
                                r, recon, &reference, mbx, mby, &mvs, true, qscale,
                            )?;
                        }
                        _ => {
                            return Err(CodecError::corrupt(
                                CorruptKind::BadMacroblockType,
                                "reserved P macroblock mode",
                            ))
                        }
                    }
                }
                r.byte_align();
            }
            Ok(())
        })();
        self.last_anchor = Some(reference);
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn decode_inter_residual(
        &mut self,
        r: &mut BitReader<'_>,
        recon: &mut Frame,
        reference: &RefPicture,
        mbx: usize,
        mby: usize,
        mvs: &[Mv; 4],
        four_mv: bool,
        qscale: u16,
    ) -> Result<(), CodecError> {
        check_window(reference, mbx, mby, mvs, four_mv)?;
        let mut blocks = [[0i16; 64]; 6];
        let cbp = {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
            let cbp = r.get_bits(6)? as u8;
            for (i, b) in blocks.iter_mut().enumerate() {
                if cbp & (1 << (5 - i)) != 0 {
                    read_coeffs(r, b, 0)?;
                }
            }
            cbp
        };
        let (mut py, mut pcb, mut pcr) = ([0u8; 256], [0u8; 64], [0u8; 64]);
        predict_mb(
            &self.dsp, reference, mbx, mby, mvs, four_mv, &mut py, &mut pcb, &mut pcr,
        );
        reconstruct_inter(
            &self.dsp, recon, mbx, mby, &py, &pcb, &pcr, &blocks, cbp, qscale,
        );
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn decode_b(
        &mut self,
        r: &mut BitReader<'_>,
        recon: &mut Frame,
        display_index: u32,
        qscale: u16,
        mbs_x: usize,
        mbs_y: usize,
        dc: &mut DcStores,
    ) -> Result<(), CodecError> {
        let fwd = self.prev_anchor.take().ok_or_else(|| {
            CodecError::corrupt(CorruptKind::MissingReference, "B picture without anchors")
        })?;
        let bwd = match self.last_anchor.take() {
            Some(b) => b,
            None => {
                self.prev_anchor = Some(fwd);
                return Err(CodecError::corrupt(
                    CorruptKind::MissingReference,
                    "B picture without anchors",
                ));
            }
        };
        let result = (|| -> Result<(), CodecError> {
            check_ref_geometry(&fwd, mbs_x, mbs_y)?;
            check_ref_geometry(&bwd, mbs_x, mbs_y)?;
            for mby in 0..mbs_y {
                let mut row = BRowState::new();
                for mbx in 0..mbs_x {
                    let skip = r.get_bit()?;
                    let (mut py, mut pcb, mut pcr) = ([0u8; 256], [0u8; 64], [0u8; 64]);
                    if skip {
                        // Direct-mode skip: vectors from the collocated
                        // anchor motion, bidirectional prediction.
                        let (mv_f, mv_b) = direct_mvs(&fwd, &bwd, display_index, mbx, mby);
                        check_b_window(&fwd, &bwd, mbx, mby, 2, mv_f, mv_b)?;
                        build_b_prediction(
                            &self.dsp, &fwd, &bwd, mbx, mby, 2, mv_f, mv_b, &mut py, &mut pcb,
                            &mut pcr,
                        );
                        reconstruct_inter(
                            &self.dsp,
                            recon,
                            mbx,
                            mby,
                            &py,
                            &pcb,
                            &pcr,
                            &[[0i16; 64]; 6],
                            0,
                            qscale,
                        );
                        continue;
                    }
                    let mode = r.get_bits(2)? as u8;
                    if mode == 3 {
                        self.decode_intra_mb(r, recon, qscale, mbx, mby, dc)?;
                        row.reset_mv();
                        continue;
                    }
                    let mut mv_f = row.last_b.1;
                    let mut mv_b = row.last_b.2;
                    if mode == 0 || mode == 2 {
                        mv_f = Mv::new(
                            read_mv_component(r, row.mv_pred.x)?,
                            read_mv_component(r, row.mv_pred.y)?,
                        );
                        row.mv_pred = mv_f;
                    }
                    if mode == 1 || mode == 2 {
                        mv_b = Mv::new(
                            read_mv_component(r, row.mv_pred_bwd.x)?,
                            read_mv_component(r, row.mv_pred_bwd.y)?,
                        );
                        row.mv_pred_bwd = mv_b;
                    }
                    row.last_b = (mode, mv_f, mv_b);
                    check_b_window(&fwd, &bwd, mbx, mby, mode, mv_f, mv_b)?;
                    let mut blocks = [[0i16; 64]; 6];
                    let cbp = {
                        let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
                        let cbp = r.get_bits(6)? as u8;
                        for (i, b) in blocks.iter_mut().enumerate() {
                            if cbp & (1 << (5 - i)) != 0 {
                                read_coeffs(r, b, 0)?;
                            }
                        }
                        cbp
                    };
                    build_b_prediction(
                        &self.dsp, &fwd, &bwd, mbx, mby, mode, mv_f, mv_b, &mut py, &mut pcb,
                        &mut pcr,
                    );
                    reconstruct_inter(
                        &self.dsp, recon, mbx, mby, &py, &pcb, &pcr, &blocks, cbp, qscale,
                    );
                }
                r.byte_align();
            }
            Ok(())
        })();
        self.prev_anchor = Some(fwd);
        self.last_anchor = Some(bwd);
        result
    }
}

fn read_mv_component(r: &mut BitReader<'_>, pred: i16) -> Result<i16, CodecError> {
    let v = i32::from(pred) + r.get_se()?;
    if (-4096..=4095).contains(&v) {
        Ok(v as i16)
    } else {
        Err(CodecError::corrupt(
            CorruptKind::BadMotionVector,
            format!("motion vector component {v} out of range"),
        ))
    }
}

fn bad_mv(mbx: usize, mby: usize, mv: Mv) -> CodecError {
    CodecError::corrupt(
        CorruptKind::BadMotionVector,
        format!(
            "mv ({},{}) at mb ({mbx},{mby}) reads outside the padded reference",
            mv.x, mv.y
        ),
    )
}

/// Rejects inter pictures whose coded geometry disagrees with the
/// reference they predict from (a corrupt packet can otherwise drive
/// motion compensation beyond the smaller reference's planes).
fn check_ref_geometry(rp: &RefPicture, mbs_x: usize, mbs_y: usize) -> Result<(), CodecError> {
    if rp.y.width() == mbs_x * 16 && rp.y.height() == mbs_y * 16 {
        Ok(())
    } else {
        Err(CodecError::corrupt(
            CorruptKind::MissingReference,
            format!(
                "picture geometry {}x{} does not match reference {}x{}",
                mbs_x * 16,
                mbs_y * 16,
                rp.y.width(),
                rp.y.height()
            ),
        ))
    }
}

/// Validates the read windows of `predict_mb` for untrusted vectors:
/// quarter-pel luma fetches (16-wide: 21×21 worst case, 8-wide: 13×13)
/// plus the derived chroma half-pel fetch (9×9 worst case).
fn check_window(
    rp: &RefPicture,
    mbx: usize,
    mby: usize,
    mvs: &[Mv; 4],
    four_mv: bool,
) -> Result<(), CodecError> {
    if four_mv {
        for (k, mv) in mvs.iter().enumerate() {
            let bx = (mbx * 16 + (k % 2) * 8) as isize;
            let by = (mby * 16 + (k / 2) * 8) as isize;
            let ix = bx + isize::from(mv.x >> 2) - 2;
            let iy = by + isize::from(mv.y >> 2) - 2;
            if !rp.y.window_in_bounds(ix, iy, 13, 13) {
                return Err(bad_mv(mbx, mby, *mv));
            }
        }
    } else {
        let mv = mvs[0];
        let ix = (mbx * 16) as isize + isize::from(mv.x >> 2) - 2;
        let iy = (mby * 16) as isize + isize::from(mv.y >> 2) - 2;
        if !rp.y.window_in_bounds(ix, iy, 21, 21) {
            return Err(bad_mv(mbx, mby, mv));
        }
    }
    let sx = mvs.iter().map(|m| i32::from(m.x)).sum::<i32>() >> 4;
    let sy = mvs.iter().map(|m| i32::from(m.y)).sum::<i32>() >> 4;
    let cx = (mbx * 8) as isize + (sx >> 1) as isize;
    let cy = (mby * 8) as isize + (sy >> 1) as isize;
    if !rp.cb.window_in_bounds(cx, cy, 9, 9) {
        return Err(bad_mv(mbx, mby, mvs[0]));
    }
    Ok(())
}

/// Window-checks the vectors a B macroblock will actually use: forward
/// for modes 0/2, backward for modes 1/2 (mode 3 is intra).
fn check_b_window(
    fwd: &RefPicture,
    bwd: &RefPicture,
    mbx: usize,
    mby: usize,
    mode: u8,
    mv_f: Mv,
    mv_b: Mv,
) -> Result<(), CodecError> {
    if mode == 0 || mode == 2 {
        check_window(fwd, mbx, mby, &[mv_f; 4], false)?;
    }
    if mode == 1 || mode == 2 {
        check_window(bwd, mbx, mby, &[mv_b; 4], false)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Mpeg4Encoder;
    use crate::types::EncoderConfig;
    use hdvb_frame::SequencePsnr;

    fn moving_frame(w: usize, h: usize, t: f64) -> Frame {
        let mut f = Frame::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let v = 128.0
                    + 50.0 * ((x as f64 - 1.5 * t) * 0.17 + y as f64 * 0.06).sin()
                    + 45.0 * ((y as f64 + 0.5 * t) * 0.11).cos();
                f.y_mut().set(x, y, v.clamp(0.0, 255.0) as u8);
            }
        }
        for y in 0..h / 2 {
            for x in 0..w / 2 {
                f.cb_mut()
                    .set(x, y, (118 + (x + y + t as usize) % 20) as u8);
                f.cr_mut().set(x, y, (134 - (x + 2 * y) % 18) as u8);
            }
        }
        f
    }

    fn roundtrip(qscale: u16, frames: usize, b_frames: u8) -> (Vec<Frame>, Vec<Frame>) {
        let (w, h) = (64, 48);
        let config = EncoderConfig::new(w, h)
            .with_qscale(qscale)
            .with_b_frames(b_frames);
        let mut enc = Mpeg4Encoder::new(config).expect("mpeg4 encoder: config rejected");
        let mut dec = Mpeg4Decoder::new();
        let originals: Vec<Frame> = (0..frames).map(|i| moving_frame(w, h, i as f64)).collect();
        let mut packets = Vec::new();
        for f in &originals {
            packets.extend(enc.encode(f).expect("mpeg4 encoder: encode failed"));
        }
        packets.extend(enc.flush().expect("mpeg4 encoder: flush failed"));
        let mut decoded = Vec::new();
        for p in &packets {
            decoded.extend(dec.decode(&p.data).expect("mpeg4 decoder: packet rejected"));
        }
        decoded.extend(dec.flush());
        (originals, decoded)
    }

    #[test]
    fn intra_roundtrip_quality() {
        let (orig, dec) = roundtrip(4, 1, 2);
        assert_eq!(dec.len(), 1);
        let mut acc = SequencePsnr::new();
        acc.add(&orig[0], &dec[0]);
        assert!(acc.y_psnr() > 30.0, "psnr {}", acc.y_psnr());
    }

    #[test]
    fn ipbb_roundtrip_in_display_order() {
        let (orig, dec) = roundtrip(4, 7, 2);
        assert_eq!(dec.len(), 7);
        for (i, (o, d)) in orig.iter().zip(&dec).enumerate() {
            let mut acc = SequencePsnr::new();
            acc.add(o, d);
            assert!(acc.y_psnr() > 27.0, "frame {i}: {:.2}", acc.y_psnr());
        }
    }

    #[test]
    fn ipp_roundtrip() {
        let (orig, dec) = roundtrip(6, 5, 0);
        assert_eq!(dec.len(), 5);
        for (o, d) in orig.iter().zip(&dec) {
            let mut acc = SequencePsnr::new();
            acc.add(o, d);
            assert!(acc.y_psnr() > 26.0);
        }
    }

    #[test]
    fn direct_mode_makes_b_frames_cheap_on_steady_motion() {
        // On a constant pan the collocated anchor vectors predict the B
        // frames well (bidirectional averaging + direct-mode skips), so
        // B pictures must be clearly cheaper than P pictures.
        let (w, h) = (96, 80);
        let mut enc =
            Mpeg4Encoder::new(EncoderConfig::new(w, h)).expect("mpeg4 encoder: config rejected");
        let mut p_bits = 0u64;
        let mut p_count = 0u64;
        let mut b_bits = 0u64;
        let mut b_count = 0u64;
        let mut tally = |packets: Vec<crate::types::Packet>| {
            for p in packets {
                match p.frame_type {
                    FrameType::P => {
                        p_bits += p.bits();
                        p_count += 1;
                    }
                    FrameType::B => {
                        b_bits += p.bits();
                        b_count += 1;
                    }
                    FrameType::I => {}
                }
            }
        };
        for t in 0..13 {
            tally(
                enc.encode(&moving_frame(w, h, t as f64))
                    .expect("mpeg4 encoder: encode failed"),
            );
        }
        tally(enc.flush().expect("mpeg4 encoder: flush failed"));
        assert!(p_count >= 3 && b_count >= 6);
        let p_avg = p_bits / p_count;
        let b_avg = b_bits / b_count;
        assert!(
            b_avg * 10 < p_avg * 9,
            "B average {b_avg} not clearly below P average {p_avg}"
        );
    }

    #[test]
    fn decode_is_simd_level_independent() {
        let (w, h) = (64, 48);
        let mut enc =
            Mpeg4Encoder::new(EncoderConfig::new(w, h)).expect("mpeg4 encoder: config rejected");
        let mut packets = Vec::new();
        for i in 0..5 {
            packets.extend(
                enc.encode(&moving_frame(w, h, i as f64))
                    .expect("mpeg4 encoder: encode failed"),
            );
        }
        packets.extend(enc.flush().expect("mpeg4 encoder: flush failed"));
        let mut a = Mpeg4Decoder::with_simd(SimdLevel::Scalar);
        let mut b = Mpeg4Decoder::with_simd(SimdLevel::Sse2);
        let mut oa = Vec::new();
        let mut ob = Vec::new();
        for p in &packets {
            oa.extend(
                a.decode(&p.data)
                    .expect("mpeg4 decoder (scalar): packet rejected"),
            );
            ob.extend(
                b.decode(&p.data)
                    .expect("mpeg4 decoder (sse2): packet rejected"),
            );
        }
        oa.extend(a.flush());
        ob.extend(b.flush());
        assert_eq!(oa, ob);
    }

    #[test]
    fn corrupt_and_truncated_inputs_error_not_panic() {
        let (w, h) = (64, 48);
        let mut enc =
            Mpeg4Encoder::new(EncoderConfig::new(w, h)).expect("mpeg4 encoder: config rejected");
        let packets = enc
            .encode(&moving_frame(w, h, 0.0))
            .expect("mpeg4 encoder: encode failed");
        let data = &packets[0].data;
        for cut in [0, 3, 7, data.len() / 3, data.len() - 1] {
            let mut dec = Mpeg4Decoder::new();
            let _ = dec.decode(&data[..cut]);
        }
        let mut dec = Mpeg4Decoder::new();
        assert!(dec.decode(&[0u8; 64]).is_err());
    }

    #[test]
    fn b_without_anchors_is_error() {
        let (w, h) = (64, 48);
        let mut enc =
            Mpeg4Encoder::new(EncoderConfig::new(w, h)).expect("mpeg4 encoder: config rejected");
        let mut packets = Vec::new();
        for i in 0..4 {
            packets.extend(
                enc.encode(&moving_frame(w, h, i as f64))
                    .expect("mpeg4 encoder: encode failed"),
            );
        }
        packets.extend(enc.flush().expect("mpeg4 encoder: flush failed"));
        let b_packet = packets
            .iter()
            .find(|p| p.frame_type == FrameType::B)
            .expect("mpeg4 encoder: stream contains no B packet");
        let mut dec = Mpeg4Decoder::new();
        assert!(dec.decode(&b_packet.data).is_err());
    }
}
