//! The 5/3 reversible integer wavelet (LeGall lifting), as used by
//! JPEG 2000's lossless path, in a separable multi-level 2-D form.

/// Subband geometry of a multi-level decomposition of a `w`×`h` plane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Subbands {
    /// Plane width.
    pub w: usize,
    /// Plane height.
    pub h: usize,
    /// Decomposition levels (≥ 1).
    pub levels: u32,
}

impl Subbands {
    /// Low-band dimensions after `l` splits (ceil division per split).
    pub fn low_dims(&self, l: u32) -> (usize, usize) {
        let mut w = self.w;
        let mut h = self.h;
        for _ in 0..l {
            w = w.div_ceil(2);
            h = h.div_ceil(2);
        }
        (w, h)
    }
}

fn mirror(idx: isize, n: usize) -> usize {
    // Whole-sample symmetric extension: ... 2 1 | 0 1 2 ... n-1 | n-2 ...
    let n = n as isize;
    let mut i = idx;
    if i < 0 {
        i = -i;
    }
    if i >= n {
        i = 2 * (n - 1) - i;
    }
    i.clamp(0, n - 1) as usize
}

/// One forward 1-D 5/3 lifting pass over `x[0..n]`, writing low
/// coefficients to `out[0..ceil(n/2)]` and highs after them.
fn fwd_1d(x: &[i32], out: &mut [i32]) {
    let n = x.len();
    if n == 1 {
        out[0] = x[0];
        return;
    }
    let nl = n.div_ceil(2);
    let nh = n / 2;
    // Predict: d[i] = x[2i+1] - floor((x[2i] + x[2i+2]) / 2)
    for i in 0..nh {
        let a = x[2 * i];
        let b = x[mirror(2 * i as isize + 2, n)];
        out[nl + i] = x[2 * i + 1] - ((a + b) >> 1);
    }
    // Update: s[i] = x[2i] + floor((d[i-1] + d[i] + 2) / 4)
    for i in 0..nl {
        let dm1 = out[nl + mirror(i as isize - 1, nh.max(1))];
        let d0 = out[nl + mirror(i as isize, nh.max(1))];
        let (dm1, d0) = if nh == 0 { (0, 0) } else { (dm1, d0) };
        out[i] = x[2 * i] + ((dm1 + d0 + 2) >> 2);
    }
}

/// Exact inverse of [`fwd_1d`].
fn inv_1d(coeffs: &[i32], out: &mut [i32]) {
    let n = coeffs.len();
    if n == 1 {
        out[0] = coeffs[0];
        return;
    }
    let nl = n.div_ceil(2);
    let nh = n / 2;
    // Even samples: x[2i] = s[i] - floor((d[i-1] + d[i] + 2) / 4)
    for i in 0..nl {
        let (dm1, d0) = if nh == 0 {
            (0, 0)
        } else {
            (
                coeffs[nl + mirror(i as isize - 1, nh)],
                coeffs[nl + mirror(i as isize, nh)],
            )
        };
        out[2 * i] = coeffs[i] - ((dm1 + d0 + 2) >> 2);
    }
    // Odd samples: x[2i+1] = d[i] + floor((x[2i] + x[2i+2]) / 2)
    for i in 0..nh {
        let a = out[2 * i];
        let b = out[mirror(2 * i as isize + 2, n)];
        out[2 * i + 1] = coeffs[nl + i] + ((a + b) >> 1);
    }
}

/// In-place multi-level forward 2-D transform of a row-major `w`×`h`
/// buffer; after the call, subbands are laid out recursively with the
/// low band in the top-left corner.
///
/// # Panics
///
/// Panics if `data.len() != w * h` or `levels` exceeds what the plane
/// supports.
pub fn dwt53_forward(data: &mut [i32], sb: Subbands) {
    assert_eq!(data.len(), sb.w * sb.h, "buffer geometry mismatch");
    let mut scratch = vec![0i32; sb.w.max(sb.h)];
    let mut line = vec![0i32; sb.w.max(sb.h)];
    for l in 0..sb.levels {
        let (lw, lh) = sb.low_dims(l);
        assert!(lw >= 2 && lh >= 2, "too many decomposition levels");
        // Rows.
        for y in 0..lh {
            line[..lw].copy_from_slice(&data[y * sb.w..y * sb.w + lw]);
            fwd_1d(&line[..lw], &mut scratch[..lw]);
            data[y * sb.w..y * sb.w + lw].copy_from_slice(&scratch[..lw]);
        }
        // Columns.
        for x in 0..lw {
            for y in 0..lh {
                line[y] = data[y * sb.w + x];
            }
            fwd_1d(&line[..lh], &mut scratch[..lh]);
            for y in 0..lh {
                data[y * sb.w + x] = scratch[y];
            }
        }
    }
}

/// Exact inverse of [`dwt53_forward`].
///
/// # Panics
///
/// Panics on buffer geometry mismatch.
pub fn dwt53_inverse(data: &mut [i32], sb: Subbands) {
    assert_eq!(data.len(), sb.w * sb.h, "buffer geometry mismatch");
    let mut scratch = vec![0i32; sb.w.max(sb.h)];
    let mut line = vec![0i32; sb.w.max(sb.h)];
    for l in (0..sb.levels).rev() {
        let (lw, lh) = sb.low_dims(l);
        // Columns first (mirror of forward order).
        for x in 0..lw {
            for y in 0..lh {
                line[y] = data[y * sb.w + x];
            }
            inv_1d(&line[..lh], &mut scratch[..lh]);
            for y in 0..lh {
                data[y * sb.w + x] = scratch[y];
            }
        }
        // Rows.
        for y in 0..lh {
            line[..lw].copy_from_slice(&data[y * sb.w..y * sb.w + lw]);
            inv_1d(&line[..lw], &mut scratch[..lw]);
            data[y * sb.w..y * sb.w + lw].copy_from_slice(&scratch[..lw]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_buffer(w: usize, h: usize, seed: u32) -> Vec<i32> {
        let mut state = seed;
        (0..w * h)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                ((state >> 24) & 0xFF) as i32
            })
            .collect()
    }

    #[test]
    fn one_level_roundtrip_is_lossless() {
        for (w, h) in [(8, 8), (16, 12), (17, 9), (5, 7), (2, 2)] {
            let sb = Subbands { w, h, levels: 1 };
            let orig = random_buffer(w, h, 42);
            let mut data = orig.clone();
            dwt53_forward(&mut data, sb);
            dwt53_inverse(&mut data, sb);
            assert_eq!(data, orig, "{w}x{h}");
        }
    }

    #[test]
    fn multi_level_roundtrip_is_lossless() {
        for levels in 1..=3 {
            let sb = Subbands {
                w: 48,
                h: 40,
                levels,
            };
            let orig = random_buffer(48, 40, levels);
            let mut data = orig.clone();
            dwt53_forward(&mut data, sb);
            dwt53_inverse(&mut data, sb);
            assert_eq!(data, orig, "levels {levels}");
        }
    }

    #[test]
    fn flat_signal_concentrates_in_the_low_band() {
        let sb = Subbands {
            w: 16,
            h: 16,
            levels: 2,
        };
        let mut data = vec![100i32; 16 * 16];
        dwt53_forward(&mut data, sb);
        let (lw, lh) = sb.low_dims(2);
        // All detail coefficients are zero; the 5/3 low band has unit DC
        // gain, so the low band equals the constant input.
        for y in 0..16 {
            for x in 0..16 {
                let v = data[y * 16 + x];
                if x < lw && y < lh {
                    assert_eq!(v, 100, "LL({x},{y})");
                } else {
                    assert_eq!(v, 0, "detail({x},{y})");
                }
            }
        }
    }

    #[test]
    fn high_bands_catch_edges() {
        let sb = Subbands {
            w: 16,
            h: 16,
            levels: 1,
        };
        let mut data = vec![0i32; 256];
        for y in 0..16 {
            for x in 8..16 {
                data[y * 16 + x] = 200;
            }
        }
        dwt53_forward(&mut data, sb);
        // Horizontal detail (right half of each row) is nonzero near the
        // edge column.
        let hl: i32 = (0..8).map(|y| data[y * 16 + 8 + 3].abs()).sum();
        assert!(hl > 0, "edge produced no horizontal detail");
    }

    #[test]
    fn low_dims_follow_ceil_halving() {
        let sb = Subbands {
            w: 100,
            h: 50,
            levels: 3,
        };
        assert_eq!(sb.low_dims(0), (100, 50));
        assert_eq!(sb.low_dims(1), (50, 25));
        assert_eq!(sb.low_dims(2), (25, 13));
        assert_eq!(sb.low_dims(3), (13, 7));
    }
}
