//! The Motion-JPEG-2000-class encoder/decoder: per-frame wavelet
//! coding, no inter prediction.

use crate::dwt::{dwt53_forward, dwt53_inverse, Subbands};
use crate::entropy::{read_subband, write_subband};
use hdvb_bits::{BitReader, BitWriter};
use hdvb_frame::{Frame, Plane};
use std::fmt;

const MAGIC: u32 = 0x4D4A; // "MJ"

/// Errors from the MJ2K-class codec.
#[derive(Debug)]
#[non_exhaustive]
pub enum Mj2kError {
    /// Invalid configuration.
    BadConfig(&'static str),
    /// A frame did not match the configured geometry.
    FrameMismatch {
        /// Expected dimensions.
        expected: (usize, usize),
        /// Received dimensions.
        actual: (usize, usize),
    },
    /// Malformed or truncated bitstream.
    InvalidBitstream(String),
}

impl fmt::Display for Mj2kError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mj2kError::BadConfig(m) => write!(f, "bad mj2k configuration: {m}"),
            Mj2kError::FrameMismatch { expected, actual } => write!(
                f,
                "frame is {}x{} but encoder expects {}x{}",
                actual.0, actual.1, expected.0, expected.1
            ),
            Mj2kError::InvalidBitstream(m) => write!(f, "invalid mj2k bitstream: {m}"),
        }
    }
}

impl std::error::Error for Mj2kError {}

impl From<hdvb_bits::BitsError> for Mj2kError {
    fn from(e: hdvb_bits::BitsError) -> Self {
        Mj2kError::InvalidBitstream(e.to_string())
    }
}

/// Picks the decomposition depth for a plane (up to 3 levels, keeping
/// the coarsest band at least 4 samples in each dimension).
fn levels_for(w: usize, h: usize) -> u32 {
    let mut levels = 0;
    let (mut lw, mut lh) = (w, h);
    while levels < 3 && lw >= 8 && lh >= 8 {
        lw = lw.div_ceil(2);
        lh = lh.div_ceil(2);
        levels += 1;
    }
    levels.max(1)
}

/// Quantisation step for a detail subband produced at split `level`
/// (1 = finest) or the final low band (`level == levels + 1`). Coarser
/// bands have larger synthesis gain and get proportionally finer steps;
/// `qscale == 1` makes every step 1 (lossless).
fn step_for(qscale: u16, level: u32) -> i32 {
    (i32::from(qscale) >> (level - 1)).max(1)
}

/// Subband rectangles of the final layout, coarsest first:
/// `(x0, y0, w, h, level)` with `level == levels + 1` for the low band.
fn subband_regions(sb: Subbands) -> Vec<(usize, usize, usize, usize, u32)> {
    let mut out = Vec::new();
    let (llw, llh) = sb.low_dims(sb.levels);
    out.push((0, 0, llw, llh, sb.levels + 1));
    for l in (1..=sb.levels).rev() {
        let (lw, lh) = sb.low_dims(l); // dims of the bands produced at split l
        let (pw, ph) = sb.low_dims(l - 1); // dims of the region that was split
        out.push((lw, 0, pw - lw, lh, l)); // HL
        out.push((0, lh, lw, ph - lh, l)); // LH
        out.push((lw, lh, pw - lw, ph - lh, l)); // HH
    }
    out
}

fn code_plane(w: &mut BitWriter, plane: &Plane, qscale: u16) {
    let (pw, ph) = (plane.width(), plane.height());
    let sb = Subbands {
        w: pw,
        h: ph,
        levels: levels_for(pw, ph),
    };
    let mut data: Vec<i32> = plane.data().iter().map(|&v| i32::from(v)).collect();
    dwt53_forward(&mut data, sb);
    w.put_ue(sb.levels);
    for (x0, y0, rw, rh, level) in subband_regions(sb) {
        let step = step_for(qscale, level);
        let mut coeffs = Vec::with_capacity(rw * rh);
        for y in y0..y0 + rh {
            for x in x0..x0 + rw {
                let c = data[y * pw + x];
                let q = (c.abs() + step / 2) / step;
                coeffs.push(if c < 0 { -q } else { q });
            }
        }
        write_subband(w, &coeffs);
    }
}

fn decode_plane(r: &mut BitReader<'_>, plane: &mut Plane, qscale: u16) -> Result<(), Mj2kError> {
    let (pw, ph) = (plane.width(), plane.height());
    let levels = r.get_ue()?;
    if levels == 0 || levels > 8 {
        return Err(Mj2kError::InvalidBitstream(
            "implausible level count".into(),
        ));
    }
    let sb = Subbands {
        w: pw,
        h: ph,
        levels,
    };
    let mut data = vec![0i32; pw * ph];
    for (x0, y0, rw, rh, level) in subband_regions(sb) {
        let step = step_for(qscale, level);
        let mut coeffs = vec![0i32; rw * rh];
        read_subband(r, &mut coeffs)?;
        for y in 0..rh {
            for x in 0..rw {
                data[(y0 + y) * pw + x0 + x] = coeffs[y * rw + x] * step;
            }
        }
    }
    dwt53_inverse(&mut data, sb);
    for (dst, &v) in plane.data_mut().iter_mut().zip(&data) {
        *dst = v.clamp(0, 255) as u8;
    }
    Ok(())
}

/// The Motion-JPEG-2000-class encoder (intra-only: one packet per
/// frame, no state between frames).
#[derive(Debug)]
pub struct Mj2kEncoder {
    width: usize,
    height: usize,
    qscale: u16,
}

impl Mj2kEncoder {
    /// Creates an encoder; `qscale == 1` is lossless.
    ///
    /// # Errors
    ///
    /// [`Mj2kError::BadConfig`] for invalid geometry or quantiser.
    pub fn new(width: usize, height: usize, qscale: u16) -> Result<Self, Mj2kError> {
        if width < 16 || height < 16 || !width.is_multiple_of(2) || !height.is_multiple_of(2) {
            return Err(Mj2kError::BadConfig("dimensions must be even and >= 16"));
        }
        if qscale == 0 || qscale > 256 {
            return Err(Mj2kError::BadConfig("qscale must be in 1..=256"));
        }
        Ok(Mj2kEncoder {
            width,
            height,
            qscale,
        })
    }

    /// Encodes one frame into a self-contained packet.
    ///
    /// # Errors
    ///
    /// [`Mj2kError::FrameMismatch`] on geometry mismatch.
    pub fn encode(&mut self, frame: &Frame) -> Result<Vec<u8>, Mj2kError> {
        if frame.width() != self.width || frame.height() != self.height {
            return Err(Mj2kError::FrameMismatch {
                expected: (self.width, self.height),
                actual: (frame.width(), frame.height()),
            });
        }
        let mut w = BitWriter::with_capacity(self.width * self.height / 2);
        w.put_bits(MAGIC, 16);
        w.put_ue(self.width as u32);
        w.put_ue(self.height as u32);
        w.put_ue(u32::from(self.qscale));
        code_plane(&mut w, frame.y(), self.qscale);
        code_plane(&mut w, frame.cb(), self.qscale);
        code_plane(&mut w, frame.cr(), self.qscale);
        Ok(w.finish())
    }
}

/// The Motion-JPEG-2000-class decoder (stateless).
#[derive(Debug, Default)]
pub struct Mj2kDecoder {}

impl Mj2kDecoder {
    /// Creates a decoder.
    pub fn new() -> Self {
        Mj2kDecoder {}
    }

    /// Decodes one packet into a frame.
    ///
    /// # Errors
    ///
    /// [`Mj2kError::InvalidBitstream`] on malformed input.
    pub fn decode(&mut self, data: &[u8]) -> Result<Frame, Mj2kError> {
        let mut r = BitReader::new(data);
        if r.get_bits(16)? != MAGIC {
            return Err(Mj2kError::InvalidBitstream("bad magic".into()));
        }
        let w = r.get_ue()? as usize;
        let h = r.get_ue()? as usize;
        let qscale = r.get_ue()?;
        if w < 16
            || h < 16
            || w > 16384
            || h > 16384
            || !w.is_multiple_of(2)
            || !h.is_multiple_of(2)
        {
            return Err(Mj2kError::InvalidBitstream("implausible geometry".into()));
        }
        if qscale == 0 || qscale > 256 {
            return Err(Mj2kError::InvalidBitstream("qscale out of range".into()));
        }
        let mut frame = Frame::new(w, h);
        let (y, cb, cr) = frame.planes_mut();
        decode_plane(&mut r, y, qscale as u16)?;
        decode_plane(&mut r, cb, qscale as u16)?;
        decode_plane(&mut r, cr, qscale as u16)?;
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdvb_frame::SequencePsnr;

    fn textured_frame(w: usize, h: usize, seed: u32) -> Frame {
        let mut f = Frame::new(w, h);
        let mut state = seed;
        for y in 0..h {
            for x in 0..w {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                let v = 100.0
                    + 60.0 * ((x as f64) * 0.15 + (y as f64) * 0.08).sin()
                    + f64::from(state >> 27);
                f.y_mut().set(x, y, v.clamp(0.0, 255.0) as u8);
            }
        }
        for y in 0..h / 2 {
            for x in 0..w / 2 {
                f.cb_mut().set(x, y, (110 + (x * 3 + y) % 40) as u8);
                f.cr_mut().set(x, y, (140 - (x + y * 2) % 40) as u8);
            }
        }
        f
    }

    #[test]
    fn lossless_at_qscale_one() {
        let frame = textured_frame(64, 48, 7);
        let mut enc = Mj2kEncoder::new(64, 48, 1).unwrap();
        let mut dec = Mj2kDecoder::new();
        let packet = enc.encode(&frame).unwrap();
        let back = dec.decode(&packet).unwrap();
        assert_eq!(back, frame, "5/3 reversible path must be lossless");
    }

    #[test]
    fn lossy_quality_degrades_monotonically() {
        let frame = textured_frame(96, 80, 3);
        let psnr_at = |q: u16| {
            let mut enc = Mj2kEncoder::new(96, 80, q).unwrap();
            let mut dec = Mj2kDecoder::new();
            let packet = enc.encode(&frame).unwrap();
            let back = dec.decode(&packet).unwrap();
            let mut acc = SequencePsnr::new();
            acc.add(&frame, &back);
            (acc.y_psnr(), packet.len())
        };
        let (p1, s1) = psnr_at(4);
        let (p2, s2) = psnr_at(32);
        assert!(p1 > p2 + 3.0, "{p1:.1} vs {p2:.1}");
        assert!(s1 > s2, "coarser quantiser must shrink the packet");
        assert!(p2 > 25.0, "even coarse quality stays recognisable");
    }

    #[test]
    fn geometry_and_config_validation() {
        assert!(Mj2kEncoder::new(15, 48, 4).is_err());
        assert!(Mj2kEncoder::new(64, 48, 0).is_err());
        let mut enc = Mj2kEncoder::new(64, 48, 4).unwrap();
        assert!(matches!(
            enc.encode(&Frame::new(32, 32)),
            Err(Mj2kError::FrameMismatch { .. })
        ));
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        let frame = textured_frame(64, 48, 9);
        let mut enc = Mj2kEncoder::new(64, 48, 4).unwrap();
        let packet = enc.encode(&frame).unwrap();
        let mut dec = Mj2kDecoder::new();
        for cut in [0, 1, 3, 10, packet.len() / 2] {
            assert!(dec.decode(&packet[..cut]).is_err());
        }
        let mut corrupt = packet.clone();
        corrupt[5] ^= 0xFF;
        let _ = dec.decode(&corrupt); // error or garbage frame, no panic
        assert!(dec.decode(&[0u8; 50]).is_err());
    }

    #[test]
    fn odd_sized_planes_roundtrip_via_chroma() {
        // 4:2:0 chroma of a 34-wide frame is 17 wide: exercises the odd
        // length path of the lifting.
        let frame = textured_frame(34, 26, 1);
        let mut enc = Mj2kEncoder::new(34, 26, 1).unwrap();
        let mut dec = Mj2kDecoder::new();
        let packet = enc.encode(&frame).unwrap();
        assert_eq!(dec.decode(&packet).unwrap(), frame);
    }

    #[test]
    fn intra_only_frames_are_independent() {
        // Decoding packets in any order gives identical results: no
        // inter-frame state.
        let a = textured_frame(64, 48, 1);
        let b = textured_frame(64, 48, 2);
        let mut enc = Mj2kEncoder::new(64, 48, 4).unwrap();
        let pa = enc.encode(&a).unwrap();
        let pb = enc.encode(&b).unwrap();
        let mut dec = Mj2kDecoder::new();
        let b_first = dec.decode(&pb).unwrap();
        let a_second = dec.decode(&pa).unwrap();
        let mut dec2 = Mj2kDecoder::new();
        assert_eq!(dec2.decode(&pa).unwrap(), a_second);
        assert_eq!(dec2.decode(&pb).unwrap(), b_first);
    }
}
