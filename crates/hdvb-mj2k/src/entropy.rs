//! Subband entropy coding: per-subband significance counts with
//! gap/value coding (the documented EBCOT substitution).

use hdvb_bits::{BitReader, BitWriter, BitsError};

/// Writes one subband's quantised coefficients (any iteration order,
/// chosen by the caller) as `ue(count)` followed by `(ue(gap), se(value))`
/// pairs.
pub(crate) fn write_subband(w: &mut BitWriter, coeffs: &[i32]) {
    let nonzero = coeffs.iter().filter(|&&c| c != 0).count() as u32;
    w.put_ue(nonzero);
    let mut prev = 0usize;
    for (i, &c) in coeffs.iter().enumerate() {
        if c != 0 {
            w.put_ue((i - prev) as u32);
            w.put_se(c);
            prev = i + 1;
        }
    }
}

/// Reads a subband written by [`write_subband`] into `coeffs` (which the
/// caller zeroes).
pub(crate) fn read_subband(r: &mut BitReader<'_>, coeffs: &mut [i32]) -> Result<(), BitsError> {
    let nonzero = r.get_ue()?;
    if nonzero as usize > coeffs.len() {
        return Err(BitsError::InvalidCode {
            table: "mj2k-subband",
        });
    }
    let mut pos = 0usize;
    for _ in 0..nonzero {
        let gap = r.get_ue()? as usize;
        pos = pos.checked_add(gap).ok_or(BitsError::Eof)?;
        if pos >= coeffs.len() {
            return Err(BitsError::InvalidCode {
                table: "mj2k-subband",
            });
        }
        let v = r.get_se()?;
        if v == 0 {
            return Err(BitsError::InvalidCode {
                table: "mj2k-subband",
            });
        }
        coeffs[pos] = v;
        pos += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(coeffs: &[i32]) -> Vec<i32> {
        let mut w = BitWriter::new();
        write_subband(&mut w, coeffs);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let mut out = vec![0i32; coeffs.len()];
        read_subband(&mut r, &mut out).unwrap();
        out
    }

    #[test]
    fn empty_and_dense_subbands() {
        assert_eq!(roundtrip(&[0; 32]), vec![0; 32]);
        let dense: Vec<i32> = (1..=32).map(|i| if i % 2 == 0 { i } else { -i }).collect();
        assert_eq!(roundtrip(&dense), dense);
    }

    #[test]
    fn sparse_subband() {
        let mut c = vec![0i32; 100];
        c[0] = 5;
        c[57] = -1200;
        c[99] = 1;
        assert_eq!(roundtrip(&c), c);
    }

    #[test]
    fn corrupt_counts_are_rejected() {
        let mut w = BitWriter::new();
        w.put_ue(1000); // count larger than the subband
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let mut out = vec![0i32; 16];
        assert!(read_subband(&mut r, &mut out).is_err());
    }

    #[test]
    fn truncation_is_an_error() {
        let mut c = vec![0i32; 64];
        c[10] = 99;
        c[40] = -5;
        let mut w = BitWriter::new();
        write_subband(&mut w, &c);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes[..1]);
        let mut out = vec![0i32; 64];
        assert!(read_subband(&mut r, &mut out).is_err());
    }
}
