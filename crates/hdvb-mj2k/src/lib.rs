//! A Motion-JPEG-2000-class intra-only wavelet codec.
//!
//! The paper's conclusion (Section VII) announces Motion-JPEG-2000 as a
//! planned extension of HD-VideoBench; this crate implements that
//! extension. It carries the computational profile that sets
//! Motion JPEG 2000 apart from the block-DCT codecs:
//!
//! * every frame is coded **independently** (intra-only — the editing /
//!   digital-cinema use case),
//! * each plane goes through a multi-level **5/3 reversible integer
//!   wavelet transform** (the LeGall lifting scheme of JPEG 2000's
//!   lossless path),
//! * subbands are quantised with per-subband dead-zone steps and entropy
//!   coded (run-level VLC in place of EBCOT — a documented substitution
//!   that preserves the wavelet-dominated workload, not JPEG 2000's
//!   exact rate efficiency).
//!
//! Lossless operation (`qscale == 1`) reconstructs frames **bit
//! exactly**, the signature property of the reversible 5/3 path.
//!
//! # Example
//!
//! ```
//! use hdvb_frame::Frame;
//! use hdvb_mj2k::{Mj2kDecoder, Mj2kEncoder};
//!
//! let mut enc = Mj2kEncoder::new(64, 48, 1)?; // qscale 1 = lossless
//! let mut dec = Mj2kDecoder::new();
//! let frame = Frame::new(64, 48);
//! let packet = enc.encode(&frame)?;
//! let back = dec.decode(&packet)?;
//! assert_eq!(back, frame);
//! # Ok::<(), hdvb_mj2k::Mj2kError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod codec;
mod dwt;
mod entropy;

pub use codec::{Mj2kDecoder, Mj2kEncoder, Mj2kError};
pub use dwt::{dwt53_forward, dwt53_inverse, Subbands};
