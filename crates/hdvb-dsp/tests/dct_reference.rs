//! Validates the fixed-point 8×8 DCT against a double-precision
//! orthonormal DCT-II reference — correctness beyond round-tripping.

use hdvb_dsp::{Block8, Dsp, SimdLevel};

fn reference_dct(block: &Block8) -> [f64; 64] {
    let mut out = [0.0f64; 64];
    let c = |u: usize| -> f64 {
        if u == 0 {
            (1.0f64 / 8.0).sqrt()
        } else {
            0.5
        }
    };
    for v in 0..8 {
        for u in 0..8 {
            let mut acc = 0.0;
            for y in 0..8 {
                for x in 0..8 {
                    acc += f64::from(block[y * 8 + x])
                        * ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0).cos()
                        * ((2.0 * y as f64 + 1.0) * v as f64 * std::f64::consts::PI / 16.0).cos();
                }
            }
            out[v * 8 + u] = c(u) * c(v) * acc;
        }
    }
    out
}

fn random_block(seed: u32, range: i16) -> Block8 {
    let mut state = seed;
    let mut b = [0i16; 64];
    for v in &mut b {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        *v = ((state >> 20) as i16 % (2 * range + 1)) - range;
    }
    b
}

#[test]
fn fixed_point_dct_tracks_the_float_reference() {
    for level in [SimdLevel::Scalar, SimdLevel::Sse2] {
        let dsp = Dsp::new(level);
        for seed in 0..40 {
            let input = random_block(seed, 255);
            let mut b = input;
            dsp.fdct8(&mut b);
            let reference = reference_dct(&input);
            for i in 0..64 {
                let err = (f64::from(b[i]) - reference[i]).abs();
                // Two fixed-point passes at 11-bit precision: allow a few
                // units of rounding error on coefficients up to ~2040.
                assert!(
                    err <= 3.0,
                    "{level}: coef {i}: {} vs {:.2} (err {err:.2})",
                    b[i],
                    reference[i]
                );
            }
        }
    }
}

#[test]
fn parseval_energy_is_preserved() {
    // An orthonormal transform preserves L2 energy; the fixed-point
    // version must track it within rounding.
    let dsp = Dsp::default();
    for seed in 100..110 {
        let input = random_block(seed, 200);
        let in_energy: f64 = input.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
        let mut b = input;
        dsp.fdct8(&mut b);
        let out_energy: f64 = b.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
        let ratio = out_energy / in_energy.max(1.0);
        assert!((0.98..=1.02).contains(&ratio), "energy ratio {ratio:.4}");
    }
}
