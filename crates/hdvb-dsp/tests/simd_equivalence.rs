//! Property tests asserting that every dispatched kernel produces
//! bit-identical results at `SimdLevel::Scalar` and `SimdLevel::Sse2`.
//!
//! This equivalence is what lets the Figure-1 harness encode each stream
//! once and decode it under both SIMD settings (and vice versa): the two
//! codec builds differ in speed only, never in output — the same property
//! the original benchmark gets from FFmpeg/x264's SIMD being bit-exact
//! with their C paths.

use hdvb_dsp::{Block8, Dsp, SimdLevel, MPEG_DEFAULT_INTRA, MPEG_DEFAULT_NONINTRA};
use proptest::prelude::*;

fn dsps() -> (Dsp, Dsp) {
    (Dsp::new(SimdLevel::Scalar), Dsp::new(SimdLevel::Sse2))
}

fn pixels(len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sad_matches(a in pixels(24 * 24), b in pixels(24 * 24)) {
        let (s, v) = dsps();
        for &(w, h) in &[(16usize, 16usize), (8, 8), (16, 8), (8, 16), (8, 4)] {
            prop_assert_eq!(
                s.sad(&a, 24, &b, 24, w, h),
                v.sad(&a, 24, &b, 24, w, h),
                "{}x{}", w, h
            );
        }
    }

    #[test]
    fn satd_matches(a in pixels(24 * 24), b in pixels(24 * 24)) {
        let (s, v) = dsps();
        for &(w, h) in &[(16usize, 16usize), (8, 8), (4, 4), (16, 8), (4, 8)] {
            prop_assert_eq!(
                s.satd(&a, 24, &b, 24, w, h),
                v.satd(&a, 24, &b, 24, w, h),
                "{}x{}", w, h
            );
        }
    }

    #[test]
    fn fdct8_matches(vals in proptest::collection::vec(-256i16..=255, 64)) {
        let (s, v) = dsps();
        let mut b1: Block8 = vals.clone().try_into().unwrap();
        let mut b2: Block8 = vals.try_into().unwrap();
        s.fdct8(&mut b1);
        v.fdct8(&mut b2);
        prop_assert_eq!(b1, b2);
    }

    #[test]
    fn idct8_matches(vals in proptest::collection::vec(-4095i16..=4095, 64)) {
        let (s, v) = dsps();
        let mut b1: Block8 = vals.clone().try_into().unwrap();
        let mut b2: Block8 = vals.try_into().unwrap();
        s.idct8(&mut b1);
        v.idct8(&mut b2);
        prop_assert_eq!(b1, b2);
    }

    #[test]
    fn dct8_roundtrip_within_tolerance(vals in proptest::collection::vec(-255i16..=255, 64)) {
        let dsp = Dsp::new(SimdLevel::detect());
        let orig: Block8 = vals.try_into().unwrap();
        let mut b = orig;
        dsp.fdct8(&mut b);
        dsp.idct8(&mut b);
        for i in 0..64 {
            prop_assert!((i32::from(b[i]) - i32::from(orig[i])).abs() <= 2, "sample {}", i);
        }
    }

    #[test]
    fn dequant8_matches(
        vals in proptest::collection::vec(-2047i16..=2047, 64),
        qscale in 1u16..=62,
        intra in any::<bool>(),
    ) {
        let (s, v) = dsps();
        let matrix = if intra { &MPEG_DEFAULT_INTRA } else { &MPEG_DEFAULT_NONINTRA };
        let mut b1: Block8 = vals.clone().try_into().unwrap();
        let mut b2: Block8 = vals.try_into().unwrap();
        s.dequant8(&mut b1, matrix, qscale, intra);
        v.dequant8(&mut b2, matrix, qscale, intra);
        prop_assert_eq!(b1, b2);
    }

    #[test]
    fn avg_block_matches(a in pixels(20 * 16), b in pixels(20 * 16)) {
        let (s, v) = dsps();
        for &(w, h) in &[(16usize, 16usize), (8, 8), (16, 4)] {
            let mut d1 = vec![0u8; 20 * 16];
            let mut d2 = vec![0u8; 20 * 16];
            s.avg_block(&mut d1, 20, &a, 20, &b, 20, w, h);
            v.avg_block(&mut d2, 20, &a, 20, &b, 20, w, h);
            prop_assert_eq!(&d1, &d2, "{}x{}", w, h);
        }
    }

    #[test]
    fn hpel_interp_matches(src in pixels(40 * 24), fx in 0u8..2, fy in 0u8..2) {
        let (s, v) = dsps();
        let mut d1 = vec![0u8; 16 * 16];
        let mut d2 = vec![0u8; 16 * 16];
        // Block origin inside the buffer, room for +1 in both directions.
        s.hpel_interp(&mut d1, 16, &src[4 * 40 + 4..], 40, fx, fy, 16, 16);
        v.hpel_interp(&mut d2, 16, &src[4 * 40 + 4..], 40, fx, fy, 16, 16);
        prop_assert_eq!(d1, d2);
    }

    #[test]
    fn sixtap_h_matches(src in pixels(48 * 24)) {
        let (s, v) = dsps();
        for &(w, h) in &[(16usize, 16usize), (8, 8), (8, 4)] {
            let mut d1 = vec![0u8; 16 * 16];
            let mut d2 = vec![0u8; 16 * 16];
            s.sixtap_h(&mut d1, 16, &src[4 * 48 + 2..], 48, w, h);
            v.sixtap_h(&mut d2, 16, &src[4 * 48 + 2..], 48, w, h);
            prop_assert_eq!(&d1, &d2, "{}x{}", w, h);
        }
    }

    #[test]
    fn sixtap_v_matches(src in pixels(48 * 28)) {
        let (s, v) = dsps();
        for &(w, h) in &[(16usize, 16usize), (8, 8)] {
            let mut d1 = vec![0u8; 16 * 16];
            let mut d2 = vec![0u8; 16 * 16];
            s.sixtap_v(&mut d1, 16, &src[2 * 48 + 4..], 48, w, h);
            v.sixtap_v(&mut d2, 16, &src[2 * 48 + 4..], 48, w, h);
            prop_assert_eq!(&d1, &d2, "{}x{}", w, h);
        }
    }

    #[test]
    fn add_residual8_matches(
        pred in pixels(16 * 8),
        res in proptest::collection::vec(-4500i16..=4500, 64),
    ) {
        let (s, v) = dsps();
        let res: Block8 = res.try_into().unwrap();
        let mut d1 = vec![0u8; 16 * 8];
        let mut d2 = vec![0u8; 16 * 8];
        s.add_residual8(&mut d1, 16, &pred, 16, &res);
        v.add_residual8(&mut d2, 16, &pred, 16, &res);
        prop_assert_eq!(d1, d2);
    }

    #[test]
    fn quant_is_level_independent(
        vals in proptest::collection::vec(-2040i16..=2040, 64),
        qscale in 1u16..=31,
        intra in any::<bool>(),
    ) {
        let (s, v) = dsps();
        let mut b1: Block8 = vals.clone().try_into().unwrap();
        let mut b2: Block8 = vals.try_into().unwrap();
        let n1 = s.quant8(&mut b1, &MPEG_DEFAULT_INTRA, qscale, intra);
        let n2 = v.quant8(&mut b2, &MPEG_DEFAULT_INTRA, qscale, intra);
        prop_assert_eq!(n1, n2);
        prop_assert_eq!(b1, b2);
    }
}

/// The SATD total must also agree with a direct sum over 4×4 tiles so the
/// SSE2 tiling cannot silently skip partial tiles.
#[test]
fn satd_tiling_consistency() {
    let mut a = vec![0u8; 32 * 32];
    let b = vec![128u8; 32 * 32];
    for (i, v) in a.iter_mut().enumerate() {
        *v = (i * 7 % 251) as u8;
    }
    let (s, v) = dsps();
    let mut tile_sum = 0;
    for ty in 0..4 {
        for tx in 0..4 {
            tile_sum += s.satd(
                &a[ty * 4 * 32 + tx * 4..],
                32,
                &b[ty * 4 * 32 + tx * 4..],
                32,
                4,
                4,
            );
        }
    }
    assert_eq!(s.satd(&a, 32, &b, 32, 16, 16), tile_sum);
    assert_eq!(v.satd(&a, 32, &b, 32, 16, 16), tile_sum);
}
