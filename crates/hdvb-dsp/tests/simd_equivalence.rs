//! Property tests asserting that every dispatched kernel produces
//! bit-identical results at every supported [`SimdLevel`] — scalar,
//! SSE2, and (on capable hardware) AVX2.
//!
//! This equivalence is what lets the Figure-1 harness encode each stream
//! once and decode it under every SIMD setting (and vice versa): the
//! codec builds differ in speed only, never in output — the same property
//! the original benchmark gets from FFmpeg/x264's SIMD being bit-exact
//! with their C paths.

use hdvb_dsp::{Block8, Dsp, SimdLevel, MPEG_DEFAULT_INTRA, MPEG_DEFAULT_NONINTRA};
use proptest::prelude::*;

/// The scalar reference plus one `Dsp` per accelerated tier this CPU
/// supports (SSE2 always on x86-64; AVX2 when detected).
fn reference_and_tiers() -> (Dsp, Vec<Dsp>) {
    let tiers: Vec<Dsp> = SimdLevel::supported_tiers()
        .into_iter()
        .filter(|l| *l != SimdLevel::Scalar)
        .map(Dsp::new)
        .collect();
    (Dsp::new(SimdLevel::Scalar), tiers)
}

fn pixels(len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sad_matches(a in pixels(24 * 24), b in pixels(24 * 24)) {
        let (s, tiers) = reference_and_tiers();
        for v in &tiers {
            for &(w, h) in &[(16usize, 16usize), (8, 8), (16, 8), (8, 16), (8, 4)] {
                prop_assert_eq!(
                    s.sad(&a, 24, &b, 24, w, h),
                    v.sad(&a, 24, &b, 24, w, h),
                    "{} {}x{}", v.level().tier_name(), w, h
                );
            }
        }
    }

    #[test]
    fn satd_matches(a in pixels(24 * 24), b in pixels(24 * 24)) {
        let (s, tiers) = reference_and_tiers();
        for v in &tiers {
            for &(w, h) in &[(16usize, 16usize), (8, 8), (4, 4), (16, 8), (4, 8), (12, 4)] {
                prop_assert_eq!(
                    s.satd(&a, 24, &b, 24, w, h),
                    v.satd(&a, 24, &b, 24, w, h),
                    "{} {}x{}", v.level().tier_name(), w, h
                );
            }
        }
    }

    #[test]
    fn ssd_matches(a in pixels(24 * 24), b in pixels(24 * 24)) {
        let (s, tiers) = reference_and_tiers();
        for v in &tiers {
            for &(w, h) in &[(16usize, 16usize), (8, 8), (16, 8), (8, 4)] {
                prop_assert_eq!(
                    s.ssd(&a, 24, &b, 24, w, h),
                    v.ssd(&a, 24, &b, 24, w, h),
                    "{} {}x{}", v.level().tier_name(), w, h
                );
            }
        }
    }

    #[test]
    fn fdct8_matches(vals in proptest::collection::vec(-256i16..=255, 64)) {
        let (s, tiers) = reference_and_tiers();
        let mut expect: Block8 = vals.clone().try_into().unwrap();
        s.fdct8(&mut expect);
        for v in &tiers {
            let mut b: Block8 = vals.clone().try_into().unwrap();
            v.fdct8(&mut b);
            prop_assert_eq!(b, expect, "{}", v.level().tier_name());
        }
    }

    #[test]
    fn idct8_matches(vals in proptest::collection::vec(-4095i16..=4095, 64)) {
        let (s, tiers) = reference_and_tiers();
        let mut expect: Block8 = vals.clone().try_into().unwrap();
        s.idct8(&mut expect);
        for v in &tiers {
            let mut b: Block8 = vals.clone().try_into().unwrap();
            v.idct8(&mut b);
            prop_assert_eq!(b, expect, "{}", v.level().tier_name());
        }
    }

    #[test]
    fn dct8_roundtrip_within_tolerance(vals in proptest::collection::vec(-255i16..=255, 64)) {
        let dsp = Dsp::new(SimdLevel::detect());
        let orig: Block8 = vals.try_into().unwrap();
        let mut b = orig;
        dsp.fdct8(&mut b);
        dsp.idct8(&mut b);
        for i in 0..64 {
            prop_assert!((i32::from(b[i]) - i32::from(orig[i])).abs() <= 2, "sample {}", i);
        }
    }

    #[test]
    fn quant8_matches(
        vals in proptest::collection::vec(-2040i16..=2040, 64),
        qscale in 1u16..=31,
        intra in any::<bool>(),
    ) {
        let (s, tiers) = reference_and_tiers();
        let matrix = if intra { &MPEG_DEFAULT_INTRA } else { &MPEG_DEFAULT_NONINTRA };
        let mut expect: Block8 = vals.clone().try_into().unwrap();
        let n_expect = s.quant8(&mut expect, matrix, qscale, intra);
        for v in &tiers {
            let mut b: Block8 = vals.clone().try_into().unwrap();
            let n = v.quant8(&mut b, matrix, qscale, intra);
            prop_assert_eq!(n, n_expect, "{}", v.level().tier_name());
            prop_assert_eq!(b, expect, "{}", v.level().tier_name());
        }
    }

    #[test]
    fn dequant8_matches(
        vals in proptest::collection::vec(-2047i16..=2047, 64),
        qscale in 1u16..=62,
        intra in any::<bool>(),
    ) {
        let (s, tiers) = reference_and_tiers();
        let matrix = if intra { &MPEG_DEFAULT_INTRA } else { &MPEG_DEFAULT_NONINTRA };
        let mut expect: Block8 = vals.clone().try_into().unwrap();
        s.dequant8(&mut expect, matrix, qscale, intra);
        for v in &tiers {
            let mut b: Block8 = vals.clone().try_into().unwrap();
            v.dequant8(&mut b, matrix, qscale, intra);
            prop_assert_eq!(b, expect, "{}", v.level().tier_name());
        }
    }

    #[test]
    fn copy_block_matches(src in pixels(40 * 36)) {
        let (s, tiers) = reference_and_tiers();
        for v in &tiers {
            for &(w, h) in &[(32usize, 32usize), (16, 16), (8, 8), (12, 4), (5, 3)] {
                let mut d1 = vec![0u8; 40 * 36];
                let mut d2 = vec![0u8; 40 * 36];
                s.copy_block(&mut d1, 40, &src, 40, w, h);
                v.copy_block(&mut d2, 40, &src, 40, w, h);
                prop_assert_eq!(&d1, &d2, "{} {}x{}", v.level().tier_name(), w, h);
            }
        }
    }

    #[test]
    fn avg_block_matches(a in pixels(20 * 16), b in pixels(20 * 16)) {
        let (s, tiers) = reference_and_tiers();
        for v in &tiers {
            for &(w, h) in &[(16usize, 16usize), (8, 8), (16, 4)] {
                let mut d1 = vec![0u8; 20 * 16];
                let mut d2 = vec![0u8; 20 * 16];
                s.avg_block(&mut d1, 20, &a, 20, &b, 20, w, h);
                v.avg_block(&mut d2, 20, &a, 20, &b, 20, w, h);
                prop_assert_eq!(&d1, &d2, "{} {}x{}", v.level().tier_name(), w, h);
            }
        }
    }

    #[test]
    fn hpel_interp_matches(src in pixels(40 * 24), fx in 0u8..2, fy in 0u8..2) {
        let (s, tiers) = reference_and_tiers();
        for v in &tiers {
            let mut d1 = vec![0u8; 16 * 16];
            let mut d2 = vec![0u8; 16 * 16];
            // Block origin inside the buffer, room for +1 in both directions.
            s.hpel_interp(&mut d1, 16, &src[4 * 40 + 4..], 40, fx, fy, 16, 16);
            v.hpel_interp(&mut d2, 16, &src[4 * 40 + 4..], 40, fx, fy, 16, 16);
            prop_assert_eq!(d1, d2, "{} {},{}", v.level().tier_name(), fx, fy);
        }
    }

    #[test]
    fn sixtap_h_matches(src in pixels(48 * 24)) {
        let (s, tiers) = reference_and_tiers();
        for v in &tiers {
            for &(w, h) in &[(16usize, 16usize), (8, 8), (8, 4)] {
                let mut d1 = vec![0u8; 16 * 16];
                let mut d2 = vec![0u8; 16 * 16];
                s.sixtap_h(&mut d1, 16, &src[4 * 48 + 2..], 48, w, h);
                v.sixtap_h(&mut d2, 16, &src[4 * 48 + 2..], 48, w, h);
                prop_assert_eq!(&d1, &d2, "{} {}x{}", v.level().tier_name(), w, h);
            }
        }
    }

    #[test]
    fn sixtap_v_matches(src in pixels(48 * 28)) {
        let (s, tiers) = reference_and_tiers();
        for v in &tiers {
            for &(w, h) in &[(16usize, 16usize), (8, 8)] {
                let mut d1 = vec![0u8; 16 * 16];
                let mut d2 = vec![0u8; 16 * 16];
                s.sixtap_v(&mut d1, 16, &src[2 * 48 + 4..], 48, w, h);
                v.sixtap_v(&mut d2, 16, &src[2 * 48 + 4..], 48, w, h);
                prop_assert_eq!(&d1, &d2, "{} {}x{}", v.level().tier_name(), w, h);
            }
        }
    }

    #[test]
    fn sixtap_hv_matches(src in pixels(48 * 28)) {
        let (s, tiers) = reference_and_tiers();
        for v in &tiers {
            for &(w, h) in &[(16usize, 16usize), (8, 8), (16, 8), (8, 16)] {
                let mut d1 = vec![0u8; 16 * 16];
                let mut d2 = vec![0u8; 16 * 16];
                s.sixtap_hv(&mut d1, 16, &src[2 * 48 + 2..], 48, w, h);
                v.sixtap_hv(&mut d2, 16, &src[2 * 48 + 2..], 48, w, h);
                prop_assert_eq!(&d1, &d2, "{} {}x{}", v.level().tier_name(), w, h);
            }
        }
    }

    #[test]
    fn add_residual8_matches(
        pred in pixels(16 * 8),
        res in proptest::collection::vec(-4500i16..=4500, 64),
    ) {
        let (s, tiers) = reference_and_tiers();
        let res: Block8 = res.try_into().unwrap();
        for v in &tiers {
            let mut d1 = vec![0u8; 16 * 8];
            let mut d2 = vec![0u8; 16 * 8];
            s.add_residual8(&mut d1, 16, &pred, 16, &res);
            v.add_residual8(&mut d2, 16, &pred, 16, &res);
            prop_assert_eq!(d1, d2, "{}", v.level().tier_name());
        }
    }

    #[test]
    fn diff_block8_matches(cur in pixels(16 * 8), pred in pixels(16 * 8)) {
        let (s, tiers) = reference_and_tiers();
        for v in &tiers {
            let mut r1: Block8 = [0; 64];
            let mut r2: Block8 = [0; 64];
            s.diff_block8(&mut r1, &cur, 16, &pred, 16);
            v.diff_block8(&mut r2, &cur, 16, &pred, 16);
            prop_assert_eq!(r1, r2, "{}", v.level().tier_name());
        }
    }

    #[test]
    fn deblock_horiz_edge_matches(
        data in pixels(48 * 8),
        alpha in 1i32..=40,
        beta in 1i32..=12,
        tc in 0i32..=6,
    ) {
        let (s, tiers) = reference_and_tiers();
        for v in &tiers {
            for &width in &[48usize, 40, 24, 7] {
                let mut d1 = data.clone();
                let mut d2 = data.clone();
                s.deblock_horiz_edge(&mut d1, 48, 4 * 48, width, alpha, beta, tc);
                v.deblock_horiz_edge(&mut d2, 48, 4 * 48, width, alpha, beta, tc);
                prop_assert_eq!(&d1, &d2, "{} width {}", v.level().tier_name(), width);
            }
        }
    }
}

/// The SATD total must also agree with a direct sum over 4×4 tiles so the
/// SIMD tiling cannot silently skip partial tiles.
#[test]
fn satd_tiling_consistency() {
    let mut a = vec![0u8; 32 * 32];
    let b = vec![128u8; 32 * 32];
    for (i, v) in a.iter_mut().enumerate() {
        *v = (i * 7 % 251) as u8;
    }
    let (s, tiers) = reference_and_tiers();
    let mut tile_sum = 0;
    for ty in 0..4 {
        for tx in 0..4 {
            tile_sum += s.satd(
                &a[ty * 4 * 32 + tx * 4..],
                32,
                &b[ty * 4 * 32 + tx * 4..],
                32,
                4,
                4,
            );
        }
    }
    assert_eq!(s.satd(&a, 32, &b, 32, 16, 16), tile_sum);
    for v in &tiers {
        assert_eq!(
            v.satd(&a, 32, &b, 32, 16, 16),
            tile_sum,
            "{}",
            v.level().tier_name()
        );
    }
}

/// Every tier this CPU reports as supported must construct a `Dsp` at
/// exactly that level (no silent degradation on capable hardware).
#[test]
fn supported_tiers_construct_exactly() {
    for level in SimdLevel::supported_tiers() {
        assert_eq!(Dsp::new(level).level(), level);
    }
}
