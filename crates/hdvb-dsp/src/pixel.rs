//! Scalar pixel-block primitives: SAD, SSD, copy, average, residual
//! computation and reconstruction.

use crate::Block8;

pub(crate) fn sad_scalar(
    a: &[u8],
    a_stride: usize,
    b: &[u8],
    b_stride: usize,
    w: usize,
    h: usize,
) -> u32 {
    let mut sum = 0u32;
    for y in 0..h {
        let ra = &a[y * a_stride..y * a_stride + w];
        let rb = &b[y * b_stride..y * b_stride + w];
        for (&pa, &pb) in ra.iter().zip(rb) {
            sum += u32::from(pa.abs_diff(pb));
        }
    }
    sum
}

pub(crate) fn ssd_scalar(
    a: &[u8],
    a_stride: usize,
    b: &[u8],
    b_stride: usize,
    w: usize,
    h: usize,
) -> u64 {
    let mut sum = 0u64;
    for y in 0..h {
        let ra = &a[y * a_stride..y * a_stride + w];
        let rb = &b[y * b_stride..y * b_stride + w];
        for (&pa, &pb) in ra.iter().zip(rb) {
            let d = i64::from(pa) - i64::from(pb);
            sum += (d * d) as u64;
        }
    }
    sum
}

pub(crate) fn copy_block(
    dst: &mut [u8],
    dst_stride: usize,
    src: &[u8],
    src_stride: usize,
    w: usize,
    h: usize,
) {
    for y in 0..h {
        dst[y * dst_stride..y * dst_stride + w]
            .copy_from_slice(&src[y * src_stride..y * src_stride + w]);
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn avg_block_scalar(
    dst: &mut [u8],
    dst_stride: usize,
    a: &[u8],
    a_stride: usize,
    b: &[u8],
    b_stride: usize,
    w: usize,
    h: usize,
) {
    for y in 0..h {
        for x in 0..w {
            let va = u16::from(a[y * a_stride + x]);
            let vb = u16::from(b[y * b_stride + x]);
            dst[y * dst_stride + x] = ((va + vb + 1) >> 1) as u8;
        }
    }
}

pub(crate) fn add_residual8_scalar(
    dst: &mut [u8],
    dst_stride: usize,
    pred: &[u8],
    pred_stride: usize,
    res: &Block8,
) {
    for y in 0..8 {
        for x in 0..8 {
            let v = i32::from(pred[y * pred_stride + x]) + i32::from(res[y * 8 + x]);
            dst[y * dst_stride + x] = v.clamp(0, 255) as u8;
        }
    }
}

pub(crate) fn diff_block8(
    res: &mut Block8,
    cur: &[u8],
    cur_stride: usize,
    pred: &[u8],
    pred_stride: usize,
) {
    for y in 0..8 {
        for x in 0..8 {
            res[y * 8 + x] =
                i16::from(cur[y * cur_stride + x]) - i16::from(pred[y * pred_stride + x]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sad_with_strides() {
        // 2x2 blocks embedded in wider rows.
        let a = [1u8, 2, 99, 3, 4, 99];
        let b = [2u8, 2, 77, 1, 1, 77];
        assert_eq!(sad_scalar(&a, 3, &b, 3, 2, 2), 1 + 2 + 3);
    }

    #[test]
    fn avg_rounds_up() {
        let a = [0u8, 255, 10, 11];
        let b = [1u8, 255, 11, 11];
        let mut d = [0u8; 4];
        avg_block_scalar(&mut d, 2, &a, 2, &b, 2, 2, 2);
        assert_eq!(d, [1, 255, 11, 11]);
    }

    #[test]
    fn diff_then_add_reconstructs() {
        let cur: Vec<u8> = (0..64).map(|i| (i * 3 + 7) as u8).collect();
        let pred: Vec<u8> = (0..64).map(|i| (200 - i) as u8).collect();
        let mut res = [0i16; 64];
        diff_block8(&mut res, &cur, 8, &pred, 8);
        let mut out = vec![0u8; 64];
        add_residual8_scalar(&mut out, 8, &pred, 8, &res);
        assert_eq!(out, cur);
    }

    #[test]
    fn add_residual_saturates() {
        let pred = [250u8; 64];
        let mut res = [0i16; 64];
        res[0] = 100; // would exceed 255
        res[1] = -300; // would underflow
        let mut out = [0u8; 64];
        add_residual8_scalar(&mut out, 8, &pred, 8, &res);
        assert_eq!(out[0], 255);
        assert_eq!(out[1], 0);
        assert_eq!(out[2], 250);
    }
}
