//! MPEG-style 8×8 quantisation with weighting matrices.
//!
//! Both MPEG-class codecs quantise DCT coefficients as
//! `level = coef * 16 / (matrix[i] * qscale)` (with dead-zone handling for
//! non-intra blocks) and dequantise as
//! `coef = level * matrix[i] * qscale / 16`, the scheme of
//! MPEG-2 / MPEG-4 with a quantiser scale (`vqscale` in the paper's
//! encoder commands).

use crate::Block8;

/// An 8×8 quantisation weighting matrix (row-major, entries 1..=255).
pub type QuantMatrix = [u16; 64];

/// The MPEG default intra matrix (stronger weighting of high
/// frequencies, matching human contrast sensitivity).
pub const MPEG_DEFAULT_INTRA: QuantMatrix = [
    8, 16, 19, 22, 26, 27, 29, 34, //
    16, 16, 22, 24, 27, 29, 34, 37, //
    19, 22, 26, 27, 29, 34, 34, 38, //
    22, 22, 26, 27, 29, 34, 37, 40, //
    22, 26, 27, 29, 32, 35, 40, 48, //
    26, 27, 29, 32, 35, 40, 48, 58, //
    26, 27, 29, 34, 38, 46, 56, 69, //
    27, 29, 35, 38, 46, 56, 69, 83,
];

/// The MPEG default non-intra (flat 16) matrix.
pub const MPEG_DEFAULT_NONINTRA: QuantMatrix = [16; 64];

/// A flat matrix of 16s, useful where unweighted quantisation is wanted.
pub const QUANT_FLAT_16: QuantMatrix = [16; 64];

/// Quantises `block` in place; returns the number of nonzero levels.
///
/// Intra blocks use rounding-to-nearest (except the DC coefficient, which
/// is quantised separately by the codecs and passed through here
/// untouched at index 0 only when `intra` — see codec layers); non-intra
/// blocks use a dead zone as in the MPEG reference rate-control-free
/// path.
pub(crate) fn quant8_scalar(
    block: &mut Block8,
    matrix: &QuantMatrix,
    qscale: u16,
    intra: bool,
) -> u32 {
    debug_assert!(qscale >= 1);
    let mut nonzero = 0u32;
    for (i, v) in block.iter_mut().enumerate() {
        if intra && i == 0 {
            // Intra DC handled by the codec's DC predictor; keep raw here.
            if *v != 0 {
                nonzero += 1;
            }
            continue;
        }
        let div = i32::from(matrix[i]) * i32::from(qscale);
        let c = i32::from(*v);
        let level = if intra {
            // round to nearest
            let scaled = c.unsigned_abs() as i32 * 32 + div;
            (scaled / (2 * div)) * c.signum()
        } else {
            // dead zone: truncate toward zero
            (c.unsigned_abs() as i32 * 16 / div) * c.signum()
        };
        let level = level.clamp(-2047, 2047);
        *v = level as i16;
        if level != 0 {
            nonzero += 1;
        }
    }
    nonzero
}

/// Dequantises `block` in place, clamping output to `[-4095, 4095]` (the
/// IDCT input range, kept sign-symmetric so the SSE2 path — which works
/// on magnitudes — matches bit for bit).
pub(crate) fn dequant8_scalar(block: &mut Block8, matrix: &QuantMatrix, qscale: u16, intra: bool) {
    for (i, v) in block.iter_mut().enumerate() {
        if intra && i == 0 {
            continue;
        }
        let level = i32::from(*v);
        if level == 0 {
            continue;
        }
        let mut coef = if intra {
            level * i32::from(matrix[i]) * i32::from(qscale) / 16
        } else {
            // Non-intra reconstruction offsets by half a step toward the
            // dead-zone centre, as MPEG does.
            (2 * level + level.signum()) * i32::from(matrix[i]) * i32::from(qscale) / 32
        };
        coef = coef.clamp(-4095, 4095);
        *v = coef as i16;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_block(seed: u32, range: i16) -> Block8 {
        let mut state = seed;
        let mut b = [0i16; 64];
        for v in &mut b {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            *v = ((state >> 18) as i16 % (2 * range + 1)) - range;
        }
        b
    }

    #[test]
    fn quant_zero_block_stays_zero() {
        let mut b = [0i16; 64];
        assert_eq!(quant8_scalar(&mut b, &MPEG_DEFAULT_INTRA, 5, true), 0);
        assert_eq!(b, [0i16; 64]);
    }

    #[test]
    fn quant_dequant_error_bounded_by_step() {
        for seed in 0..20 {
            let orig = random_block(seed, 1500);
            for qscale in [1u16, 2, 5, 12, 31] {
                for intra in [true, false] {
                    let mut b = orig;
                    quant8_scalar(&mut b, &MPEG_DEFAULT_NONINTRA, qscale, intra);
                    dequant8_scalar(&mut b, &MPEG_DEFAULT_NONINTRA, qscale, intra);
                    for i in 1..64 {
                        let step = i32::from(MPEG_DEFAULT_NONINTRA[i]) * i32::from(qscale) / 16;
                        let err = (i32::from(orig[i]) - i32::from(b[i])).abs();
                        // Reconstruction error bounded by one quant step
                        // (clamping can add more only beyond IDCT range).
                        if orig[i].abs() < 4000 {
                            assert!(
                                err <= step + 1,
                                "seed {seed} q {qscale} intra {intra} i {i}: err {err} step {step}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn higher_qscale_zeroes_more_coefficients() {
        let orig = random_block(3, 200);
        let mut low = orig;
        let mut high = orig;
        let nz_low = quant8_scalar(&mut low, &MPEG_DEFAULT_INTRA, 2, true);
        let nz_high = quant8_scalar(&mut high, &MPEG_DEFAULT_INTRA, 24, true);
        assert!(nz_high < nz_low, "{nz_high} vs {nz_low}");
    }

    #[test]
    fn nonintra_dead_zone_zeroes_small_values() {
        let mut b = [0i16; 64];
        b[5] = 7; // below 16*5/16 = 5? level = 7*16/(16*5)=1 -> wait
        b[6] = 2;
        quant8_scalar(&mut b, &MPEG_DEFAULT_NONINTRA, 5, false);
        assert_eq!(b[5], 1); // 7*16/80 = 1 (truncated)
        assert_eq!(b[6], 0); // 2*16/80 = 0
    }

    #[test]
    fn intra_dc_passthrough() {
        let mut b = [0i16; 64];
        b[0] = 123;
        quant8_scalar(&mut b, &MPEG_DEFAULT_INTRA, 10, true);
        assert_eq!(b[0], 123);
        dequant8_scalar(&mut b, &MPEG_DEFAULT_INTRA, 10, true);
        assert_eq!(b[0], 123);
    }

    #[test]
    fn dequant_clamps_to_idct_range() {
        let mut b = [0i16; 64];
        b[10] = 2047;
        dequant8_scalar(&mut b, &MPEG_DEFAULT_INTRA, 31, true);
        assert!(b[10] <= 4095);
    }
}
