//! SSE2 implementations of the hot kernels.
//!
//! Every function here is bit-exact with its scalar counterpart in the
//! sibling modules (asserted by property tests in `tests/`), so a stream
//! encoded at one [`SimdLevel`](crate::SimdLevel) decodes identically at
//! the other — the property that lets the Figure-1 harness reuse one set
//! of bitstreams for both decoder variants.
//!
//! SSE2 is part of the x86-64 baseline, so the `unsafe` blocks here have
//! no runtime feature precondition on this architecture.

#![allow(unsafe_code)]

use crate::quant::QuantMatrix;
use crate::Block8;
use std::arch::x86_64::*;

// ---------------------------------------------------------------- SAD --

/// # Safety
/// Requires SSE2 (always present on x86-64) and slices large enough for
/// the block geometry, as checked by the scalar fallback's indexing.
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn sad_sse2(
    a: &[u8],
    a_stride: usize,
    b: &[u8],
    b_stride: usize,
    w: usize,
    h: usize,
) -> u32 {
    debug_assert!(w.is_multiple_of(8));
    debug_assert!(h == 0 || a.len() >= (h - 1) * a_stride + w);
    debug_assert!(h == 0 || b.len() >= (h - 1) * b_stride + w);
    let mut acc = _mm_setzero_si128();
    for y in 0..h {
        let ra = &a[y * a_stride..];
        let rb = &b[y * b_stride..];
        let mut x = 0;
        while x + 16 <= w {
            let va = _mm_loadu_si128(ra.as_ptr().add(x) as *const __m128i);
            let vb = _mm_loadu_si128(rb.as_ptr().add(x) as *const __m128i);
            acc = _mm_add_epi64(acc, _mm_sad_epu8(va, vb));
            x += 16;
        }
        while x + 8 <= w {
            let va = _mm_loadl_epi64(ra.as_ptr().add(x) as *const __m128i);
            let vb = _mm_loadl_epi64(rb.as_ptr().add(x) as *const __m128i);
            acc = _mm_add_epi64(acc, _mm_sad_epu8(va, vb));
            x += 8;
        }
        debug_assert_eq!(x, w);
    }
    let hi = _mm_shuffle_epi32(acc, 0b0100_1110);
    let sum = _mm_add_epi64(acc, hi);
    _mm_cvtsi128_si32(sum) as u32
}

// --------------------------------------------------------------- SATD --

#[inline]
#[target_feature(enable = "sse2")]
unsafe fn abs_epi16(v: __m128i) -> __m128i {
    _mm_max_epi16(v, _mm_sub_epi16(_mm_setzero_si128(), v))
}

/// Horizontal Hadamard stage within each 64-bit half (two rows packed per
/// register). `SWAP1` = distance-1 butterfly, otherwise distance-2.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn hstage(v: __m128i, dist1: bool) -> __m128i {
    let (shuffled, mask) = if dist1 {
        // lanes [1,0,3,2] within each half; keep sums in even lanes.
        let s = _mm_shufflehi_epi16::<0b10_11_00_01>(_mm_shufflelo_epi16::<0b10_11_00_01>(v));
        let m = _mm_set_epi16(-1, 0, -1, 0, -1, 0, -1, 0); // odd lanes select diff
        (s, m)
    } else {
        // lanes [2,3,0,1] within each half; sums in lanes 0-1, diffs 2-3.
        let s = _mm_shufflehi_epi16::<0b01_00_11_10>(_mm_shufflelo_epi16::<0b01_00_11_10>(v));
        let m = _mm_set_epi16(-1, -1, 0, 0, -1, -1, 0, 0);
        (s, m)
    };
    let sum = _mm_add_epi16(v, shuffled);
    let diff = _mm_sub_epi16(v, shuffled);
    _mm_or_si128(_mm_andnot_si128(mask, sum), _mm_and_si128(mask, diff))
}

/// Loads two rows of 4 u8 as 8 i16 lanes `[row y | row y+1]`.
///
/// # Safety
/// Requires SSE2 and 4 readable bytes at both row offsets.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn load_row_pair(p: &[u8], stride: usize, y: usize) -> __m128i {
    let r0 = u32::from_le_bytes(p[y * stride..y * stride + 4].try_into().unwrap());
    let r1 = u32::from_le_bytes(
        p[(y + 1) * stride..(y + 1) * stride + 4]
            .try_into()
            .unwrap(),
    );
    let packed = _mm_set_epi32(0, 0, r1 as i32, r0 as i32);
    _mm_unpacklo_epi8(packed, _mm_setzero_si128())
}

/// 4×4 Hadamard SATD of one tile.
///
/// # Safety
/// Requires SSE2 and at least 4 rows of 4 readable bytes at each pointer
/// offset.
#[target_feature(enable = "sse2")]
unsafe fn satd4x4_tile(a: &[u8], a_stride: usize, b: &[u8], b_stride: usize) -> u32 {
    let a01 = load_row_pair(a, a_stride, 0);
    let a23 = load_row_pair(a, a_stride, 2);
    let b01 = load_row_pair(b, b_stride, 0);
    let b23 = load_row_pair(b, b_stride, 2);
    let d01 = _mm_sub_epi16(a01, b01);
    let d23 = _mm_sub_epi16(a23, b23);

    // Vertical butterflies across rows (see satd_scalar for the order).
    let t0 = _mm_add_epi16(d01, d23); // [r0+r2 | r1+r3]
    let t1 = _mm_sub_epi16(d01, d23); // [r0-r2 | r1-r3]
    let u0 = _mm_unpacklo_epi64(t0, t1); // [r0+r2 | r0-r2]
    let u1 = _mm_unpackhi_epi64(t0, t1); // [r1+r3 | r1-r3]
    let m0 = _mm_add_epi16(u0, u1);
    let m1 = _mm_sub_epi16(u0, u1);

    // Horizontal transform within each packed row.
    let h0 = hstage(hstage(m0, false), true);
    let h1 = hstage(hstage(m1, false), true);

    let ones = _mm_set1_epi16(1);
    let sum = _mm_add_epi32(
        _mm_madd_epi16(abs_epi16(h0), ones),
        _mm_madd_epi16(abs_epi16(h1), ones),
    );
    let s1 = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, 0b0100_1110));
    let s2 = _mm_add_epi32(s1, _mm_shuffle_epi32(s1, 0b1011_0001));
    (_mm_cvtsi128_si32(s2) as u32) / 2
}

/// # Safety
/// Requires SSE2 and block geometry within the slices; `w`, `h` multiples
/// of 4.
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn satd_sse2(
    a: &[u8],
    a_stride: usize,
    b: &[u8],
    b_stride: usize,
    w: usize,
    h: usize,
) -> u32 {
    debug_assert!(w.is_multiple_of(4) && h.is_multiple_of(4));
    debug_assert!(h == 0 || a.len() >= (h - 1) * a_stride + w);
    debug_assert!(h == 0 || b.len() >= (h - 1) * b_stride + w);
    let mut sum = 0;
    let mut y = 0;
    while y < h {
        let mut x = 0;
        while x < w {
            sum += satd4x4_tile(
                &a[y * a_stride + x..],
                a_stride,
                &b[y * b_stride + x..],
                b_stride,
            );
            x += 4;
        }
        y += 4;
    }
    sum
}

// ------------------------------------------------------------ DCT 8x8 --

const SHIFT: i32 = 11;
const ROUND: i32 = 1 << (SHIFT - 1);

/// Packed coefficient pairs for the forward matrix: entry `[u][x/2]` holds
/// `(COS[u][x], COS[u][x+1])` as two i16 in an i32 for `pmaddwd`.
const FWD_PAIRS: [[i32; 4]; 8] = build_pairs(false);
/// Same for the inverse (transposed) matrix.
const INV_PAIRS: [[i32; 4]; 8] = build_pairs(true);

const fn build_pairs(transpose: bool) -> [[i32; 4]; 8] {
    let cos = crate::dct8::COS;
    let mut out = [[0i32; 4]; 8];
    let mut r = 0;
    while r < 8 {
        let mut p = 0;
        while p < 4 {
            let (c0, c1) = if transpose {
                (cos[2 * p][r], cos[2 * p + 1][r])
            } else {
                (cos[r][2 * p], cos[r][2 * p + 1])
            };
            out[r][p] = ((c1 as u16 as i32) << 16) | (c0 as u16 as i32);
            p += 1;
        }
        r += 1;
    }
    out
}

/// Transposes 8 registers of 8 i16 lanes in place.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn transpose8(r: &mut [__m128i; 8]) {
    let a0 = _mm_unpacklo_epi16(r[0], r[1]);
    let a1 = _mm_unpackhi_epi16(r[0], r[1]);
    let a2 = _mm_unpacklo_epi16(r[2], r[3]);
    let a3 = _mm_unpackhi_epi16(r[2], r[3]);
    let a4 = _mm_unpacklo_epi16(r[4], r[5]);
    let a5 = _mm_unpackhi_epi16(r[4], r[5]);
    let a6 = _mm_unpacklo_epi16(r[6], r[7]);
    let a7 = _mm_unpackhi_epi16(r[6], r[7]);
    let b0 = _mm_unpacklo_epi32(a0, a2);
    let b1 = _mm_unpackhi_epi32(a0, a2);
    let b2 = _mm_unpacklo_epi32(a1, a3);
    let b3 = _mm_unpackhi_epi32(a1, a3);
    let b4 = _mm_unpacklo_epi32(a4, a6);
    let b5 = _mm_unpackhi_epi32(a4, a6);
    let b6 = _mm_unpacklo_epi32(a5, a7);
    let b7 = _mm_unpackhi_epi32(a5, a7);
    r[0] = _mm_unpacklo_epi64(b0, b4);
    r[1] = _mm_unpackhi_epi64(b0, b4);
    r[2] = _mm_unpacklo_epi64(b1, b5);
    r[3] = _mm_unpackhi_epi64(b1, b5);
    r[4] = _mm_unpacklo_epi64(b2, b6);
    r[5] = _mm_unpackhi_epi64(b2, b6);
    r[6] = _mm_unpacklo_epi64(b3, b7);
    r[7] = _mm_unpackhi_epi64(b3, b7);
}

/// One 1-D pass: transpose then `out_r = round(Σ_k pairs[r][k] · in_k)`,
/// reproducing the scalar pass (including its transposed store) exactly.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn dct_pass(r: &mut [__m128i; 8], pairs: &[[i32; 4]; 8]) {
    transpose8(r);
    // Interleave register pairs once: lanes become (in_k, in_{k+1}) pairs.
    let mut lo = [_mm_setzero_si128(); 4];
    let mut hi = [_mm_setzero_si128(); 4];
    for k in 0..4 {
        lo[k] = _mm_unpacklo_epi16(r[2 * k], r[2 * k + 1]);
        hi[k] = _mm_unpackhi_epi16(r[2 * k], r[2 * k + 1]);
    }
    let round = _mm_set1_epi32(ROUND);
    let mut out = [_mm_setzero_si128(); 8];
    for (u, row_pairs) in pairs.iter().enumerate() {
        let mut acc_lo = round;
        let mut acc_hi = round;
        for k in 0..4 {
            let c = _mm_set1_epi32(row_pairs[k]);
            acc_lo = _mm_add_epi32(acc_lo, _mm_madd_epi16(lo[k], c));
            acc_hi = _mm_add_epi32(acc_hi, _mm_madd_epi16(hi[k], c));
        }
        out[u] = _mm_packs_epi32(
            _mm_srai_epi32::<SHIFT>(acc_lo),
            _mm_srai_epi32::<SHIFT>(acc_hi),
        );
    }
    *r = out;
}

#[inline]
#[target_feature(enable = "sse2")]
unsafe fn load_block(block: &Block8) -> [__m128i; 8] {
    let mut r = [_mm_setzero_si128(); 8];
    for (y, reg) in r.iter_mut().enumerate() {
        *reg = _mm_loadu_si128(block.as_ptr().add(y * 8) as *const __m128i);
    }
    r
}

#[inline]
#[target_feature(enable = "sse2")]
unsafe fn store_block(block: &mut Block8, r: &[__m128i; 8]) {
    for (y, reg) in r.iter().enumerate() {
        _mm_storeu_si128(block.as_mut_ptr().add(y * 8) as *mut __m128i, *reg);
    }
}

/// # Safety
/// Requires SSE2.
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn fdct8_sse2(block: &mut Block8) {
    let mut r = load_block(block);
    dct_pass(&mut r, &FWD_PAIRS);
    dct_pass(&mut r, &FWD_PAIRS);
    store_block(block, &r);
}

/// # Safety
/// Requires SSE2.
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn idct8_sse2(block: &mut Block8) {
    let mut r = load_block(block);
    dct_pass(&mut r, &INV_PAIRS);
    dct_pass(&mut r, &INV_PAIRS);
    store_block(block, &r);
}

// -------------------------------------------------------- quantisation --

/// # Safety
/// Requires SSE2.
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn dequant8_sse2(
    block: &mut Block8,
    matrix: &QuantMatrix,
    qscale: u16,
    intra: bool,
) {
    let zero = _mm_setzero_si128();
    let lo_clamp = _mm_set1_epi32(-4096);
    let hi_clamp = _mm_set1_epi32(4095);
    let saved_dc = block[0];
    let qv = _mm_set1_epi16(qscale as i16);
    for chunk in 0..8 {
        let v = _mm_loadu_si128(block.as_ptr().add(chunk * 8) as *const __m128i);
        // mq[i] = matrix[i] * qscale; both operands and the product fit
        // i16 for the benchmark's ranges (matrix <= 255, qscale <= 62).
        let mrow = _mm_loadu_si128(matrix.as_ptr().add(chunk * 8) as *const __m128i);
        let mq = _mm_mullo_epi16(mrow, qv);

        let neg_mask = _mm_cmpgt_epi16(zero, v);
        let abs = _mm_max_epi16(v, _mm_sub_epi16(zero, v));
        // For non-intra reconstruction: (2|l| + 1) where l != 0.
        let nz_mask = _mm_cmpeq_epi16(v, zero); // 1s where zero
        let operand = if intra {
            abs
        } else {
            let two_plus = _mm_add_epi16(_mm_add_epi16(abs, abs), _mm_set1_epi16(1));
            _mm_andnot_si128(nz_mask, two_plus)
        };
        // 32-bit products via interleaved madd: (operand_i * mq_i).
        let op_lo = _mm_unpacklo_epi16(operand, zero);
        let op_hi = _mm_unpackhi_epi16(operand, zero);
        let mq_lo = _mm_unpacklo_epi16(mq, zero);
        let mq_hi = _mm_unpackhi_epi16(mq, zero);
        let prod_lo = _mm_madd_epi16(op_lo, mq_lo);
        let prod_hi = _mm_madd_epi16(op_hi, mq_hi);
        let shift = _mm_cvtsi32_si128(if intra { 4 } else { 5 });
        let res_lo = clamp_epi32(_mm_srl_epi32(prod_lo, shift), lo_clamp, hi_clamp);
        let res_hi = clamp_epi32(_mm_srl_epi32(prod_hi, shift), lo_clamp, hi_clamp);
        let packed = _mm_packs_epi32(res_lo, res_hi);
        // Reapply sign.
        let signed = _mm_sub_epi16(_mm_xor_si128(packed, neg_mask), neg_mask);
        _mm_storeu_si128(block.as_mut_ptr().add(chunk * 8) as *mut __m128i, signed);
    }
    if intra {
        block[0] = saved_dc;
    }
}

#[inline]
#[target_feature(enable = "sse2")]
unsafe fn clamp_epi32(v: __m128i, lo: __m128i, hi: __m128i) -> __m128i {
    // SSE2 has no pmin/pmax_epi32; emulate with compare + blend.
    let gt_hi = _mm_cmpgt_epi32(v, hi);
    let v = _mm_or_si128(_mm_andnot_si128(gt_hi, v), _mm_and_si128(gt_hi, hi));
    let lt_lo = _mm_cmpgt_epi32(lo, v);
    _mm_or_si128(_mm_andnot_si128(lt_lo, v), _mm_and_si128(lt_lo, lo))
}

// ------------------------------------------------------- interpolation --

/// # Safety
/// Requires SSE2; `w % 8 == 0`.
#[target_feature(enable = "sse2")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn avg_block_sse2(
    dst: &mut [u8],
    dst_stride: usize,
    a: &[u8],
    a_stride: usize,
    b: &[u8],
    b_stride: usize,
    w: usize,
    h: usize,
) {
    debug_assert!(w.is_multiple_of(8));
    debug_assert!(h == 0 || dst.len() >= (h - 1) * dst_stride + w);
    debug_assert!(h == 0 || a.len() >= (h - 1) * a_stride + w);
    debug_assert!(h == 0 || b.len() >= (h - 1) * b_stride + w);
    for y in 0..h {
        let mut x = 0;
        while x + 16 <= w {
            let va = _mm_loadu_si128(a.as_ptr().add(y * a_stride + x) as *const __m128i);
            let vb = _mm_loadu_si128(b.as_ptr().add(y * b_stride + x) as *const __m128i);
            _mm_storeu_si128(
                dst.as_mut_ptr().add(y * dst_stride + x) as *mut __m128i,
                _mm_avg_epu8(va, vb),
            );
            x += 16;
        }
        while x + 8 <= w {
            let va = _mm_loadl_epi64(a.as_ptr().add(y * a_stride + x) as *const __m128i);
            let vb = _mm_loadl_epi64(b.as_ptr().add(y * b_stride + x) as *const __m128i);
            _mm_storel_epi64(
                dst.as_mut_ptr().add(y * dst_stride + x) as *mut __m128i,
                _mm_avg_epu8(va, vb),
            );
            x += 8;
        }
    }
}

/// # Safety
/// Requires SSE2; `w % 8 == 0`; source readable one row/column beyond the
/// block for the interpolated positions.
#[target_feature(enable = "sse2")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn hpel_interp_sse2(
    dst: &mut [u8],
    dst_stride: usize,
    src: &[u8],
    src_stride: usize,
    fx: u8,
    fy: u8,
    w: usize,
    h: usize,
) {
    debug_assert!(fx <= 1 && fy <= 1);
    debug_assert!(w.is_multiple_of(8));
    debug_assert!(h == 0 || dst.len() >= (h - 1) * dst_stride + w);
    debug_assert!(
        h == 0 || src.len() >= (h - 1 + usize::from(fy)) * src_stride + w + usize::from(fx)
    );
    match (fx, fy) {
        (0, 0) => crate::pixel::copy_block(dst, dst_stride, src, src_stride, w, h),
        (1, 0) => avg_block_sse2(
            dst,
            dst_stride,
            src,
            src_stride,
            &src[1..],
            src_stride,
            w,
            h,
        ),
        (0, 1) => avg_block_sse2(
            dst,
            dst_stride,
            src,
            src_stride,
            &src[src_stride..],
            src_stride,
            w,
            h,
        ),
        _ => {
            // Exact (a+b+c+d+2)>>2 via 16-bit widening.
            let zero = _mm_setzero_si128();
            let two = _mm_set1_epi16(2);
            for y in 0..h {
                let mut x = 0;
                while x + 8 <= w {
                    let i = y * src_stride + x;
                    let a = _mm_unpacklo_epi8(
                        _mm_loadl_epi64(src.as_ptr().add(i) as *const __m128i),
                        zero,
                    );
                    let b = _mm_unpacklo_epi8(
                        _mm_loadl_epi64(src.as_ptr().add(i + 1) as *const __m128i),
                        zero,
                    );
                    let c = _mm_unpacklo_epi8(
                        _mm_loadl_epi64(src.as_ptr().add(i + src_stride) as *const __m128i),
                        zero,
                    );
                    let d = _mm_unpacklo_epi8(
                        _mm_loadl_epi64(src.as_ptr().add(i + src_stride + 1) as *const __m128i),
                        zero,
                    );
                    let sum = _mm_add_epi16(_mm_add_epi16(a, b), _mm_add_epi16(c, d));
                    let avg = _mm_srli_epi16(_mm_add_epi16(sum, two), 2);
                    _mm_storel_epi64(
                        dst.as_mut_ptr().add(y * dst_stride + x) as *mut __m128i,
                        _mm_packus_epi16(avg, avg),
                    );
                    x += 8;
                }
            }
        }
    }
}

#[inline]
#[target_feature(enable = "sse2")]
unsafe fn sixtap_epi16(
    m2: __m128i,
    m1: __m128i,
    z0: __m128i,
    p1: __m128i,
    p2: __m128i,
    p3: __m128i,
) -> __m128i {
    let twenty = _mm_set1_epi16(20);
    let five = _mm_set1_epi16(5);
    let center = _mm_mullo_epi16(_mm_add_epi16(z0, p1), twenty);
    let near = _mm_mullo_epi16(_mm_add_epi16(m1, p2), five);
    let far = _mm_add_epi16(m2, p3);
    _mm_add_epi16(_mm_sub_epi16(center, near), far)
}

#[inline]
#[target_feature(enable = "sse2")]
unsafe fn load8_epi16(p: *const u8) -> __m128i {
    _mm_unpacklo_epi8(_mm_loadl_epi64(p as *const __m128i), _mm_setzero_si128())
}

/// Horizontal 6-tap; `src[0]` is 2 samples left of the block origin (same
/// convention as the scalar kernel).
///
/// # Safety
/// Requires SSE2; `w % 8 == 0`; each row must have `w + 5` readable
/// samples.
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn sixtap_h_sse2(
    dst: &mut [u8],
    dst_stride: usize,
    src: &[u8],
    src_stride: usize,
    w: usize,
    h: usize,
) {
    debug_assert!(w.is_multiple_of(8));
    debug_assert!(h == 0 || dst.len() >= (h - 1) * dst_stride + w);
    debug_assert!(h == 0 || src.len() >= (h - 1) * src_stride + w + 5);
    let sixteen = _mm_set1_epi16(16);
    for y in 0..h {
        let mut x = 0;
        while x + 8 <= w {
            let base = src.as_ptr().add(y * src_stride + x);
            let v = sixtap_epi16(
                load8_epi16(base),
                load8_epi16(base.add(1)),
                load8_epi16(base.add(2)),
                load8_epi16(base.add(3)),
                load8_epi16(base.add(4)),
                load8_epi16(base.add(5)),
            );
            let rounded = _mm_srai_epi16::<5>(_mm_add_epi16(v, sixteen));
            _mm_storel_epi64(
                dst.as_mut_ptr().add(y * dst_stride + x) as *mut __m128i,
                _mm_packus_epi16(rounded, rounded),
            );
            x += 8;
        }
    }
}

/// Vertical 6-tap; `src[0]` is 2 rows above the block origin (same
/// convention as the scalar kernel).
///
/// # Safety
/// Requires SSE2; `w % 8 == 0`; `h + 5` rows must be readable.
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn sixtap_v_sse2(
    dst: &mut [u8],
    dst_stride: usize,
    src: &[u8],
    src_stride: usize,
    w: usize,
    h: usize,
) {
    debug_assert!(w.is_multiple_of(8));
    debug_assert!(h == 0 || dst.len() >= (h - 1) * dst_stride + w);
    debug_assert!(h == 0 || src.len() >= (h + 4) * src_stride + w);
    let sixteen = _mm_set1_epi16(16);
    for y in 0..h {
        let mut x = 0;
        while x + 8 <= w {
            let base = src.as_ptr().add(y * src_stride + x);
            let v = sixtap_epi16(
                load8_epi16(base),
                load8_epi16(base.add(src_stride)),
                load8_epi16(base.add(2 * src_stride)),
                load8_epi16(base.add(3 * src_stride)),
                load8_epi16(base.add(4 * src_stride)),
                load8_epi16(base.add(5 * src_stride)),
            );
            let rounded = _mm_srai_epi16::<5>(_mm_add_epi16(v, sixteen));
            _mm_storel_epi64(
                dst.as_mut_ptr().add(y * dst_stride + x) as *mut __m128i,
                _mm_packus_epi16(rounded, rounded),
            );
            x += 8;
        }
    }
}

/// # Safety
/// Requires SSE2; standard 8×8 block bounds.
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn add_residual8_sse2(
    dst: &mut [u8],
    dst_stride: usize,
    pred: &[u8],
    pred_stride: usize,
    res: &Block8,
) {
    debug_assert!(dst.len() >= 7 * dst_stride + 8);
    debug_assert!(pred.len() >= 7 * pred_stride + 8);
    let zero = _mm_setzero_si128();
    for y in 0..8 {
        let p = _mm_unpacklo_epi8(
            _mm_loadl_epi64(pred.as_ptr().add(y * pred_stride) as *const __m128i),
            zero,
        );
        let r = _mm_loadu_si128(res.as_ptr().add(y * 8) as *const __m128i);
        let sum = _mm_adds_epi16(p, r);
        _mm_storel_epi64(
            dst.as_mut_ptr().add(y * dst_stride) as *mut __m128i,
            _mm_packus_epi16(sum, sum),
        );
    }
}

// ----------------------------------------------------------- deblock --

/// Horizontal-edge deblock, 8 samples per iteration; bit-exact with the
/// scalar kernel.
///
/// # Safety
/// Requires SSE2 and a slice covering rows q0-2..=q0+1 over `width`
/// samples.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn deblock_horiz_edge_sse2(
    data: &mut [u8],
    stride: usize,
    q0_off: usize,
    width: usize,
    alpha: i32,
    beta: i32,
    tc: i32,
) {
    debug_assert!(q0_off >= 2 * stride);
    debug_assert!(width == 0 || data.len() >= q0_off + stride + width);
    let zero = _mm_setzero_si128();
    let valpha = _mm_set1_epi16(alpha as i16);
    let vbeta = _mm_set1_epi16(beta as i16);
    let vtc = _mm_set1_epi16(tc as i16);
    let vntc = _mm_set1_epi16(-tc as i16);
    let four = _mm_set1_epi16(4);
    let mut x = 0;
    while x + 8 <= width {
        let i = q0_off + x;
        let p1 = _mm_unpacklo_epi8(
            _mm_loadl_epi64(data.as_ptr().add(i - 2 * stride) as *const __m128i),
            zero,
        );
        let p0 = _mm_unpacklo_epi8(
            _mm_loadl_epi64(data.as_ptr().add(i - stride) as *const __m128i),
            zero,
        );
        let q0 = _mm_unpacklo_epi8(
            _mm_loadl_epi64(data.as_ptr().add(i) as *const __m128i),
            zero,
        );
        let q1 = _mm_unpacklo_epi8(
            _mm_loadl_epi64(data.as_ptr().add(i + stride) as *const __m128i),
            zero,
        );
        let abs16 = |v: __m128i| _mm_max_epi16(v, _mm_sub_epi16(zero, v));
        let cond = _mm_and_si128(
            _mm_cmplt_epi16(abs16(_mm_sub_epi16(p0, q0)), valpha),
            _mm_and_si128(
                _mm_cmplt_epi16(abs16(_mm_sub_epi16(p1, p0)), vbeta),
                _mm_cmplt_epi16(abs16(_mm_sub_epi16(q1, q0)), vbeta),
            ),
        );
        // delta = clamp(((q0-p0)*4 + (p1-q1) + 4) >> 3, -tc, tc)
        let diff4 = _mm_slli_epi16::<2>(_mm_sub_epi16(q0, p0));
        let raw = _mm_srai_epi16::<3>(_mm_add_epi16(
            _mm_add_epi16(diff4, _mm_sub_epi16(p1, q1)),
            four,
        ));
        let delta = _mm_max_epi16(vntc, _mm_min_epi16(vtc, raw));
        let masked = _mm_and_si128(delta, cond);
        let new_p0 = _mm_packus_epi16(_mm_add_epi16(p0, masked), zero);
        let new_q0 = _mm_packus_epi16(_mm_sub_epi16(q0, masked), zero);
        _mm_storel_epi64(data.as_mut_ptr().add(i - stride) as *mut __m128i, new_p0);
        _mm_storel_epi64(data.as_mut_ptr().add(i) as *mut __m128i, new_q0);
        x += 8;
    }
    // Scalar tail for non-multiple-of-8 widths.
    if x < width {
        crate::deblock::deblock_horiz_edge_scalar(
            data,
            stride,
            q0_off + x,
            width - x,
            alpha,
            beta,
            tc,
        );
    }
}

// ----------------------------------------------------------------- SSD --

/// # Safety
/// Requires SSE2; `w % 8 == 0` and slices covering the block geometry.
/// Per-row sums fit i32 (`w * 255² < 2^31` for any `w ≤ 16384`).
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn ssd_sse2(
    a: &[u8],
    a_stride: usize,
    b: &[u8],
    b_stride: usize,
    w: usize,
    h: usize,
) -> u64 {
    debug_assert!(w.is_multiple_of(8));
    debug_assert!(h == 0 || a.len() >= (h - 1) * a_stride + w);
    debug_assert!(h == 0 || b.len() >= (h - 1) * b_stride + w);
    let zero = _mm_setzero_si128();
    let mut total = 0u64;
    for y in 0..h {
        let ra = a.as_ptr().add(y * a_stride);
        let rb = b.as_ptr().add(y * b_stride);
        let mut acc = _mm_setzero_si128();
        let mut x = 0;
        while x + 16 <= w {
            let va = _mm_loadu_si128(ra.add(x) as *const __m128i);
            let vb = _mm_loadu_si128(rb.add(x) as *const __m128i);
            let d_lo = _mm_sub_epi16(_mm_unpacklo_epi8(va, zero), _mm_unpacklo_epi8(vb, zero));
            let d_hi = _mm_sub_epi16(_mm_unpackhi_epi8(va, zero), _mm_unpackhi_epi8(vb, zero));
            acc = _mm_add_epi32(acc, _mm_madd_epi16(d_lo, d_lo));
            acc = _mm_add_epi32(acc, _mm_madd_epi16(d_hi, d_hi));
            x += 16;
        }
        while x + 8 <= w {
            let va = _mm_loadl_epi64(ra.add(x) as *const __m128i);
            let vb = _mm_loadl_epi64(rb.add(x) as *const __m128i);
            let d = _mm_sub_epi16(_mm_unpacklo_epi8(va, zero), _mm_unpacklo_epi8(vb, zero));
            acc = _mm_add_epi32(acc, _mm_madd_epi16(d, d));
            x += 8;
        }
        let s1 = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, 0b0100_1110));
        let s2 = _mm_add_epi32(s1, _mm_shuffle_epi32(s1, 0b1011_0001));
        total += u64::from(_mm_cvtsi128_si32(s2) as u32);
    }
    total
}

// ---------------------------------------------------------- copy/diff --

/// # Safety
/// Requires SSE2 and slices covering the block geometry (any width).
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn copy_block_sse2(
    dst: &mut [u8],
    dst_stride: usize,
    src: &[u8],
    src_stride: usize,
    w: usize,
    h: usize,
) {
    debug_assert!(h == 0 || dst.len() >= (h - 1) * dst_stride + w);
    debug_assert!(h == 0 || src.len() >= (h - 1) * src_stride + w);
    // Width classified once per call so each row loop is a single form
    // (see the AVX2 variant for the rationale).
    if w.is_multiple_of(16) {
        let mut s = src.as_ptr();
        let mut d = dst.as_mut_ptr();
        for _ in 0..h {
            let mut x = 0;
            while x < w {
                _mm_storeu_si128(
                    d.add(x) as *mut __m128i,
                    _mm_loadu_si128(s.add(x) as *const __m128i),
                );
                x += 16;
            }
            s = s.add(src_stride);
            d = d.add(dst_stride);
        }
    } else if w == 8 {
        let mut s = src.as_ptr();
        let mut d = dst.as_mut_ptr();
        for _ in 0..h {
            _mm_storel_epi64(d as *mut __m128i, _mm_loadl_epi64(s as *const __m128i));
            s = s.add(src_stride);
            d = d.add(dst_stride);
        }
    } else {
        crate::pixel::copy_block(dst, dst_stride, src, src_stride, w, h);
    }
}

/// # Safety
/// Requires SSE2; standard 8×8 block bounds.
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn diff_block8_sse2(
    res: &mut Block8,
    cur: &[u8],
    cur_stride: usize,
    pred: &[u8],
    pred_stride: usize,
) {
    debug_assert!(cur.len() >= 7 * cur_stride + 8);
    debug_assert!(pred.len() >= 7 * pred_stride + 8);
    let zero = _mm_setzero_si128();
    for y in 0..8 {
        let c = _mm_unpacklo_epi8(
            _mm_loadl_epi64(cur.as_ptr().add(y * cur_stride) as *const __m128i),
            zero,
        );
        let p = _mm_unpacklo_epi8(
            _mm_loadl_epi64(pred.as_ptr().add(y * pred_stride) as *const __m128i),
            zero,
        );
        _mm_storeu_si128(
            res.as_mut_ptr().add(y * 8) as *mut __m128i,
            _mm_sub_epi16(c, p),
        );
    }
}

// ------------------------------------------------ forward quantisation --

#[inline]
#[target_feature(enable = "sse2")]
unsafe fn abs_epi32(v: __m128i) -> __m128i {
    let s = _mm_srai_epi32::<31>(v);
    _mm_sub_epi32(_mm_xor_si128(v, s), s)
}

/// Exact `trunc(num / den)` for four non-negative i32 lanes via
/// double-precision division.
///
/// Exactness: both operands convert to f64 exactly (they are i32), and
/// the correctly-rounded quotient differs from the true rational
/// `num/den` by at most `(num/den)·2⁻⁵³`, while a non-integer quotient
/// sits at least `1/den` from any integer — so truncation crosses an
/// integer boundary only if `num ≥ 2⁵³`, which an i32 never is. Exact
/// integer quotients are reproduced exactly by IEEE division.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn div_trunc_epi32(num: __m128i, den: __m128i) -> __m128i {
    let num_hi = _mm_shuffle_epi32::<0b00_00_11_10>(num);
    let den_hi = _mm_shuffle_epi32::<0b00_00_11_10>(den);
    let q_lo = _mm_cvttpd_epi32(_mm_div_pd(_mm_cvtepi32_pd(num), _mm_cvtepi32_pd(den)));
    let q_hi = _mm_cvttpd_epi32(_mm_div_pd(_mm_cvtepi32_pd(num_hi), _mm_cvtepi32_pd(den_hi)));
    _mm_unpacklo_epi64(q_lo, q_hi)
}

/// Forward quantiser, bit-exact with `quant8_scalar`.
///
/// # Safety
/// Requires SSE2. `matrix[i] * qscale` must fit i16 (true for the MPEG
/// ranges: entries ≤ 255, qscale ≤ 62 — the same precondition as the
/// dequant kernel).
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn quant8_sse2(
    block: &mut Block8,
    matrix: &QuantMatrix,
    qscale: u16,
    intra: bool,
) -> u32 {
    debug_assert!(qscale >= 1);
    let zero = _mm_setzero_si128();
    let qv = _mm_set1_epi16(qscale as i16);
    let max_level = _mm_set1_epi32(2047);
    let saved_dc = block[0];
    let mut nonzero = 0u32;
    for chunk in 0..8 {
        let v = _mm_loadu_si128(block.as_ptr().add(chunk * 8) as *const __m128i);
        let mrow = _mm_loadu_si128(matrix.as_ptr().add(chunk * 8) as *const __m128i);
        // div = matrix[i] * qscale, as i32 lanes (madd against (m, 0)).
        let div_lo = _mm_madd_epi16(_mm_unpacklo_epi16(mrow, zero), qv);
        let div_hi = _mm_madd_epi16(_mm_unpackhi_epi16(mrow, zero), qv);
        // Sign-extend the coefficients to i32 and take magnitudes.
        let c_lo = _mm_srai_epi32::<16>(_mm_unpacklo_epi16(zero, v));
        let c_hi = _mm_srai_epi32::<16>(_mm_unpackhi_epi16(zero, v));
        let abs_lo = abs_epi32(c_lo);
        let abs_hi = abs_epi32(c_hi);
        // intra: (|c|·32 + div) / (2·div)   non-intra: |c|·16 / div
        let (num_lo, num_hi, den_lo, den_hi) = if intra {
            (
                _mm_add_epi32(_mm_slli_epi32::<5>(abs_lo), div_lo),
                _mm_add_epi32(_mm_slli_epi32::<5>(abs_hi), div_hi),
                _mm_slli_epi32::<1>(div_lo),
                _mm_slli_epi32::<1>(div_hi),
            )
        } else {
            (
                _mm_slli_epi32::<4>(abs_lo),
                _mm_slli_epi32::<4>(abs_hi),
                div_lo,
                div_hi,
            )
        };
        let q_lo = clamp_epi32(div_trunc_epi32(num_lo, den_lo), zero, max_level);
        let q_hi = clamp_epi32(div_trunc_epi32(num_hi, den_hi), zero, max_level);
        // Reapply the sign: (q ^ s) - s with s = c >> 31.
        let s_lo = _mm_srai_epi32::<31>(c_lo);
        let s_hi = _mm_srai_epi32::<31>(c_hi);
        let r_lo = _mm_sub_epi32(_mm_xor_si128(q_lo, s_lo), s_lo);
        let r_hi = _mm_sub_epi32(_mm_xor_si128(q_hi, s_hi), s_hi);
        let packed = _mm_packs_epi32(r_lo, r_hi);
        _mm_storeu_si128(block.as_mut_ptr().add(chunk * 8) as *mut __m128i, packed);
        // Each zero i16 lane sets two bytes in the movemask.
        let zmask = _mm_movemask_epi8(_mm_cmpeq_epi16(packed, zero)) as u32;
        nonzero += 8 - zmask.count_ones() / 2;
    }
    if intra {
        // The codec's DC predictor owns the intra DC: undo the SIMD pass
        // on index 0 and restore the scalar counting convention.
        if block[0] != 0 {
            nonzero -= 1;
        }
        block[0] = saved_dc;
        if saved_dc != 0 {
            nonzero += 1;
        }
    }
    nonzero
}

// ------------------------------------------------------ 2-D six-tap ----

const fn pack_taps(even: i16, odd: i16) -> i32 {
    ((odd as u16 as i32) << 16) | (even as u16 as i32)
}

/// Combined 6-tap (the H.264 "j" position): horizontal pass stored at
/// full precision in an i16 buffer (the unrounded 6-tap of u8 inputs
/// spans [-2550, 10710], which fits), vertical pass via three exact
/// i16×i16→i32 multiply-adds with tap pairs (1,-5), (20,20), (-5,1).
///
/// # Safety
/// Requires SSE2; `w % 8 == 0`, `w ≤ 16`, `h ≤ 16`; `src` must cover
/// `h + 5` rows of `w + 5` samples.
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn sixtap_hv_sse2(
    dst: &mut [u8],
    dst_stride: usize,
    src: &[u8],
    src_stride: usize,
    w: usize,
    h: usize,
) {
    debug_assert!(w.is_multiple_of(8) && w <= 16 && h <= 16);
    debug_assert!(h == 0 || dst.len() >= (h - 1) * dst_stride + w);
    debug_assert!(src.len() >= (h + 4) * src_stride + w + 5);
    let mut tmp = [0i16; 16 * 21];
    let tmp_h = h + 5;
    for ty in 0..tmp_h {
        let mut x = 0;
        while x + 8 <= w {
            let base = src.as_ptr().add(ty * src_stride + x);
            let v = sixtap_epi16(
                load8_epi16(base),
                load8_epi16(base.add(1)),
                load8_epi16(base.add(2)),
                load8_epi16(base.add(3)),
                load8_epi16(base.add(4)),
                load8_epi16(base.add(5)),
            );
            _mm_storeu_si128(tmp.as_mut_ptr().add(ty * w + x) as *mut __m128i, v);
            x += 8;
        }
    }
    let c01 = _mm_set1_epi32(pack_taps(1, -5));
    let c23 = _mm_set1_epi32(pack_taps(20, 20));
    let c45 = _mm_set1_epi32(pack_taps(-5, 1));
    let round = _mm_set1_epi32(512);
    for y in 0..h {
        let mut x = 0;
        while x + 8 <= w {
            let base = tmp.as_ptr().add(y * w + x);
            let r0 = _mm_loadu_si128(base as *const __m128i);
            let r1 = _mm_loadu_si128(base.add(w) as *const __m128i);
            let r2 = _mm_loadu_si128(base.add(2 * w) as *const __m128i);
            let r3 = _mm_loadu_si128(base.add(3 * w) as *const __m128i);
            let r4 = _mm_loadu_si128(base.add(4 * w) as *const __m128i);
            let r5 = _mm_loadu_si128(base.add(5 * w) as *const __m128i);
            let acc_lo = _mm_add_epi32(
                _mm_add_epi32(
                    _mm_madd_epi16(_mm_unpacklo_epi16(r0, r1), c01),
                    _mm_madd_epi16(_mm_unpacklo_epi16(r2, r3), c23),
                ),
                _mm_add_epi32(_mm_madd_epi16(_mm_unpacklo_epi16(r4, r5), c45), round),
            );
            let acc_hi = _mm_add_epi32(
                _mm_add_epi32(
                    _mm_madd_epi16(_mm_unpackhi_epi16(r0, r1), c01),
                    _mm_madd_epi16(_mm_unpackhi_epi16(r2, r3), c23),
                ),
                _mm_add_epi32(_mm_madd_epi16(_mm_unpackhi_epi16(r4, r5), c45), round),
            );
            let res = _mm_packs_epi32(_mm_srai_epi32::<10>(acc_lo), _mm_srai_epi32::<10>(acc_hi));
            _mm_storel_epi64(
                dst.as_mut_ptr().add(y * dst_stride + x) as *mut __m128i,
                _mm_packus_epi16(res, res),
            );
            x += 8;
        }
    }
}

// ----------------------------------------------- dispatch-table entries --
//
// Safe, total entry points for the one-time kernel table resolved in
// `Dsp::new`. Each wrapper falls back to the scalar kernel for
// geometries the vector kernel does not handle, so a resolved pointer is
// valid for every input the facade accepts.
//
// SAFETY (all entries): SSE2 is part of the x86-64 baseline, so the
// `target_feature(enable = "sse2")` kernels have no runtime feature
// precondition on this architecture.

use crate::dispatch::KernelTable;

fn sad_entry(a: &[u8], a_stride: usize, b: &[u8], b_stride: usize, w: usize, h: usize) -> u32 {
    if w.is_multiple_of(8) {
        unsafe { sad_sse2(a, a_stride, b, b_stride, w, h) }
    } else {
        crate::pixel::sad_scalar(a, a_stride, b, b_stride, w, h)
    }
}

fn satd_entry(a: &[u8], a_stride: usize, b: &[u8], b_stride: usize, w: usize, h: usize) -> u32 {
    unsafe { satd_sse2(a, a_stride, b, b_stride, w, h) }
}

fn ssd_entry(a: &[u8], a_stride: usize, b: &[u8], b_stride: usize, w: usize, h: usize) -> u64 {
    if w.is_multiple_of(8) {
        unsafe { ssd_sse2(a, a_stride, b, b_stride, w, h) }
    } else {
        crate::pixel::ssd_scalar(a, a_stride, b, b_stride, w, h)
    }
}

fn fdct8_entry(block: &mut Block8) {
    unsafe { fdct8_sse2(block) }
}

fn idct8_entry(block: &mut Block8) {
    unsafe { idct8_sse2(block) }
}

fn quant8_entry(block: &mut Block8, matrix: &QuantMatrix, qscale: u16, intra: bool) -> u32 {
    unsafe { quant8_sse2(block, matrix, qscale, intra) }
}

fn dequant8_entry(block: &mut Block8, matrix: &QuantMatrix, qscale: u16, intra: bool) {
    unsafe { dequant8_sse2(block, matrix, qscale, intra) }
}

fn copy_block_entry(
    dst: &mut [u8],
    dst_stride: usize,
    src: &[u8],
    src_stride: usize,
    w: usize,
    h: usize,
) {
    unsafe { copy_block_sse2(dst, dst_stride, src, src_stride, w, h) }
}

#[allow(clippy::too_many_arguments)]
fn avg_block_entry(
    dst: &mut [u8],
    dst_stride: usize,
    a: &[u8],
    a_stride: usize,
    b: &[u8],
    b_stride: usize,
    w: usize,
    h: usize,
) {
    if w.is_multiple_of(8) {
        unsafe { avg_block_sse2(dst, dst_stride, a, a_stride, b, b_stride, w, h) }
    } else {
        crate::pixel::avg_block_scalar(dst, dst_stride, a, a_stride, b, b_stride, w, h)
    }
}

#[allow(clippy::too_many_arguments)]
fn hpel_interp_entry(
    dst: &mut [u8],
    dst_stride: usize,
    src: &[u8],
    src_stride: usize,
    fx: u8,
    fy: u8,
    w: usize,
    h: usize,
) {
    if w.is_multiple_of(8) {
        unsafe { hpel_interp_sse2(dst, dst_stride, src, src_stride, fx, fy, w, h) }
    } else {
        crate::interp::hpel_interp_scalar(dst, dst_stride, src, src_stride, fx, fy, w, h)
    }
}

fn sixtap_h_entry(
    dst: &mut [u8],
    dst_stride: usize,
    src: &[u8],
    src_stride: usize,
    w: usize,
    h: usize,
) {
    if w.is_multiple_of(8) {
        unsafe { sixtap_h_sse2(dst, dst_stride, src, src_stride, w, h) }
    } else {
        crate::interp::sixtap_h_scalar(dst, dst_stride, src, src_stride, w, h)
    }
}

fn sixtap_v_entry(
    dst: &mut [u8],
    dst_stride: usize,
    src: &[u8],
    src_stride: usize,
    w: usize,
    h: usize,
) {
    if w.is_multiple_of(8) {
        unsafe { sixtap_v_sse2(dst, dst_stride, src, src_stride, w, h) }
    } else {
        crate::interp::sixtap_v_scalar(dst, dst_stride, src, src_stride, w, h)
    }
}

fn sixtap_hv_entry(
    dst: &mut [u8],
    dst_stride: usize,
    src: &[u8],
    src_stride: usize,
    w: usize,
    h: usize,
) {
    if w.is_multiple_of(8) && w <= 16 && h <= 16 {
        unsafe { sixtap_hv_sse2(dst, dst_stride, src, src_stride, w, h) }
    } else {
        crate::interp::sixtap_hv(dst, dst_stride, src, src_stride, w, h)
    }
}

fn add_residual8_entry(
    dst: &mut [u8],
    dst_stride: usize,
    pred: &[u8],
    pred_stride: usize,
    res: &Block8,
) {
    unsafe { add_residual8_sse2(dst, dst_stride, pred, pred_stride, res) }
}

fn diff_block8_entry(
    res: &mut Block8,
    cur: &[u8],
    cur_stride: usize,
    pred: &[u8],
    pred_stride: usize,
) {
    unsafe { diff_block8_sse2(res, cur, cur_stride, pred, pred_stride) }
}

fn deblock_horiz_edge_entry(
    data: &mut [u8],
    stride: usize,
    q0_off: usize,
    width: usize,
    alpha: i32,
    beta: i32,
    tc: i32,
) {
    unsafe { deblock_horiz_edge_sse2(data, stride, q0_off, width, alpha, beta, tc) }
}

// -------------------------------------------------------------- scale --

/// # Safety
/// Requires SSE2 plus the geometry contract of the scalar kernel: every
/// `offsets[i] + 4 <= src.len()` and `dst`/`taps` sized for `offsets`.
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn scale_row_h_sse2(dst: &mut [u8], src: &[u8], offsets: &[u32], taps: &[i16]) {
    debug_assert_eq!(offsets.len() * 4, taps.len());
    debug_assert!(dst.len() >= offsets.len());
    let n = offsets.len();
    let round = _mm_set1_epi32(64);
    let mut i = 0;
    while i + 4 <= n {
        // Four output pixels: each window is 4 contiguous source bytes.
        let w0 = u32::from_le_bytes(src[offsets[i] as usize..][..4].try_into().unwrap());
        let w1 = u32::from_le_bytes(src[offsets[i + 1] as usize..][..4].try_into().unwrap());
        let w2 = u32::from_le_bytes(src[offsets[i + 2] as usize..][..4].try_into().unwrap());
        let w3 = u32::from_le_bytes(src[offsets[i + 3] as usize..][..4].try_into().unwrap());
        let px = _mm_set_epi32(w3 as i32, w2 as i32, w1 as i32, w0 as i32);
        let zero = _mm_setzero_si128();
        let lo = _mm_unpacklo_epi8(px, zero); // windows 0,1 as i16
        let hi = _mm_unpackhi_epi8(px, zero); // windows 2,3 as i16
        let c01 = _mm_loadu_si128(taps.as_ptr().add(4 * i).cast());
        let c23 = _mm_loadu_si128(taps.as_ptr().add(4 * i + 8).cast());
        // madd -> per-window partial pairs [p0a,p0b,p1a,p1b].
        let m0 = _mm_madd_epi16(lo, c01);
        let m1 = _mm_madd_epi16(hi, c23);
        // Fold pairs: lane0 += lane1, lane2 += lane3.
        let s0 = _mm_add_epi32(m0, _mm_shuffle_epi32::<0b10_11_00_01>(m0));
        let s1 = _mm_add_epi32(m1, _mm_shuffle_epi32::<0b10_11_00_01>(m1));
        // Gather the four sums into one register: [p0, p1, p2, p3].
        let a02 = _mm_shuffle_epi32::<0b10_00_10_00>(s0);
        let b02 = _mm_shuffle_epi32::<0b10_00_10_00>(s1);
        let four = _mm_unpacklo_epi64(a02, b02);
        let r = _mm_srai_epi32::<7>(_mm_add_epi32(four, round));
        let p16 = _mm_packs_epi32(r, r);
        let p8 = _mm_packus_epi16(p16, p16);
        let out = _mm_cvtsi128_si32(p8) as u32;
        dst[i..i + 4].copy_from_slice(&out.to_le_bytes());
        i += 4;
    }
    if i < n {
        crate::scale::scale_row_h_scalar(&mut dst[i..n], src, &offsets[i..], &taps[4 * i..]);
    }
}

/// # Safety
/// Requires SSE2 and rows at least as long as `dst`.
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn scale_row_v_sse2(
    dst: &mut [u8],
    r0: &[u8],
    r1: &[u8],
    r2: &[u8],
    r3: &[u8],
    c: &[i16; 4],
) {
    let w = dst.len();
    debug_assert!(r0.len() >= w && r1.len() >= w && r2.len() >= w && r3.len() >= w);
    let c01 = _mm_set1_epi32((c[0] as u16 as i32) | ((c[1] as i32) << 16));
    let c23 = _mm_set1_epi32((c[2] as u16 as i32) | ((c[3] as i32) << 16));
    let round = _mm_set1_epi32(64);
    let zero = _mm_setzero_si128();
    let mut x = 0;
    while x + 16 <= w {
        let v0 = _mm_loadu_si128(r0.as_ptr().add(x).cast());
        let v1 = _mm_loadu_si128(r1.as_ptr().add(x).cast());
        let v2 = _mm_loadu_si128(r2.as_ptr().add(x).cast());
        let v3 = _mm_loadu_si128(r3.as_ptr().add(x).cast());
        // Interleave row pairs so each i32 lane of madd sees
        // [r0[x], r1[x]] (resp. [r2[x], r3[x]]) as an i16 pair.
        let i01 = _mm_unpacklo_epi8(v0, v1);
        let i01h = _mm_unpackhi_epi8(v0, v1);
        let i23 = _mm_unpacklo_epi8(v2, v3);
        let i23h = _mm_unpackhi_epi8(v2, v3);
        let a0 = _mm_madd_epi16(_mm_unpacklo_epi8(i01, zero), c01);
        let a1 = _mm_madd_epi16(_mm_unpackhi_epi8(i01, zero), c01);
        let a2 = _mm_madd_epi16(_mm_unpacklo_epi8(i01h, zero), c01);
        let a3 = _mm_madd_epi16(_mm_unpackhi_epi8(i01h, zero), c01);
        let b0 = _mm_madd_epi16(_mm_unpacklo_epi8(i23, zero), c23);
        let b1 = _mm_madd_epi16(_mm_unpackhi_epi8(i23, zero), c23);
        let b2 = _mm_madd_epi16(_mm_unpacklo_epi8(i23h, zero), c23);
        let b3 = _mm_madd_epi16(_mm_unpackhi_epi8(i23h, zero), c23);
        let s0 = _mm_srai_epi32::<7>(_mm_add_epi32(_mm_add_epi32(a0, b0), round));
        let s1 = _mm_srai_epi32::<7>(_mm_add_epi32(_mm_add_epi32(a1, b1), round));
        let s2 = _mm_srai_epi32::<7>(_mm_add_epi32(_mm_add_epi32(a2, b2), round));
        let s3 = _mm_srai_epi32::<7>(_mm_add_epi32(_mm_add_epi32(a3, b3), round));
        let lo16 = _mm_packs_epi32(s0, s1);
        let hi16 = _mm_packs_epi32(s2, s3);
        let out = _mm_packus_epi16(lo16, hi16);
        _mm_storeu_si128(dst.as_mut_ptr().add(x).cast(), out);
        x += 16;
    }
    if x < w {
        crate::scale::scale_row_v_scalar(&mut dst[x..], &r0[x..], &r1[x..], &r2[x..], &r3[x..], c);
    }
}

fn scale_h_entry(dst: &mut [u8], src: &[u8], offsets: &[u32], taps: &[i16]) {
    unsafe { scale_row_h_sse2(dst, src, offsets, taps) }
}

fn scale_v_entry(dst: &mut [u8], r0: &[u8], r1: &[u8], r2: &[u8], r3: &[u8], c: &[i16; 4]) {
    unsafe { scale_row_v_sse2(dst, r0, r1, r2, r3, c) }
}

/// The SSE2 tier's resolved kernel table.
pub(crate) static SSE2_KERNELS: KernelTable = KernelTable {
    sad: sad_entry,
    satd: satd_entry,
    ssd: ssd_entry,
    fdct8: fdct8_entry,
    idct8: idct8_entry,
    fcore4: crate::dct4::fcore4,
    icore4: crate::dct4::icore4,
    quant8: quant8_entry,
    dequant8: dequant8_entry,
    copy_block: copy_block_entry,
    avg_block: avg_block_entry,
    hpel_interp: hpel_interp_entry,
    sixtap_h: sixtap_h_entry,
    sixtap_v: sixtap_v_entry,
    sixtap_hv: sixtap_hv_entry,
    add_residual8: add_residual8_entry,
    diff_block8: diff_block8_entry,
    deblock_horiz_edge: deblock_horiz_edge_entry,
    scale_h: scale_h_entry,
    scale_v: scale_v_entry,
};
