//! Signal-processing kernels shared by the HD-VideoBench codecs, each in
//! a portable scalar variant and an SSE2 variant.
//!
//! The original benchmark's headline experiment (Figure 1 of the paper)
//! compares *scalar* builds of each codec against *SIMD-optimised* builds.
//! This crate reproduces that axis: every hot kernel — SAD/SATD block
//! matching, the 8×8 DCT/IDCT used by the MPEG-class codecs, the H.264
//! 4×4 integer transform, quantisation and sub-pel interpolation — is
//! implemented twice and selected at runtime through [`SimdLevel`].
//!
//! # Example
//!
//! ```
//! use hdvb_dsp::{Dsp, SimdLevel};
//!
//! let scalar = Dsp::new(SimdLevel::Scalar);
//! let simd = Dsp::new(SimdLevel::detect());
//! let a = [10u8; 256];
//! let b = [14u8; 256];
//! // Both paths compute the same value.
//! assert_eq!(
//!     scalar.sad(&a, 16, &b, 16, 16, 16),
//!     simd.sad(&a, 16, &b, 16, 16, 16),
//! );
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod dct4;
mod dct8;
mod deblock;
mod dispatch;
mod interp;
mod pixel;
mod qpel;
mod quant;
mod satd;
mod scale;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "x86_64")]
mod sse2;

pub use dct4::{chroma_dc_hadamard_2x2, chroma_dc_ihadamard_2x2};
pub use dispatch::{Dsp, SadFn, SatdFn, ScaleHFn, ScaleVFn, SimdLevel, SsdFn};
pub use quant::{QuantMatrix, MPEG_DEFAULT_INTRA, MPEG_DEFAULT_NONINTRA, QUANT_FLAT_16};
pub use scale::{ScaleFilter, Scaler, SCALE_FILTER_BITS, SCALE_TAPS};

/// An 8×8 block of transform coefficients or residuals, row-major.
pub type Block8 = [i16; 64];

/// A 4×4 block of transform coefficients or residuals, row-major.
pub type Block4 = [i16; 16];
