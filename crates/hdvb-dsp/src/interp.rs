//! Sub-pel interpolation kernels.
//!
//! * `hpel_*` — bilinear half-pel used by the MPEG-2/MPEG-4-class codecs.
//! * `sixtap_*` — the H.264 6-tap `(1,-5,20,20,-5,1)/32` half-pel filter;
//!   quarter-pel positions are produced by the codecs by averaging these.
//!
//! Slice conventions (all sources must come from a sufficiently padded
//! buffer such as [`hdvb_frame::PaddedPlane`]):
//!
//! * `hpel_interp`: `src[0]` is the block's top-left integer sample.
//! * `sixtap_h`:  `src[0]` is **2 samples left** of the block origin.
//! * `sixtap_v`:  `src[0]` is **2 rows above** the block origin.
//! * `sixtap_hv`: `src[0]` is 2 samples left *and* 2 rows above.

#[allow(clippy::too_many_arguments)]
pub(crate) fn hpel_interp_scalar(
    dst: &mut [u8],
    dst_stride: usize,
    src: &[u8],
    src_stride: usize,
    fx: u8,
    fy: u8,
    w: usize,
    h: usize,
) {
    debug_assert!(fx <= 1 && fy <= 1);
    match (fx, fy) {
        (0, 0) => crate::pixel::copy_block(dst, dst_stride, src, src_stride, w, h),
        (1, 0) => {
            for y in 0..h {
                for x in 0..w {
                    let a = u16::from(src[y * src_stride + x]);
                    let b = u16::from(src[y * src_stride + x + 1]);
                    dst[y * dst_stride + x] = ((a + b + 1) >> 1) as u8;
                }
            }
        }
        (0, 1) => {
            for y in 0..h {
                for x in 0..w {
                    let a = u16::from(src[y * src_stride + x]);
                    let b = u16::from(src[(y + 1) * src_stride + x]);
                    dst[y * dst_stride + x] = ((a + b + 1) >> 1) as u8;
                }
            }
        }
        _ => {
            for y in 0..h {
                for x in 0..w {
                    let a = u16::from(src[y * src_stride + x]);
                    let b = u16::from(src[y * src_stride + x + 1]);
                    let c = u16::from(src[(y + 1) * src_stride + x]);
                    let d = u16::from(src[(y + 1) * src_stride + x + 1]);
                    dst[y * dst_stride + x] = ((a + b + c + d + 2) >> 2) as u8;
                }
            }
        }
    }
}

#[inline]
fn sixtap(m2: i32, m1: i32, z0: i32, p1: i32, p2: i32, p3: i32) -> i32 {
    z0 * 20 + p1 * 20 - m1 * 5 - p2 * 5 + m2 + p3
}

/// Horizontal 6-tap; `src[0]` is 2 samples left of the block origin.
pub(crate) fn sixtap_h_scalar(
    dst: &mut [u8],
    dst_stride: usize,
    src: &[u8],
    src_stride: usize,
    w: usize,
    h: usize,
) {
    for y in 0..h {
        for x in 0..w {
            let i = y * src_stride + x;
            let v = sixtap(
                i32::from(src[i]),
                i32::from(src[i + 1]),
                i32::from(src[i + 2]),
                i32::from(src[i + 3]),
                i32::from(src[i + 4]),
                i32::from(src[i + 5]),
            );
            dst[y * dst_stride + x] = ((v + 16) >> 5).clamp(0, 255) as u8;
        }
    }
}

/// Vertical 6-tap; `src[0]` is 2 rows above the block origin.
pub(crate) fn sixtap_v_scalar(
    dst: &mut [u8],
    dst_stride: usize,
    src: &[u8],
    src_stride: usize,
    w: usize,
    h: usize,
) {
    for y in 0..h {
        for x in 0..w {
            let i = y * src_stride + x;
            let v = sixtap(
                i32::from(src[i]),
                i32::from(src[i + src_stride]),
                i32::from(src[i + 2 * src_stride]),
                i32::from(src[i + 3 * src_stride]),
                i32::from(src[i + 4 * src_stride]),
                i32::from(src[i + 5 * src_stride]),
            );
            dst[y * dst_stride + x] = ((v + 16) >> 5).clamp(0, 255) as u8;
        }
    }
}

/// Two-dimensional 6-tap position (the H.264 "j" sample): horizontal
/// filter at full intermediate precision, then vertical with `>> 10`
/// rounding. `src[0]` is 2 samples left and 2 rows above the block
/// origin.
pub(crate) fn sixtap_hv(
    dst: &mut [u8],
    dst_stride: usize,
    src: &[u8],
    src_stride: usize,
    w: usize,
    h: usize,
) {
    assert!(w <= 16 && h <= 16, "6-tap 2-D blocks are at most 16x16");
    let tmp_w = w;
    let tmp_h = h + 5;
    let mut tmp = [0i32; 16 * 21];
    for ty in 0..tmp_h {
        for x in 0..w {
            let i = ty * src_stride + x;
            tmp[ty * tmp_w + x] = sixtap(
                i32::from(src[i]),
                i32::from(src[i + 1]),
                i32::from(src[i + 2]),
                i32::from(src[i + 3]),
                i32::from(src[i + 4]),
                i32::from(src[i + 5]),
            );
        }
    }
    for y in 0..h {
        for x in 0..w {
            let i = y * tmp_w + x;
            let v = sixtap(
                tmp[i],
                tmp[i + tmp_w],
                tmp[i + 2 * tmp_w],
                tmp[i + 3 * tmp_w],
                tmp[i + 4 * tmp_w],
                tmp[i + 5 * tmp_w],
            );
            dst[y * dst_stride + x] = ((v + 512) >> 10).clamp(0, 255) as u8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 16x16 buffer of a known gradient.
    fn padded_source() -> (Vec<u8>, usize) {
        let stride = 16;
        let mut buf = vec![100u8; stride * 16];
        for y in 0..16 {
            for x in 0..16 {
                buf[y * stride + x] = (40 + x * 9 + y * 5) as u8;
            }
        }
        (buf, stride)
    }

    #[test]
    fn hpel_00_is_copy() {
        let (src, stride) = padded_source();
        let mut dst = vec![0u8; 64];
        hpel_interp_scalar(&mut dst, 8, &src[4 * stride + 4..], stride, 0, 0, 8, 8);
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(dst[y * 8 + x], src[(y + 4) * stride + 4 + x]);
            }
        }
    }

    #[test]
    fn hpel_h_averages_neighbours() {
        let (src, stride) = padded_source();
        let mut dst = vec![0u8; 64];
        hpel_interp_scalar(&mut dst, 8, &src[4 * stride + 4..], stride, 1, 0, 8, 8);
        let a = u16::from(src[4 * stride + 4]);
        let b = u16::from(src[4 * stride + 5]);
        assert_eq!(dst[0], ((a + b + 1) >> 1) as u8);
    }

    #[test]
    fn hpel_hv_averages_four() {
        let (src, stride) = padded_source();
        let mut dst = vec![0u8; 64];
        hpel_interp_scalar(&mut dst, 8, &src[4 * stride + 4..], stride, 1, 1, 8, 8);
        let s = u16::from(src[4 * stride + 4])
            + u16::from(src[4 * stride + 5])
            + u16::from(src[5 * stride + 4])
            + u16::from(src[5 * stride + 5]);
        assert_eq!(dst[0], ((s + 2) >> 2) as u8);
    }

    #[test]
    fn sixtap_on_flat_area_is_identity() {
        let stride = 24;
        let src = vec![77u8; stride * 24];
        let mut dst = vec![0u8; 64];
        sixtap_h_scalar(&mut dst, 8, &src[8 * stride + 6..], stride, 8, 8);
        assert!(dst.iter().all(|&v| v == 77));
        sixtap_v_scalar(&mut dst, 8, &src[6 * stride + 8..], stride, 8, 8);
        assert!(dst.iter().all(|&v| v == 77));
        sixtap_hv(&mut dst, 8, &src[6 * stride + 6..], stride, 8, 8);
        assert!(dst.iter().all(|&v| v == 77));
    }

    #[test]
    fn sixtap_h_on_linear_ramp_is_midpoint() {
        // On a linear signal the 6-tap half-pel equals the midpoint.
        let stride = 16;
        let mut src = vec![0u8; stride * 8];
        for y in 0..8 {
            for x in 0..16 {
                src[y * stride + x] = (x * 8) as u8;
            }
        }
        let mut dst = vec![0u8; 8];
        // Block origin at x=4: src offset = 4 - 2 = 2.
        sixtap_h_scalar(&mut dst, 8, &src[2..], stride, 1, 1);
        // Midpoint of src[4]=32 and src[5]=40 is 36.
        assert_eq!(dst[0], 36);
    }

    #[test]
    fn sixtap_hv_matches_exact_on_linear_field() {
        let stride = 32;
        let mut src = vec![0u8; stride * 32];
        for y in 0..32 {
            for x in 0..32 {
                src[y * stride + x] = (2 * x + 3 * y + 10) as u8;
            }
        }
        let mut d_hv = vec![0u8; 16];
        // Block origin at (8,8): src offset = (8-2) + (8-2)*stride.
        sixtap_hv(&mut d_hv, 4, &src[6 * stride + 6..], stride, 4, 4);
        for y in 0..4 {
            for x in 0..4 {
                let exact = 2.0 * (8.0 + x as f64 + 0.5) + 3.0 * (8.0 + y as f64 + 0.5) + 10.0;
                let got = f64::from(d_hv[y * 4 + x]);
                assert!((got - exact).abs() <= 1.0, "({x},{y}): {got} vs {exact}");
            }
        }
    }
}
