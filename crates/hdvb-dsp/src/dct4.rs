//! The H.264 4×4 integer core transform and the chroma-DC Hadamard
//! transform, implemented bit-exactly as in the standard (and therefore
//! in x264 / FFmpeg, the paper's H.264 applications).

use crate::Block4;

/// Forward 4×4 core transform (`Cf · X · Cfᵀ`), in place.
///
/// Exact integer arithmetic; the inverse is [`icore4`]. Scaling is folded
/// into quantisation as in the standard.
pub(crate) fn fcore4(block: &mut Block4) {
    // Rows.
    for y in 0..4 {
        let r = &mut block[y * 4..y * 4 + 4];
        let s0 = r[0] + r[3];
        let s3 = r[0] - r[3];
        let s1 = r[1] + r[2];
        let s2 = r[1] - r[2];
        r[0] = s0 + s1;
        r[2] = s0 - s1;
        r[1] = 2 * s3 + s2;
        r[3] = s3 - 2 * s2;
    }
    // Columns.
    for x in 0..4 {
        let a0 = block[x];
        let a1 = block[4 + x];
        let a2 = block[8 + x];
        let a3 = block[12 + x];
        let s0 = a0 + a3;
        let s3 = a0 - a3;
        let s1 = a1 + a2;
        let s2 = a1 - a2;
        block[x] = s0 + s1;
        block[8 + x] = s0 - s1;
        block[4 + x] = 2 * s3 + s2;
        block[12 + x] = s3 - 2 * s2;
    }
}

/// Inverse 4×4 core transform with the standard final `(x + 32) >> 6`
/// normalisation, in place.
pub(crate) fn icore4(block: &mut Block4) {
    // Rows.
    for y in 0..4 {
        let r = &mut block[y * 4..y * 4 + 4];
        let e0 = i32::from(r[0]) + i32::from(r[2]);
        let e1 = i32::from(r[0]) - i32::from(r[2]);
        let e2 = (i32::from(r[1]) >> 1) - i32::from(r[3]);
        let e3 = i32::from(r[1]) + (i32::from(r[3]) >> 1);
        r[0] = (e0 + e3) as i16;
        r[3] = (e0 - e3) as i16;
        r[1] = (e1 + e2) as i16;
        r[2] = (e1 - e2) as i16;
    }
    // Columns with final rounding.
    for x in 0..4 {
        let a0 = i32::from(block[x]);
        let a1 = i32::from(block[4 + x]);
        let a2 = i32::from(block[8 + x]);
        let a3 = i32::from(block[12 + x]);
        let e0 = a0 + a2;
        let e1 = a0 - a2;
        let e2 = (a1 >> 1) - a3;
        let e3 = a1 + (a3 >> 1);
        block[x] = ((e0 + e3 + 32) >> 6) as i16;
        block[12 + x] = ((e0 - e3 + 32) >> 6) as i16;
        block[4 + x] = ((e1 + e2 + 32) >> 6) as i16;
        block[8 + x] = ((e1 - e2 + 32) >> 6) as i16;
    }
}

/// Forward 2×2 Hadamard for the four chroma DC coefficients of a
/// macroblock, in place (`[dc00, dc01, dc10, dc11]`).
pub fn chroma_dc_hadamard_2x2(dc: &mut [i16; 4]) {
    let a = dc[0] + dc[1];
    let b = dc[0] - dc[1];
    let c = dc[2] + dc[3];
    let d = dc[2] - dc[3];
    dc[0] = a + c;
    dc[1] = b + d;
    dc[2] = a - c;
    dc[3] = b - d;
}

/// Inverse 2×2 Hadamard (same butterfly; the overall `/4` gain is folded
/// into chroma-DC dequantisation by the codec).
pub fn chroma_dc_ihadamard_2x2(dc: &mut [i16; 4]) {
    chroma_dc_hadamard_2x2(dc);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `Cf` rows of the forward core transform.
    const CF: [[i32; 4]; 4] = [[1, 1, 1, 1], [2, 1, -1, -2], [1, -1, -1, 1], [1, -2, 2, -1]];

    fn reference_forward(x: &[i16; 16]) -> [i32; 16] {
        // W = Cf · X · Cfᵀ evaluated directly.
        let mut out = [0i32; 16];
        for u in 0..4 {
            for v in 0..4 {
                let mut acc = 0i32;
                for i in 0..4 {
                    for j in 0..4 {
                        acc += CF[u][i] * i32::from(x[i * 4 + j]) * CF[v][j];
                    }
                }
                out[u * 4 + v] = acc;
            }
        }
        out
    }

    fn random_block(state: &mut u32, range: i16) -> [i16; 16] {
        let mut b = [0i16; 16];
        for v in &mut b {
            *state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            *v = ((*state >> 20) as i16 % (2 * range + 1)) - range;
        }
        b
    }

    #[test]
    fn forward_matches_matrix_reference() {
        let mut state = 77u32;
        for _ in 0..200 {
            let input = random_block(&mut state, 256);
            let mut b = input;
            fcore4(&mut b);
            let reference = reference_forward(&input);
            for i in 0..16 {
                assert_eq!(i32::from(b[i]), reference[i], "coef {i}");
            }
        }
    }

    /// The inverse transform is only the inverse of the forward through
    /// the position-dependent dequant weights β = (1, 4/5, 1, 4/5) per
    /// dimension — the reason H.264 carries its V/MF tables. Verify the
    /// identity `icore4(β_u β_v · 64 · W) == 4·X` using float weighting
    /// before rounding back to integers small enough to avoid the
    /// intermediate `>> 1` truncation.
    #[test]
    fn inverse_is_weighted_inverse_of_forward() {
        let beta = [1.0, 0.8, 1.0, 0.8];
        let mut state = 3u32;
        for _ in 0..200 {
            let input = random_block(&mut state, 64);
            let w = reference_forward(&input);
            let mut scaled = [0i16; 16];
            for u in 0..4 {
                for v in 0..4 {
                    let s = w[u * 4 + v] as f64 * beta[u] * beta[v] * 16.0;
                    // Round to a multiple of 4 so the >>1 taps stay exact.
                    scaled[u * 4 + v] = ((s / 4.0).round() * 4.0) as i16;
                }
            }
            let mut b = scaled;
            icore4(&mut b);
            // icore4 computes (Aᵀ·scaled·A + 32) >> 6; the identity gives
            // 4·4·16·X / 64 = 4·X up to the rounding of `scaled`.
            for i in 0..16 {
                let err = (i32::from(b[i]) - 4 * i32::from(input[i])).abs();
                assert!(err <= 2, "sample {i}: {} vs {}", b[i], 4 * input[i]);
            }
        }
    }

    #[test]
    fn forward_dc_gain_is_16() {
        let mut b = [10i16; 16];
        fcore4(&mut b);
        assert_eq!(b[0], 160);
        assert!(b.iter().skip(1).all(|&v| v == 0));
    }

    #[test]
    fn hadamard_2x2_involution_with_gain_4() {
        let mut dc = [7i16, -3, 12, 5];
        let orig = dc;
        chroma_dc_hadamard_2x2(&mut dc);
        chroma_dc_ihadamard_2x2(&mut dc);
        for i in 0..4 {
            assert_eq!(dc[i], orig[i] * 4);
        }
    }

    #[test]
    fn icore4_of_zero_is_zero() {
        let mut b = [0i16; 16];
        icore4(&mut b);
        assert_eq!(b, [0i16; 16]);
    }
}
