//! Quarter-pel luma interpolation composed from the 6-tap half-pel
//! kernels, following the H.264 position rules (also used by the
//! MPEG-4-class codec: its standard's 8-tap filter is replaced by the
//! same-class 6-tap, see DESIGN.md).
//!
//! The source convention matches the 6-tap kernels: `src[0]` must be the
//! sample **2 left and 2 above** the block origin, with at least
//! `w + 5` readable columns and `h + 6` readable rows (one extra row and
//! column beyond the filter support for the `+1`-shifted quarter
//! positions).

use crate::Dsp;

impl Dsp {
    /// Interpolates a `w`×`h` luma block at quarter-pel fraction
    /// `(fx, fy) ∈ {0..3}²`.
    ///
    /// `src` points 2 samples left and 2 rows above the block origin
    /// (see module docs); `w` must be a multiple of 4 for the SATD-based
    /// callers, and `h ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `fx` or `fy` exceeds 3 or the destination is too small.
    #[allow(clippy::too_many_arguments)]
    pub fn qpel_luma(
        &self,
        dst: &mut [u8],
        dst_stride: usize,
        src: &[u8],
        src_stride: usize,
        fx: u8,
        fy: u8,
        w: usize,
        h: usize,
    ) {
        assert!(fx < 4 && fy < 4, "quarter-pel fractions are 0..4");
        assert!(w * h <= 256, "qpel blocks are at most 16x16");
        let origin = 2 * src_stride + 2; // integer sample G
        match (fx, fy) {
            (0, 0) => self.copy_block(dst, dst_stride, &src[origin..], src_stride, w, h),
            (2, 0) => self.sixtap_h(dst, dst_stride, &src[2 * src_stride..], src_stride, w, h),
            (0, 2) => self.sixtap_v(dst, dst_stride, &src[2..], src_stride, w, h),
            (2, 2) => self.sixtap_hv(dst, dst_stride, src, src_stride, w, h),
            (1, 0) | (3, 0) => {
                // avg(integer, horizontal half); the 3/4 position uses the
                // next integer sample.
                let mut half = [0u8; 256];
                self.sixtap_h(&mut half, w, &src[2 * src_stride..], src_stride, w, h);
                let int_off = origin + usize::from(fx == 3);
                self.avg_block(dst, dst_stride, &src[int_off..], src_stride, &half, w, w, h);
            }
            (0, 1) | (0, 3) => {
                let mut half = [0u8; 256];
                self.sixtap_v(&mut half, w, &src[2..], src_stride, w, h);
                let int_off = origin + if fy == 3 { src_stride } else { 0 };
                self.avg_block(dst, dst_stride, &src[int_off..], src_stride, &half, w, w, h);
            }
            (1, 2) | (3, 2) => {
                // avg(vertical half, centre j), right-shifted for 3/4.
                let mut j = [0u8; 256];
                self.sixtap_hv(&mut j, w, src, src_stride, w, h);
                let mut v = [0u8; 256];
                let shift = usize::from(fx == 3);
                self.sixtap_v(&mut v, w, &src[2 + shift..], src_stride, w, h);
                self.avg_block(dst, dst_stride, &v, w, &j, w, w, h);
            }
            (2, 1) | (2, 3) => {
                let mut j = [0u8; 256];
                self.sixtap_hv(&mut j, w, src, src_stride, w, h);
                let mut hbuf = [0u8; 256];
                let shift = if fy == 3 { src_stride } else { 0 };
                self.sixtap_h(
                    &mut hbuf,
                    w,
                    &src[2 * src_stride + shift..],
                    src_stride,
                    w,
                    h,
                );
                self.avg_block(dst, dst_stride, &hbuf, w, &j, w, w, h);
            }
            _ => {
                // Diagonal quarters: avg(horizontal half, vertical half),
                // each shifted toward the quarter position.
                let hshift = if fy == 3 { src_stride } else { 0 };
                let vshift = usize::from(fx == 3);
                let mut hbuf = [0u8; 256];
                self.sixtap_h(
                    &mut hbuf,
                    w,
                    &src[2 * src_stride + hshift..],
                    src_stride,
                    w,
                    h,
                );
                let mut vbuf = [0u8; 256];
                self.sixtap_v(&mut vbuf, w, &src[2 + vshift..], src_stride, w, h);
                self.avg_block(dst, dst_stride, &hbuf, w, &vbuf, w, w, h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimdLevel;

    fn gradient_src(stride: usize, rows: usize) -> Vec<u8> {
        let mut v = vec![0u8; stride * rows];
        for y in 0..rows {
            for x in 0..stride {
                v[y * stride + x] = ((x * 4 + y * 4) % 250) as u8;
            }
        }
        v
    }

    #[test]
    fn integer_position_is_copy() {
        let dsp = Dsp::default();
        let src = gradient_src(32, 32);
        let mut dst = vec![0u8; 64];
        dsp.qpel_luma(&mut dst, 8, &src[4 * 32 + 4..], 32, 0, 0, 8, 8);
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(dst[y * 8 + x], src[(y + 6) * 32 + x + 6]);
            }
        }
    }

    #[test]
    fn quarter_positions_interpolate_linear_ramp() {
        // On the linear ramp f(x,y) = 4x + 4y every sub-pel position has
        // an exact value; all 16 fractions must land within ±1.
        let dsp = Dsp::default();
        let src = gradient_src(64, 64);
        for fy in 0..4u8 {
            for fx in 0..4u8 {
                let mut dst = vec![0u8; 64];
                dsp.qpel_luma(&mut dst, 8, &src[16 * 64 + 16..], 64, fx, fy, 8, 8);
                for y in 0..8 {
                    for x in 0..8 {
                        let exact = 4.0 * (18.0 + x as f64 + f64::from(fx) * 0.25)
                            + 4.0 * (18.0 + y as f64 + f64::from(fy) * 0.25);
                        let got = f64::from(dst[y * 8 + x]);
                        assert!(
                            (got - exact).abs() <= 1.5,
                            "({fx},{fy}) at ({x},{y}): {got} vs {exact}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn scalar_and_simd_agree_on_all_fractions() {
        let scalar = Dsp::new(SimdLevel::Scalar);
        let simd = Dsp::new(SimdLevel::Sse2);
        let mut src = vec![0u8; 64 * 64];
        let mut state = 11u32;
        for v in &mut src {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            *v = (state >> 24) as u8;
        }
        for fy in 0..4u8 {
            for fx in 0..4u8 {
                let mut a = vec![0u8; 16 * 16];
                let mut b = vec![0u8; 16 * 16];
                scalar.qpel_luma(&mut a, 16, &src[8 * 64 + 8..], 64, fx, fy, 16, 16);
                simd.qpel_luma(&mut b, 16, &src[8 * 64 + 8..], 64, fx, fy, 16, 16);
                assert_eq!(a, b, "fraction ({fx},{fy})");
            }
        }
    }

    #[test]
    fn flat_source_is_invariant_for_every_fraction() {
        let dsp = Dsp::default();
        let src = vec![99u8; 48 * 48];
        for fy in 0..4u8 {
            for fx in 0..4u8 {
                let mut dst = vec![0u8; 64];
                dsp.qpel_luma(&mut dst, 8, &src[8 * 48 + 8..], 48, fx, fy, 8, 8);
                assert!(dst.iter().all(|&v| v == 99), "fraction ({fx},{fy})");
            }
        }
    }
}
