//! The deblocking edge kernel (H.264-style p0/q0 update), dispatched
//! like every other hot kernel. Horizontal edges vectorise naturally
//! (neighbouring samples are a stride apart); vertical edges would need
//! transposes and stay scalar at both levels, like early SIMD decoders.

use crate::Dsp;

/// Scalar reference for one horizontal edge of `width` samples:
/// `data[q0_off + x]` is q0, rows p1/p0 sit one and two strides above,
/// q1 one below.
pub(crate) fn deblock_horiz_edge_scalar(
    data: &mut [u8],
    stride: usize,
    q0_off: usize,
    width: usize,
    alpha: i32,
    beta: i32,
    tc: i32,
) {
    for x in 0..width {
        let i = q0_off + x;
        let p1 = i32::from(data[i - 2 * stride]);
        let p0 = i32::from(data[i - stride]);
        let q0 = i32::from(data[i]);
        let q1 = i32::from(data[i + stride]);
        if (p0 - q0).abs() < alpha && (p1 - p0).abs() < beta && (q1 - q0).abs() < beta {
            let delta = (((q0 - p0) * 4 + (p1 - q1) + 4) >> 3).clamp(-tc, tc);
            data[i - stride] = (p0 + delta).clamp(0, 255) as u8;
            data[i] = (q0 - delta).clamp(0, 255) as u8;
        }
    }
}

impl Dsp {
    /// Filters one horizontal block edge in place: `data[q0_off + x]`
    /// is the q0 row, p1/p0 sit one and two strides above, q1 one
    /// below. Both SIMD levels produce identical output.
    ///
    /// # Panics
    ///
    /// Panics if the slice is too short for the row geometry.
    #[allow(clippy::too_many_arguments)]
    pub fn deblock_horiz_edge(
        &self,
        data: &mut [u8],
        stride: usize,
        q0_off: usize,
        width: usize,
        alpha: i32,
        beta: i32,
        tc: i32,
    ) {
        (self.kernels().deblock_horiz_edge)(data, stride, q0_off, width, alpha, beta, tc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimdLevel;

    fn test_buffer(seed: u32) -> Vec<u8> {
        let mut state = seed;
        (0..24 * 8)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 24) as u8
            })
            .collect()
    }

    #[test]
    fn scalar_and_simd_agree() {
        for seed in 0..20 {
            let base = test_buffer(seed);
            let mut a = base.clone();
            let mut b = base.clone();
            let scalar = Dsp::new(SimdLevel::Scalar);
            let simd = Dsp::new(SimdLevel::Sse2);
            scalar.deblock_horiz_edge(&mut a, 24, 4 * 24, 24, 15, 6, 1);
            simd.deblock_horiz_edge(&mut b, 24, 4 * 24, 24, 15, 6, 1);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn small_step_is_smoothed_large_step_kept() {
        let mut data = vec![0u8; 24 * 8];
        for y in 0..8 {
            for x in 0..24 {
                // Columns 0..12: small step of 4 across row 4; columns
                // 12..: step of 100.
                let step = if x < 12 { 4 } else { 100 };
                data[y * 24 + x] = if y < 4 { 100 } else { 100 + step };
            }
        }
        let dsp = Dsp::default();
        dsp.deblock_horiz_edge(&mut data, 24, 4 * 24, 24, 15, 6, 2);
        // Small step shrank.
        assert!(data[4 * 24 + 3] < 104 || data[3 * 24 + 3] > 100);
        // Large (real) edge untouched.
        assert_eq!(data[4 * 24 + 20], 200);
        assert_eq!(data[3 * 24 + 20], 100);
    }

    #[test]
    fn flat_region_unchanged() {
        let mut data = vec![77u8; 24 * 8];
        let before = data.clone();
        Dsp::default().deblock_horiz_edge(&mut data, 24, 4 * 24, 24, 40, 10, 4);
        assert_eq!(data, before);
    }
}
