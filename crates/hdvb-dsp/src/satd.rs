//! Sum of absolute transformed differences via 4×4 Hadamard transforms —
//! the cost function the H.264 encoder uses for sub-pel refinement and
//! mode decision (x264's `--subme 7` relies on it heavily).

/// 4×4 Hadamard SATD of the difference between two blocks.
pub(crate) fn satd4x4_scalar(a: &[u8], a_stride: usize, b: &[u8], b_stride: usize) -> u32 {
    let mut d = [0i32; 16];
    for y in 0..4 {
        for x in 0..4 {
            d[y * 4 + x] = i32::from(a[y * a_stride + x]) - i32::from(b[y * b_stride + x]);
        }
    }
    // Horizontal butterflies.
    for y in 0..4 {
        let r = &mut d[y * 4..y * 4 + 4];
        let s0 = r[0] + r[2];
        let s1 = r[0] - r[2];
        let s2 = r[1] + r[3];
        let s3 = r[1] - r[3];
        r[0] = s0 + s2;
        r[1] = s0 - s2;
        r[2] = s1 + s3;
        r[3] = s1 - s3;
    }
    // Vertical butterflies and accumulation.
    let mut sum = 0u32;
    for x in 0..4 {
        let a0 = d[x];
        let a1 = d[4 + x];
        let a2 = d[8 + x];
        let a3 = d[12 + x];
        let s0 = a0 + a2;
        let s1 = a0 - a2;
        let s2 = a1 + a3;
        let s3 = a1 - a3;
        sum += (s0 + s2).unsigned_abs()
            + (s0 - s2).unsigned_abs()
            + (s1 + s3).unsigned_abs()
            + (s1 - s3).unsigned_abs();
    }
    // Normalise by 2 as x264 does so SATD is comparable to SAD magnitude.
    sum / 2
}

/// SATD over a `w`×`h` region tiled with 4×4 Hadamard transforms.
pub(crate) fn satd_scalar(
    a: &[u8],
    a_stride: usize,
    b: &[u8],
    b_stride: usize,
    w: usize,
    h: usize,
) -> u32 {
    let mut sum = 0;
    let mut y = 0;
    while y < h {
        let mut x = 0;
        while x < w {
            sum += satd4x4_scalar(
                &a[y * a_stride + x..],
                a_stride,
                &b[y * b_stride + x..],
                b_stride,
            );
            x += 4;
        }
        y += 4;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::sad_scalar;

    #[test]
    fn satd_of_identical_blocks_is_zero() {
        let a = [100u8; 64];
        assert_eq!(satd_scalar(&a, 8, &a, 8, 8, 8), 0);
    }

    #[test]
    fn satd_of_dc_offset_equals_sad() {
        // A pure DC difference has all energy in the DC Hadamard
        // coefficient: SATD = |16*d| * ... /2 per 4x4 = 8*d vs SAD = 16*d.
        let a = [100u8; 16];
        let b = [110u8; 16];
        let satd = satd4x4_scalar(&a, 4, &b, 4);
        let sad = sad_scalar(&a, 4, &b, 4, 4, 4);
        assert_eq!(sad, 160);
        assert_eq!(satd, 80); // 16*10/2
    }

    #[test]
    fn satd_penalises_structured_noise_less_than_sad_ratio_suggests() {
        // High-frequency checkerboard: SATD concentrates energy in one
        // coefficient, cheaper relative to SAD than random noise.
        let mut a = [128u8; 16];
        let mut b = [128u8; 16];
        for i in 0..16 {
            if (i / 4 + i % 4) % 2 == 0 {
                a[i] = 138;
                b[i] = 118;
            }
        }
        let satd = satd4x4_scalar(&a, 4, &b, 4);
        assert!(satd > 0);
    }

    #[test]
    fn satd_tiles_regions() {
        let mut a = [50u8; 8 * 8];
        let b = [50u8; 8 * 8];
        a[0] = 60; // only the first 4x4 tile differs
        let whole = satd_scalar(&a, 8, &b, 8, 8, 8);
        let tile = satd4x4_scalar(&a, 8, &b, 8);
        assert_eq!(whole, tile);
    }
}
