use crate::{Block4, Block8, QuantMatrix};
use std::fmt;

/// Which kernel implementations a [`Dsp`] instance uses.
///
/// The benchmark's Figure 1 compares "scalar" codec builds against
/// "SIMD" builds; selecting the level at runtime lets one binary run both
/// halves of the experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SimdLevel {
    /// Portable scalar code only (the paper's "plain C" variant).
    Scalar,
    /// SSE2 vector kernels (the paper's "SIMD" variant).
    #[default]
    Sse2,
}

impl SimdLevel {
    /// The best level supported by the current CPU: [`SimdLevel::Sse2`] on
    /// x86-64 (where SSE2 is architecturally guaranteed), otherwise
    /// [`SimdLevel::Scalar`].
    pub fn detect() -> SimdLevel {
        #[cfg(target_arch = "x86_64")]
        {
            SimdLevel::Sse2
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            SimdLevel::Scalar
        }
    }

    /// Whether vector kernels will actually run at this level on this CPU.
    pub fn is_accelerated(self) -> bool {
        self == SimdLevel::Sse2 && cfg!(target_arch = "x86_64")
    }

    /// Short label used in reports ("scalar" / "simd"), mirroring the
    /// paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "simd",
        }
    }
}

impl fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Dispatch table for all DSP kernels at a chosen [`SimdLevel`].
///
/// Codecs hold one `Dsp` and route every hot-loop operation through it;
/// the level is fixed at construction so the branch predictor sees a
/// constant.
#[derive(Clone, Copy, Debug)]
pub struct Dsp {
    level: SimdLevel,
}

impl Default for Dsp {
    fn default() -> Self {
        Dsp::new(SimdLevel::detect())
    }
}

impl Dsp {
    /// Creates a dispatcher at the given level. Requesting
    /// [`SimdLevel::Sse2`] on a non-x86-64 build silently degrades to
    /// scalar.
    pub fn new(level: SimdLevel) -> Self {
        let level = if level.is_accelerated() {
            level
        } else {
            SimdLevel::Scalar
        };
        Dsp { level }
    }

    /// The active level.
    pub fn level(&self) -> SimdLevel {
        self.level
    }

    #[inline]
    fn use_sse2(&self) -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            self.level == SimdLevel::Sse2
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// Sum of absolute differences between a `w`×`h` block at the start of
    /// `a` (row stride `a_stride`) and one at the start of `b`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the slices are too short for the
    /// requested geometry.
    #[inline]
    pub fn sad(
        &self,
        a: &[u8],
        a_stride: usize,
        b: &[u8],
        b_stride: usize,
        w: usize,
        h: usize,
    ) -> u32 {
        #[cfg(target_arch = "x86_64")]
        if self.use_sse2() && w.is_multiple_of(8) {
            // SAFETY: sse2 is architecturally guaranteed on x86_64.
            return unsafe { crate::sse2::sad_sse2(a, a_stride, b, b_stride, w, h) };
        }
        crate::pixel::sad_scalar(a, a_stride, b, b_stride, w, h)
    }

    /// Sum of absolute transformed differences (4×4 Hadamard) over a
    /// `w`×`h` block; `w` and `h` must be multiples of 4.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `h` is not a multiple of 4.
    #[inline]
    pub fn satd(
        &self,
        a: &[u8],
        a_stride: usize,
        b: &[u8],
        b_stride: usize,
        w: usize,
        h: usize,
    ) -> u32 {
        assert!(
            w.is_multiple_of(4) && h.is_multiple_of(4),
            "satd blocks must be 4-aligned"
        );
        #[cfg(target_arch = "x86_64")]
        if self.use_sse2() {
            // SAFETY: sse2 is architecturally guaranteed on x86_64.
            return unsafe { crate::sse2::satd_sse2(a, a_stride, b, b_stride, w, h) };
        }
        crate::satd::satd_scalar(a, a_stride, b, b_stride, w, h)
    }

    /// Sum of squared differences over a `w`×`h` block.
    #[inline]
    pub fn ssd(
        &self,
        a: &[u8],
        a_stride: usize,
        b: &[u8],
        b_stride: usize,
        w: usize,
        h: usize,
    ) -> u64 {
        // SSD is off the hot path (used for PSNR-style decisions only);
        // a single scalar implementation keeps both levels identical.
        crate::pixel::ssd_scalar(a, a_stride, b, b_stride, w, h)
    }

    /// Forward 8×8 DCT (fixed-point, MPEG-class codecs). Input residuals
    /// must lie in `[-256, 255]`.
    #[inline]
    pub fn fdct8(&self, block: &mut Block8) {
        #[cfg(target_arch = "x86_64")]
        if self.use_sse2() {
            // SAFETY: sse2 is architecturally guaranteed on x86_64.
            unsafe { crate::sse2::fdct8_sse2(block) };
            return;
        }
        crate::dct8::fdct8_scalar(block);
    }

    /// Inverse 8×8 DCT matching [`fdct8`](Self::fdct8). Dequantised
    /// coefficients must be clamped to `[-4095, 4095]` first.
    #[inline]
    pub fn idct8(&self, block: &mut Block8) {
        #[cfg(target_arch = "x86_64")]
        if self.use_sse2() {
            // SAFETY: sse2 is architecturally guaranteed on x86_64.
            unsafe { crate::sse2::idct8_sse2(block) };
            return;
        }
        crate::dct8::idct8_scalar(block);
    }

    /// H.264 4×4 forward core transform (bit-exact, integer).
    #[inline]
    pub fn fcore4(&self, block: &mut Block4) {
        // The 4x4 core transform is exact in both variants; scalar is
        // already a handful of adds, so only the quantisation around it is
        // dispatched.
        crate::dct4::fcore4(block);
    }

    /// H.264 4×4 inverse core transform (bit-exact, includes the final
    /// `>> 6` normalisation).
    #[inline]
    pub fn icore4(&self, block: &mut Block4) {
        crate::dct4::icore4(block);
    }

    /// MPEG-style quantisation of an 8×8 coefficient block with a weight
    /// matrix and quantiser scale. Returns the number of nonzero levels.
    ///
    /// Forward quantisation is division-based and encoder-only; it stays
    /// scalar at every level (its cost is negligible next to motion
    /// search and the forward DCT), which also guarantees identical
    /// levels regardless of the SIMD setting.
    #[inline]
    pub fn quant8(
        &self,
        block: &mut Block8,
        matrix: &QuantMatrix,
        qscale: u16,
        intra: bool,
    ) -> u32 {
        crate::quant::quant8_scalar(block, matrix, qscale, intra)
    }

    /// Inverse of [`quant8`](Self::quant8); output clamped to
    /// `[-4095, 4095]`.
    #[inline]
    pub fn dequant8(&self, block: &mut Block8, matrix: &QuantMatrix, qscale: u16, intra: bool) {
        #[cfg(target_arch = "x86_64")]
        if self.use_sse2() {
            // SAFETY: sse2 is architecturally guaranteed on x86_64.
            unsafe { crate::sse2::dequant8_sse2(block, matrix, qscale, intra) };
            return;
        }
        crate::quant::dequant8_scalar(block, matrix, qscale, intra)
    }

    /// Copies a `w`×`h` block.
    #[inline]
    pub fn copy_block(
        &self,
        dst: &mut [u8],
        dst_stride: usize,
        src: &[u8],
        src_stride: usize,
        w: usize,
        h: usize,
    ) {
        crate::pixel::copy_block(dst, dst_stride, src, src_stride, w, h);
    }

    /// Rounded average of two blocks (`(a + b + 1) >> 1`), the kernel for
    /// bi-prediction and half-pel averaging.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn avg_block(
        &self,
        dst: &mut [u8],
        dst_stride: usize,
        a: &[u8],
        a_stride: usize,
        b: &[u8],
        b_stride: usize,
        w: usize,
        h: usize,
    ) {
        #[cfg(target_arch = "x86_64")]
        if self.use_sse2() && w.is_multiple_of(8) {
            // SAFETY: sse2 is architecturally guaranteed on x86_64.
            unsafe { crate::sse2::avg_block_sse2(dst, dst_stride, a, a_stride, b, b_stride, w, h) };
            return;
        }
        crate::pixel::avg_block_scalar(dst, dst_stride, a, a_stride, b, b_stride, w, h)
    }

    /// Bilinear half-pel interpolation with fractional offsets
    /// `(fx, fy) ∈ {0, 1}²` in half-pel units (MPEG-2/MPEG-4 motion
    /// compensation).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn hpel_interp(
        &self,
        dst: &mut [u8],
        dst_stride: usize,
        src: &[u8],
        src_stride: usize,
        fx: u8,
        fy: u8,
        w: usize,
        h: usize,
    ) {
        #[cfg(target_arch = "x86_64")]
        if self.use_sse2() && w.is_multiple_of(8) {
            // SAFETY: sse2 is architecturally guaranteed on x86_64.
            unsafe {
                crate::sse2::hpel_interp_sse2(dst, dst_stride, src, src_stride, fx, fy, w, h)
            };
            return;
        }
        crate::interp::hpel_interp_scalar(dst, dst_stride, src, src_stride, fx, fy, w, h)
    }

    /// H.264-style 6-tap half-pel filter `(1,-5,20,20,-5,1)/32` in the
    /// horizontal direction; `src[0]` must be 2 samples left of the block
    /// origin.
    #[inline]
    pub fn sixtap_h(
        &self,
        dst: &mut [u8],
        dst_stride: usize,
        src: &[u8],
        src_stride: usize,
        w: usize,
        h: usize,
    ) {
        #[cfg(target_arch = "x86_64")]
        if self.use_sse2() && w.is_multiple_of(8) {
            // SAFETY: sse2 is architecturally guaranteed on x86_64.
            unsafe { crate::sse2::sixtap_h_sse2(dst, dst_stride, src, src_stride, w, h) };
            return;
        }
        crate::interp::sixtap_h_scalar(dst, dst_stride, src, src_stride, w, h)
    }

    /// H.264-style 6-tap half-pel filter in the vertical direction;
    /// `src[0]` must be 2 rows above the block origin.
    #[inline]
    pub fn sixtap_v(
        &self,
        dst: &mut [u8],
        dst_stride: usize,
        src: &[u8],
        src_stride: usize,
        w: usize,
        h: usize,
    ) {
        #[cfg(target_arch = "x86_64")]
        if self.use_sse2() && w.is_multiple_of(8) {
            // SAFETY: sse2 is architecturally guaranteed on x86_64.
            unsafe { crate::sse2::sixtap_v_sse2(dst, dst_stride, src, src_stride, w, h) };
            return;
        }
        crate::interp::sixtap_v_scalar(dst, dst_stride, src, src_stride, w, h)
    }

    /// 6-tap filter applied in both directions (the H.264 "j" position):
    /// horizontal first at intermediate precision, then vertical;
    /// `src[0]` must be 2 samples left and 2 rows above the block origin.
    #[inline]
    pub fn sixtap_hv(
        &self,
        dst: &mut [u8],
        dst_stride: usize,
        src: &[u8],
        src_stride: usize,
        w: usize,
        h: usize,
    ) {
        // The two-dimensional position reuses the scalar intermediate
        // buffer logic at both levels; its inner loops call the dispatched
        // one-dimensional kernels.
        crate::interp::sixtap_hv(dst, dst_stride, src, src_stride, w, h)
    }

    /// Adds a residual block to a prediction with saturation:
    /// `dst = clamp(pred + res)`.
    #[inline]
    pub fn add_residual8(
        &self,
        dst: &mut [u8],
        dst_stride: usize,
        pred: &[u8],
        pred_stride: usize,
        res: &Block8,
    ) {
        #[cfg(target_arch = "x86_64")]
        if self.use_sse2() {
            // SAFETY: sse2 is architecturally guaranteed on x86_64.
            unsafe { crate::sse2::add_residual8_sse2(dst, dst_stride, pred, pred_stride, res) };
            return;
        }
        crate::pixel::add_residual8_scalar(dst, dst_stride, pred, pred_stride, res)
    }

    /// Computes the residual `res = cur - pred` for an 8×8 block.
    #[inline]
    pub fn diff_block8(
        &self,
        res: &mut Block8,
        cur: &[u8],
        cur_stride: usize,
        pred: &[u8],
        pred_stride: usize,
    ) {
        crate::pixel::diff_block8(res, cur, cur_stride, pred, pred_stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_sse2_on_x86_64() {
        #[cfg(target_arch = "x86_64")]
        assert_eq!(SimdLevel::detect(), SimdLevel::Sse2);
    }

    #[test]
    fn labels() {
        assert_eq!(SimdLevel::Scalar.label(), "scalar");
        assert_eq!(SimdLevel::Sse2.to_string(), "simd");
    }

    #[test]
    fn dsp_default_uses_detected_level() {
        let d = Dsp::default();
        assert_eq!(d.level(), SimdLevel::detect());
    }
}
