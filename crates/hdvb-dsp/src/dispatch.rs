use crate::{Block4, Block8, QuantMatrix};
use std::fmt;

/// Which kernel implementations a [`Dsp`] instance uses.
///
/// The benchmark's Figure 1 compares "scalar" codec builds against
/// "SIMD" builds; selecting the level at runtime lets one binary run both
/// halves of the experiment. Two SIMD tiers exist on x86-64: SSE2 (part
/// of the architectural baseline) and AVX2 (detected at runtime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable scalar code only (the paper's "plain C" variant).
    Scalar,
    /// SSE2 vector kernels (the paper's "SIMD" variant).
    #[default]
    Sse2,
    /// AVX2 vector kernels (256-bit registers; requires runtime support).
    Avx2,
}

impl SimdLevel {
    /// The best level supported by the current CPU, determined by real
    /// runtime feature detection: [`SimdLevel::Avx2`] where the CPU
    /// reports AVX2, otherwise [`SimdLevel::Sse2`] on x86-64 (where SSE2
    /// is architecturally guaranteed), otherwise [`SimdLevel::Scalar`].
    pub fn detect() -> SimdLevel {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                SimdLevel::Avx2
            } else {
                SimdLevel::Sse2
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            SimdLevel::Scalar
        }
    }

    /// Parses a tier name: `scalar`, `sse2`, `avx2`, or `auto`/`simd`
    /// (both meaning "best detected level", preserving the historical
    /// `--simd simd` spelling).
    pub fn parse(name: &str) -> Option<SimdLevel> {
        match name {
            "scalar" => Some(SimdLevel::Scalar),
            "sse2" => Some(SimdLevel::Sse2),
            "avx2" => Some(SimdLevel::Avx2),
            "simd" | "auto" => Some(SimdLevel::detect()),
            _ => None,
        }
    }

    /// The default level, honouring the `HDVB_SIMD` environment variable
    /// (`scalar|sse2|avx2|auto`) when set — the hook CI uses to run the
    /// whole suite over each dispatch tier — and falling back to
    /// [`detect`](Self::detect) otherwise (also when the value does not
    /// parse).
    pub fn preferred() -> SimdLevel {
        match std::env::var("HDVB_SIMD") {
            Ok(name) => SimdLevel::parse(&name).unwrap_or_else(SimdLevel::detect),
            Err(_) => SimdLevel::detect(),
        }
    }

    /// Whether this exact tier can run on the current CPU.
    pub fn is_supported(self) -> bool {
        match self {
            SimdLevel::Scalar => true,
            SimdLevel::Sse2 => cfg!(target_arch = "x86_64"),
            SimdLevel::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
        }
    }

    /// The tier that will actually run when this one is requested: an
    /// unsupported tier degrades to the next one down
    /// (AVX2 → SSE2 → scalar).
    pub fn effective(self) -> SimdLevel {
        match self {
            SimdLevel::Scalar => SimdLevel::Scalar,
            SimdLevel::Sse2 => {
                if SimdLevel::Sse2.is_supported() {
                    SimdLevel::Sse2
                } else {
                    SimdLevel::Scalar
                }
            }
            SimdLevel::Avx2 => {
                if SimdLevel::Avx2.is_supported() {
                    SimdLevel::Avx2
                } else {
                    SimdLevel::Sse2.effective()
                }
            }
        }
    }

    /// Every tier the current CPU can run, lowest first. Always contains
    /// [`SimdLevel::Scalar`]; used by the Figure-1 sweep and the kernel
    /// microbenchmarks to enumerate measurable variants.
    pub fn supported_tiers() -> Vec<SimdLevel> {
        [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2]
            .into_iter()
            .filter(|l| l.is_supported())
            .collect()
    }

    /// Whether vector kernels will actually run at this level on this CPU.
    pub fn is_accelerated(self) -> bool {
        self.effective() != SimdLevel::Scalar
    }

    /// Short label used in reports ("scalar" / "simd"), mirroring the
    /// paper's legend. Both SIMD tiers share the "simd" label; use
    /// [`tier_name`](Self::tier_name) where the exact tier matters.
    pub fn label(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 | SimdLevel::Avx2 => "simd",
        }
    }

    /// Exact tier name ("scalar" / "sse2" / "avx2") for attribution in
    /// reports and machine-readable benchmark output.
    pub fn tier_name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

impl fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

// ------------------------------------------------------ kernel pointers --

/// Block-compare kernel: `(a, a_stride, b, b_stride, w, h) -> cost`.
pub type SadFn = fn(&[u8], usize, &[u8], usize, usize, usize) -> u32;
/// SATD shares the SAD signature.
pub type SatdFn = SadFn;
/// Sum of squared differences (64-bit accumulator for large planes).
pub type SsdFn = fn(&[u8], usize, &[u8], usize, usize, usize) -> u64;
/// In-place 8×8 transform.
pub type Block8Fn = fn(&mut Block8);
/// In-place 4×4 transform.
pub type Block4Fn = fn(&mut Block4);
/// Forward quantiser; returns the number of nonzero levels.
pub type Quant8Fn = fn(&mut Block8, &QuantMatrix, u16, bool) -> u32;
/// Inverse quantiser.
pub type Dequant8Fn = fn(&mut Block8, &QuantMatrix, u16, bool);
/// Block copy: `(dst, dst_stride, src, src_stride, w, h)`.
pub type CopyBlockFn = fn(&mut [u8], usize, &[u8], usize, usize, usize);
/// Rounded average of two blocks into `dst`.
pub type AvgBlockFn = fn(&mut [u8], usize, &[u8], usize, &[u8], usize, usize, usize);
/// Bilinear half-pel interpolation with `(fx, fy)` in half-pel units.
pub type HpelInterpFn = fn(&mut [u8], usize, &[u8], usize, u8, u8, usize, usize);
/// One-dimensional (or combined) 6-tap interpolation.
pub type SixtapFn = fn(&mut [u8], usize, &[u8], usize, usize, usize);
/// Residual reconstruction: `dst = clamp(pred + res)`.
pub type AddResidual8Fn = fn(&mut [u8], usize, &[u8], usize, &Block8);
/// Residual computation: `res = cur - pred`.
pub type DiffBlock8Fn = fn(&mut Block8, &[u8], usize, &[u8], usize);
/// Horizontal deblocking edge filter.
pub type DeblockHorizFn = fn(&mut [u8], usize, usize, usize, i32, i32, i32);
/// Horizontal polyphase resample of one row:
/// `(dst, src, offsets, taps)` — output `i` is the 4-tap dot product of
/// `src[offsets[i]..offsets[i]+4]` with `taps[4i..4i+4]` (weights sum to
/// 128; see `ScaleFilter`).
pub type ScaleHFn = fn(&mut [u8], &[u8], &[u32], &[i16]);
/// Vertical polyphase blend of four rows into one output row with a
/// single 4-tap weight set: `(dst, r0, r1, r2, r3, taps)`.
pub type ScaleVFn = fn(&mut [u8], &[u8], &[u8], &[u8], &[u8], &[i16; 4]);

/// The full set of kernel entry points for one tier.
///
/// Resolved **once** in [`Dsp::new`]; every facade method is then a single
/// indirect call through this table, so the per-block hot path carries no
/// per-call level dispatch. Each entry is a *total* safe function: SIMD
/// entries perform their own width-fallback to scalar where a kernel
/// only handles 8-aligned widths.
pub(crate) struct KernelTable {
    pub(crate) sad: SadFn,
    pub(crate) satd: SatdFn,
    pub(crate) ssd: SsdFn,
    pub(crate) fdct8: Block8Fn,
    pub(crate) idct8: Block8Fn,
    pub(crate) fcore4: Block4Fn,
    pub(crate) icore4: Block4Fn,
    pub(crate) quant8: Quant8Fn,
    pub(crate) dequant8: Dequant8Fn,
    pub(crate) copy_block: CopyBlockFn,
    pub(crate) avg_block: AvgBlockFn,
    pub(crate) hpel_interp: HpelInterpFn,
    pub(crate) sixtap_h: SixtapFn,
    pub(crate) sixtap_v: SixtapFn,
    pub(crate) sixtap_hv: SixtapFn,
    pub(crate) add_residual8: AddResidual8Fn,
    pub(crate) diff_block8: DiffBlock8Fn,
    pub(crate) deblock_horiz_edge: DeblockHorizFn,
    pub(crate) scale_h: ScaleHFn,
    pub(crate) scale_v: ScaleVFn,
}

/// The scalar tier: the portable reference implementation of every
/// kernel. The 4×4 core transforms are exact in a handful of adds and
/// stay scalar in every tier's table.
pub(crate) static SCALAR_KERNELS: KernelTable = KernelTable {
    sad: crate::pixel::sad_scalar,
    satd: crate::satd::satd_scalar,
    ssd: crate::pixel::ssd_scalar,
    fdct8: crate::dct8::fdct8_scalar,
    idct8: crate::dct8::idct8_scalar,
    fcore4: crate::dct4::fcore4,
    icore4: crate::dct4::icore4,
    quant8: crate::quant::quant8_scalar,
    dequant8: crate::quant::dequant8_scalar,
    copy_block: crate::pixel::copy_block,
    avg_block: crate::pixel::avg_block_scalar,
    hpel_interp: crate::interp::hpel_interp_scalar,
    sixtap_h: crate::interp::sixtap_h_scalar,
    sixtap_v: crate::interp::sixtap_v_scalar,
    sixtap_hv: crate::interp::sixtap_hv,
    add_residual8: crate::pixel::add_residual8_scalar,
    diff_block8: crate::pixel::diff_block8,
    deblock_horiz_edge: crate::deblock::deblock_horiz_edge_scalar,
    scale_h: crate::scale::scale_row_h_scalar,
    scale_v: crate::scale::scale_row_v_scalar,
};

/// Dispatch table for all DSP kernels at a chosen [`SimdLevel`].
///
/// Codecs hold one `Dsp` and route every hot-loop operation through it.
/// The kernel pointers are resolved once at construction, so each call
/// is one indirect jump to the right tier — the branch target is a
/// constant the predictor learns immediately.
#[derive(Clone, Copy)]
pub struct Dsp {
    level: SimdLevel,
    kernels: &'static KernelTable,
}

impl fmt::Debug for Dsp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Dsp").field("level", &self.level).finish()
    }
}

impl Default for Dsp {
    fn default() -> Self {
        Dsp::new(SimdLevel::preferred())
    }
}

impl Dsp {
    /// Creates a dispatcher at the given level, resolving the kernel
    /// table once. Requesting a tier the CPU cannot run silently
    /// degrades to the next supported one (AVX2 → SSE2 → scalar).
    pub fn new(level: SimdLevel) -> Self {
        let level = level.effective();
        let kernels: &'static KernelTable = match level {
            SimdLevel::Scalar => &SCALAR_KERNELS,
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Sse2 => &crate::sse2::SSE2_KERNELS,
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => &crate::avx2::AVX2_KERNELS,
            #[cfg(not(target_arch = "x86_64"))]
            _ => &SCALAR_KERNELS,
        };
        Dsp { level, kernels }
    }

    /// The active level.
    pub fn level(&self) -> SimdLevel {
        self.level
    }

    /// The resolved SAD kernel, for callers (motion search cost
    /// functions) that want to hold the function pointer directly
    /// instead of going through the facade.
    pub fn sad_fn(&self) -> SadFn {
        self.kernels.sad
    }

    /// The resolved SATD kernel (see [`sad_fn`](Self::sad_fn)).
    pub fn satd_fn(&self) -> SatdFn {
        self.kernels.satd
    }

    /// The resolved table, for sibling modules implementing facade
    /// methods outside this file.
    #[inline]
    pub(crate) fn kernels(&self) -> &'static KernelTable {
        self.kernels
    }

    /// Sum of absolute differences between a `w`×`h` block at the start of
    /// `a` (row stride `a_stride`) and one at the start of `b`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the slices are too short for the
    /// requested geometry.
    #[inline]
    pub fn sad(
        &self,
        a: &[u8],
        a_stride: usize,
        b: &[u8],
        b_stride: usize,
        w: usize,
        h: usize,
    ) -> u32 {
        (self.kernels.sad)(a, a_stride, b, b_stride, w, h)
    }

    /// Sum of absolute transformed differences (4×4 Hadamard) over a
    /// `w`×`h` block; `w` and `h` must be multiples of 4.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `h` is not a multiple of 4.
    #[inline]
    pub fn satd(
        &self,
        a: &[u8],
        a_stride: usize,
        b: &[u8],
        b_stride: usize,
        w: usize,
        h: usize,
    ) -> u32 {
        assert!(
            w.is_multiple_of(4) && h.is_multiple_of(4),
            "satd blocks must be 4-aligned"
        );
        (self.kernels.satd)(a, a_stride, b, b_stride, w, h)
    }

    /// Sum of squared differences over a `w`×`h` block.
    #[inline]
    pub fn ssd(
        &self,
        a: &[u8],
        a_stride: usize,
        b: &[u8],
        b_stride: usize,
        w: usize,
        h: usize,
    ) -> u64 {
        (self.kernels.ssd)(a, a_stride, b, b_stride, w, h)
    }

    /// Forward 8×8 DCT (fixed-point, MPEG-class codecs). Input residuals
    /// must lie in `[-256, 255]`.
    #[inline]
    pub fn fdct8(&self, block: &mut Block8) {
        (self.kernels.fdct8)(block)
    }

    /// Inverse 8×8 DCT matching [`fdct8`](Self::fdct8). Dequantised
    /// coefficients must be clamped to `[-4095, 4095]` first.
    #[inline]
    pub fn idct8(&self, block: &mut Block8) {
        (self.kernels.idct8)(block)
    }

    /// H.264 4×4 forward core transform (bit-exact, integer).
    #[inline]
    pub fn fcore4(&self, block: &mut Block4) {
        (self.kernels.fcore4)(block)
    }

    /// H.264 4×4 inverse core transform (bit-exact, includes the final
    /// `>> 6` normalisation).
    #[inline]
    pub fn icore4(&self, block: &mut Block4) {
        (self.kernels.icore4)(block)
    }

    /// MPEG-style quantisation of an 8×8 coefficient block with a weight
    /// matrix and quantiser scale. Returns the number of nonzero levels.
    ///
    /// All tiers produce identical levels: the SIMD paths compute the
    /// divisions exactly (via double-precision division, which is exact
    /// for this operand range), so the choice of tier never changes the
    /// bitstream.
    #[inline]
    pub fn quant8(
        &self,
        block: &mut Block8,
        matrix: &QuantMatrix,
        qscale: u16,
        intra: bool,
    ) -> u32 {
        (self.kernels.quant8)(block, matrix, qscale, intra)
    }

    /// Inverse of [`quant8`](Self::quant8); output clamped to
    /// `[-4095, 4095]`.
    #[inline]
    pub fn dequant8(&self, block: &mut Block8, matrix: &QuantMatrix, qscale: u16, intra: bool) {
        (self.kernels.dequant8)(block, matrix, qscale, intra)
    }

    /// Copies a `w`×`h` block.
    #[inline]
    pub fn copy_block(
        &self,
        dst: &mut [u8],
        dst_stride: usize,
        src: &[u8],
        src_stride: usize,
        w: usize,
        h: usize,
    ) {
        (self.kernels.copy_block)(dst, dst_stride, src, src_stride, w, h)
    }

    /// Rounded average of two blocks (`(a + b + 1) >> 1`), the kernel for
    /// bi-prediction and half-pel averaging.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn avg_block(
        &self,
        dst: &mut [u8],
        dst_stride: usize,
        a: &[u8],
        a_stride: usize,
        b: &[u8],
        b_stride: usize,
        w: usize,
        h: usize,
    ) {
        (self.kernels.avg_block)(dst, dst_stride, a, a_stride, b, b_stride, w, h)
    }

    /// Bilinear half-pel interpolation with fractional offsets
    /// `(fx, fy) ∈ {0, 1}²` in half-pel units (MPEG-2/MPEG-4 motion
    /// compensation).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn hpel_interp(
        &self,
        dst: &mut [u8],
        dst_stride: usize,
        src: &[u8],
        src_stride: usize,
        fx: u8,
        fy: u8,
        w: usize,
        h: usize,
    ) {
        (self.kernels.hpel_interp)(dst, dst_stride, src, src_stride, fx, fy, w, h)
    }

    /// H.264-style 6-tap half-pel filter `(1,-5,20,20,-5,1)/32` in the
    /// horizontal direction; `src[0]` must be 2 samples left of the block
    /// origin.
    #[inline]
    pub fn sixtap_h(
        &self,
        dst: &mut [u8],
        dst_stride: usize,
        src: &[u8],
        src_stride: usize,
        w: usize,
        h: usize,
    ) {
        (self.kernels.sixtap_h)(dst, dst_stride, src, src_stride, w, h)
    }

    /// H.264-style 6-tap half-pel filter in the vertical direction;
    /// `src[0]` must be 2 rows above the block origin.
    #[inline]
    pub fn sixtap_v(
        &self,
        dst: &mut [u8],
        dst_stride: usize,
        src: &[u8],
        src_stride: usize,
        w: usize,
        h: usize,
    ) {
        (self.kernels.sixtap_v)(dst, dst_stride, src, src_stride, w, h)
    }

    /// 6-tap filter applied in both directions (the H.264 "j" position):
    /// horizontal first at intermediate precision, then vertical;
    /// `src[0]` must be 2 samples left and 2 rows above the block origin.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `h` exceeds 16.
    #[inline]
    pub fn sixtap_hv(
        &self,
        dst: &mut [u8],
        dst_stride: usize,
        src: &[u8],
        src_stride: usize,
        w: usize,
        h: usize,
    ) {
        (self.kernels.sixtap_hv)(dst, dst_stride, src, src_stride, w, h)
    }

    /// Adds a residual block to a prediction with saturation:
    /// `dst = clamp(pred + res)`.
    #[inline]
    pub fn add_residual8(
        &self,
        dst: &mut [u8],
        dst_stride: usize,
        pred: &[u8],
        pred_stride: usize,
        res: &Block8,
    ) {
        (self.kernels.add_residual8)(dst, dst_stride, pred, pred_stride, res)
    }

    /// Computes the residual `res = cur - pred` for an 8×8 block.
    #[inline]
    pub fn diff_block8(
        &self,
        res: &mut Block8,
        cur: &[u8],
        cur_stride: usize,
        pred: &[u8],
        pred_stride: usize,
    ) {
        (self.kernels.diff_block8)(res, cur, cur_stride, pred, pred_stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_accelerated_on_x86_64() {
        #[cfg(target_arch = "x86_64")]
        {
            let detected = SimdLevel::detect();
            assert!(detected == SimdLevel::Sse2 || detected == SimdLevel::Avx2);
            assert!(detected.is_accelerated());
            // detect() must agree with per-tier support queries.
            assert_eq!(detected == SimdLevel::Avx2, SimdLevel::Avx2.is_supported());
        }
    }

    #[test]
    fn labels() {
        assert_eq!(SimdLevel::Scalar.label(), "scalar");
        assert_eq!(SimdLevel::Sse2.to_string(), "simd");
        assert_eq!(SimdLevel::Avx2.to_string(), "simd");
        assert_eq!(SimdLevel::Scalar.tier_name(), "scalar");
        assert_eq!(SimdLevel::Sse2.tier_name(), "sse2");
        assert_eq!(SimdLevel::Avx2.tier_name(), "avx2");
    }

    #[test]
    fn parse_round_trips_tier_names() {
        for level in [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2] {
            assert_eq!(SimdLevel::parse(level.tier_name()), Some(level));
        }
        assert_eq!(SimdLevel::parse("auto"), Some(SimdLevel::detect()));
        assert_eq!(SimdLevel::parse("simd"), Some(SimdLevel::detect()));
        assert_eq!(SimdLevel::parse("neon"), None);
    }

    #[test]
    fn unsupported_tier_degrades() {
        // Whatever the CPU, requesting every tier must yield a supported
        // effective tier, and Dsp::new must accept it.
        for level in [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2] {
            let eff = level.effective();
            assert!(eff.is_supported());
            assert_eq!(Dsp::new(level).level(), eff);
        }
    }

    #[test]
    fn supported_tiers_starts_with_scalar() {
        let tiers = SimdLevel::supported_tiers();
        assert_eq!(tiers[0], SimdLevel::Scalar);
        assert!(tiers.contains(&SimdLevel::detect()));
    }

    #[test]
    fn dsp_default_uses_preferred_level() {
        let d = Dsp::default();
        assert_eq!(d.level(), SimdLevel::preferred().effective());
    }

    #[test]
    fn resolved_sad_fn_matches_facade() {
        let d = Dsp::default();
        let f = d.sad_fn();
        let a = [9u8; 256];
        let b = [17u8; 256];
        assert_eq!(f(&a, 16, &b, 16, 16, 16), d.sad(&a, 16, &b, 16, 16, 16));
    }
}
