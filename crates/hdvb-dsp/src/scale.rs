//! Polyphase plane scaling — the resampler behind ABR transcode
//! ladders (decode once, re-encode at several resolutions).
//!
//! The scaler is separable: a horizontal pass resamples every source row
//! to the destination width, then a vertical pass resamples the columns
//! of that intermediate to the destination height. Both passes use the
//! same 4-tap polyphase structure: for every output position a
//! [`ScaleFilter`] precomputes the first of four **contiguous** source
//! samples plus four 7-bit fixed-point weights (a Catmull-Rom kernel
//! evaluated at the exact output phase, quantised so the taps always sum
//! to 128). Out-of-range taps at the plane edges are folded into the
//! nearest in-range sample at filter-build time, so the hot kernels are
//! branch-free windowed dot products.
//!
//! All arithmetic is integer (`acc = Σ tap·sample`, then
//! `(acc + 64) >> 7`, clamped to `[0, 255]`), so every SIMD tier is
//! bit-exact with the scalar reference — the same invariant the codec
//! kernels uphold, asserted by the property tests in
//! `tests/simd_equivalence.rs` and the workspace `simd_invariance`
//! suite.
//!
//! The 4-tap kernel is used for upscaling and downscaling alike; a
//! production scaler would widen its support when downsampling to
//! band-limit first (see DESIGN.md §16 for the trade-off).

use crate::dispatch::Dsp;

/// Number of filter taps per output sample.
pub const SCALE_TAPS: usize = 4;

/// Fixed-point fraction bits of the filter weights (weights sum to
/// `1 << SCALE_FILTER_BITS` = 128).
pub const SCALE_FILTER_BITS: u32 = 7;

const FILTER_SCALE: i64 = 1 << SCALE_FILTER_BITS;

/// A precomputed 1-D polyphase resampling filter from `src_len` samples
/// to `dst_len` samples.
///
/// For output index `i`, `offsets()[i]` is the first of
/// [`SCALE_TAPS`] contiguous source samples and
/// `taps()[4*i..4*i + 4]` their signed 7-bit weights. Offsets are
/// guaranteed to satisfy `offset + 4 <= src_len`, so kernels may read a
/// full 4-sample window unconditionally.
#[derive(Clone, Debug)]
pub struct ScaleFilter {
    offsets: Vec<u32>,
    taps: Vec<i16>,
    src_len: usize,
    dst_len: usize,
}

impl ScaleFilter {
    /// Builds the filter for one axis.
    ///
    /// Output sample `i` is centred at source position
    /// `(i + 0.5) · src_len / dst_len − 0.5` (the standard
    /// centre-aligned mapping, computed in 16.16 fixed point so the
    /// phases are exact). When `src_len == dst_len` every phase is zero
    /// and the filter degenerates to the identity copy.
    ///
    /// # Panics
    ///
    /// Panics if `src_len < 4` (the window would not fit) or
    /// `dst_len == 0`.
    pub fn new(src_len: usize, dst_len: usize) -> ScaleFilter {
        assert!(src_len >= SCALE_TAPS, "scale source too small: {src_len}");
        assert!(dst_len > 0, "scale destination is empty");
        let mut offsets = Vec::with_capacity(dst_len);
        let mut taps = Vec::with_capacity(dst_len * SCALE_TAPS);
        for i in 0..dst_len {
            // 16.16 source position of this output sample's centre.
            let pos =
                ((2 * i as i64 + 1) * src_len as i64 * 65536) / (2 * dst_len as i64) - (1 << 15);
            let base = pos >> 16; // floor, also for negative positions
            let frac = pos - (base << 16); // 0..65536
            let ideal = catmull_rom_taps(frac);
            // Fold out-of-range taps into the clamped edge samples so the
            // window stays contiguous and fully in bounds.
            let lo = base - 1;
            let o = lo.clamp(0, src_len as i64 - SCALE_TAPS as i64);
            let mut folded = [0i16; SCALE_TAPS];
            for (k, &c) in ideal.iter().enumerate() {
                let idx = (lo + k as i64).clamp(0, src_len as i64 - 1);
                folded[(idx - o) as usize] += c;
            }
            offsets.push(o as u32);
            taps.extend_from_slice(&folded);
        }
        ScaleFilter {
            offsets,
            taps,
            src_len,
            dst_len,
        }
    }

    /// Source length this filter reads from.
    pub fn src_len(&self) -> usize {
        self.src_len
    }

    /// Destination length this filter produces.
    pub fn dst_len(&self) -> usize {
        self.dst_len
    }

    /// First source index of each output sample's 4-tap window.
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The 7-bit weights, [`SCALE_TAPS`] per output sample, each group
    /// summing to 128.
    pub fn taps(&self) -> &[i16] {
        &self.taps
    }

    /// The weight quadruple for output index `i`.
    pub fn taps_for(&self, i: usize) -> [i16; SCALE_TAPS] {
        self.taps[i * SCALE_TAPS..(i + 1) * SCALE_TAPS]
            .try_into()
            .unwrap()
    }
}

/// Catmull-Rom weights at phase `frac` (16.16 fraction in `[0, 65536)`),
/// quantised to signed 7-bit fixed point that sums to exactly 128.
fn catmull_rom_taps(frac: i64) -> [i16; SCALE_TAPS] {
    let t = frac; // units of 1/65536
    let u = 1i64 << 16;
    let t2 = (t * t) >> 16;
    let t3 = (t2 * t) >> 16;
    // Catmull-Rom: w0 = (−t³+2t²−t)/2, w1 = (3t³−5t²+2)/2,
    //              w2 = (−3t³+4t²+t)/2, w3 = (t³−t²)/2.
    let w = [
        (2 * t2 - t3 - t) / 2,
        (3 * t3 - 5 * t2 + 2 * u) / 2,
        (t + 4 * t2 - 3 * t3) / 2,
        (t3 - t2) / 2,
    ];
    let mut q = [0i16; SCALE_TAPS];
    let mut sum = 0i64;
    for (qk, &wk) in q.iter_mut().zip(&w) {
        let v = (wk * FILTER_SCALE + (1 << 15)) >> 16;
        *qk = v as i16;
        sum += v;
    }
    // Rounding drift goes to the nearest-sample tap so the weights sum
    // to exactly 128 (keeps flat areas exactly flat).
    let nearest = if frac < (1 << 15) { 1 } else { 2 };
    q[nearest] += (FILTER_SCALE - sum) as i16;
    q
}

// ------------------------------------------------------ scalar kernels --

/// Horizontal polyphase resample of one row (scalar reference).
///
/// `offsets[i]` is the first of four contiguous source samples for
/// output `i`; `taps[4i..4i+4]` their weights.
pub(crate) fn scale_row_h_scalar(dst: &mut [u8], src: &[u8], offsets: &[u32], taps: &[i16]) {
    debug_assert_eq!(offsets.len() * SCALE_TAPS, taps.len());
    debug_assert!(dst.len() >= offsets.len());
    for (i, (&o, t)) in offsets
        .iter()
        .zip(taps.chunks_exact(SCALE_TAPS))
        .enumerate()
    {
        let s = &src[o as usize..o as usize + SCALE_TAPS];
        let acc = i32::from(t[0]) * i32::from(s[0])
            + i32::from(t[1]) * i32::from(s[1])
            + i32::from(t[2]) * i32::from(s[2])
            + i32::from(t[3]) * i32::from(s[3]);
        dst[i] = ((acc + (1 << (SCALE_FILTER_BITS - 1))) >> SCALE_FILTER_BITS).clamp(0, 255) as u8;
    }
}

/// Vertical polyphase blend of four source rows with one weight
/// quadruple (scalar reference).
pub(crate) fn scale_row_v_scalar(
    dst: &mut [u8],
    r0: &[u8],
    r1: &[u8],
    r2: &[u8],
    r3: &[u8],
    c: &[i16; SCALE_TAPS],
) {
    let (c0, c1) = (i32::from(c[0]), i32::from(c[1]));
    let (c2, c3) = (i32::from(c[2]), i32::from(c[3]));
    for x in 0..dst.len() {
        let acc = c0 * i32::from(r0[x])
            + c1 * i32::from(r1[x])
            + c2 * i32::from(r2[x])
            + c3 * i32::from(r3[x]);
        dst[x] = ((acc + (1 << (SCALE_FILTER_BITS - 1))) >> SCALE_FILTER_BITS).clamp(0, 255) as u8;
    }
}

impl Dsp {
    /// Horizontally resamples one row through the tier's kernel: output
    /// `i` is the 4-tap dot product at `offsets[i]` (see
    /// [`ScaleFilter`]).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `dst` is shorter than `offsets`, if
    /// `taps` is not exactly four per output, or if a window exceeds
    /// `src`.
    #[inline]
    pub fn scale_row_h(&self, dst: &mut [u8], src: &[u8], offsets: &[u32], taps: &[i16]) {
        (self.kernels().scale_h)(dst, src, offsets, taps)
    }

    /// Vertically blends four equally long rows into `dst` with one
    /// 4-tap weight set (one output row of a vertical resample).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any row is shorter than `dst`.
    #[inline]
    pub fn scale_row_v(
        &self,
        dst: &mut [u8],
        r0: &[u8],
        r1: &[u8],
        r2: &[u8],
        r3: &[u8],
        c: &[i16; SCALE_TAPS],
    ) {
        (self.kernels().scale_v)(dst, r0, r1, r2, r3, c)
    }
}

// -------------------------------------------------------- plane scaler --

/// A separable polyphase plane scaler with cached filters.
///
/// Owns the horizontal and vertical [`ScaleFilter`]s for one fixed
/// geometry plus the intermediate buffer, so repeated
/// [`scale`](Self::scale) calls allocate nothing — the shape a ladder
/// runner wants when pushing every decoded frame through 3–5 rungs.
///
/// Planes are tightly packed (stride == width), matching
/// `hdvb_frame::Plane`.
#[derive(Clone, Debug)]
pub struct Scaler {
    dsp: Dsp,
    h: ScaleFilter,
    v: ScaleFilter,
    src_w: usize,
    src_h: usize,
    /// Horizontal-pass output: `dst_w` × `src_h`.
    tmp: Vec<u8>,
}

impl Scaler {
    /// Creates a scaler from `src_w`×`src_h` planes to `dst_w`×`dst_h`
    /// planes using `dsp`'s kernel tier.
    ///
    /// # Panics
    ///
    /// Panics if either source dimension is below 4 or either
    /// destination dimension is zero (see [`ScaleFilter::new`]).
    pub fn new(dsp: Dsp, src_w: usize, src_h: usize, dst_w: usize, dst_h: usize) -> Scaler {
        let h = ScaleFilter::new(src_w, dst_w);
        let v = ScaleFilter::new(src_h, dst_h);
        Scaler {
            dsp,
            h,
            v,
            src_w,
            src_h,
            tmp: vec![0; dst_w * src_h],
        }
    }

    /// Source geometry `(width, height)`.
    pub fn src_size(&self) -> (usize, usize) {
        (self.src_w, self.src_h)
    }

    /// Destination geometry `(width, height)`.
    pub fn dst_size(&self) -> (usize, usize) {
        (self.h.dst_len(), self.v.dst_len())
    }

    /// Resamples one tightly packed plane. `src` must hold
    /// `src_w * src_h` samples and `dst` at least `dst_w * dst_h`.
    ///
    /// # Panics
    ///
    /// Panics if the slices are too short for the geometry.
    pub fn scale(&mut self, src: &[u8], dst: &mut [u8]) {
        let dw = self.h.dst_len();
        let dh = self.v.dst_len();
        assert!(
            src.len() >= self.src_w * self.src_h,
            "source plane too short"
        );
        assert!(dst.len() >= dw * dh, "destination plane too short");
        for y in 0..self.src_h {
            self.dsp.scale_row_h(
                &mut self.tmp[y * dw..(y + 1) * dw],
                &src[y * self.src_w..(y + 1) * self.src_w],
                self.h.offsets(),
                self.h.taps(),
            );
        }
        for oy in 0..dh {
            let o = self.v.offsets()[oy] as usize;
            let c = self.v.taps_for(oy);
            let rows = &self.tmp[o * dw..(o + SCALE_TAPS) * dw];
            let (r0, rest) = rows.split_at(dw);
            let (r1, rest) = rest.split_at(dw);
            let (r2, r3) = rest.split_at(dw);
            // dst and tmp are disjoint buffers, so the row borrow is safe.
            let drow = &mut dst[oy * dw..(oy + 1) * dw];
            self.dsp.scale_row_v(drow, r0, r1, r2, r3, &c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimdLevel;

    #[test]
    fn filter_taps_sum_to_128_and_windows_fit() {
        for (s, d) in [(64, 64), (64, 20), (20, 64), (1088, 160), (7, 5), (4, 9)] {
            let f = ScaleFilter::new(s, d);
            assert_eq!(f.offsets().len(), d);
            assert_eq!(f.taps().len(), d * SCALE_TAPS);
            for i in 0..d {
                let t = f.taps_for(i);
                let sum: i32 = t.iter().map(|&c| i32::from(c)).sum();
                assert_eq!(sum, 128, "{s}->{d} output {i}: {t:?}");
                let o = f.offsets()[i] as usize;
                assert!(o + SCALE_TAPS <= s, "{s}->{d} output {i}: offset {o}");
            }
            // Offsets are monotone: the window only moves forward.
            for w in f.offsets().windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn identity_geometry_is_a_copy() {
        let mut sc = Scaler::new(Dsp::new(SimdLevel::Scalar), 16, 8, 16, 8);
        let src: Vec<u8> = (0..16 * 8).map(|i| (i * 7 % 251) as u8).collect();
        let mut dst = vec![0u8; 16 * 8];
        sc.scale(&src, &mut dst);
        assert_eq!(src, dst);
    }

    #[test]
    fn flat_planes_stay_flat_at_any_ratio() {
        // Taps summing to exactly 128 mean constant input produces the
        // same constant output — no ringing at edges either.
        for &(sw, sh, dw, dh) in &[(32, 32, 12, 20), (12, 20, 32, 32), (64, 48, 10, 6)] {
            let mut sc = Scaler::new(Dsp::new(SimdLevel::Scalar), sw, sh, dw, dh);
            for v in [0u8, 17, 128, 255] {
                let src = vec![v; sw * sh];
                let mut dst = vec![!v; dw * dh];
                sc.scale(&src, &mut dst);
                assert!(
                    dst.iter().all(|&o| o == v),
                    "{sw}x{sh}->{dw}x{dh} at {v}: {:?}",
                    &dst[..dw.min(8)]
                );
            }
        }
    }

    #[test]
    fn downscale_preserves_a_step_edge_position() {
        // A vertical step edge at the middle must stay in the middle.
        let (sw, sh, dw, dh) = (64usize, 16usize, 16usize, 8usize);
        let mut src = vec![0u8; sw * sh];
        for y in 0..sh {
            for x in sw / 2..sw {
                src[y * sw + x] = 200;
            }
        }
        let mut dst = vec![0u8; dw * dh];
        Scaler::new(Dsp::new(SimdLevel::Scalar), sw, sh, dw, dh).scale(&src, &mut dst);
        assert!(dst[0] < 20, "left side went {}", dst[0]);
        assert!(dst[dw - 1] > 180, "right side went {}", dst[dw - 1]);
        let mid_lo = dst[dw / 2 - 2];
        let mid_hi = dst[dw / 2 + 1];
        assert!(mid_lo < mid_hi, "edge inverted: {mid_lo} vs {mid_hi}");
    }

    #[test]
    fn all_tiers_are_bit_exact() {
        let (sw, sh, dw, dh) = (37usize, 23usize, 21usize, 30usize);
        let src: Vec<u8> = (0..sw * sh)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let mut reference = vec![0u8; dw * dh];
        Scaler::new(Dsp::new(SimdLevel::Scalar), sw, sh, dw, dh).scale(&src, &mut reference);
        for level in SimdLevel::supported_tiers() {
            let mut out = vec![0u8; dw * dh];
            Scaler::new(Dsp::new(level), sw, sh, dw, dh).scale(&src, &mut out);
            assert_eq!(out, reference, "{} diverges", level.tier_name());
        }
    }

    #[test]
    #[should_panic(expected = "scale source too small")]
    fn tiny_source_is_rejected() {
        let _ = ScaleFilter::new(3, 8);
    }
}
