//! Fixed-point separable 8×8 DCT-II / DCT-III pair used by the MPEG-class
//! codecs.
//!
//! Both directions use the same 11-bit-precision cosine matrix, applied as
//! two one-dimensional passes with rounding; the encoder's reconstruction
//! loop and the decoder call the *same* inverse, so encoder/decoder drift
//! is zero by construction (the property that matters for a codec; exact
//! IEEE DCT conformance does not affect any benchmark metric).

use crate::Block8;

/// Scale shift applied after each 1-D pass.
const SHIFT: i32 = 11;
const ROUND: i32 = 1 << (SHIFT - 1);

/// `COS[u][x] = round(c(u) * cos((2x+1)uπ/16) * 2^11)` with
/// `c(0) = sqrt(1/8)`, `c(u>0) = 1/2`.
pub(crate) const COS: [[i32; 8]; 8] = build_cos_matrix();

const fn build_cos_matrix() -> [[i32; 8]; 8] {
    // cos((2x+1)*u*pi/16) for the 8-point DCT, tabulated as integers.
    // Values precomputed (not const-evaluable with floats in const fn on
    // stable), scaled by 2^11:
    //   c(0) = 0.353553, c(u) = 0.5
    [
        [724, 724, 724, 724, 724, 724, 724, 724],
        [1004, 851, 569, 200, -200, -569, -851, -1004],
        [946, 392, -392, -946, -946, -392, 392, 946],
        [851, -200, -1004, -569, 569, 1004, 200, -851],
        [724, -724, -724, 724, 724, -724, -724, 724],
        [569, -1004, 200, 851, -851, -200, 1004, -569],
        [392, -946, 946, -392, -392, 946, -946, 392],
        [200, -569, 851, -1004, 1004, -851, 569, -200],
    ]
}

/// One forward 1-D pass over the rows of `src`, transposed into `dst`.
fn fdct_pass(src: &Block8, dst: &mut Block8) {
    for y in 0..8 {
        let row = &src[y * 8..y * 8 + 8];
        for (u, cos_row) in COS.iter().enumerate() {
            let mut acc = 0i32;
            for x in 0..8 {
                acc += i32::from(row[x]) * cos_row[x];
            }
            // Transposed store: output row u, column y.
            dst[u * 8 + y] = ((acc + ROUND) >> SHIFT) as i16;
        }
    }
}

/// One inverse 1-D pass over the rows of `src`, transposed into `dst`.
fn idct_pass(src: &Block8, dst: &mut Block8) {
    for y in 0..8 {
        let row = &src[y * 8..y * 8 + 8];
        for x in 0..8 {
            let mut acc = 0i32;
            for (u, cos_row) in COS.iter().enumerate() {
                acc += i32::from(row[u]) * cos_row[x];
            }
            dst[x * 8 + y] = ((acc + ROUND) >> SHIFT) as i16;
        }
    }
}

/// Forward 8×8 DCT, scalar reference implementation.
pub(crate) fn fdct8_scalar(block: &mut Block8) {
    let mut tmp = [0i16; 64];
    fdct_pass(block, &mut tmp);
    fdct_pass(&tmp, block);
}

/// Inverse 8×8 DCT, scalar reference implementation.
pub(crate) fn idct8_scalar(block: &mut Block8) {
    let mut tmp = [0i16; 64];
    idct_pass(block, &mut tmp);
    idct_pass(&tmp, block);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_error(input: &Block8) -> i32 {
        let mut b = *input;
        fdct8_scalar(&mut b);
        idct8_scalar(&mut b);
        input
            .iter()
            .zip(b.iter())
            .map(|(&a, &r)| (i32::from(a) - i32::from(r)).abs())
            .max()
            .unwrap()
    }

    #[test]
    fn dc_block_transforms_to_single_coefficient() {
        let mut b: Block8 = [100i16; 64];
        fdct8_scalar(&mut b);
        // DC = 100 * 8 (since c(0)^2 * 64 = 8) = 800, small AC leakage only.
        assert!((i32::from(b[0]) - 800).abs() <= 2, "dc = {}", b[0]);
        for (i, &c) in b.iter().enumerate().skip(1) {
            assert!(c.abs() <= 2, "ac[{i}] = {c}");
        }
    }

    #[test]
    fn roundtrip_error_is_tiny_for_extremes() {
        assert!(roundtrip_error(&[255i16; 64]) <= 1);
        assert!(roundtrip_error(&[-256i16; 64]) <= 1);
        let mut checker = [0i16; 64];
        for (i, v) in checker.iter_mut().enumerate() {
            *v = if (i / 8 + i % 8) % 2 == 0 { 255 } else { -255 };
        }
        assert!(roundtrip_error(&checker) <= 2);
    }

    #[test]
    fn roundtrip_error_random_blocks() {
        let mut state = 0x1234_5678u32;
        for _ in 0..200 {
            let mut b = [0i16; 64];
            for v in &mut b {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                *v = ((state >> 20) as i16 % 256) - 128;
            }
            assert!(roundtrip_error(&b) <= 2);
        }
    }

    #[test]
    fn linearity() {
        let mut a = [0i16; 64];
        a[9] = 50;
        let mut b = a;
        b[9] = 100;
        fdct8_scalar(&mut a);
        fdct8_scalar(&mut b);
        for i in 0..64 {
            let twice = i32::from(a[i]) * 2;
            assert!((twice - i32::from(b[i])).abs() <= 2, "coef {i}");
        }
    }

    #[test]
    fn horizontal_cosine_concentrates_in_first_row() {
        // A pure horizontal frequency should produce energy only in row 0.
        let mut b = [0i16; 64];
        for y in 0..8 {
            for x in 0..8 {
                // cos((2x+1)*2*pi/16) pattern ~ u=2 basis
                let v = (f64::cos((2.0 * x as f64 + 1.0) * 2.0 * std::f64::consts::PI / 16.0)
                    * 100.0) as i16;
                b[y * 8 + x] = v;
            }
        }
        fdct8_scalar(&mut b);
        let target = i32::from(b[2]).abs(); // coefficient (u=2, v=0)
        for y in 1..8 {
            for x in 0..8 {
                assert!(
                    i32::from(b[y * 8 + x]).abs() <= target / 8 + 3,
                    "leak at ({x},{y}) = {}",
                    b[y * 8 + x]
                );
            }
        }
        assert!(target > 300);
    }
}
