//! AVX2 implementations of the hot kernels (256-bit registers).
//!
//! Bit-exact with the scalar and SSE2 tiers (asserted by the property
//! tests in `tests/simd_equivalence.rs`), so streams encoded at any tier
//! decode identically at every other — the Figure-1 harness reuses one
//! set of bitstreams across all three variants.
//!
//! Unlike SSE2, AVX2 is **not** part of the x86-64 baseline: every
//! kernel here carries a runtime precondition, discharged once in
//! `Dsp::new` (the AVX2 table is only selected after
//! `is_x86_feature_detected!("avx2")` succeeds).

#![allow(unsafe_code)]

use crate::dispatch::KernelTable;
use crate::quant::QuantMatrix;
use crate::Block8;
use std::arch::x86_64::*;

// ------------------------------------------------------------- helpers --

/// Loads 16 u8 and widens to 16 i16 lanes.
///
/// # Safety
/// Requires AVX2 and 16 readable bytes at `p`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn load16_epi16(p: *const u8) -> __m256i {
    _mm256_cvtepu8_epi16(_mm_loadu_si128(p as *const __m128i))
}

/// Packs 16 i16 lanes to 16 u8 (unsigned saturation) and stores them in
/// lane order at `p`.
///
/// # Safety
/// Requires AVX2 and 16 writable bytes at `p`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn store16_u8(p: *mut u8, v: __m256i) {
    let packed = _mm256_packus_epi16(v, v);
    // Per-lane pack duplicates each half; pick qwords 0 and 2 to restore
    // lane order.
    let fixed = _mm256_permute4x64_epi64::<0x08>(packed);
    _mm_storeu_si128(p as *mut __m128i, _mm256_castsi256_si128(fixed));
}

/// Loads rows `y` and `y+1` (16 bytes each) into the two 128-bit lanes.
///
/// # Safety
/// Requires AVX2 and 16 readable bytes at both row offsets.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn load_2rows_16(p: &[u8], stride: usize, y: usize) -> __m256i {
    let r0 = _mm_loadu_si128(p.as_ptr().add(y * stride) as *const __m128i);
    let r1 = _mm_loadu_si128(p.as_ptr().add((y + 1) * stride) as *const __m128i);
    _mm256_inserti128_si256::<1>(_mm256_castsi128_si256(r0), r1)
}

/// Horizontal sum of four i32 lanes.
///
/// # Safety
/// Requires SSE2.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hsum_epi32(v: __m128i) -> u32 {
    let s1 = _mm_add_epi32(v, _mm_shuffle_epi32(v, 0b0100_1110));
    let s2 = _mm_add_epi32(s1, _mm_shuffle_epi32(s1, 0b1011_0001));
    _mm_cvtsi128_si32(s2) as u32
}

/// Reduces a `_mm256_sad_epu8` accumulator (four u64 lanes) to u32.
///
/// # Safety
/// Requires AVX2.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn reduce_sad_acc(acc: __m256i) -> u32 {
    let s = _mm_add_epi64(
        _mm256_castsi256_si128(acc),
        _mm256_extracti128_si256::<1>(acc),
    );
    let s = _mm_add_epi64(s, _mm_shuffle_epi32(s, 0b0100_1110));
    _mm_cvtsi128_si32(s) as u32
}

// ---------------------------------------------------------------- SAD --

/// # Safety
/// Requires AVX2; `w % 8 == 0` and slices covering the block geometry.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn sad_avx2(
    a: &[u8],
    a_stride: usize,
    b: &[u8],
    b_stride: usize,
    w: usize,
    h: usize,
) -> u32 {
    debug_assert!(w.is_multiple_of(8));
    debug_assert!(h == 0 || a.len() >= (h - 1) * a_stride + w);
    debug_assert!(h == 0 || b.len() >= (h - 1) * b_stride + w);
    let mut acc = _mm256_setzero_si256();
    if w == 16 {
        // The dominant macroblock shape: two rows per 256-bit op.
        let mut y = 0;
        while y + 2 <= h {
            let va = load_2rows_16(a, a_stride, y);
            let vb = load_2rows_16(b, b_stride, y);
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(va, vb));
            y += 2;
        }
        if y < h {
            let va = _mm_loadu_si128(a.as_ptr().add(y * a_stride) as *const __m128i);
            let vb = _mm_loadu_si128(b.as_ptr().add(y * b_stride) as *const __m128i);
            acc = _mm256_add_epi64(acc, _mm256_zextsi128_si256(_mm_sad_epu8(va, vb)));
        }
    } else {
        for y in 0..h {
            let ra = a.as_ptr().add(y * a_stride);
            let rb = b.as_ptr().add(y * b_stride);
            let mut x = 0;
            while x + 32 <= w {
                let va = _mm256_loadu_si256(ra.add(x) as *const __m256i);
                let vb = _mm256_loadu_si256(rb.add(x) as *const __m256i);
                acc = _mm256_add_epi64(acc, _mm256_sad_epu8(va, vb));
                x += 32;
            }
            while x + 16 <= w {
                let va = _mm_loadu_si128(ra.add(x) as *const __m128i);
                let vb = _mm_loadu_si128(rb.add(x) as *const __m128i);
                acc = _mm256_add_epi64(acc, _mm256_zextsi128_si256(_mm_sad_epu8(va, vb)));
                x += 16;
            }
            while x + 8 <= w {
                let va = _mm_loadl_epi64(ra.add(x) as *const __m128i);
                let vb = _mm_loadl_epi64(rb.add(x) as *const __m128i);
                acc = _mm256_add_epi64(acc, _mm256_zextsi128_si256(_mm_sad_epu8(va, vb)));
                x += 8;
            }
        }
    }
    reduce_sad_acc(acc)
}

// --------------------------------------------------------------- SATD --

/// 256-bit variant of the SSE2 `hstage`: the shuffles operate within
/// each 128-bit lane, so two tiles transform independently side by side.
///
/// # Safety
/// Requires AVX2.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hstage256(v: __m256i, dist1: bool) -> __m256i {
    let (shuffled, mask) = if dist1 {
        let s = _mm256_shufflehi_epi16::<0b10_11_00_01>(_mm256_shufflelo_epi16::<0b10_11_00_01>(v));
        let m = _mm256_set_epi16(-1, 0, -1, 0, -1, 0, -1, 0, -1, 0, -1, 0, -1, 0, -1, 0);
        (s, m)
    } else {
        let s = _mm256_shufflehi_epi16::<0b01_00_11_10>(_mm256_shufflelo_epi16::<0b01_00_11_10>(v));
        let m = _mm256_set_epi16(-1, -1, 0, 0, -1, -1, 0, 0, -1, -1, 0, 0, -1, -1, 0, 0);
        (s, m)
    };
    let sum = _mm256_add_epi16(v, shuffled);
    let diff = _mm256_sub_epi16(v, shuffled);
    _mm256_or_si256(_mm256_andnot_si256(mask, sum), _mm256_and_si256(mask, diff))
}

/// Loads rows `y`/`y+1` of two horizontally adjacent 4×4 tiles: lane 0
/// gets tile 0 `[row y | row y+1]`, lane 1 tile 1.
///
/// # Safety
/// Requires AVX2 and 8 readable bytes at both row offsets.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn load_row_pair_x2(p: &[u8], stride: usize, y: usize) -> __m256i {
    let zero = _mm_setzero_si128();
    let r0 = _mm_loadl_epi64(p.as_ptr().add(y * stride) as *const __m128i);
    let r1 = _mm_loadl_epi64(p.as_ptr().add((y + 1) * stride) as *const __m128i);
    let w0 = _mm_unpacklo_epi8(r0, zero);
    let w1 = _mm_unpacklo_epi8(r1, zero);
    let lane0 = _mm_unpacklo_epi64(w0, w1);
    let lane1 = _mm_unpackhi_epi64(w0, w1);
    _mm256_inserti128_si256::<1>(_mm256_castsi128_si256(lane0), lane1)
}

/// SATD of two horizontally adjacent 4×4 tiles, one per 128-bit lane.
/// Each tile's sum is normalised (`/ 2`) separately, matching the
/// scalar per-tile accumulation exactly.
///
/// # Safety
/// Requires AVX2 and 4 rows of 8 readable bytes at each offset.
#[target_feature(enable = "avx2")]
unsafe fn satd4x4_pair(a: &[u8], a_stride: usize, b: &[u8], b_stride: usize) -> u32 {
    let a01 = load_row_pair_x2(a, a_stride, 0);
    let a23 = load_row_pair_x2(a, a_stride, 2);
    let b01 = load_row_pair_x2(b, b_stride, 0);
    let b23 = load_row_pair_x2(b, b_stride, 2);
    let d01 = _mm256_sub_epi16(a01, b01);
    let d23 = _mm256_sub_epi16(a23, b23);

    let t0 = _mm256_add_epi16(d01, d23);
    let t1 = _mm256_sub_epi16(d01, d23);
    let u0 = _mm256_unpacklo_epi64(t0, t1);
    let u1 = _mm256_unpackhi_epi64(t0, t1);
    let m0 = _mm256_add_epi16(u0, u1);
    let m1 = _mm256_sub_epi16(u0, u1);

    let h0 = hstage256(hstage256(m0, false), true);
    let h1 = hstage256(hstage256(m1, false), true);

    let ones = _mm256_set1_epi16(1);
    let sum = _mm256_add_epi32(
        _mm256_madd_epi16(_mm256_abs_epi16(h0), ones),
        _mm256_madd_epi16(_mm256_abs_epi16(h1), ones),
    );
    hsum_epi32(_mm256_castsi256_si128(sum)) / 2 + hsum_epi32(_mm256_extracti128_si256::<1>(sum)) / 2
}

/// # Safety
/// Requires AVX2 and block geometry within the slices; `w`, `h`
/// multiples of 4.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn satd_avx2(
    a: &[u8],
    a_stride: usize,
    b: &[u8],
    b_stride: usize,
    w: usize,
    h: usize,
) -> u32 {
    debug_assert!(w.is_multiple_of(4) && h.is_multiple_of(4));
    debug_assert!(h == 0 || a.len() >= (h - 1) * a_stride + w);
    debug_assert!(h == 0 || b.len() >= (h - 1) * b_stride + w);
    let w_pair = w & !7;
    let mut sum = 0u32;
    let mut y = 0;
    while y < h {
        let mut x = 0;
        while x + 8 <= w {
            sum += satd4x4_pair(
                &a[y * a_stride + x..],
                a_stride,
                &b[y * b_stride + x..],
                b_stride,
            );
            x += 8;
        }
        y += 4;
    }
    if w_pair < w {
        // Odd trailing 4-wide column: one tile at a time via SSE2.
        sum += crate::sse2::satd_sse2(
            &a[w_pair..],
            a_stride,
            &b[w_pair..],
            b_stride,
            w - w_pair,
            h,
        );
    }
    sum
}

// ----------------------------------------------------------------- SSD --

/// # Safety
/// Requires AVX2; `w % 8 == 0`. Per-row sums fit i32 (`w * 255² < 2^31`
/// for any `w ≤ 16384`).
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn ssd_avx2(
    a: &[u8],
    a_stride: usize,
    b: &[u8],
    b_stride: usize,
    w: usize,
    h: usize,
) -> u64 {
    debug_assert!(w.is_multiple_of(8));
    debug_assert!(h == 0 || a.len() >= (h - 1) * a_stride + w);
    debug_assert!(h == 0 || b.len() >= (h - 1) * b_stride + w);
    let zero = _mm256_setzero_si256();
    let mut total = 0u64;
    for y in 0..h {
        let ra = a.as_ptr().add(y * a_stride);
        let rb = b.as_ptr().add(y * b_stride);
        let mut acc = _mm256_setzero_si256();
        let mut x = 0;
        while x + 32 <= w {
            let va = _mm256_loadu_si256(ra.add(x) as *const __m256i);
            let vb = _mm256_loadu_si256(rb.add(x) as *const __m256i);
            // Lane interleaving scrambles element order, which a sum
            // does not care about.
            let d_lo = _mm256_sub_epi16(
                _mm256_unpacklo_epi8(va, zero),
                _mm256_unpacklo_epi8(vb, zero),
            );
            let d_hi = _mm256_sub_epi16(
                _mm256_unpackhi_epi8(va, zero),
                _mm256_unpackhi_epi8(vb, zero),
            );
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d_lo, d_lo));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d_hi, d_hi));
            x += 32;
        }
        while x + 16 <= w {
            let d = _mm256_sub_epi16(load16_epi16(ra.add(x)), load16_epi16(rb.add(x)));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d, d));
            x += 16;
        }
        while x + 8 <= w {
            let z = _mm_setzero_si128();
            let va = _mm_loadl_epi64(ra.add(x) as *const __m128i);
            let vb = _mm_loadl_epi64(rb.add(x) as *const __m128i);
            let d = _mm_sub_epi16(_mm_unpacklo_epi8(va, z), _mm_unpacklo_epi8(vb, z));
            acc = _mm256_add_epi32(acc, _mm256_zextsi128_si256(_mm_madd_epi16(d, d)));
            x += 8;
        }
        let row = hsum_epi32(_mm_add_epi32(
            _mm256_castsi256_si128(acc),
            _mm256_extracti128_si256::<1>(acc),
        ));
        total += u64::from(row);
    }
    total
}

// ---------------------------------------------------------- copy/avg --

/// # Safety
/// Requires AVX2 and slices covering the block geometry (any width).
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn copy_block_avx2(
    dst: &mut [u8],
    dst_stride: usize,
    src: &[u8],
    src_stride: usize,
    w: usize,
    h: usize,
) {
    debug_assert!(h == 0 || dst.len() >= (h - 1) * dst_stride + w);
    debug_assert!(h == 0 || src.len() >= (h - 1) * src_stride + w);
    // Classify the width once per call, not once per row: a single loop
    // form per class lets the row loop compile to bare load/store pairs
    // instead of re-testing every tail size on every row.
    if w.is_multiple_of(32) {
        let mut s = src.as_ptr();
        let mut d = dst.as_mut_ptr();
        for _ in 0..h {
            let mut x = 0;
            while x < w {
                _mm256_storeu_si256(
                    d.add(x) as *mut __m256i,
                    _mm256_loadu_si256(s.add(x) as *const __m256i),
                );
                x += 32;
            }
            s = s.add(src_stride);
            d = d.add(dst_stride);
        }
    } else if w.is_multiple_of(16) {
        let mut s = src.as_ptr();
        let mut d = dst.as_mut_ptr();
        for _ in 0..h {
            let mut x = 0;
            while x < w {
                _mm_storeu_si128(
                    d.add(x) as *mut __m128i,
                    _mm_loadu_si128(s.add(x) as *const __m128i),
                );
                x += 16;
            }
            s = s.add(src_stride);
            d = d.add(dst_stride);
        }
    } else if w == 8 {
        let mut s = src.as_ptr();
        let mut d = dst.as_mut_ptr();
        for _ in 0..h {
            _mm_storel_epi64(d as *mut __m128i, _mm_loadl_epi64(s as *const __m128i));
            s = s.add(src_stride);
            d = d.add(dst_stride);
        }
    } else {
        crate::pixel::copy_block(dst, dst_stride, src, src_stride, w, h);
    }
}

/// # Safety
/// Requires AVX2; `w % 8 == 0` and slices covering the block geometry.
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn avg_block_avx2(
    dst: &mut [u8],
    dst_stride: usize,
    a: &[u8],
    a_stride: usize,
    b: &[u8],
    b_stride: usize,
    w: usize,
    h: usize,
) {
    debug_assert!(w.is_multiple_of(8));
    debug_assert!(h == 0 || dst.len() >= (h - 1) * dst_stride + w);
    debug_assert!(h == 0 || a.len() >= (h - 1) * a_stride + w);
    debug_assert!(h == 0 || b.len() >= (h - 1) * b_stride + w);
    for y in 0..h {
        let ra = a.as_ptr().add(y * a_stride);
        let rb = b.as_ptr().add(y * b_stride);
        let rd = dst.as_mut_ptr().add(y * dst_stride);
        let mut x = 0;
        while x + 32 <= w {
            let va = _mm256_loadu_si256(ra.add(x) as *const __m256i);
            let vb = _mm256_loadu_si256(rb.add(x) as *const __m256i);
            _mm256_storeu_si256(rd.add(x) as *mut __m256i, _mm256_avg_epu8(va, vb));
            x += 32;
        }
        while x + 16 <= w {
            let va = _mm_loadu_si128(ra.add(x) as *const __m128i);
            let vb = _mm_loadu_si128(rb.add(x) as *const __m128i);
            _mm_storeu_si128(rd.add(x) as *mut __m128i, _mm_avg_epu8(va, vb));
            x += 16;
        }
        while x + 8 <= w {
            let va = _mm_loadl_epi64(ra.add(x) as *const __m128i);
            let vb = _mm_loadl_epi64(rb.add(x) as *const __m128i);
            _mm_storel_epi64(rd.add(x) as *mut __m128i, _mm_avg_epu8(va, vb));
            x += 8;
        }
    }
}

// ------------------------------------------------------- interpolation --

/// # Safety
/// Requires AVX2; `w % 8 == 0`; source readable one row/column beyond
/// the block for the interpolated positions.
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn hpel_interp_avx2(
    dst: &mut [u8],
    dst_stride: usize,
    src: &[u8],
    src_stride: usize,
    fx: u8,
    fy: u8,
    w: usize,
    h: usize,
) {
    debug_assert!(fx <= 1 && fy <= 1);
    debug_assert!(w.is_multiple_of(8));
    debug_assert!(h == 0 || dst.len() >= (h - 1) * dst_stride + w);
    debug_assert!(
        h == 0 || src.len() >= (h - 1 + usize::from(fy)) * src_stride + w + usize::from(fx)
    );
    match (fx, fy) {
        (0, 0) => copy_block_avx2(dst, dst_stride, src, src_stride, w, h),
        (1, 0) => avg_block_avx2(
            dst,
            dst_stride,
            src,
            src_stride,
            &src[1..],
            src_stride,
            w,
            h,
        ),
        (0, 1) => avg_block_avx2(
            dst,
            dst_stride,
            src,
            src_stride,
            &src[src_stride..],
            src_stride,
            w,
            h,
        ),
        _ => {
            let two256 = _mm256_set1_epi16(2);
            let two128 = _mm_set1_epi16(2);
            let zero = _mm_setzero_si128();
            for y in 0..h {
                let mut x = 0;
                while x + 16 <= w {
                    let i = y * src_stride + x;
                    let a = load16_epi16(src.as_ptr().add(i));
                    let b = load16_epi16(src.as_ptr().add(i + 1));
                    let c = load16_epi16(src.as_ptr().add(i + src_stride));
                    let d = load16_epi16(src.as_ptr().add(i + src_stride + 1));
                    let sum = _mm256_add_epi16(_mm256_add_epi16(a, b), _mm256_add_epi16(c, d));
                    let avg = _mm256_srli_epi16::<2>(_mm256_add_epi16(sum, two256));
                    store16_u8(dst.as_mut_ptr().add(y * dst_stride + x), avg);
                    x += 16;
                }
                while x + 8 <= w {
                    let i = y * src_stride + x;
                    let a = _mm_unpacklo_epi8(
                        _mm_loadl_epi64(src.as_ptr().add(i) as *const __m128i),
                        zero,
                    );
                    let b = _mm_unpacklo_epi8(
                        _mm_loadl_epi64(src.as_ptr().add(i + 1) as *const __m128i),
                        zero,
                    );
                    let c = _mm_unpacklo_epi8(
                        _mm_loadl_epi64(src.as_ptr().add(i + src_stride) as *const __m128i),
                        zero,
                    );
                    let d = _mm_unpacklo_epi8(
                        _mm_loadl_epi64(src.as_ptr().add(i + src_stride + 1) as *const __m128i),
                        zero,
                    );
                    let sum = _mm_add_epi16(_mm_add_epi16(a, b), _mm_add_epi16(c, d));
                    let avg = _mm_srli_epi16(_mm_add_epi16(sum, two128), 2);
                    _mm_storel_epi64(
                        dst.as_mut_ptr().add(y * dst_stride + x) as *mut __m128i,
                        _mm_packus_epi16(avg, avg),
                    );
                    x += 8;
                }
            }
        }
    }
}

/// 16-lane 6-tap combiner at i16 precision (all intermediates fit).
///
/// # Safety
/// Requires AVX2.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn sixtap256_epi16(
    m2: __m256i,
    m1: __m256i,
    z0: __m256i,
    p1: __m256i,
    p2: __m256i,
    p3: __m256i,
) -> __m256i {
    let twenty = _mm256_set1_epi16(20);
    let five = _mm256_set1_epi16(5);
    let center = _mm256_mullo_epi16(_mm256_add_epi16(z0, p1), twenty);
    let near = _mm256_mullo_epi16(_mm256_add_epi16(m1, p2), five);
    let far = _mm256_add_epi16(m2, p3);
    _mm256_add_epi16(_mm256_sub_epi16(center, near), far)
}

/// # Safety
/// Requires AVX2; `w % 8 == 0`; each row must have `w + 5` readable
/// samples.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn sixtap_h_avx2(
    dst: &mut [u8],
    dst_stride: usize,
    src: &[u8],
    src_stride: usize,
    w: usize,
    h: usize,
) {
    debug_assert!(w.is_multiple_of(8));
    debug_assert!(h == 0 || dst.len() >= (h - 1) * dst_stride + w);
    debug_assert!(h == 0 || src.len() >= (h - 1) * src_stride + w + 5);
    let w16 = w & !15;
    let sixteen = _mm256_set1_epi16(16);
    for y in 0..h {
        let mut x = 0;
        while x + 16 <= w {
            let base = src.as_ptr().add(y * src_stride + x);
            let v = sixtap256_epi16(
                load16_epi16(base),
                load16_epi16(base.add(1)),
                load16_epi16(base.add(2)),
                load16_epi16(base.add(3)),
                load16_epi16(base.add(4)),
                load16_epi16(base.add(5)),
            );
            let rounded = _mm256_srai_epi16::<5>(_mm256_add_epi16(v, sixteen));
            store16_u8(dst.as_mut_ptr().add(y * dst_stride + x), rounded);
            x += 16;
        }
    }
    if w16 < w {
        crate::sse2::sixtap_h_sse2(
            &mut dst[w16..],
            dst_stride,
            &src[w16..],
            src_stride,
            w - w16,
            h,
        );
    }
}

/// # Safety
/// Requires AVX2; `w % 8 == 0`; `h + 5` rows must be readable.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn sixtap_v_avx2(
    dst: &mut [u8],
    dst_stride: usize,
    src: &[u8],
    src_stride: usize,
    w: usize,
    h: usize,
) {
    debug_assert!(w.is_multiple_of(8));
    debug_assert!(h == 0 || dst.len() >= (h - 1) * dst_stride + w);
    debug_assert!(h == 0 || src.len() >= (h + 4) * src_stride + w);
    let w16 = w & !15;
    let sixteen = _mm256_set1_epi16(16);
    for y in 0..h {
        let mut x = 0;
        while x + 16 <= w {
            let base = src.as_ptr().add(y * src_stride + x);
            let v = sixtap256_epi16(
                load16_epi16(base),
                load16_epi16(base.add(src_stride)),
                load16_epi16(base.add(2 * src_stride)),
                load16_epi16(base.add(3 * src_stride)),
                load16_epi16(base.add(4 * src_stride)),
                load16_epi16(base.add(5 * src_stride)),
            );
            let rounded = _mm256_srai_epi16::<5>(_mm256_add_epi16(v, sixteen));
            store16_u8(dst.as_mut_ptr().add(y * dst_stride + x), rounded);
            x += 16;
        }
    }
    if w16 < w {
        crate::sse2::sixtap_v_sse2(
            &mut dst[w16..],
            dst_stride,
            &src[w16..],
            src_stride,
            w - w16,
            h,
        );
    }
}

/// Combined 6-tap, 16 columns per op; same exact scheme as the SSE2
/// kernel (unrounded i16 horizontal pass, madd vertical pass).
///
/// # Safety
/// Requires AVX2; `w % 8 == 0`, `w ≤ 16`, `h ≤ 16`; `src` must cover
/// `h + 5` rows of `w + 5` samples.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn sixtap_hv_avx2(
    dst: &mut [u8],
    dst_stride: usize,
    src: &[u8],
    src_stride: usize,
    w: usize,
    h: usize,
) {
    debug_assert!(w.is_multiple_of(8) && w <= 16 && h <= 16);
    if w != 16 {
        crate::sse2::sixtap_hv_sse2(dst, dst_stride, src, src_stride, w, h);
        return;
    }
    debug_assert!(h == 0 || dst.len() >= (h - 1) * dst_stride + w);
    debug_assert!(src.len() >= (h + 4) * src_stride + w + 5);
    let mut tmp = [0i16; 16 * 21];
    let tmp_h = h + 5;
    for ty in 0..tmp_h {
        let base = src.as_ptr().add(ty * src_stride);
        let v = sixtap256_epi16(
            load16_epi16(base),
            load16_epi16(base.add(1)),
            load16_epi16(base.add(2)),
            load16_epi16(base.add(3)),
            load16_epi16(base.add(4)),
            load16_epi16(base.add(5)),
        );
        _mm256_storeu_si256(tmp.as_mut_ptr().add(ty * 16) as *mut __m256i, v);
    }
    let c01 = _mm256_set1_epi32(pack_taps(1, -5));
    let c23 = _mm256_set1_epi32(pack_taps(20, 20));
    let c45 = _mm256_set1_epi32(pack_taps(-5, 1));
    let round = _mm256_set1_epi32(512);
    for y in 0..h {
        let base = tmp.as_ptr().add(y * 16);
        let r0 = _mm256_loadu_si256(base as *const __m256i);
        let r1 = _mm256_loadu_si256(base.add(16) as *const __m256i);
        let r2 = _mm256_loadu_si256(base.add(32) as *const __m256i);
        let r3 = _mm256_loadu_si256(base.add(48) as *const __m256i);
        let r4 = _mm256_loadu_si256(base.add(64) as *const __m256i);
        let r5 = _mm256_loadu_si256(base.add(80) as *const __m256i);
        let acc_lo = _mm256_add_epi32(
            _mm256_add_epi32(
                _mm256_madd_epi16(_mm256_unpacklo_epi16(r0, r1), c01),
                _mm256_madd_epi16(_mm256_unpacklo_epi16(r2, r3), c23),
            ),
            _mm256_add_epi32(_mm256_madd_epi16(_mm256_unpacklo_epi16(r4, r5), c45), round),
        );
        let acc_hi = _mm256_add_epi32(
            _mm256_add_epi32(
                _mm256_madd_epi16(_mm256_unpackhi_epi16(r0, r1), c01),
                _mm256_madd_epi16(_mm256_unpackhi_epi16(r2, r3), c23),
            ),
            _mm256_add_epi32(_mm256_madd_epi16(_mm256_unpackhi_epi16(r4, r5), c45), round),
        );
        let res = _mm256_packs_epi32(
            _mm256_srai_epi32::<10>(acc_lo),
            _mm256_srai_epi32::<10>(acc_hi),
        );
        store16_u8(dst.as_mut_ptr().add(y * dst_stride), res);
    }
}

const fn pack_taps(even: i16, odd: i16) -> i32 {
    ((odd as u16 as i32) << 16) | (even as u16 as i32)
}

// ------------------------------------------------------ residual 8×8 --

/// # Safety
/// Requires AVX2; standard 8×8 block bounds.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn add_residual8_avx2(
    dst: &mut [u8],
    dst_stride: usize,
    pred: &[u8],
    pred_stride: usize,
    res: &Block8,
) {
    debug_assert!(dst.len() >= 7 * dst_stride + 8);
    debug_assert!(pred.len() >= 7 * pred_stride + 8);
    for y in [0usize, 2, 4, 6] {
        let p2 = _mm_unpacklo_epi64(
            _mm_loadl_epi64(pred.as_ptr().add(y * pred_stride) as *const __m128i),
            _mm_loadl_epi64(pred.as_ptr().add((y + 1) * pred_stride) as *const __m128i),
        );
        let p = _mm256_cvtepu8_epi16(p2);
        let r = _mm256_loadu_si256(res.as_ptr().add(y * 8) as *const __m256i);
        let sum = _mm256_adds_epi16(p, r);
        let packed = _mm256_packus_epi16(sum, sum);
        _mm_storel_epi64(
            dst.as_mut_ptr().add(y * dst_stride) as *mut __m128i,
            _mm256_castsi256_si128(packed),
        );
        _mm_storel_epi64(
            dst.as_mut_ptr().add((y + 1) * dst_stride) as *mut __m128i,
            _mm256_extracti128_si256::<1>(packed),
        );
    }
}

/// # Safety
/// Requires AVX2; standard 8×8 block bounds.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn diff_block8_avx2(
    res: &mut Block8,
    cur: &[u8],
    cur_stride: usize,
    pred: &[u8],
    pred_stride: usize,
) {
    debug_assert!(cur.len() >= 7 * cur_stride + 8);
    debug_assert!(pred.len() >= 7 * pred_stride + 8);
    for y in [0usize, 2, 4, 6] {
        let c2 = _mm_unpacklo_epi64(
            _mm_loadl_epi64(cur.as_ptr().add(y * cur_stride) as *const __m128i),
            _mm_loadl_epi64(cur.as_ptr().add((y + 1) * cur_stride) as *const __m128i),
        );
        let p2 = _mm_unpacklo_epi64(
            _mm_loadl_epi64(pred.as_ptr().add(y * pred_stride) as *const __m128i),
            _mm_loadl_epi64(pred.as_ptr().add((y + 1) * pred_stride) as *const __m128i),
        );
        _mm256_storeu_si256(
            res.as_mut_ptr().add(y * 8) as *mut __m256i,
            _mm256_sub_epi16(_mm256_cvtepu8_epi16(c2), _mm256_cvtepu8_epi16(p2)),
        );
    }
}

// -------------------------------------------------------- quantisation --

/// Exact `trunc(num / den)` for eight non-negative i32 lanes via
/// double-precision division (see the SSE2 kernel for the exactness
/// argument — it holds for all i32 operands).
///
/// # Safety
/// Requires AVX2.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn div_trunc_epi32_256(num: __m256i, den: __m256i) -> __m256i {
    let n_lo = _mm256_cvtepi32_pd(_mm256_castsi256_si128(num));
    let n_hi = _mm256_cvtepi32_pd(_mm256_extracti128_si256::<1>(num));
    let d_lo = _mm256_cvtepi32_pd(_mm256_castsi256_si128(den));
    let d_hi = _mm256_cvtepi32_pd(_mm256_extracti128_si256::<1>(den));
    let q_lo = _mm256_cvttpd_epi32(_mm256_div_pd(n_lo, d_lo));
    let q_hi = _mm256_cvttpd_epi32(_mm256_div_pd(n_hi, d_hi));
    _mm256_inserti128_si256::<1>(_mm256_castsi128_si256(q_lo), q_hi)
}

/// Forward quantiser, bit-exact with `quant8_scalar`.
///
/// # Safety
/// Requires AVX2; `matrix[i] * qscale` must fit i16 (MPEG ranges).
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn quant8_avx2(
    block: &mut Block8,
    matrix: &QuantMatrix,
    qscale: u16,
    intra: bool,
) -> u32 {
    debug_assert!(qscale >= 1);
    let qv = _mm256_set1_epi32(i32::from(qscale));
    let max_level = _mm256_set1_epi32(2047);
    let saved_dc = block[0];
    let mut nonzero = 0u32;
    for chunk in 0..8 {
        let v = _mm_loadu_si128(block.as_ptr().add(chunk * 8) as *const __m128i);
        let c = _mm256_cvtepi16_epi32(v);
        let m = _mm256_cvtepu16_epi32(_mm_loadu_si128(
            matrix.as_ptr().add(chunk * 8) as *const __m128i
        ));
        let div = _mm256_mullo_epi32(m, qv);
        let abs = _mm256_abs_epi32(c);
        let (num, den) = if intra {
            (
                _mm256_add_epi32(_mm256_slli_epi32::<5>(abs), div),
                _mm256_slli_epi32::<1>(div),
            )
        } else {
            (_mm256_slli_epi32::<4>(abs), div)
        };
        let q = _mm256_min_epi32(div_trunc_epi32_256(num, den), max_level);
        // sign(q, c): q where c > 0, -q where c < 0, 0 where c == 0
        // (the quotient is 0 for c == 0 anyway).
        let r = _mm256_sign_epi32(q, c);
        let packed = _mm_packs_epi32(_mm256_castsi256_si128(r), _mm256_extracti128_si256::<1>(r));
        _mm_storeu_si128(block.as_mut_ptr().add(chunk * 8) as *mut __m128i, packed);
        let zmask = _mm_movemask_epi8(_mm_cmpeq_epi16(packed, _mm_setzero_si128())) as u32;
        nonzero += 8 - zmask.count_ones() / 2;
    }
    if intra {
        if block[0] != 0 {
            nonzero -= 1;
        }
        block[0] = saved_dc;
        if saved_dc != 0 {
            nonzero += 1;
        }
    }
    nonzero
}

/// Inverse quantiser; 16 coefficients per iteration, same magnitude
/// scheme as the SSE2 kernel.
///
/// # Safety
/// Requires AVX2.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn dequant8_avx2(
    block: &mut Block8,
    matrix: &QuantMatrix,
    qscale: u16,
    intra: bool,
) {
    let zero = _mm256_setzero_si256();
    let lo_clamp = _mm256_set1_epi32(-4096);
    let hi_clamp = _mm256_set1_epi32(4095);
    let saved_dc = block[0];
    let qv = _mm256_set1_epi16(qscale as i16);
    let shift = _mm_cvtsi32_si128(if intra { 4 } else { 5 });
    for chunk in 0..4 {
        let v = _mm256_loadu_si256(block.as_ptr().add(chunk * 16) as *const __m256i);
        let mrow = _mm256_loadu_si256(matrix.as_ptr().add(chunk * 16) as *const __m256i);
        let mq = _mm256_mullo_epi16(mrow, qv);

        let neg_mask = _mm256_cmpgt_epi16(zero, v);
        let abs = _mm256_abs_epi16(v);
        let nz_mask = _mm256_cmpeq_epi16(v, zero);
        let operand = if intra {
            abs
        } else {
            let two_plus = _mm256_add_epi16(_mm256_add_epi16(abs, abs), _mm256_set1_epi16(1));
            _mm256_andnot_si256(nz_mask, two_plus)
        };
        let op_lo = _mm256_unpacklo_epi16(operand, zero);
        let op_hi = _mm256_unpackhi_epi16(operand, zero);
        let mq_lo = _mm256_unpacklo_epi16(mq, zero);
        let mq_hi = _mm256_unpackhi_epi16(mq, zero);
        let prod_lo = _mm256_madd_epi16(op_lo, mq_lo);
        let prod_hi = _mm256_madd_epi16(op_hi, mq_hi);
        let res_lo = _mm256_max_epi32(
            lo_clamp,
            _mm256_min_epi32(hi_clamp, _mm256_srl_epi32(prod_lo, shift)),
        );
        let res_hi = _mm256_max_epi32(
            lo_clamp,
            _mm256_min_epi32(hi_clamp, _mm256_srl_epi32(prod_hi, shift)),
        );
        let packed = _mm256_packs_epi32(res_lo, res_hi);
        let signed = _mm256_sub_epi16(_mm256_xor_si256(packed, neg_mask), neg_mask);
        _mm256_storeu_si256(block.as_mut_ptr().add(chunk * 16) as *mut __m256i, signed);
    }
    if intra {
        block[0] = saved_dc;
    }
}

// ------------------------------------------------------------ deblock --

/// Horizontal-edge deblock, 16 samples per op; SSE2/scalar tail.
///
/// # Safety
/// Requires AVX2 and a slice covering rows q0-2..=q0+1 over `width`
/// samples.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn deblock_horiz_edge_avx2(
    data: &mut [u8],
    stride: usize,
    q0_off: usize,
    width: usize,
    alpha: i32,
    beta: i32,
    tc: i32,
) {
    debug_assert!(q0_off >= 2 * stride);
    debug_assert!(width == 0 || data.len() >= q0_off + stride + width);
    let valpha = _mm256_set1_epi16(alpha as i16);
    let vbeta = _mm256_set1_epi16(beta as i16);
    let vtc = _mm256_set1_epi16(tc as i16);
    let vntc = _mm256_set1_epi16(-tc as i16);
    let four = _mm256_set1_epi16(4);
    let mut x = 0;
    while x + 16 <= width {
        let i = q0_off + x;
        let p1 = load16_epi16(data.as_ptr().add(i - 2 * stride));
        let p0 = load16_epi16(data.as_ptr().add(i - stride));
        let q0 = load16_epi16(data.as_ptr().add(i));
        let q1 = load16_epi16(data.as_ptr().add(i + stride));
        let cond = _mm256_and_si256(
            _mm256_cmpgt_epi16(valpha, _mm256_abs_epi16(_mm256_sub_epi16(p0, q0))),
            _mm256_and_si256(
                _mm256_cmpgt_epi16(vbeta, _mm256_abs_epi16(_mm256_sub_epi16(p1, p0))),
                _mm256_cmpgt_epi16(vbeta, _mm256_abs_epi16(_mm256_sub_epi16(q1, q0))),
            ),
        );
        let diff4 = _mm256_slli_epi16::<2>(_mm256_sub_epi16(q0, p0));
        let raw = _mm256_srai_epi16::<3>(_mm256_add_epi16(
            _mm256_add_epi16(diff4, _mm256_sub_epi16(p1, q1)),
            four,
        ));
        let delta = _mm256_max_epi16(vntc, _mm256_min_epi16(vtc, raw));
        let masked = _mm256_and_si256(delta, cond);
        store16_u8(
            data.as_mut_ptr().add(i - stride),
            _mm256_add_epi16(p0, masked),
        );
        store16_u8(data.as_mut_ptr().add(i), _mm256_sub_epi16(q0, masked));
        x += 16;
    }
    if x < width {
        crate::sse2::deblock_horiz_edge_sse2(data, stride, q0_off + x, width - x, alpha, beta, tc);
    }
}

// ----------------------------------------------- dispatch-table entries --
//
// Safe, total entry points for the one-time kernel table resolved in
// `Dsp::new`. Width fallbacks mirror the SSE2 entries.
//
// SAFETY (all entries): this table is only reachable through `Dsp::new`,
// which selects it after `is_x86_feature_detected!("avx2")` succeeds;
// the debug assertion re-checks that invariant in debug builds.

#[inline]
fn assert_avx2() {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
}

fn sad_entry(a: &[u8], a_stride: usize, b: &[u8], b_stride: usize, w: usize, h: usize) -> u32 {
    assert_avx2();
    if w.is_multiple_of(8) {
        unsafe { sad_avx2(a, a_stride, b, b_stride, w, h) }
    } else {
        crate::pixel::sad_scalar(a, a_stride, b, b_stride, w, h)
    }
}

fn satd_entry(a: &[u8], a_stride: usize, b: &[u8], b_stride: usize, w: usize, h: usize) -> u32 {
    assert_avx2();
    unsafe { satd_avx2(a, a_stride, b, b_stride, w, h) }
}

fn ssd_entry(a: &[u8], a_stride: usize, b: &[u8], b_stride: usize, w: usize, h: usize) -> u64 {
    assert_avx2();
    if w.is_multiple_of(8) {
        unsafe { ssd_avx2(a, a_stride, b, b_stride, w, h) }
    } else {
        crate::pixel::ssd_scalar(a, a_stride, b, b_stride, w, h)
    }
}

fn fdct8_entry(block: &mut Block8) {
    // The 8×8 DCT stays on the SSE2 kernel: its transpose-heavy data
    // flow gains nothing from 256-bit lanes without a full rewrite.
    unsafe { crate::sse2::fdct8_sse2(block) }
}

fn idct8_entry(block: &mut Block8) {
    unsafe { crate::sse2::idct8_sse2(block) }
}

fn quant8_entry(block: &mut Block8, matrix: &QuantMatrix, qscale: u16, intra: bool) -> u32 {
    assert_avx2();
    unsafe { quant8_avx2(block, matrix, qscale, intra) }
}

fn dequant8_entry(block: &mut Block8, matrix: &QuantMatrix, qscale: u16, intra: bool) {
    assert_avx2();
    unsafe { dequant8_avx2(block, matrix, qscale, intra) }
}

fn copy_block_entry(
    dst: &mut [u8],
    dst_stride: usize,
    src: &[u8],
    src_stride: usize,
    w: usize,
    h: usize,
) {
    assert_avx2();
    unsafe { copy_block_avx2(dst, dst_stride, src, src_stride, w, h) }
}

#[allow(clippy::too_many_arguments)]
fn avg_block_entry(
    dst: &mut [u8],
    dst_stride: usize,
    a: &[u8],
    a_stride: usize,
    b: &[u8],
    b_stride: usize,
    w: usize,
    h: usize,
) {
    assert_avx2();
    if w.is_multiple_of(8) {
        unsafe { avg_block_avx2(dst, dst_stride, a, a_stride, b, b_stride, w, h) }
    } else {
        crate::pixel::avg_block_scalar(dst, dst_stride, a, a_stride, b, b_stride, w, h)
    }
}

#[allow(clippy::too_many_arguments)]
fn hpel_interp_entry(
    dst: &mut [u8],
    dst_stride: usize,
    src: &[u8],
    src_stride: usize,
    fx: u8,
    fy: u8,
    w: usize,
    h: usize,
) {
    assert_avx2();
    if w.is_multiple_of(8) {
        unsafe { hpel_interp_avx2(dst, dst_stride, src, src_stride, fx, fy, w, h) }
    } else {
        crate::interp::hpel_interp_scalar(dst, dst_stride, src, src_stride, fx, fy, w, h)
    }
}

fn sixtap_h_entry(
    dst: &mut [u8],
    dst_stride: usize,
    src: &[u8],
    src_stride: usize,
    w: usize,
    h: usize,
) {
    assert_avx2();
    if w.is_multiple_of(8) {
        unsafe { sixtap_h_avx2(dst, dst_stride, src, src_stride, w, h) }
    } else {
        crate::interp::sixtap_h_scalar(dst, dst_stride, src, src_stride, w, h)
    }
}

fn sixtap_v_entry(
    dst: &mut [u8],
    dst_stride: usize,
    src: &[u8],
    src_stride: usize,
    w: usize,
    h: usize,
) {
    assert_avx2();
    if w.is_multiple_of(8) {
        unsafe { sixtap_v_avx2(dst, dst_stride, src, src_stride, w, h) }
    } else {
        crate::interp::sixtap_v_scalar(dst, dst_stride, src, src_stride, w, h)
    }
}

fn sixtap_hv_entry(
    dst: &mut [u8],
    dst_stride: usize,
    src: &[u8],
    src_stride: usize,
    w: usize,
    h: usize,
) {
    assert_avx2();
    if w.is_multiple_of(8) && w <= 16 && h <= 16 {
        unsafe { sixtap_hv_avx2(dst, dst_stride, src, src_stride, w, h) }
    } else {
        crate::interp::sixtap_hv(dst, dst_stride, src, src_stride, w, h)
    }
}

fn add_residual8_entry(
    dst: &mut [u8],
    dst_stride: usize,
    pred: &[u8],
    pred_stride: usize,
    res: &Block8,
) {
    assert_avx2();
    unsafe { add_residual8_avx2(dst, dst_stride, pred, pred_stride, res) }
}

fn diff_block8_entry(
    res: &mut Block8,
    cur: &[u8],
    cur_stride: usize,
    pred: &[u8],
    pred_stride: usize,
) {
    assert_avx2();
    unsafe { diff_block8_avx2(res, cur, cur_stride, pred, pred_stride) }
}

fn deblock_horiz_edge_entry(
    data: &mut [u8],
    stride: usize,
    q0_off: usize,
    width: usize,
    alpha: i32,
    beta: i32,
    tc: i32,
) {
    assert_avx2();
    unsafe { deblock_horiz_edge_avx2(data, stride, q0_off, width, alpha, beta, tc) }
}

// -------------------------------------------------------------- scale --

/// # Safety
/// Requires AVX2 plus the geometry contract of the scalar kernel: every
/// `offsets[i] + 4 <= src.len()` and `dst`/`taps` sized for `offsets`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn scale_row_h_avx2(dst: &mut [u8], src: &[u8], offsets: &[u32], taps: &[i16]) {
    debug_assert_eq!(offsets.len() * 4, taps.len());
    debug_assert!(dst.len() >= offsets.len());
    let n = offsets.len();
    let round = _mm256_set1_epi32(64);
    let zero = _mm256_setzero_si256();
    let mut i = 0;
    while i + 8 <= n {
        // Eight output pixels, one 4-byte source window each.
        let win = |k: usize| {
            u32::from_le_bytes(src[offsets[i + k] as usize..][..4].try_into().unwrap()) as i32
        };
        let px = _mm256_set_epi32(
            win(7),
            win(6),
            win(5),
            win(4),
            win(3),
            win(2),
            win(1),
            win(0),
        );
        // Per 128-bit lane: lo = windows {0,1 | 4,5}, hi = {2,3 | 6,7}.
        let lo = _mm256_unpacklo_epi8(px, zero);
        let hi = _mm256_unpackhi_epi8(px, zero);
        // taps[4i..4i+32] is 8 windows × 4 coefficients; regroup so the
        // coefficient lanes line up with the unpacked pixel lanes.
        let cl = _mm256_loadu_si256(taps.as_ptr().add(4 * i).cast()); // w0..w3
        let ch = _mm256_loadu_si256(taps.as_ptr().add(4 * i + 16).cast()); // w4..w7
        let c_lo = _mm256_permute2x128_si256::<0x20>(cl, ch); // {w0,w1 | w4,w5}
        let c_hi = _mm256_permute2x128_si256::<0x31>(cl, ch); // {w2,w3 | w6,w7}
        let m0 = _mm256_madd_epi16(lo, c_lo);
        let m1 = _mm256_madd_epi16(hi, c_hi);
        // Fold partial pairs, then gather all eight sums in lane order.
        let s0 = _mm256_add_epi32(m0, _mm256_shuffle_epi32::<0b10_11_00_01>(m0));
        let s1 = _mm256_add_epi32(m1, _mm256_shuffle_epi32::<0b10_11_00_01>(m1));
        let a02 = _mm256_shuffle_epi32::<0b10_00_10_00>(s0);
        let b02 = _mm256_shuffle_epi32::<0b10_00_10_00>(s1);
        let eight = _mm256_unpacklo_epi64(a02, b02); // {p0..p3 | p4..p7}
        let r = _mm256_srai_epi32::<7>(_mm256_add_epi32(eight, round));
        let p16 = _mm256_packs_epi32(r, r);
        let p8 = _mm256_packus_epi16(p16, p16);
        let lo4 = _mm_cvtsi128_si32(_mm256_castsi256_si128(p8)) as u32;
        let hi4 = _mm_cvtsi128_si32(_mm256_extracti128_si256::<1>(p8)) as u32;
        dst[i..i + 4].copy_from_slice(&lo4.to_le_bytes());
        dst[i + 4..i + 8].copy_from_slice(&hi4.to_le_bytes());
        i += 8;
    }
    if i < n {
        crate::scale::scale_row_h_scalar(&mut dst[i..n], src, &offsets[i..], &taps[4 * i..]);
    }
}

/// # Safety
/// Requires AVX2 and rows at least as long as `dst`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn scale_row_v_avx2(
    dst: &mut [u8],
    r0: &[u8],
    r1: &[u8],
    r2: &[u8],
    r3: &[u8],
    c: &[i16; 4],
) {
    let w = dst.len();
    debug_assert!(r0.len() >= w && r1.len() >= w && r2.len() >= w && r3.len() >= w);
    let c01 = _mm256_set1_epi32((c[0] as u16 as i32) | ((c[1] as i32) << 16));
    let c23 = _mm256_set1_epi32((c[2] as u16 as i32) | ((c[3] as i32) << 16));
    let round = _mm256_set1_epi32(64);
    let zero = _mm256_setzero_si256();
    let mut x = 0;
    while x + 32 <= w {
        let v0 = _mm256_loadu_si256(r0.as_ptr().add(x).cast());
        let v1 = _mm256_loadu_si256(r1.as_ptr().add(x).cast());
        let v2 = _mm256_loadu_si256(r2.as_ptr().add(x).cast());
        let v3 = _mm256_loadu_si256(r3.as_ptr().add(x).cast());
        // Per-lane interleave keeps unpack/pack symmetric, so the final
        // pack restores pixel order without a cross-lane permute.
        let i01 = _mm256_unpacklo_epi8(v0, v1);
        let i01h = _mm256_unpackhi_epi8(v0, v1);
        let i23 = _mm256_unpacklo_epi8(v2, v3);
        let i23h = _mm256_unpackhi_epi8(v2, v3);
        let a0 = _mm256_madd_epi16(_mm256_unpacklo_epi8(i01, zero), c01);
        let a1 = _mm256_madd_epi16(_mm256_unpackhi_epi8(i01, zero), c01);
        let a2 = _mm256_madd_epi16(_mm256_unpacklo_epi8(i01h, zero), c01);
        let a3 = _mm256_madd_epi16(_mm256_unpackhi_epi8(i01h, zero), c01);
        let b0 = _mm256_madd_epi16(_mm256_unpacklo_epi8(i23, zero), c23);
        let b1 = _mm256_madd_epi16(_mm256_unpackhi_epi8(i23, zero), c23);
        let b2 = _mm256_madd_epi16(_mm256_unpacklo_epi8(i23h, zero), c23);
        let b3 = _mm256_madd_epi16(_mm256_unpackhi_epi8(i23h, zero), c23);
        let s0 = _mm256_srai_epi32::<7>(_mm256_add_epi32(_mm256_add_epi32(a0, b0), round));
        let s1 = _mm256_srai_epi32::<7>(_mm256_add_epi32(_mm256_add_epi32(a1, b1), round));
        let s2 = _mm256_srai_epi32::<7>(_mm256_add_epi32(_mm256_add_epi32(a2, b2), round));
        let s3 = _mm256_srai_epi32::<7>(_mm256_add_epi32(_mm256_add_epi32(a3, b3), round));
        let lo16 = _mm256_packs_epi32(s0, s1);
        let hi16 = _mm256_packs_epi32(s2, s3);
        let out = _mm256_packus_epi16(lo16, hi16);
        _mm256_storeu_si256(dst.as_mut_ptr().add(x).cast(), out);
        x += 32;
    }
    if x < w {
        crate::scale::scale_row_v_scalar(&mut dst[x..], &r0[x..], &r1[x..], &r2[x..], &r3[x..], c);
    }
}

fn scale_h_entry(dst: &mut [u8], src: &[u8], offsets: &[u32], taps: &[i16]) {
    assert_avx2();
    unsafe { scale_row_h_avx2(dst, src, offsets, taps) }
}

fn scale_v_entry(dst: &mut [u8], r0: &[u8], r1: &[u8], r2: &[u8], r3: &[u8], c: &[i16; 4]) {
    assert_avx2();
    unsafe { scale_row_v_avx2(dst, r0, r1, r2, r3, c) }
}

/// The AVX2 tier's resolved kernel table.
pub(crate) static AVX2_KERNELS: KernelTable = KernelTable {
    sad: sad_entry,
    satd: satd_entry,
    ssd: ssd_entry,
    fdct8: fdct8_entry,
    idct8: idct8_entry,
    fcore4: crate::dct4::fcore4,
    icore4: crate::dct4::icore4,
    quant8: quant8_entry,
    dequant8: dequant8_entry,
    copy_block: copy_block_entry,
    avg_block: avg_block_entry,
    hpel_interp: hpel_interp_entry,
    sixtap_h: sixtap_h_entry,
    sixtap_v: sixtap_v_entry,
    sixtap_hv: sixtap_hv_entry,
    add_residual8: add_residual8_entry,
    diff_block8: diff_block8_entry,
    deblock_horiz_edge: deblock_horiz_edge_entry,
    scale_h: scale_h_entry,
    scale_v: scale_v_entry,
};
