//! Property tests for the trace subsystem: ring overflow accounting is
//! exact for arbitrary capacities/loads, and recorded spans from an
//! arbitrary nesting program are always well-formed (strictly nested or
//! disjoint, never partially overlapping) per thread.

use hdvb_trace::{collect, reset, set_enabled, set_ring_capacity, span, Stage};
use proptest::prelude::*;
use std::sync::Mutex;

/// Tests mutate process-global trace state; serialise them.
static GATE: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn overflow_drop_accounting_is_exact(
        cap in 1usize..64,
        spans in 0u64..200,
        case in any::<u64>(),
    ) {
        let _g = lock();
        set_enabled(true);
        reset();
        set_ring_capacity(cap);
        let name = format!("ovf-{case:016x}-{cap}-{spans}");
        let tname = name.clone();
        std::thread::Builder::new()
            .name(tname)
            .spawn(move || {
                for _ in 0..spans {
                    let _s = span!(Stage::Task);
                }
            })
            .unwrap()
            .join()
            .unwrap();
        set_enabled(false);
        set_ring_capacity(1 << 16);
        let r = collect();
        let t = r
            .threads
            .iter()
            .find(|t| t.name == name)
            .expect("thread registered");
        let expect_kept = (spans as usize).min(cap);
        prop_assert_eq!(t.events.len(), expect_kept);
        prop_assert_eq!(t.dropped, spans - expect_kept as u64);
        // Accumulators never drop: reset() zeroed them, and only this
        // spawned thread records Task spans while the gate is held.
        prop_assert_eq!(r.pair_count(Stage::Task, None), spans);
    }

    #[test]
    fn recorded_spans_are_strictly_nested_per_thread(
        ops in proptest::collection::vec(any::<bool>(), 1..60),
        case in any::<u64>(),
    ) {
        let _g = lock();
        set_enabled(true);
        reset();
        let name = format!("nest-{case:016x}");
        let tname = name.clone();
        // Interpret `ops` as a random push/pop program over a stage
        // palette chosen by depth (adjacent stages always differ, so no
        // scope is suppressed as self-nested).
        std::thread::Builder::new()
            .name(tname)
            .spawn(move || {
                const PALETTE: [Stage; 4] = [
                    Stage::EncodeFrame,
                    Stage::MotionEstimation,
                    Stage::TransformQuant,
                    Stage::EntropyCoding,
                ];
                fn run(ops: &[bool], depth: usize) -> usize {
                    let mut i = 0;
                    while i < ops.len() {
                        if ops[i] {
                            let _s = span!(PALETTE[depth % PALETTE.len()]);
                            i += 1 + run(&ops[i + 1..], depth + 1);
                        } else {
                            // Pop: close the current scope.
                            return i + 1;
                        }
                    }
                    ops.len()
                }
                run(&ops, 0);
            })
            .unwrap()
            .join()
            .unwrap();
        set_enabled(false);
        let r = collect();
        // A program of leading pops opens no span at all; the thread
        // then never registers a buffer, which is itself correct.
        // Otherwise: every pair of spans on one thread is either
        // disjoint or one contains the other (balanced begin/end implies
        // exactly this interval structure; partial overlap would mean an
        // unbalanced or cross-thread-corrupted record).
        if let Some(t) = r.threads.iter().find(|t| t.name == name) {
            for (i, a) in t.events.iter().enumerate() {
                let (a0, a1) = (a.start_ns, a.start_ns + a.dur_ns);
                for b in &t.events[i + 1..] {
                    let (b0, b1) = (b.start_ns, b.start_ns + b.dur_ns);
                    let disjoint = a1 <= b0 || b1 <= a0;
                    let a_in_b = b0 <= a0 && a1 <= b1;
                    let b_in_a = a0 <= b0 && b1 <= a1;
                    prop_assert!(
                        disjoint || a_in_b || b_in_a,
                        "partial overlap: [{a0},{a1}) vs [{b0},{b1})"
                    );
                }
            }
        }
    }
}
