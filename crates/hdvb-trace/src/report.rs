//! Collected-trace reporting: the per-stage summary table and the
//! chrome://tracing (Perfetto) Trace Event JSON export.

use crate::{Counter, Event, Stage, COUNTER_COUNT, HIST_BUCKETS, ROOT_PARENT, STAGE_COUNT};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One thread's share of a collected trace.
#[derive(Clone, Debug)]
pub struct ThreadTrace {
    /// Registration-order thread id (also the chrome-trace `tid`).
    pub tid: u32,
    /// Thread name (OS thread name, or `thread-N`).
    pub name: String,
    /// Completed spans recorded with [`span!`](crate::span), capped at the
    /// ring capacity.
    pub events: Vec<Event>,
    /// Counter totals in [`Counter::ALL`] order.
    pub counters: [u64; COUNTER_COUNT],
    /// Events lost to ring overflow.
    pub dropped: u64,
}

/// One row of the per-stage summary: a `(stage, parent)` pair.
#[derive(Clone, Debug)]
pub struct StageRow {
    /// The instrumented stage.
    pub stage: Stage,
    /// The enclosing stage, or `None` for top-level spans.
    pub parent: Option<Stage>,
    /// Completed spans.
    pub count: u64,
    /// Total wall time in nanoseconds.
    pub total_ns: u64,
    /// Mean span duration in nanoseconds.
    pub mean_ns: u64,
    /// Approximate 99th-percentile duration (log2-histogram upper bound,
    /// aggregated over all parents of this stage).
    pub p99_ns: u64,
    /// Longest single span in nanoseconds.
    pub max_ns: u64,
    /// This row's total as a fraction of its parent's total time (or of
    /// all top-level time for parentless rows), in `[0, 1]`.
    pub pct_of_parent: f64,
}

/// An owned snapshot of every thread's trace state.
pub struct TraceReport {
    /// Per-thread events and counters.
    pub threads: Vec<ThreadTrace>,
    /// `(stage, parent)` → `[count, total_ns, max_ns]`.
    slots: Vec<[u64; 3]>,
    /// Per-stage log2 duration histograms.
    hist: Vec<[u64; HIST_BUCKETS]>,
}

impl TraceReport {
    pub(crate) fn new(
        threads: Vec<ThreadTrace>,
        slots: Vec<[u64; 3]>,
        hist: Vec<[u64; HIST_BUCKETS]>,
    ) -> TraceReport {
        TraceReport {
            threads,
            slots,
            hist,
        }
    }

    fn slot(&self, stage: Stage, parent: Option<Stage>) -> &[u64; 3] {
        let p = parent.map_or(usize::from(ROOT_PARENT), |p| p as usize);
        &self.slots[(stage as usize) * (STAGE_COUNT + 1) + p]
    }

    /// Span count for a `(stage, parent)` pair.
    pub fn pair_count(&self, stage: Stage, parent: Option<Stage>) -> u64 {
        self.slot(stage, parent)[0]
    }

    /// Total nanoseconds for a `(stage, parent)` pair.
    pub fn pair_total(&self, stage: Stage, parent: Option<Stage>) -> u64 {
        self.slot(stage, parent)[1]
    }

    /// Total nanoseconds recorded for `stage` across all parents.
    pub fn stage_total(&self, stage: Stage) -> u64 {
        (0..=STAGE_COUNT)
            .map(|p| self.slots[(stage as usize) * (STAGE_COUNT + 1) + p][1])
            .sum()
    }

    /// Span count for `stage` across all parents.
    pub fn stage_count(&self, stage: Stage) -> u64 {
        (0..=STAGE_COUNT)
            .map(|p| self.slots[(stage as usize) * (STAGE_COUNT + 1) + p][0])
            .sum()
    }

    /// A counter summed over all threads.
    pub fn counter_total(&self, counter: Counter) -> u64 {
        self.threads
            .iter()
            .map(|t| t.counters[counter as usize])
            .sum()
    }

    /// Events lost to ring overflow, all threads.
    pub fn dropped_total(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }

    /// Fraction of `root`'s recorded time that is attributed to child
    /// stages nested directly under it (the tentpole's ≥ 90 % coverage
    /// criterion, with `root = Stage::EncodeFrame`). `None` if `root`
    /// recorded no time.
    pub fn coverage_of(&self, root: Stage) -> Option<f64> {
        let total = self.stage_total(root);
        if total == 0 {
            return None;
        }
        let children: u64 = Stage::ALL
            .iter()
            .filter(|&&s| s != root)
            .map(|&s| self.pair_total(s, Some(root)))
            .sum();
        Some(children as f64 / total as f64)
    }

    /// Approximate p99 duration for `stage` from its log2 histogram: the
    /// upper bound of the bucket containing the 99th percentile.
    pub fn p99_ns(&self, stage: Stage) -> u64 {
        crate::LatencyHistogram::from_buckets(&self.hist[stage as usize]).percentile(0.99)
    }

    /// All non-empty `(stage, parent)` rows, parents first, children
    /// ordered by declining total within their parent.
    pub fn rows(&self) -> Vec<StageRow> {
        let mut rows = Vec::new();
        for stage in Stage::ALL {
            for p in 0..=STAGE_COUNT {
                let [count, total_ns, max_ns] =
                    self.slots[(stage as usize) * (STAGE_COUNT + 1) + p];
                if count == 0 {
                    continue;
                }
                let parent = Stage::from_index(p as u8);
                let parent_total = match parent {
                    Some(ps) => self.stage_total(ps),
                    None => self.root_total(),
                };
                rows.push(StageRow {
                    stage,
                    parent,
                    count,
                    total_ns,
                    mean_ns: total_ns / count,
                    p99_ns: self.p99_ns(stage),
                    max_ns,
                    pct_of_parent: if parent_total == 0 {
                        0.0
                    } else {
                        total_ns as f64 / parent_total as f64
                    },
                });
            }
        }
        rows.sort_by(|a, b| {
            let ka = (a.parent.map_or(0u8, |p| 1 + p as u8), u64::MAX - a.total_ns);
            let kb = (b.parent.map_or(0u8, |p| 1 + p as u8), u64::MAX - b.total_ns);
            ka.cmp(&kb)
        });
        rows
    }

    /// Total time of all top-level (parentless) spans.
    fn root_total(&self) -> u64 {
        Stage::ALL.iter().map(|&s| self.pair_total(s, None)).sum()
    }

    /// Renders the per-stage summary as an aligned text table with a
    /// counter appendix, suitable for the terminal and for EXPERIMENTS.md.
    pub fn summary_table(&self) -> String {
        let rows = self.rows();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<20} {:<14} {:>9} {:>11} {:>11} {:>11} {:>11} {:>8}",
            "stage", "parent", "count", "total", "mean", "p99", "max", "parent%"
        );
        let _ = writeln!(out, "{}", "-".repeat(102));
        for r in &rows {
            let _ = writeln!(
                out,
                "{:<20} {:<14} {:>9} {:>11} {:>11} {:>11} {:>11} {:>7.1}%",
                r.stage.name(),
                r.parent.map_or("-", Stage::name),
                r.count,
                fmt_ns(r.total_ns),
                fmt_ns(r.mean_ns),
                fmt_ns(r.p99_ns),
                fmt_ns(r.max_ns),
                r.pct_of_parent * 100.0,
            );
        }
        for root in [Stage::EncodeFrame, Stage::DecodeFrame] {
            if let Some(c) = self.coverage_of(root) {
                let _ = writeln!(out, "stage coverage of {}: {:.1}%", root.name(), c * 100.0);
            }
        }
        let mut any = false;
        for c in Counter::ALL {
            let v = self.counter_total(c);
            if v > 0 {
                if !any {
                    let _ = writeln!(out, "counters:");
                    any = true;
                }
                let _ = writeln!(out, "  {:<10} {v}", c.name());
            }
        }
        let dropped = self.dropped_total();
        if dropped > 0 {
            let _ = writeln!(
                out,
                "dropped events: {dropped} (ring overflow; accumulator rows above remain exact)"
            );
        }
        out
    }

    /// Serialises the trace in Chrome Trace Event JSON (the format
    /// chrome://tracing and https://ui.perfetto.dev load directly):
    /// one `M` thread-name metadata record and one `C` counter record per
    /// thread, plus an `X` complete event per recorded span.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut push = |out: &mut String, s: &str| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str(s);
        };
        for t in &self.threads {
            push(
                &mut out,
                &format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
                    t.tid,
                    crate::json::escape(&t.name)
                ),
            );
            let mut last_ts = 0u64;
            for e in &t.events {
                let name = Stage::from_index(e.stage).map_or("unknown", Stage::name);
                last_ts = last_ts.max(e.start_ns + e.dur_ns);
                push(
                    &mut out,
                    &format!(
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\"cat\":\"hdvb\",\"ts\":{:.3},\"dur\":{:.3}}}",
                        t.tid,
                        name,
                        e.start_ns as f64 / 1000.0,
                        e.dur_ns as f64 / 1000.0
                    ),
                );
            }
            if t.counters.iter().any(|&c| c > 0) || t.dropped > 0 {
                push(
                    &mut out,
                    &format!(
                        "{{\"ph\":\"C\",\"pid\":1,\"tid\":{},\"name\":\"worker_counters\",\"ts\":{:.3},\"args\":{{\"steals\":{},\"executed\":{},\"parks\":{},\"dropped_events\":{}}}}}",
                        t.tid,
                        last_ts as f64 / 1000.0,
                        t.counters[Counter::Steal as usize],
                        t.counters[Counter::Executed as usize],
                        t.counters[Counter::Park as usize],
                        t.dropped
                    ),
                );
            }
        }
        out.push_str("]}");
        out
    }

    /// Writes [`chrome_trace_json`](Self::chrome_trace_json) to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_chrome_trace<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        std::fs::write(path, self.chrome_trace_json())
    }
}

/// Renders a per-stage total array (in [`crate::CODEC_STAGES`] order,
/// as returned by [`crate::codec_stage_totals_local`]) as a one-line
/// percentage breakdown, largest stage first — the timeout-attribution
/// line of the fault-tolerant sweep's failure table.
///
/// All-zero totals (the sweep ran untraced, or the cell was cancelled
/// before any codec work) render as a note instead of percentages.
///
/// # Example
///
/// ```
/// let mut totals = [0u64; 6];
/// totals[0] = 750; // motion_estimation
/// totals[3] = 250; // entropy_coding
/// let s = hdvb_trace::stage_breakdown(&totals);
/// assert_eq!(s, "motion_estimation 75% (750ns), entropy_coding 25% (250ns)");
/// assert!(hdvb_trace::stage_breakdown(&[0; 6]).contains("no stage attribution"));
/// ```
pub fn stage_breakdown(totals: &[u64; crate::CODEC_STAGES.len()]) -> String {
    let sum: u64 = totals.iter().sum();
    if sum == 0 {
        return "no stage attribution (untraced)".to_string();
    }
    let mut stages: Vec<(Stage, u64)> = crate::CODEC_STAGES
        .iter()
        .zip(totals)
        .filter(|(_, &ns)| ns > 0)
        .map(|(&s, &ns)| (s, ns))
        .collect();
    stages.sort_by_key(|&(_, ns)| std::cmp::Reverse(ns));
    let parts: Vec<String> = stages
        .iter()
        .map(|&(stage, ns)| {
            format!(
                "{} {:.0}% ({})",
                stage.name(),
                100.0 * ns as f64 / sum as f64,
                fmt_ns(ns)
            )
        })
        .collect();
    parts.join(", ")
}

/// Human-readable nanoseconds: `412ns`, `3.21us`, `45.0ms`, `1.204s`.
fn fmt_ns(ns: u64) -> String {
    let v = ns as f64;
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}us", v / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", v / 1e6)
    } else {
        format!("{:.3}s", v / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{collect, reset, set_enabled, span, test_gate, zone};

    #[test]
    fn summary_and_chrome_export_roundtrip() {
        let _g = test_gate();
        set_enabled(true);
        reset();
        {
            let _f = span!(Stage::EncodeFrame);
            for _ in 0..3 {
                let _z = zone!(Stage::EntropyCoding);
            }
        }
        crate::counter_add(Counter::Steal, 2);
        set_enabled(false);
        let r = collect();
        let table = r.summary_table();
        assert!(table.contains("encode_frame"), "{table}");
        assert!(table.contains("entropy_coding"), "{table}");
        assert!(table.contains("steals"), "{table}");

        let json = r.chrome_trace_json();
        let v = crate::json::parse(&json).expect("strict parse");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        assert!(!events.is_empty());
        // Exactly one X event for the frame span (zones emit no events).
        let xs: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert!(xs
            .iter()
            .any(|e| e.get("name").and_then(|n| n.as_str()) == Some("encode_frame")));
        for e in &xs {
            assert!(e.get("ts").and_then(|t| t.as_f64()).unwrap() >= 0.0);
            assert!(e.get("dur").and_then(|t| t.as_f64()).unwrap() >= 0.0);
        }
    }

    #[test]
    fn p99_tracks_the_histogram_tail() {
        let _g = test_gate();
        set_enabled(true);
        reset();
        {
            // 99 fast spans and one slow one; p99 must land at or above
            // the fast cluster, below u64::MAX.
            for _ in 0..99 {
                let _z = zone!(Stage::Deblock);
            }
            let _z = zone!(Stage::Deblock);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        set_enabled(false);
        let r = collect();
        assert_eq!(r.stage_count(Stage::Deblock), 100);
        let p99 = r.p99_ns(Stage::Deblock);
        assert!(p99 < u64::MAX);
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(1_700), "1.70us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(1_204_000_000), "1.204s");
    }
}
