//! A minimal *strict* JSON reader/writer used to validate the chrome
//! trace export (round-trip tests and the CI trace checker have to prove
//! the file is real JSON, not merely JSON-shaped).
//!
//! Strict means: full input must parse (no trailing bytes), strings must
//! use valid escapes, numbers must match the JSON grammar (no `NaN`,
//! `Infinity`, leading `+`, or bare `.5`), and objects/arrays must be
//! properly delimited. Only what the trace format needs — no
//! deserialisation framework.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64, sufficient for trace data).
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (sorted by key; duplicate keys rejected at parse time).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup for objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// [`ParseError`] with the offending byte offset.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

/// Quotes and escapes `s` as a JSON string literal (including the
/// surrounding double quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal, expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            if out.insert(key, v).is_some() {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uXXXX low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so slicing on
                    // char boundaries is safe).
                    let s = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(s).map_err(|_| self.err("invalid utf-8"))?;
                    let c = text.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads `uXXXX` with `pos` on the `u`; leaves `pos` one past the
    /// final hex digit.
    fn hex4(&mut self) -> Result<u32, ParseError> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        if !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(self.err("invalid \\u escape"));
        }
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one zero, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n: f64 = text
            .parse()
            .map_err(|_| self.err("unrepresentable number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_basics() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Number(-1250.0));
        assert_eq!(
            parse(r#""a\nb\u0041""#).unwrap(),
            Value::String("a\nbA".into())
        );
        let v = parse(r#"{"a":[1,2,{"b":false}],"c":"x"}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].get("b"),
            Some(&Value::Bool(false))
        );
    }

    #[test]
    fn rejects_non_strict_inputs() {
        for bad in [
            "",
            "nul",
            "01",
            "+1",
            ".5",
            "1.",
            "1e",
            "NaN",
            "Infinity",
            "[1,]",
            "[1 2]",
            "{\"a\":1,}",
            "{\"a\" 1}",
            "{'a':1}",
            "\"abc",
            "\"\\x\"",
            "\"\\u12\"",
            "[1]x",
            "{\"a\":1,\"a\":2}",
            "\"\u{1}\"",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn surrogate_pairs_roundtrip() {
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Value::String("😀".into())
        );
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn escape_emits_strict_json() {
        let s = escape("a\"b\\c\nd\u{1}e");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001e\"");
        assert_eq!(parse(&s).unwrap(), Value::String("a\"b\\c\nd\u{1}e".into()));
    }
}
