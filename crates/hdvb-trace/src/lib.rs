//! First-party profiling and tracing for HD-VideoBench.
//!
//! The paper's methodology is throughput measurement; this crate adds the
//! attribution layer: where inside a codec the milliseconds go, per stage,
//! per worker thread. Design constraints, in order:
//!
//! 1. **Disabled means free.** Every probe starts with one relaxed atomic
//!    load of a global flag. No TLS touch, no clock read, no allocation on
//!    the disabled path.
//! 2. **Enabled means bounded.** Each thread records into a fixed-capacity
//!    event buffer published lock-free (owner-thread writes, monotonic
//!    `head` with release/acquire). On overflow events are *dropped and
//!    counted* — never reallocated, never blocking the instrumented thread.
//! 3. **The summary never lies by omission.** Durations are additionally
//!    folded into per-`(stage, parent)` accumulator slots and per-stage
//!    log2 histograms that never drop, so the stage table stays exact even
//!    when the event ring overflows (only the chrome trace loses events,
//!    and says how many).
//!
//! Two probe flavours: [`span!`] records an accumulator update *and* a
//! chrome-trace event (use at frame/task granularity); [`zone!`] updates
//! accumulators only (use in per-macroblock hot loops where emitting an
//! event per scope would blow out any bounded buffer).
//!
//! Nesting is tracked dynamically per thread: each guard remembers the
//! stage it interrupted, which becomes the span's *parent* in the summary
//! table. Re-entering the stage currently on top (e.g. a motion-comp
//! helper calling another motion-comp helper) yields an inactive guard so
//! self-recursion is never double-counted.

use std::cell::OnceCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

mod hist;
pub mod json;
mod report;
mod rolling;

pub use hist::LatencyHistogram;
pub use report::{stage_breakdown, StageRow, ThreadTrace, TraceReport};
pub use rolling::RollingHistogram;

/// Instrumented pipeline stages, shared by all three codecs and the
/// execution engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Stage {
    /// One display frame through an encoder (parent of the codec stages).
    EncodeFrame,
    /// One coded packet through a decoder (parent of the codec stages).
    DecodeFrame,
    /// Motion estimation: full-pel search, sub-pel refinement and intra
    /// mode cost decisions.
    MotionEstimation,
    /// Motion compensation: building prediction blocks from references.
    MotionComp,
    /// Forward transform and quantisation.
    TransformQuant,
    /// Entropy coding: residual bitstream reads/writes.
    EntropyCoding,
    /// Reconstruction: dequant, inverse transform, store to the
    /// reference picture.
    Reconstruct,
    /// In-loop deblocking (H.264 only).
    Deblock,
    /// One task body executed by a pool worker (or the helping caller).
    Task,
    /// One GOP-aligned chunk of a parallel encode.
    GopChunk,
    /// One benchmark grid cell of a parallel sweep.
    Cell,
    /// A worker parked waiting for work.
    WorkerIdle,
}

/// Number of [`Stage`] variants.
pub const STAGE_COUNT: usize = 12;

/// Synthetic parent index meaning "no enclosing span on this thread".
pub const ROOT_PARENT: u8 = STAGE_COUNT as u8;

/// The six codec stages of the tentpole, in report order. These are the
/// children whose totals are compared against their parent frame span for
/// the coverage criterion.
pub const CODEC_STAGES: [Stage; 6] = [
    Stage::MotionEstimation,
    Stage::MotionComp,
    Stage::TransformQuant,
    Stage::EntropyCoding,
    Stage::Reconstruct,
    Stage::Deblock,
];

impl Stage {
    /// All stages in declaration order (index == discriminant).
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::EncodeFrame,
        Stage::DecodeFrame,
        Stage::MotionEstimation,
        Stage::MotionComp,
        Stage::TransformQuant,
        Stage::EntropyCoding,
        Stage::Reconstruct,
        Stage::Deblock,
        Stage::Task,
        Stage::GopChunk,
        Stage::Cell,
        Stage::WorkerIdle,
    ];

    /// Stable name used in reports and the chrome trace.
    pub fn name(self) -> &'static str {
        match self {
            Stage::EncodeFrame => "encode_frame",
            Stage::DecodeFrame => "decode_frame",
            Stage::MotionEstimation => "motion_estimation",
            Stage::MotionComp => "motion_comp",
            Stage::TransformQuant => "transform_quant",
            Stage::EntropyCoding => "entropy_coding",
            Stage::Reconstruct => "reconstruct",
            Stage::Deblock => "deblock",
            Stage::Task => "task",
            Stage::GopChunk => "gop_chunk",
            Stage::Cell => "cell",
            Stage::WorkerIdle => "worker_idle",
        }
    }

    pub(crate) fn from_index(i: u8) -> Option<Stage> {
        Stage::ALL.get(usize::from(i)).copied()
    }
}

/// Monotonic counters recorded per thread (execution-engine telemetry).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Counter {
    /// Tasks obtained by stealing from another worker's deque.
    Steal,
    /// Tasks executed.
    Executed,
    /// Times a worker parked on the wakeup condvar.
    Park,
}

/// Number of [`Counter`] variants.
pub const COUNTER_COUNT: usize = 3;

impl Counter {
    /// All counters in declaration order.
    pub const ALL: [Counter; COUNTER_COUNT] = [Counter::Steal, Counter::Executed, Counter::Park];

    /// Stable name used in reports and the chrome trace.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Steal => "steals",
            Counter::Executed => "executed",
            Counter::Park => "parks",
        }
    }
}

/// One completed span, recorded at scope exit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// `Stage` discriminant.
    pub stage: u8,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Log2 duration histogram bucket count (bucket `i` holds durations in
/// `[2^i, 2^(i+1))` ns; the last bucket is open-ended ≈ 18 minutes).
pub const HIST_BUCKETS: usize = 40;

const SLOTS: usize = STAGE_COUNT * (STAGE_COUNT + 1);

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static RING_CAP: AtomicUsize = AtomicUsize::new(1 << 16);
static REGISTRY: Mutex<Vec<Arc<ThreadBuf>>> = Mutex::new(Vec::new());

/// Is tracing globally enabled? One relaxed load — this is the entire
/// disabled-path cost of every probe.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on or off. Enabling also pins the trace epoch (and, on
/// x86-64, runs the one-time TSC calibration) so event timestamps from
/// different threads share a time base and no probe pays the setup cost.
pub fn set_enabled(on: bool) {
    if on {
        let _ = EPOCH.get_or_init(Instant::now);
        #[cfg(target_arch = "x86_64")]
        tsc_clock::warm_up();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Sets the per-thread event-buffer capacity. Affects buffers of threads
/// that first record *after* the call; existing buffers keep their size.
pub fn set_ring_capacity(cap: usize) {
    RING_CAP.store(cap.max(1), Ordering::Relaxed);
}

/// The probe clock. On x86-64 this is a raw `RDTSC` read scaled by a
/// one-time calibration — roughly a third of the cost of
/// `Instant::now()`, which matters because two reads bracket every
/// zone in the codecs' per-macroblock loops. Elsewhere it falls back to
/// the monotonic clock. Both report nanoseconds since the trace epoch.
#[inline]
fn now_ns() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        tsc_clock::now_ns()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

#[cfg(target_arch = "x86_64")]
mod tsc_clock {
    use std::sync::OnceLock;
    use std::time::Instant;

    /// TSC epoch tick plus nanoseconds-per-tick in Q32 fixed point.
    struct Calib {
        t0: u64,
        ns_per_tick_q32: u64,
    }

    static CALIB: OnceLock<Calib> = OnceLock::new();

    #[inline]
    fn rdtsc() -> u64 {
        // SAFETY: RDTSC is unprivileged and part of baseline x86-64.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    /// Measures the TSC rate against the monotonic clock over a ~1 ms
    /// busy window (< 0.1 % error, invisible at session start). Modern
    /// x86-64 has an invariant constant-rate TSC, so one measurement
    /// holds for the process lifetime.
    fn calibrate() -> Calib {
        let t0 = rdtsc();
        let i0 = Instant::now();
        loop {
            let dt = i0.elapsed();
            if dt.as_micros() >= 1000 {
                let ticks = (rdtsc().wrapping_sub(t0)).max(1);
                let q = (dt.as_nanos() << 32) / u128::from(ticks);
                return Calib {
                    t0,
                    ns_per_tick_q32: q as u64,
                };
            }
            std::hint::spin_loop();
        }
    }

    /// Runs the calibration eagerly (called from `set_enabled`) so the
    /// first probe doesn't absorb the 1 ms window.
    pub fn warm_up() {
        let _ = CALIB.get_or_init(calibrate);
    }

    #[inline]
    pub fn now_ns() -> u64 {
        let c = CALIB.get_or_init(calibrate);
        let dt = rdtsc().wrapping_sub(c.t0);
        ((u128::from(dt) * u128::from(c.ns_per_tick_q32)) >> 32) as u64
    }
}

/// A `(stage, parent)` accumulator: updated on every guard drop, never
/// dropped on overflow (unlike ring events).
#[derive(Default)]
struct Slot {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

/// Per-thread trace storage. Owned by exactly one recording thread; the
/// collector reads it concurrently through the registry.
pub struct ThreadBuf {
    tid: u32,
    name: String,
    /// Innermost active stage on the owner thread (`ROOT_PARENT` if none).
    /// Owner-only; atomic so the struct stays `Sync`.
    cur: AtomicU8,
    /// Events published: slots `[0, head)` are fully written.
    head: AtomicUsize,
    dropped: AtomicU64,
    events: Box<[std::cell::UnsafeCell<Event>]>,
    slots: Box<[Slot]>,
    hist: Box<[AtomicU32]>,
    counters: [AtomicU64; COUNTER_COUNT],
}

// SAFETY: each `UnsafeCell` slot is written at most once, by the owner
// thread, strictly before `head` is advanced past it with `Release`;
// readers only dereference slots below a `head` loaded with `Acquire`.
// `head` is monotonic while recording — only `reset()` rewinds it, and its
// contract requires instrumented threads to be quiescent at that point.
unsafe impl Sync for ThreadBuf {}
unsafe impl Send for ThreadBuf {}

impl ThreadBuf {
    fn new(tid: u32, name: String, cap: usize) -> ThreadBuf {
        let zero = Event {
            stage: 0,
            start_ns: 0,
            dur_ns: 0,
        };
        ThreadBuf {
            tid,
            name,
            cur: AtomicU8::new(ROOT_PARENT),
            head: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            events: (0..cap).map(|_| std::cell::UnsafeCell::new(zero)).collect(),
            slots: (0..SLOTS).map(|_| Slot::default()).collect(),
            hist: (0..STAGE_COUNT * HIST_BUCKETS)
                .map(|_| AtomicU32::new(0))
                .collect(),
            counters: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
        }
    }

    /// Owner-thread-only increment: accumulators have exactly one writer
    /// (the owning thread), so a relaxed load+store is enough and avoids
    /// the lock-prefixed RMW in the per-macroblock probe path. Collectors
    /// read concurrently; `reset()` requires quiescence before rewriting.
    #[inline]
    fn bump64(a: &AtomicU64, add: u64) {
        a.store(
            a.load(Ordering::Relaxed).wrapping_add(add),
            Ordering::Relaxed,
        );
    }

    #[inline]
    fn record(&self, stage: u8, parent: u8, start_ns: u64, dur_ns: u64, event: bool) {
        let slot = &self.slots[usize::from(stage) * (STAGE_COUNT + 1) + usize::from(parent)];
        Self::bump64(&slot.count, 1);
        Self::bump64(&slot.total_ns, dur_ns);
        if dur_ns > slot.max_ns.load(Ordering::Relaxed) {
            slot.max_ns.store(dur_ns, Ordering::Relaxed);
        }
        let bucket = (u64::BITS - dur_ns.leading_zeros()) as usize;
        let bucket = bucket.min(HIST_BUCKETS - 1);
        let h = &self.hist[usize::from(stage) * HIST_BUCKETS + bucket];
        h.store(h.load(Ordering::Relaxed).wrapping_add(1), Ordering::Relaxed);
        if event {
            // Owner-only publish: head is only ever advanced by this
            // thread, so load/store (not CAS) is sufficient.
            let head = self.head.load(Ordering::Relaxed);
            if head < self.events.len() {
                // SAFETY: slot `head` is unpublished (>= head) and only
                // the owner thread writes; see the Sync rationale above.
                unsafe {
                    *self.events[head].get() = Event {
                        stage,
                        start_ns,
                        dur_ns,
                    };
                }
                self.head.store(head + 1, Ordering::Release);
            } else {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

thread_local! {
    static TLS: OnceCell<Arc<ThreadBuf>> = const { OnceCell::new() };
}

fn register_thread() -> Arc<ThreadBuf> {
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let tid = reg.len() as u32;
    let name = std::thread::current()
        .name()
        .map(str::to_owned)
        .unwrap_or_else(|| format!("thread-{tid}"));
    let buf = Arc::new(ThreadBuf::new(tid, name, RING_CAP.load(Ordering::Relaxed)));
    reg.push(Arc::clone(&buf));
    buf
}

#[inline]
fn with_buf<R>(f: impl FnOnce(&ThreadBuf) -> R) -> R {
    TLS.with(|cell| f(cell.get_or_init(register_thread)))
}

/// RAII span: measures from construction to drop and files the duration
/// under `(stage, parent)` where `parent` is the stage it interrupted.
///
/// Holds a raw pointer to the owner thread's buffer so the drop path
/// skips the TLS lookup; the pointer stays valid for the process
/// lifetime because the registry retains an `Arc` to every buffer. The
/// pointer field makes the guard `!Send`, so it is only ever
/// dereferenced on the thread that created it.
pub struct SpanGuard {
    stage: u8,
    prev: u8,
    start_ns: u64,
    /// `false` for an inactive guard (tracing disabled or self-nested).
    active: bool,
    /// Emit a chrome-trace event in addition to the accumulators.
    event: bool,
    buf: *const ThreadBuf,
}

impl SpanGuard {
    const INERT: SpanGuard = SpanGuard {
        stage: 0,
        prev: 0,
        start_ns: 0,
        active: false,
        event: false,
        buf: std::ptr::null(),
    };

    /// Starts a span. Returns an inert guard when tracing is disabled or
    /// when `stage` is already the innermost stage on this thread
    /// (self-recursion must not double-count).
    #[inline]
    pub fn enter(stage: Stage, event: bool) -> SpanGuard {
        if !enabled() {
            return Self::INERT;
        }
        Self::enter_enabled(stage, event)
    }

    fn enter_enabled(stage: Stage, event: bool) -> SpanGuard {
        let s = stage as u8;
        let buf = TLS.with(|cell| Arc::as_ptr(cell.get_or_init(register_thread)));
        // SAFETY: the registry holds an Arc to every thread buffer for
        // the process lifetime, so the pointee outlives any guard.
        let b = unsafe { &*buf };
        let prev = b.cur.load(Ordering::Relaxed);
        if prev == s {
            return Self::INERT;
        }
        b.cur.store(s, Ordering::Relaxed);
        SpanGuard {
            stage: s,
            prev,
            start_ns: now_ns(),
            active: true,
            event,
            buf,
        }
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let dur = now_ns().saturating_sub(self.start_ns);
        // SAFETY: set by `enter_enabled` on this thread (the guard is
        // `!Send`); the registry keeps the buffer alive.
        let b = unsafe { &*self.buf };
        b.cur.store(self.prev, Ordering::Relaxed);
        b.record(self.stage, self.prev, self.start_ns, dur, self.event);
    }
}

/// Opens a span that feeds the summary **and** the chrome trace. Bind the
/// result: `let _s = span!(Stage::Task);`. Use at coarse granularity
/// (frames, tasks, chunks) — each completed span costs one ring slot.
#[macro_export]
macro_rules! span {
    ($stage:expr) => {
        $crate::SpanGuard::enter($stage, true)
    };
}

/// Opens an accumulate-only span (summary table, no chrome event). Bind
/// the result: `let _z = zone!(Stage::TransformQuant);`. Safe in per-
/// macroblock hot loops: never consumes ring capacity.
#[macro_export]
macro_rules! zone {
    ($stage:expr) => {
        $crate::SpanGuard::enter($stage, false)
    };
}

/// Bumps a per-thread counter (no-op while tracing is disabled).
#[inline]
pub fn counter_add(counter: Counter, n: u64) {
    if !enabled() {
        return;
    }
    with_buf(|b| {
        b.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    });
}

/// Per-stage wall-time totals recorded *by the calling thread*, in
/// [`CODEC_STAGES`] order.
///
/// Zones whose parent is itself a codec stage are excluded: an outer
/// zone's duration is inclusive, so counting e.g. a motion-comp zone
/// nested inside a motion-estimation zone again would double-count that
/// time. The result is a partition of instrumented codec time.
///
/// Benchmark cells run wholly on one thread, so the delta of two calls
/// around an encode/decode attributes that cell's stage time exactly.
pub fn codec_stage_totals_local() -> [u64; 6] {
    if !enabled() {
        return [0; 6];
    }
    with_buf(|b| {
        let mut out = [0u64; 6];
        for (i, stage) in CODEC_STAGES.iter().enumerate() {
            let base = (*stage as usize) * (STAGE_COUNT + 1);
            for p in 0..=STAGE_COUNT {
                let nested_in_codec_stage =
                    Stage::from_index(p as u8).is_some_and(|s| CODEC_STAGES.contains(&s));
                if !nested_in_codec_stage {
                    out[i] += b.slots[base + p].total_ns.load(Ordering::Relaxed);
                }
            }
        }
        out
    })
}

/// Snapshots every thread's buffers into an owned [`TraceReport`].
///
/// Safe to call while threads are still recording: events are read up to
/// each buffer's published head, accumulators are relaxed-atomic reads.
pub fn collect() -> TraceReport {
    let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let mut threads = Vec::with_capacity(reg.len());
    let mut slots = vec![[0u64; 3]; SLOTS];
    let mut hist = vec![[0u64; HIST_BUCKETS]; STAGE_COUNT];
    for buf in reg.iter() {
        let head = buf.head.load(Ordering::Acquire).min(buf.events.len());
        // SAFETY: slots below `head` are fully published (Acquire above
        // pairs with the owner's Release) and never rewritten.
        let events: Vec<Event> = (0..head).map(|i| unsafe { *buf.events[i].get() }).collect();
        let mut counters = [0u64; COUNTER_COUNT];
        for (i, c) in buf.counters.iter().enumerate() {
            counters[i] = c.load(Ordering::Relaxed);
        }
        threads.push(ThreadTrace {
            tid: buf.tid,
            name: buf.name.clone(),
            events,
            counters,
            dropped: buf.dropped.load(Ordering::Relaxed),
        });
        for (i, s) in buf.slots.iter().enumerate() {
            slots[i][0] += s.count.load(Ordering::Relaxed);
            slots[i][1] += s.total_ns.load(Ordering::Relaxed);
            slots[i][2] = slots[i][2].max(s.max_ns.load(Ordering::Relaxed));
        }
        for (i, h) in buf.hist.iter().enumerate() {
            hist[i / HIST_BUCKETS][i % HIST_BUCKETS] += u64::from(h.load(Ordering::Relaxed));
        }
    }
    TraceReport::new(threads, slots, hist)
}

/// Zeroes all accumulators, counters, histograms and event buffers.
///
/// Callers must ensure no instrumented thread is actively recording
/// (rewinding `head` re-arms event slots for rewriting).
pub fn reset() {
    let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    for buf in reg.iter() {
        buf.head.store(0, Ordering::Release);
        buf.dropped.store(0, Ordering::Relaxed);
        for s in buf.slots.iter() {
            s.count.store(0, Ordering::Relaxed);
            s.total_ns.store(0, Ordering::Relaxed);
            s.max_ns.store(0, Ordering::Relaxed);
        }
        for h in buf.hist.iter() {
            h.store(0, Ordering::Relaxed);
        }
        for c in buf.counters.iter() {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// Serialises tests that mutate process-global trace state (recovering
/// from a poisoned lock if one test panics).
#[cfg(test)]
pub(crate) fn test_gate() -> std::sync::MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock_trace() -> std::sync::MutexGuard<'static, ()> {
        test_gate()
    }

    #[test]
    fn disabled_guards_record_nothing() {
        let _g = lock_trace();
        set_enabled(false);
        reset();
        {
            let _s = span!(Stage::EncodeFrame);
            let _z = zone!(Stage::MotionEstimation);
            counter_add(Counter::Steal, 5);
        }
        let r = collect();
        assert_eq!(r.stage_total(Stage::EncodeFrame), 0);
        assert_eq!(r.stage_total(Stage::MotionEstimation), 0);
        assert_eq!(r.counter_total(Counter::Steal), 0);
        assert!(r.threads.iter().all(|t| t.events.is_empty()));
    }

    #[test]
    fn nesting_attributes_parent_and_self_recursion_is_suppressed() {
        let _g = lock_trace();
        set_enabled(true);
        reset();
        {
            let _f = span!(Stage::EncodeFrame);
            {
                let _me = zone!(Stage::MotionEstimation);
                // Self-nested ME must be inert.
                let inner = zone!(Stage::MotionEstimation);
                assert!(!inner.active);
            }
            {
                let _tq = zone!(Stage::TransformQuant);
            }
        }
        set_enabled(false);
        let r = collect();
        assert_eq!(
            r.pair_count(Stage::MotionEstimation, Some(Stage::EncodeFrame)),
            1
        );
        assert_eq!(
            r.pair_count(Stage::TransformQuant, Some(Stage::EncodeFrame)),
            1
        );
        assert_eq!(r.pair_count(Stage::EncodeFrame, None), 1);
        // Child totals cannot exceed the parent's.
        assert!(
            r.stage_total(Stage::MotionEstimation) + r.stage_total(Stage::TransformQuant)
                <= r.stage_total(Stage::EncodeFrame)
        );
    }

    #[test]
    fn ring_overflow_drops_and_counts_but_accumulators_stay_exact() {
        let _g = lock_trace();
        set_enabled(true);
        reset();
        set_ring_capacity(8);
        let handle = std::thread::Builder::new()
            .name("trace-overflow-test".into())
            .spawn(|| {
                for _ in 0..100 {
                    let _s = span!(Stage::Task);
                }
            })
            .unwrap();
        handle.join().unwrap();
        set_enabled(false);
        set_ring_capacity(1 << 16);
        let r = collect();
        let t = r
            .threads
            .iter()
            .find(|t| t.name == "trace-overflow-test")
            .expect("thread registered");
        assert_eq!(t.events.len(), 8);
        assert_eq!(t.dropped, 92);
        assert_eq!(r.pair_count(Stage::Task, None), 100);
    }

    #[test]
    fn counters_aggregate_across_threads() {
        let _g = lock_trace();
        set_enabled(true);
        reset();
        counter_add(Counter::Executed, 3);
        std::thread::spawn(|| counter_add(Counter::Executed, 4))
            .join()
            .unwrap();
        set_enabled(false);
        assert_eq!(collect().counter_total(Counter::Executed), 7);
    }

    #[test]
    fn local_stage_totals_see_only_this_thread() {
        let _g = lock_trace();
        set_enabled(true);
        reset();
        // The foreign sleep is far longer than any plausible local
        // oversleep, so the inclusion check below cannot flake.
        std::thread::spawn(|| {
            let _z = zone!(Stage::Deblock);
            std::thread::sleep(std::time::Duration::from_millis(200));
        })
        .join()
        .unwrap();
        let before = codec_stage_totals_local();
        {
            let _z = zone!(Stage::Deblock);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let after = codec_stage_totals_local();
        set_enabled(false);
        let deblock = CODEC_STAGES
            .iter()
            .position(|&s| s == Stage::Deblock)
            .unwrap();
        let delta = after[deblock] - before[deblock];
        assert!(delta >= 500_000, "local delta {delta}ns");
        // The other thread's 200ms must not leak into the local delta.
        assert!(
            delta < 100_000_000,
            "local delta {delta}ns includes foreign time"
        );
    }

    #[test]
    fn disabled_probe_is_cheap() {
        let _g = lock_trace();
        set_enabled(false);
        // Warm the TLS path once while enabled so lazy init is excluded.
        set_enabled(true);
        {
            let _s = span!(Stage::Task);
        }
        set_enabled(false);
        reset();
        let n = 1_000_000u32;
        let start = Instant::now();
        for _ in 0..n {
            let g = zone!(Stage::MotionEstimation);
            std::hint::black_box(&g);
        }
        let per_op = start.elapsed().as_nanos() as f64 / f64::from(n);
        // Generous bound (load + branch should be ~1ns); catches
        // accidental TLS or clock work sneaking onto the disabled path.
        assert!(per_op < 100.0, "disabled probe costs {per_op:.1}ns");
    }
}
