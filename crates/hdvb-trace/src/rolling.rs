//! Rolling-window latency percentiles for admission control.
//!
//! A [`RollingHistogram`] is a ring of [`LatencyHistogram`] time slices:
//! the window (say 5 s) is split into N slices (say 500 ms each), every
//! record lands in the slice covering its timestamp, and reading a
//! percentile merges the slices still inside the window. Old slices are
//! cleared lazily as time advances, so the view an admission controller
//! sees is "the last ~window of traffic", not the whole run — a burst of
//! slow frames ages out after one window instead of poisoning the p99
//! forever.
//!
//! All mutating operations take an explicit nanosecond timestamp
//! (`*_at`), measured from an arbitrary origin the caller picks; the
//! convenience methods without `_at` use a wall clock anchored at
//! construction. Tests drive the explicit API so rotation behaviour is
//! deterministic.

use crate::hist::LatencyHistogram;
use std::time::{Duration, Instant};

/// Time-sliced rolling histogram with bucket-upper-bound percentiles
/// over the last `window` of recorded samples.
#[derive(Clone, Debug)]
pub struct RollingHistogram {
    slices: Vec<LatencyHistogram>,
    slice_ns: u64,
    /// Absolute index (time / slice_ns) of the newest slice written.
    head: u64,
    origin: Instant,
}

impl RollingHistogram {
    /// A rolling histogram covering `window`, split into `slices` ring
    /// slots. Granularity of expiry is one slice (`window / slices`).
    pub fn new(window: Duration, slices: usize) -> Self {
        let slices = slices.max(1);
        let window_ns = window.as_nanos().clamp(1, u128::from(u64::MAX)) as u64;
        RollingHistogram {
            slices: vec![LatencyHistogram::new(); slices],
            slice_ns: (window_ns / slices as u64).max(1),
            head: 0,
            origin: Instant::now(),
        }
    }

    /// The covered window (slice width × slice count).
    pub fn window(&self) -> Duration {
        Duration::from_nanos(self.slice_ns.saturating_mul(self.slices.len() as u64))
    }

    /// Advances the ring to the slice containing `at_ns`, clearing every
    /// slice that fell out of the window on the way.
    fn advance(&mut self, at_ns: u64) {
        let idx = at_ns / self.slice_ns;
        if idx <= self.head {
            return; // Same slice, or a slightly stale timestamp.
        }
        let n = self.slices.len() as u64;
        // Jumping more than a full window clears everything once.
        let steps = (idx - self.head).min(n);
        for i in 1..=steps {
            let slot = ((self.head + i) % n) as usize;
            self.slices[slot] = LatencyHistogram::new();
        }
        self.head = idx;
    }

    /// Records one latency observed at `at_ns` (nanoseconds from the
    /// caller's origin). Timestamps older than the newest seen land in
    /// the newest slice — expiry granularity is one slice anyway.
    pub fn record_at(&mut self, at_ns: u64, latency_ns: u64) {
        self.advance(at_ns);
        let slot = (self.head % self.slices.len() as u64) as usize;
        self.slices[slot].record(latency_ns);
    }

    /// Records one latency observed now.
    pub fn record(&mut self, latency_ns: u64) {
        self.record_at(self.now_ns(), latency_ns);
    }

    /// Merged view of the samples still inside the window at `at_ns`.
    pub fn snapshot_at(&mut self, at_ns: u64) -> LatencyHistogram {
        self.advance(at_ns);
        let mut merged = LatencyHistogram::new();
        for s in &self.slices {
            merged.merge(s);
        }
        merged
    }

    /// Merged view of the samples still inside the window now.
    pub fn snapshot(&mut self) -> LatencyHistogram {
        self.snapshot_at(self.now_ns())
    }

    /// Number of samples inside the window at `at_ns`.
    pub fn count_at(&mut self, at_ns: u64) -> u64 {
        self.snapshot_at(at_ns).count()
    }

    /// Quantile `p` over the samples inside the window at `at_ns`
    /// (bucket upper bound, same contract as [`LatencyHistogram`]).
    pub fn percentile_at(&mut self, at_ns: u64, p: f64) -> u64 {
        self.snapshot_at(at_ns).percentile(p)
    }

    /// Quantile `p` over the samples inside the window now.
    pub fn percentile(&mut self, p: f64) -> u64 {
        self.percentile_at(self.now_ns(), p)
    }

    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn rolling() -> RollingHistogram {
        // 10 slices of 100 ms => 1 s window.
        RollingHistogram::new(Duration::from_secs(1), 10)
    }

    #[test]
    fn window_is_slice_width_times_count() {
        assert_eq!(rolling().window(), Duration::from_secs(1));
    }

    #[test]
    fn samples_inside_the_window_are_visible() {
        let mut r = rolling();
        for i in 0..100 {
            r.record_at(i * MS, 2_000);
        }
        assert_eq!(r.count_at(100 * MS), 100);
        assert!(r.percentile_at(100 * MS, 0.99) <= 2_048);
    }

    #[test]
    fn old_samples_age_out_after_one_window() {
        let mut r = rolling();
        // A burst of 1 s latencies early in the run...
        for i in 0..50 {
            r.record_at(i * MS, 1_000 * MS);
        }
        assert!(r.percentile_at(50 * MS, 0.99) >= 1_000 * MS);
        // ...followed by fast traffic. One full window later the burst
        // is gone and the p99 reflects only the recent samples.
        for i in 0..200 {
            r.record_at((1_100 + i * 10) * MS, MS);
        }
        let p99 = r.percentile_at(3_100 * MS, 0.99);
        assert!(p99 <= 2 * MS, "stale burst leaked into p99: {p99}");
        let visible = r.count_at(3_100 * MS);
        assert!((1..=110).contains(&visible), "visible {visible}");
    }

    #[test]
    fn an_idle_gap_longer_than_the_window_empties_the_view() {
        let mut r = rolling();
        for i in 0..30 {
            r.record_at(i * MS, 5_000);
        }
        assert_eq!(r.count_at(30 * MS), 30);
        // Reading far in the future — every slice expired.
        assert_eq!(r.count_at(10_000 * MS), 0);
        assert_eq!(r.percentile_at(10_000 * MS, 0.99), 0);
    }

    #[test]
    fn stale_timestamps_still_record() {
        let mut r = rolling();
        r.record_at(500 * MS, 1_000);
        // Arrival timestamped slightly before the newest slice (thread
        // race): must not be lost.
        r.record_at(450 * MS, 1_000);
        assert_eq!(r.count_at(500 * MS), 2);
    }

    #[test]
    fn wall_clock_convenience_api_records() {
        let mut r = RollingHistogram::new(Duration::from_secs(5), 10);
        r.record(1_000);
        r.record(2_000);
        assert_eq!(r.snapshot().count(), 2);
        assert!(r.percentile(1.0) >= 2_000);
    }

    #[test]
    fn partial_expiry_keeps_recent_slices() {
        let mut r = rolling();
        r.record_at(50 * MS, 10 * MS); // slice 0
        r.record_at(950 * MS, MS); // slice 9
                                   // At t=1.05s slice 0 has expired, slice 9 has not.
        let snap = r.snapshot_at(1_050 * MS);
        assert_eq!(snap.count(), 1);
        assert!(snap.percentile(1.0) <= 2 * MS);
    }
}
