//! The log2 latency histogram, exported as a standalone type.
//!
//! This is the same fixed-size, never-dropping histogram the per-thread
//! trace buffers fold span durations into (bucket `i >= 1` holds
//! durations in `[2^(i-1), 2^i)` ns, bucket 0 holds zero-length spans,
//! the last bucket is open-ended ≈ 18 minutes). The serve layer records
//! per-frame latencies into it directly and merges per-session
//! histograms into fleet-wide ones, so percentile math lives in exactly
//! one place.

use crate::HIST_BUCKETS;
use std::time::Duration;

/// A fixed-size log2 duration histogram with exact count/sum/max and
/// bucket-upper-bound percentiles.
///
/// Recording never allocates and never drops: every duration lands in
/// one of [`HIST_BUCKETS`] power-of-two buckets. Percentiles are
/// conservative — [`percentile`](Self::percentile) returns the upper
/// bound of the bucket containing the requested quantile, so a reported
/// p99 is never below the true p99 (at the cost of up to 2× slack).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        LatencyHistogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// The bucket index a duration of `ns` nanoseconds lands in (the
    /// exact mapping the per-thread trace buffers use).
    #[inline]
    pub fn bucket_of(ns: u64) -> usize {
        ((u64::BITS - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }

    /// Records one duration in nanoseconds.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Records one [`Duration`].
    #[inline]
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Folds `other` into `self` (fleet aggregation over sessions).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded durations in nanoseconds (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Largest recorded duration in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean recorded duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// The duration at quantile `p` in `[0, 1]`: the upper bound of the
    /// log2 bucket containing the `p`-th recorded value, capped at the
    /// exact [`max_ns`](Self::max_ns) so no percentile ever exceeds the
    /// largest recorded value (0 for an empty histogram).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        let threshold = ((self.count as f64 * p).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= threshold {
                return if i == 0 {
                    0
                } else if i == HIST_BUCKETS - 1 {
                    // The open-ended bucket has no power-of-two upper
                    // bound; the exact max is the tightest one we track.
                    self.max_ns
                } else {
                    // Cap the bucket bound at the exact max so a
                    // reported percentile never exceeds `max_ns`.
                    (1u64 << i).min(self.max_ns)
                };
            }
        }
        self.max_ns
    }

    /// Renders the standard JSON summary object every `BENCH_*.json`
    /// emitter uses for a latency distribution:
    /// `{"count":…,"mean_ns":…,"p50_ns":…,"p90_ns":…,"p99_ns":…,"max_ns":…}`.
    pub fn json_summary(&self) -> String {
        format!(
            "{{\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
            self.count(),
            self.mean_ns(),
            self.percentile(0.50),
            self.percentile(0.90),
            self.percentile(0.99),
            self.max_ns(),
        )
    }

    /// Builds a histogram over pre-counted buckets (the collector's
    /// per-stage rows). The exact sum and max are unknown there, so the
    /// nominal last-bucket bound stands in for the max and only count
    /// and percentiles are meaningful on the result.
    pub(crate) fn from_buckets(buckets: &[u64; HIST_BUCKETS]) -> LatencyHistogram {
        LatencyHistogram {
            buckets: *buckets,
            count: buckets.iter().sum(),
            sum_ns: 0,
            max_ns: 1u64 << (HIST_BUCKETS - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.mean_ns(), 0);
    }

    #[test]
    fn bucket_mapping_matches_the_trace_buffers() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(1024), 11);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn percentile_is_a_bucket_upper_bound() {
        let mut h = LatencyHistogram::new();
        // 99 fast (≈1us) and one slow (≈1s) sample.
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(1_000_000_000);
        assert_eq!(h.count(), 100);
        // p50 covers the fast cluster: upper bound of the 1000ns bucket.
        let p50 = h.percentile(0.50);
        assert!((1_000..=2_048).contains(&p50), "p50 {p50}");
        // p99 still lands in the fast cluster (99 of 100 samples).
        let p99 = h.percentile(0.99);
        assert!(p99 <= 2_048, "p99 {p99}");
        // p100 reaches the slow tail, never below the true max.
        assert!(h.percentile(1.0) >= 1_000_000_000);
        assert_eq!(h.max_ns(), 1_000_000_000);
        assert!(h.mean_ns() >= 1_000);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for i in 0..50 {
            a.record(i * 100);
            b.record(i * 1_000);
        }
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(), 100);
        assert_eq!(m.sum_ns(), a.sum_ns() + b.sum_ns());
        assert_eq!(m.max_ns(), b.max_ns());
        assert!(m.percentile(0.99) >= a.percentile(0.99));
    }

    #[test]
    fn open_ended_bucket_reports_the_tracked_max() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX / 2);
        assert_eq!(h.percentile(1.0), u64::MAX / 2);
    }

    #[test]
    fn json_summary_is_strict_json_with_all_fields() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100u64 {
            h.record(i * 1_000);
        }
        let doc = crate::json::parse(&h.json_summary()).expect("strict json");
        for key in ["count", "mean_ns", "p50_ns", "p90_ns", "p99_ns", "max_ns"] {
            assert!(doc.get(key).and_then(|v| v.as_f64()).is_some(), "{key}");
        }
        assert_eq!(doc.get("count").unwrap().as_f64(), Some(100.0));
        assert_eq!(doc.get("max_ns").unwrap().as_f64(), Some(100_000.0));
    }

    #[test]
    fn record_duration_converts() {
        let mut h = LatencyHistogram::new();
        h.record_duration(Duration::from_micros(5));
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum_ns(), 5_000);
    }
}
