//! Deterministic fault injection for exercising the fault-tolerant
//! sweep runner ([`crate::sweep`]).
//!
//! A [`FaultPlan`] is parsed from a compact spec string (the CLI and CI
//! pass it through the `HDVB_FAULTS` environment variable) and injected
//! at the per-cell entry point of the sweep engine. Faults are
//! *deterministic*: indexed rules fire at an exact `(cell, attempt)`
//! count, and the probabilistic rule is driven by a splitmix64 stream
//! keyed on `(seed, cell, attempt)`, so a given spec reproduces the
//! same failures on every run — the same philosophy as `hdvb-fuzz`'s
//! seeded corpus.
//!
//! Spec grammar (comma-separated tokens):
//!
//! * `panic@<cell>[x<times>]` — panic when cell `<cell>` starts, for
//!   its first `<times>` attempts (default 1). With `x2` the first
//!   retry panics too and the second retry succeeds.
//! * `stall@<cell>:<ms>[x<times>]` — sleep `<ms>` milliseconds before
//!   cell `<cell>` runs. The stall counts against the cell's deadline
//!   budget, so a stall longer than the budget produces a timeout.
//! * `panic~<permille>` — seeded probabilistic panic: each `(cell,
//!   attempt)` panics with probability `<permille>/1000`.
//! * `truncate-journal@<bytes>` — after the sweep, truncate the journal
//!   file to `<bytes>` bytes (simulates a torn write / mid-run kill).
//! * `seed=<n>` — seed for the probabilistic rule (default 0).
//!
//! Example: `panic@2,stall@5:2000,seed=7`.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

/// The splitmix64 mixing function: a high-quality 64-bit permutation
/// used for deterministic jitter and probabilistic fault decisions.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[derive(Debug)]
enum RuleKind {
    Panic,
    Stall(Duration),
}

#[derive(Debug)]
struct Rule {
    cell: usize,
    kind: RuleKind,
    /// How many attempts of this cell the rule fires for.
    times: u32,
    /// How many times it has fired so far.
    fired: AtomicU32,
}

/// A parsed, deterministic fault-injection plan.
///
/// The empty plan ([`FaultPlan::none`]) injects nothing and is the
/// default everywhere; tests and the CI chaos smoke build plans from
/// spec strings.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<Rule>,
    /// Permille probability of a seeded panic per (cell, attempt).
    panic_permille: u32,
    truncate_journal: Option<u64>,
    seed: u64,
}

impl FaultPlan {
    /// The empty plan: injects nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan has no rules at all.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.panic_permille == 0 && self.truncate_journal.is_none()
    }

    /// Parses a spec string (see the module docs for the grammar).
    ///
    /// # Errors
    ///
    /// A description of the first malformed token.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for token in spec.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            if let Some(v) = token.strip_prefix("seed=") {
                plan.seed = v
                    .parse()
                    .map_err(|_| format!("bad seed in fault spec: {token:?}"))?;
            } else if let Some(v) = token.strip_prefix("panic~") {
                plan.panic_permille = v
                    .parse()
                    .map_err(|_| format!("bad permille in fault spec: {token:?}"))?;
            } else if let Some(v) = token.strip_prefix("panic@") {
                let (cell, times) = parse_indexed(v)?;
                plan.rules.push(Rule {
                    cell,
                    kind: RuleKind::Panic,
                    times,
                    fired: AtomicU32::new(0),
                });
            } else if let Some(v) = token.strip_prefix("stall@") {
                let (head, times) = split_times(v)?;
                let (cell, ms) = head
                    .split_once(':')
                    .ok_or_else(|| format!("stall needs <cell>:<ms>: {token:?}"))?;
                let cell = cell
                    .parse()
                    .map_err(|_| format!("bad cell index in fault spec: {token:?}"))?;
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| format!("bad stall duration in fault spec: {token:?}"))?;
                plan.rules.push(Rule {
                    cell,
                    kind: RuleKind::Stall(Duration::from_millis(ms)),
                    times,
                    fired: AtomicU32::new(0),
                });
            } else if let Some(v) = token.strip_prefix("truncate-journal@") {
                plan.truncate_journal = Some(
                    v.parse()
                        .map_err(|_| format!("bad byte count in fault spec: {token:?}"))?,
                );
            } else {
                return Err(format!("unknown fault spec token: {token:?}"));
            }
        }
        Ok(plan)
    }

    /// Builds a plan from the `HDVB_FAULTS` environment variable, or
    /// the empty plan when unset.
    ///
    /// # Errors
    ///
    /// A description of the first malformed token.
    pub fn from_env() -> Result<Self, String> {
        match std::env::var("HDVB_FAULTS") {
            Ok(spec) => FaultPlan::parse(&spec),
            Err(_) => Ok(FaultPlan::none()),
        }
    }

    /// The seed driving the probabilistic rule.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The journal-truncation fault, if the plan has one.
    pub fn journal_truncate_bytes(&self) -> Option<u64> {
        self.truncate_journal
    }

    /// The injection point: called by the sweep engine as cell `cell`
    /// begins attempt `attempt` (1-based). May sleep (stall rules) and
    /// may panic (panic rules) — the sweep engine is expected to absorb
    /// the panic like any real cell failure.
    ///
    /// # Panics
    ///
    /// When a panic rule matches; this is the injected fault itself.
    pub fn before_cell(&self, cell: usize, attempt: u32) {
        for rule in &self.rules {
            if rule.cell != cell {
                continue;
            }
            // `fetch_update` keeps the fire-count honest if two
            // attempts of the same cell ever raced (they cannot today:
            // a cell is retried only after its previous attempt
            // resolved, but the plan should not rely on that).
            let fired = rule
                .fired
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                    (n < rule.times).then_some(n + 1)
                });
            if fired.is_err() {
                continue; // rule exhausted
            }
            match rule.kind {
                RuleKind::Panic => {
                    panic!("injected fault: panic at cell {cell} attempt {attempt}")
                }
                RuleKind::Stall(d) => std::thread::sleep(d),
            }
        }
        if self.panic_permille > 0 {
            let roll = splitmix64(
                self.seed ^ (cell as u64).wrapping_mul(0x9e37_79b9) ^ u64::from(attempt) << 32,
            ) % 1000;
            if (roll as u32) < self.panic_permille {
                panic!("injected fault: seeded panic at cell {cell} attempt {attempt}");
            }
        }
    }
}

/// Parses `<cell>[x<times>]`.
fn parse_indexed(v: &str) -> Result<(usize, u32), String> {
    let (head, times) = split_times(v)?;
    let cell = head
        .parse()
        .map_err(|_| format!("bad cell index in fault spec: {v:?}"))?;
    Ok((cell, times))
}

/// Splits a trailing `x<times>` repeat count off a token (default 1).
fn split_times(v: &str) -> Result<(&str, u32), String> {
    match v.rsplit_once('x') {
        Some((head, t)) if !head.is_empty() => {
            let times = t
                .parse()
                .map_err(|_| format!("bad repeat count in fault spec: {v:?}"))?;
            Ok((head, times))
        }
        _ => Ok((v, 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::time::Instant;

    #[test]
    fn parse_round_trip() {
        let p = FaultPlan::parse("panic@2x3, stall@5:40, truncate-journal@128, seed=9").unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.journal_truncate_bytes(), Some(128));
        assert_eq!(p.seed(), 9);
        assert!(!p.is_empty());
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("nonsense@4").is_err());
        assert!(FaultPlan::parse("stall@4").is_err());
    }

    #[test]
    fn panic_rule_fires_exactly_times() {
        let p = FaultPlan::parse("panic@1x2").unwrap();
        // Other cells untouched.
        p.before_cell(0, 1);
        // First two attempts of cell 1 panic, the third succeeds.
        for attempt in 1..=2 {
            let r = catch_unwind(AssertUnwindSafe(|| p.before_cell(1, attempt)));
            assert!(r.is_err(), "attempt {attempt} should panic");
        }
        p.before_cell(1, 3);
    }

    #[test]
    fn stall_rule_sleeps() {
        let p = FaultPlan::parse("stall@0:30").unwrap();
        let t = Instant::now();
        p.before_cell(0, 1);
        assert!(t.elapsed() >= Duration::from_millis(30));
        // Exhausted after one firing.
        let t = Instant::now();
        p.before_cell(0, 2);
        assert!(t.elapsed() < Duration::from_millis(30));
    }

    #[test]
    fn probabilistic_rule_is_deterministic() {
        let fire_set = |seed: u64| {
            let p = FaultPlan::parse(&format!("panic~200,seed={seed}")).unwrap();
            (0..200)
                .filter(|&c| catch_unwind(AssertUnwindSafe(|| p.before_cell(c, 1))).is_err())
                .collect::<Vec<_>>()
        };
        let a = fire_set(7);
        let b = fire_set(7);
        assert_eq!(a, b, "same seed must fire the same cells");
        assert!(!a.is_empty(), "permille 200 over 200 cells should fire");
        assert!(a.len() < 200, "and should not fire everywhere");
    }
}
