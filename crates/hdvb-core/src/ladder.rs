//! ABR transcode ladders: decode a source once, scale, and encode one
//! stream per rung.
//!
//! An adaptive-bitrate ladder is the production shape of transcode
//! traffic: a mezzanine stream is decoded **once** and re-encoded at
//! several resolutions ("rungs") so a player can switch between them as
//! bandwidth changes. Switching only works if the rung streams expose
//! decoder entry points at the *same display indices*; this runner
//! guarantees that by cutting every rung into the same fixed-length,
//! GOP-aligned **segments** and encoding each segment as a closed
//! stream with a fresh encoder — the same construction
//! [`encode_sequence_parallel`](crate::encode_sequence_parallel) uses
//! for GOP-level parallelism. Segment starts are therefore intra points
//! on every rung simultaneously, and splicing rung A's segments `0..k`
//! with rung B's segments `k..` yields a decodable stream (asserted by
//! `tests/ladder_conformance.rs`).
//!
//! Each (rung × segment) cell is an independent pure computation
//! (scale the segment's source frames, encode them, rebase display
//! indices), so running cells on a thread pool and splicing in fixed
//! order is **bit-identical** to the serial loop for any thread count —
//! the sweep-level determinism contract, not the weaker chunk-count one.

use crate::{create_encoder, decode_sequence, BenchError, CodecId, CodingOptions, Packet};
use hdvb_dsp::{Dsp, Scaler};
use hdvb_frame::{Frame, Resolution, SequencePsnr};
use hdvb_par::ThreadPool;
use std::time::{Duration, Instant};

/// Scales whole 4:2:0 frames between two fixed geometries.
///
/// Wraps two [`Scaler`]s (full-size luma, half-size chroma) so the
/// per-frame hot path allocates nothing. Both geometries must have even
/// dimensions (4:2:0) and the source must be at least 8×8 so the chroma
/// planes fit the scaler's 4-tap window.
#[derive(Clone, Debug)]
pub struct FrameScaler {
    luma: Scaler,
    chroma: Scaler,
    dst: Resolution,
}

impl FrameScaler {
    /// Creates a scaler from `src` to `dst` using `dsp`'s kernel tier.
    ///
    /// # Errors
    ///
    /// [`BenchError::BadRequest`] if the source is smaller than 8×8
    /// (the chroma planes would not fit the 4-tap window;
    /// [`Resolution`] itself already guarantees even nonzero
    /// dimensions).
    pub fn new(dsp: Dsp, src: Resolution, dst: Resolution) -> Result<FrameScaler, BenchError> {
        if src.width() < 8 || src.height() < 8 {
            return Err(BenchError::BadRequest("scaler source below 8x8"));
        }
        Ok(FrameScaler {
            luma: Scaler::new(dsp, src.width(), src.height(), dst.width(), dst.height()),
            chroma: Scaler::new(
                dsp,
                src.width() / 2,
                src.height() / 2,
                dst.width() / 2,
                dst.height() / 2,
            ),
            dst,
        })
    }

    /// The destination geometry.
    pub fn dst(&self) -> Resolution {
        self.dst
    }

    /// Scales `src` into a new frame at the destination geometry.
    ///
    /// # Panics
    ///
    /// Panics if `src` does not match the source geometry.
    pub fn scale(&mut self, src: &Frame) -> Frame {
        let mut out = Frame::new(self.dst.width(), self.dst.height());
        self.scale_into(src, &mut out);
        out
    }

    /// Scales `src` into an existing destination-geometry frame (the
    /// zero-allocation form — pair with `FramePool`).
    ///
    /// # Panics
    ///
    /// Panics if either frame's geometry does not match the scaler's.
    pub fn scale_into(&mut self, src: &Frame, dst: &mut Frame) {
        let (sw, sh) = self.luma.src_size();
        assert_eq!((src.width(), src.height()), (sw, sh), "source geometry");
        assert_eq!(
            (dst.width(), dst.height()),
            (self.dst.width(), self.dst.height()),
            "destination geometry"
        );
        let (y, cb, cr) = dst.planes_mut();
        self.luma.scale(src.y().data(), y.data_mut());
        self.chroma.scale(src.cb().data(), cb.data_mut());
        self.chroma.scale(src.cr().data(), cr.data_mut());
    }
}

/// Configuration of one ladder run.
#[derive(Clone, Debug)]
pub struct LadderSpec {
    /// Codec used for every rung encode.
    pub codec: CodecId,
    /// Output resolutions, typically 3–5, highest first by convention
    /// (the order is preserved in the results).
    pub rungs: Vec<Resolution>,
    /// Segment length in frames — the switching granularity. Must be a
    /// positive multiple of the GOP length (`b_frames + 1`) so segment
    /// starts fall where the serial encoder would emit an anchor.
    pub switch_interval: u32,
    /// Coding options shared by all rungs (quantiser, B-frames, SIMD
    /// tier).
    pub options: CodingOptions,
}

impl LadderSpec {
    /// A conventional ladder for `src`: rungs at full, 2/3, 1/2 and 1/4
    /// of the source dimensions (dropping duplicates and anything under
    /// 16 pixels), switching every 4 GOPs.
    pub fn standard(codec: CodecId, src: Resolution, options: CodingOptions) -> LadderSpec {
        let mut rungs = Vec::new();
        for (num, den) in [(1u32, 1u32), (2, 3), (1, 2), (1, 4)] {
            // Round to even, keeping codec-friendly geometry.
            let dim = |v: u32| (v * num / den) & !1;
            let r = Resolution::new(dim(src.width() as u32), dim(src.height() as u32));
            if r.width() >= 16 && r.height() >= 16 && !rungs.contains(&r) {
                rungs.push(r);
            }
        }
        let gop = u32::from(options.b_frames) + 1;
        LadderSpec {
            codec,
            rungs,
            switch_interval: 4 * gop,
            options,
        }
    }
}

/// One encoded rung of a [`LadderResult`].
#[derive(Clone, Debug)]
pub struct RungResult {
    /// This rung's output geometry.
    pub resolution: Resolution,
    /// The spliced packet stream (display indices in sequence order).
    pub packets: Vec<Packet>,
    /// Index into [`packets`](RungResult::packets) where each segment
    /// begins — every one an intra entry point, at the same display
    /// index on every rung.
    pub segment_starts: Vec<usize>,
    /// Total encoded bits.
    pub bits: u64,
    /// Summed codec time across this rung's segment encodes.
    pub encode_time: Duration,
    /// Summed scaling time for this rung's input frames.
    pub scale_time: Duration,
    /// Luma PSNR of the decoded rung against its scaled source
    /// reference.
    pub psnr_y: f64,
}

impl RungResult {
    /// Bitrate in kbit/s at the source frame rate `fps`.
    pub fn bitrate_kbps(&self, fps: f64, frames: u32) -> f64 {
        if frames == 0 {
            return 0.0;
        }
        self.bits as f64 * fps / f64::from(frames) / 1000.0
    }
}

/// Outcome of [`run_ladder`].
#[derive(Clone, Debug)]
pub struct LadderResult {
    /// Number of source frames transcoded into every rung.
    pub frames: u32,
    /// The segment boundaries (frame ranges) shared by all rungs.
    pub segments: Vec<(u32, u32)>,
    /// Per-rung streams and metrics, in spec order.
    pub rungs: Vec<RungResult>,
    /// Wall-clock time of the fan-out region (scale + encode + verify).
    pub wall: Duration,
}

/// Splits `frames` into consecutive `interval`-length segments (the
/// last may be short).
fn segment_ranges(frames: u32, interval: u32) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut start = 0;
    while start < frames {
        let end = frames.min(start + interval);
        out.push((start, end));
        start = end;
    }
    out
}

/// Transcodes `source` frames into every rung of `spec`, optionally
/// fanning the (rung × segment) cells across `pool`.
///
/// The output is **bit-identical** for any `pool` (including `None`):
/// each cell is a pure function of the source segment and the spec, and
/// cells are spliced in fixed order. Every rung is decoded after
/// encoding to verify conformance and measure PSNR against its scaled
/// reference.
///
/// # Errors
///
/// [`BenchError::BadRequest`] for an empty source, no rungs, a
/// `switch_interval` that is zero or not GOP-aligned, or rung geometry
/// the scaler/codecs reject; codec errors propagate from any cell.
pub fn run_ladder(
    source: &[Frame],
    spec: &LadderSpec,
    pool: Option<&ThreadPool>,
) -> Result<LadderResult, BenchError> {
    if source.is_empty() {
        return Err(BenchError::BadRequest(
            "ladder needs at least one source frame",
        ));
    }
    if spec.rungs.is_empty() {
        return Err(BenchError::BadRequest("ladder needs at least one rung"));
    }
    let gop = u32::from(spec.options.b_frames) + 1;
    if spec.switch_interval == 0 || !spec.switch_interval.is_multiple_of(gop) {
        return Err(BenchError::BadRequest(
            "switch interval must be a positive multiple of the GOP length",
        ));
    }
    let src_res = Resolution::new(source[0].width() as u32, source[0].height() as u32);
    // Validate every rung's geometry up front (cheap, clearer errors).
    for &rung in &spec.rungs {
        FrameScaler::new(Dsp::new(spec.options.simd), src_res, rung)?;
    }

    let frames = source.len() as u32;
    let segments = segment_ranges(frames, spec.switch_interval);
    let cells: Vec<(usize, u32, u32)> = spec
        .rungs
        .iter()
        .enumerate()
        .flat_map(|(ri, _)| segments.iter().map(move |&(s, e)| (ri, s, e)))
        .collect();

    let t0 = Instant::now();
    let spec_ref = &spec;
    let run_cell = |&(ri, start, end): &(usize, u32, u32)| -> Result<CellOutput, BenchError> {
        encode_cell(source, spec_ref, src_res, ri, start, end)
    };
    let parts: Vec<Result<CellOutput, BenchError>> = match pool {
        Some(pool) => pool.par_map(cells.clone(), |c| run_cell(&c))?,
        None => cells.iter().map(run_cell).collect(),
    };

    // Splice cells back into per-rung streams in fixed (rung, segment)
    // order — the order is the determinism contract.
    let mut rungs: Vec<RungResult> = spec
        .rungs
        .iter()
        .map(|&r| RungResult {
            resolution: r,
            packets: Vec::new(),
            segment_starts: Vec::new(),
            bits: 0,
            encode_time: Duration::ZERO,
            scale_time: Duration::ZERO,
            psnr_y: 0.0,
        })
        .collect();
    for (cell, part) in cells.iter().zip(parts) {
        let out = part?;
        let rung = &mut rungs[cell.0];
        rung.segment_starts.push(rung.packets.len());
        rung.bits += out.packets.iter().map(Packet::bits).sum::<u64>();
        rung.encode_time += out.encode_time;
        rung.scale_time += out.scale_time;
        rung.packets.extend(out.packets);
    }

    // Conformance + quality: every rung must decode to the full frame
    // count, measured against its own scaled reference.
    for rung in &mut rungs {
        let decoded = decode_sequence(spec.codec, &rung.packets, spec.options.simd)?;
        if decoded.frames.len() != source.len() {
            return Err(BenchError::Bitstream(format!(
                "rung {} decoded {} of {} frames",
                rung.resolution,
                decoded.frames.len(),
                source.len()
            )));
        }
        let mut scaler = FrameScaler::new(Dsp::new(spec.options.simd), src_res, rung.resolution)?;
        let mut acc = SequencePsnr::new();
        for (src, dec) in source.iter().zip(&decoded.frames) {
            acc.add(&scaler.scale(src), dec);
        }
        rung.psnr_y = acc.y_psnr();
    }

    Ok(LadderResult {
        frames,
        segments,
        rungs,
        wall: t0.elapsed(),
    })
}

struct CellOutput {
    packets: Vec<Packet>,
    encode_time: Duration,
    scale_time: Duration,
}

/// Encodes one (rung, segment) cell: scale the segment's source frames
/// to the rung geometry and run them through a fresh encoder, producing
/// a closed stream rebased to sequence display order.
fn encode_cell(
    source: &[Frame],
    spec: &LadderSpec,
    src_res: Resolution,
    rung_index: usize,
    start: u32,
    end: u32,
) -> Result<CellOutput, BenchError> {
    let rung = spec.rungs[rung_index];
    let mut scaler = FrameScaler::new(Dsp::new(spec.options.simd), src_res, rung)?;
    let mut enc = create_encoder(spec.codec, rung, &spec.options)?;
    let mut packets: Vec<Packet> = Vec::new();
    let mut encode_time = Duration::ZERO;
    let mut scale_time = Duration::ZERO;
    let mut scaled = Frame::new(rung.width(), rung.height());
    for i in start..end {
        let t = Instant::now();
        scaler.scale_into(&source[i as usize], &mut scaled);
        scale_time += t.elapsed();
        let t = Instant::now();
        let out = enc.encode_frame(&scaled)?;
        encode_time += t.elapsed();
        packets.extend(out);
    }
    let t = Instant::now();
    let tail = enc.finish()?;
    encode_time += t.elapsed();
    packets.extend(tail);
    for p in &mut packets {
        p.display_index += start;
    }
    Ok(CellOutput {
        packets,
        encode_time,
        scale_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdvb_dsp::SimdLevel;
    use hdvb_seq::{Sequence, SequenceId};

    fn source_frames(n: u32) -> Vec<Frame> {
        let seq = Sequence::new(SequenceId::BlueSky, Resolution::new(96, 64));
        (0..n).map(|i| seq.frame(i)).collect()
    }

    fn small_spec(codec: CodecId) -> LadderSpec {
        let options = CodingOptions::default().with_simd(SimdLevel::Scalar);
        LadderSpec {
            codec,
            rungs: vec![Resolution::new(96, 64), Resolution::new(48, 32)],
            switch_interval: 6,
            options,
        }
    }

    #[test]
    fn frame_scaler_roundtrips_geometry() {
        let mut fs = FrameScaler::new(
            Dsp::new(SimdLevel::Scalar),
            Resolution::new(96, 64),
            Resolution::new(48, 32),
        )
        .unwrap();
        let out = fs.scale(&source_frames(1)[0]);
        assert_eq!(out.width(), 48);
        assert_eq!(out.height(), 32);
        assert_eq!(out.cb().width(), 24);
    }

    #[test]
    fn tiny_source_is_rejected() {
        let err = FrameScaler::new(
            Dsp::new(SimdLevel::Scalar),
            Resolution::new(6, 6),
            Resolution::new(48, 32),
        );
        assert!(err.is_err());
    }

    #[test]
    fn misaligned_switch_interval_is_rejected() {
        let src = source_frames(6);
        let mut spec = small_spec(CodecId::Mpeg2);
        spec.switch_interval = 7; // gop is 3
        assert!(run_ladder(&src, &spec, None).is_err());
    }

    #[test]
    fn rungs_share_segment_display_indices() {
        let src = source_frames(12);
        let spec = small_spec(CodecId::Mpeg2);
        let result = run_ladder(&src, &spec, None).unwrap();
        assert_eq!(result.segments, vec![(0, 6), (6, 12)]);
        for rung in &result.rungs {
            assert_eq!(rung.segment_starts.len(), 2);
            for (&pi, &(seg_start, _)) in rung.segment_starts.iter().zip(&result.segments) {
                assert_eq!(rung.packets[pi].display_index, seg_start);
            }
            assert!(
                rung.psnr_y > 20.0,
                "rung {} psnr {}",
                rung.resolution,
                rung.psnr_y
            );
        }
    }

    #[test]
    fn standard_ladder_builds_sane_rungs() {
        let spec = LadderSpec::standard(
            CodecId::H264,
            Resolution::new(288, 160),
            CodingOptions::default(),
        );
        assert!(spec.rungs.len() >= 3);
        assert_eq!(spec.rungs[0], Resolution::new(288, 160));
        assert!(spec.rungs.iter().all(|r| r.width() % 2 == 0));
        assert_eq!(
            spec.switch_interval % (u32::from(spec.options.b_frames) + 1),
            0
        );
    }
}
