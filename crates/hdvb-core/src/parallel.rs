//! Parallel execution of the benchmark grids and GOP-parallel encoding.
//!
//! Two levels of parallelism, with different determinism contracts:
//!
//! * **Sweep-level** ([`ParallelRunner`]): each cell of the Table V /
//!   Figure 1 grid (one resolution × sequence × codec measurement) is an
//!   independent encode→decode→PSNR pipeline, so running cells on a
//!   work-stealing pool and merging the results in grid order is
//!   **bit-identical** to the serial sweep — same packets, same PSNR,
//!   same bitrate, for any thread count.
//! * **GOP-level** ([`encode_sequence_parallel`]): one sequence is split
//!   into GOP-aligned chunks encoded by concurrent encoder instances and
//!   the packet streams are spliced. Each chunk is a *closed* stream
//!   (starts with its own intra frame, references never cross chunk
//!   boundaries), so the splice decodes exactly; the output is
//!   deterministic for a fixed chunk count but differs from the serial
//!   stream by the extra intra points, which is why the serial encoder
//!   remains the `--threads 1` reference.

use crate::runner::{measure_figure1_row, measure_rd_point};
use crate::{BenchError, CodecId, CodingOptions, EncodeResult, Figure1Row, Packet, Table5Row};
use hdvb_dsp::SimdLevel;
use hdvb_frame::Resolution;
use hdvb_par::{TaskPanic, ThreadPool, WorkerStats};
use hdvb_seq::{Sequence, SequenceId};
use std::time::{Duration, Instant};

impl From<TaskPanic> for BenchError {
    fn from(p: TaskPanic) -> Self {
        BenchError::Codec(format!("worker task {} panicked: {}", p.index, p.message))
    }
}

/// How a parallel sweep spent its time: wall clock versus CPU time, and
/// how evenly the workers were loaded.
#[derive(Clone, Debug)]
pub struct ExecutionReport {
    /// Worker threads used (1 = serial reference path).
    pub threads: usize,
    /// Wall-clock time of the sweep.
    pub wall: Duration,
    /// Total time spent inside tasks summed over all lanes (equals
    /// `wall` on the serial path). Measured with wall clocks, so on an
    /// oversubscribed machine it also counts time a descheduled worker
    /// spent waiting for a core.
    pub cpu: Duration,
    /// Number of grid cells measured.
    pub cells: usize,
    /// Per-worker busy time and task counts (empty on the serial path).
    pub workers: Vec<WorkerStats>,
    /// Cells run by the submitting thread while it waited on the pool
    /// (the caller *helps*; zero on the serial path).
    pub caller: WorkerStats,
}

impl ExecutionReport {
    /// CPU-over-wall speed-up actually realised.
    pub fn speedup(&self) -> f64 {
        self.cpu.as_secs_f64() / self.wall.as_secs_f64().max(1e-9)
    }

    /// Lanes that actually ran tasks: the pool's spawned workers plus
    /// the submitting thread when it helped, or the single calling
    /// thread on the serial path. This can differ from [`threads`]
    /// (the *requested* count) when the pool clamps, so utilisation is
    /// measured against what really existed, not what was asked for.
    ///
    /// [`threads`]: ExecutionReport::threads
    pub fn effective_lanes(&self) -> usize {
        if self.workers.is_empty() {
            self.threads.max(1)
        } else {
            self.workers.len() + usize::from(self.caller.tasks > 0)
        }
    }

    /// Fraction of the available lane time spent running tasks,
    /// measured against [`effective_lanes`] (the submitting thread
    /// counts as an extra lane when it helped).
    ///
    /// [`effective_lanes`]: ExecutionReport::effective_lanes
    pub fn utilisation(&self) -> f64 {
        let lanes = self.effective_lanes();
        self.cpu.as_secs_f64() / (lanes as f64 * self.wall.as_secs_f64().max(1e-9))
    }

    /// A human-readable multi-line summary for harness output.
    pub fn summary(&self) -> String {
        let lanes = self.effective_lanes();
        let mut out = format!(
            "{} cells on {} thread{} ({} lane{}): wall {:.2}s, cpu {:.2}s, speedup {:.2}x, utilisation {:.0}%",
            self.cells,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            lanes,
            if lanes == 1 { "" } else { "s" },
            self.wall.as_secs_f64(),
            self.cpu.as_secs_f64(),
            self.speedup(),
            100.0 * self.utilisation(),
        );
        for (i, w) in self.workers.iter().enumerate() {
            out.push_str(&format!(
                "\n  worker {i}: busy {:.2}s ({:.0}%), {} tasks, {} stolen, {} parks, idle {:.2}s",
                w.busy.as_secs_f64(),
                100.0 * w.busy.as_secs_f64() / self.wall.as_secs_f64().max(1e-9),
                w.tasks,
                w.steals,
                w.parks,
                w.idle.as_secs_f64(),
            ));
        }
        if self.caller.tasks > 0 {
            out.push_str(&format!(
                "\n  caller:   busy {:.2}s ({:.0}%), {} tasks, {} stolen (helped while waiting)",
                self.caller.busy.as_secs_f64(),
                100.0 * self.caller.busy.as_secs_f64() / self.wall.as_secs_f64().max(1e-9),
                self.caller.tasks,
                self.caller.steals,
            ));
        }
        out
    }
}

/// Which Figure 1 subfigure(s) to measure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Figure1Part {
    /// (a) decoding, scalar kernels.
    DecodeScalar,
    /// (b) decoding, SIMD kernels.
    DecodeSimd,
    /// (c) encoding, scalar kernels.
    EncodeScalar,
    /// (d) encoding, SIMD kernels.
    EncodeSimd,
    /// All four subfigures.
    All,
}

impl Figure1Part {
    /// Parses the CLI's `--part a|b|c|d|all` spelling.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "a" => Some(Figure1Part::DecodeScalar),
            "b" => Some(Figure1Part::DecodeSimd),
            "c" => Some(Figure1Part::EncodeScalar),
            "d" => Some(Figure1Part::EncodeSimd),
            "all" => Some(Figure1Part::All),
            _ => None,
        }
    }

    /// Whether a (direction, SIMD) combination belongs to this part.
    pub fn includes(self, decode: bool, simd: bool) -> bool {
        match self {
            Figure1Part::DecodeScalar => decode && !simd,
            Figure1Part::DecodeSimd => decode && simd,
            Figure1Part::EncodeScalar => !decode && !simd,
            Figure1Part::EncodeSimd => !decode && simd,
            Figure1Part::All => true,
        }
    }
}

/// Runs the benchmark grids, fanning independent cells over a
/// work-stealing pool.
///
/// Construct with the desired thread count; `1` keeps everything on the
/// calling thread (the serial reference), any other count builds a
/// [`ThreadPool`]. Results are always merged in grid order and are
/// bit-identical to the serial sweep.
pub struct ParallelRunner {
    threads: usize,
    pool: Option<ThreadPool>,
}

impl ParallelRunner {
    /// Creates a runner with `threads` workers; `0` means the machine's
    /// available parallelism.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            ThreadPool::default_threads()
        } else {
            threads
        };
        let pool = (threads > 1).then(|| ThreadPool::new(threads));
        ParallelRunner { threads, pool }
    }

    /// The worker count this runner was built with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The underlying pool, when running with more than one thread.
    pub fn pool(&self) -> Option<&ThreadPool> {
        self.pool.as_ref()
    }

    /// Maps `f` over `cells`, in parallel when a pool exists, returning
    /// results in input order either way.
    fn run_cells<T, R, F>(
        &self,
        cells: Vec<T>,
        f: F,
    ) -> Result<(Vec<R>, ExecutionReport), BenchError>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> Result<R, BenchError> + Sync,
    {
        let n = cells.len();
        let t0 = Instant::now();
        // Each grid cell gets a trace span so the chrome timeline shows
        // cell boundaries on whichever lane ran it.
        let f = move |cell: T| {
            let _cell = hdvb_trace::span!(hdvb_trace::Stage::Cell);
            f(cell)
        };
        let (results, cpu, workers, caller) = match &self.pool {
            None => {
                let results: Vec<Result<R, BenchError>> = cells.into_iter().map(f).collect();
                let wall = t0.elapsed();
                (results, wall, Vec::new(), WorkerStats::default())
            }
            Some(pool) => {
                pool.reset_stats();
                let results = pool.par_map(cells, f)?;
                let stats = pool.stats();
                (results, stats.total_busy(), stats.workers, stats.caller)
            }
        };
        let wall = t0.elapsed();
        let mut out = Vec::with_capacity(n);
        for r in results {
            out.push(r?);
        }
        let report = ExecutionReport {
            threads: self.threads,
            wall,
            cpu,
            cells: n,
            workers,
            caller,
        };
        Ok((out, report))
    }

    /// Measures the full Table V grid (every resolution × sequence ×
    /// codec rate-distortion point) and assembles the rows in grid
    /// order.
    ///
    /// # Errors
    ///
    /// The first codec error in grid order, or a mapped panic.
    pub fn table5_rows(
        &self,
        resolutions: &[Resolution],
        frames: u32,
        options: &CodingOptions,
    ) -> Result<(Vec<Table5Row>, ExecutionReport), BenchError> {
        let mut cells = Vec::new();
        for &resolution in resolutions {
            for sid in SequenceId::ALL {
                for codec in CodecId::ALL {
                    cells.push((resolution, sid, codec));
                }
            }
        }
        let opts = *options;
        let (points, report) = self.run_cells(cells, move |(resolution, sid, codec)| {
            let seq = Sequence::new(sid, resolution);
            measure_rd_point(codec, seq, frames, &opts)
        })?;

        let codecs = CodecId::ALL.len();
        let mut rows = Vec::new();
        let mut it = points.into_iter();
        for &resolution in resolutions {
            for sid in SequenceId::ALL {
                let mut row_points = [(0.0, 0.0); 3];
                for slot in row_points.iter_mut().take(codecs) {
                    let rd = it.next().expect("cell count mismatch");
                    *slot = (rd.psnr_y, rd.bitrate_kbps);
                }
                rows.push(Table5Row {
                    resolution,
                    sequence: sid,
                    points: row_points,
                });
            }
        }
        Ok((rows, report))
    }

    /// Measures the Figure 1 grid for `part` and assembles the bar rows
    /// (fps averaged over the input sequences) in the serial sweep's
    /// order.
    ///
    /// # Errors
    ///
    /// The first codec error in grid order, or a mapped panic.
    pub fn figure1_rows(
        &self,
        resolutions: &[Resolution],
        frames: u32,
        options: &CodingOptions,
        part: Figure1Part,
    ) -> Result<(Vec<Figure1Row>, ExecutionReport), BenchError> {
        // Every tier this CPU supports: scalar plus SSE2, plus AVX2 on
        // capable hardware (three-way columns in the report).
        let levels = SimdLevel::supported_tiers();
        let mut cells = Vec::new();
        for &resolution in resolutions {
            for &simd in &levels {
                let is_simd = simd.is_accelerated();
                if !part.includes(true, is_simd) && !part.includes(false, is_simd) {
                    continue;
                }
                for codec in CodecId::ALL {
                    for sid in SequenceId::ALL {
                        cells.push((resolution, simd, codec, sid));
                    }
                }
            }
        }
        let opts = *options;
        let (throughputs, report) =
            self.run_cells(cells, move |(resolution, simd, codec, sid)| {
                let seq = Sequence::new(sid, resolution);
                measure_figure1_row(codec, seq, frames, &opts.with_simd(simd))
            })?;

        let mut rows = Vec::new();
        let mut it = throughputs.into_iter();
        let n_seqs = SequenceId::ALL.len() as f64;
        for &resolution in resolutions {
            for &simd in &levels {
                let is_simd = simd.is_accelerated();
                if !part.includes(true, is_simd) && !part.includes(false, is_simd) {
                    continue;
                }
                let mut enc_fps = [0.0; 3];
                let mut dec_fps = [0.0; 3];
                let mut enc_stages = [[0u64; 6]; 3];
                let mut dec_stages = [[0u64; 6]; 3];
                for ci in 0..CodecId::ALL.len() {
                    let mut enc_sum = 0.0;
                    let mut dec_sum = 0.0;
                    for _ in SequenceId::ALL {
                        let t = it.next().expect("cell count mismatch");
                        enc_sum += t.encode_fps;
                        dec_sum += t.decode_fps;
                        for (k, (e, d)) in
                            t.encode_stage_ns.iter().zip(&t.decode_stage_ns).enumerate()
                        {
                            enc_stages[ci][k] += e;
                            dec_stages[ci][k] += d;
                        }
                    }
                    enc_fps[ci] = enc_sum / n_seqs;
                    dec_fps[ci] = dec_sum / n_seqs;
                }
                if part.includes(true, is_simd) {
                    rows.push(Figure1Row {
                        resolution,
                        decode: true,
                        tier: simd,
                        fps: dec_fps,
                        stages: dec_stages,
                    });
                }
                if part.includes(false, is_simd) {
                    rows.push(Figure1Row {
                        resolution,
                        decode: false,
                        tier: simd,
                        fps: enc_fps,
                        stages: enc_stages,
                    });
                }
            }
        }
        Ok((rows, report))
    }
}

/// How a GOP-parallel encode split its work.
#[derive(Clone, Copy, Debug)]
pub struct ParallelEncodeStats {
    /// Number of GOP-aligned chunks actually used.
    pub chunks: usize,
    /// Wall-clock time of the parallel encode region.
    pub wall: Duration,
    /// Summed per-chunk codec time (the CPU cost).
    pub cpu: Duration,
}

/// Splits `frames` into at most `chunks` GOP-aligned ranges.
///
/// The boundary rule: a chunk may only start on a multiple of the GOP
/// length `b_frames + 1`, so every chunk begins where the serial
/// encoder would emit an anchor and each chunk's stream is closed (its
/// first frame is intra, and no motion reference can cross the
/// boundary).
fn gop_chunk_ranges(frames: u32, b_frames: u8, chunks: usize) -> Vec<(u32, u32)> {
    let gop = u32::from(b_frames) + 1;
    let total_gops = frames.div_ceil(gop).max(1);
    let n_chunks = (chunks.max(1) as u32).min(total_gops);
    let gops_per_chunk = total_gops.div_ceil(n_chunks);
    let chunk_len = gops_per_chunk * gop;
    let mut ranges = Vec::new();
    let mut start = 0;
    while start < frames {
        let end = frames.min(start + chunk_len);
        ranges.push((start, end));
        start = end;
    }
    ranges
}

/// Encodes a sequence by splitting it into GOP-aligned chunks encoded
/// concurrently on `pool`, then splicing the packet streams in order.
///
/// Each chunk is encoded by a fresh encoder instance, so its stream is
/// closed: it starts with an intra frame and never references outside
/// itself, which makes the concatenation decode exactly (the packets'
/// display indices are rebased to the chunk's position). The output is
/// deterministic for a fixed `chunks` count. Compared to the serial
/// encoder the spliced stream carries `chunks - 1` extra intra points,
/// so [`crate::encode_sequence`] remains the single-thread reference.
///
/// The returned [`EncodeResult::elapsed`] is the wall-clock time of the
/// parallel region (so `encode_fps` reflects realised throughput);
/// [`ParallelEncodeStats`] carries the wall/CPU breakdown.
///
/// # Errors
///
/// Propagates codec errors from any chunk (first chunk in order wins),
/// and [`BenchError::BadRequest`] for zero frames.
pub fn encode_sequence_parallel(
    codec: CodecId,
    seq: Sequence,
    frames: u32,
    options: &CodingOptions,
    pool: &ThreadPool,
    chunks: usize,
) -> Result<(EncodeResult, ParallelEncodeStats), BenchError> {
    if frames == 0 {
        return Err(BenchError::BadRequest("cannot encode zero frames"));
    }
    let ranges = gop_chunk_ranges(frames, options.b_frames, chunks);
    let n_chunks = ranges.len();
    let t0 = Instant::now();
    let opts = *options;
    let parts = pool.par_map(ranges, move |(start, end)| {
        let _chunk = hdvb_trace::span!(hdvb_trace::Stage::GopChunk);
        let mut enc = crate::create_encoder(codec, seq.resolution(), &opts)?;
        let mut packets: Vec<Packet> = Vec::new();
        let mut elapsed = Duration::ZERO;
        for i in start..end {
            let frame = seq.frame(i); // untimed: input generation
            let t = Instant::now();
            let out = enc.encode_frame(&frame)?;
            elapsed += t.elapsed();
            packets.extend(out);
        }
        let t = Instant::now();
        let tail = enc.finish()?;
        elapsed += t.elapsed();
        packets.extend(tail);
        // Rebase display indices from chunk-local to sequence order.
        for p in &mut packets {
            p.display_index += start;
        }
        Ok::<_, BenchError>((packets, elapsed))
    })?;
    let wall = t0.elapsed();

    let mut packets = Vec::new();
    let mut cpu = Duration::ZERO;
    for part in parts {
        let (chunk_packets, chunk_elapsed) = part?;
        packets.extend(chunk_packets);
        cpu += chunk_elapsed;
    }
    let bits = packets.iter().map(Packet::bits).sum();
    let result = EncodeResult {
        packets,
        frames,
        elapsed: wall,
        bits,
        video_fps: seq.format().frame_rate.as_f64(),
    };
    let stats = ParallelEncodeStats {
        chunks: n_chunks,
        wall,
        cpu,
    };
    Ok((result, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_sequence, encode_sequence};
    use hdvb_frame::SequencePsnr;
    use hdvb_seq::SequenceId;

    #[test]
    fn gop_chunk_ranges_align_to_gop() {
        // 12 frames, gop 3 (b_frames 2) -> 4 gops.
        let r = gop_chunk_ranges(12, 2, 4);
        assert_eq!(r, vec![(0, 3), (3, 6), (6, 9), (9, 12)]);
        for (start, _) in &r {
            assert_eq!(start % 3, 0);
        }
        // More chunks than gops collapses to one chunk per gop.
        assert_eq!(gop_chunk_ranges(6, 2, 100).len(), 2);
        // One chunk covers everything.
        assert_eq!(gop_chunk_ranges(10, 2, 1), vec![(0, 10)]);
        // Non-multiple tail stays in the last chunk.
        let r = gop_chunk_ranges(13, 2, 2);
        assert_eq!(r, vec![(0, 9), (9, 13)]);
    }

    #[test]
    fn figure1_part_selection() {
        assert_eq!(Figure1Part::from_name("a"), Some(Figure1Part::DecodeScalar));
        assert_eq!(Figure1Part::from_name("d"), Some(Figure1Part::EncodeSimd));
        assert_eq!(Figure1Part::from_name("all"), Some(Figure1Part::All));
        assert_eq!(Figure1Part::from_name("x"), None);
        assert!(Figure1Part::DecodeSimd.includes(true, true));
        assert!(!Figure1Part::DecodeSimd.includes(false, true));
        assert!(Figure1Part::All.includes(false, false));
    }

    #[test]
    fn gop_parallel_encode_decodes_exactly() {
        let pool = ThreadPool::new(3);
        let options = CodingOptions::default();
        let frames = 12;
        for codec in CodecId::ALL {
            let seq = Sequence::new(SequenceId::RushHour, hdvb_frame::Resolution::new(96, 80));
            let (par, stats) =
                encode_sequence_parallel(codec, seq, frames, &options, &pool, 4).unwrap();
            assert_eq!(stats.chunks, 4, "{codec}");
            let decoded = decode_sequence(codec, &par.packets, options.simd).unwrap();
            assert_eq!(decoded.frames.len(), frames as usize, "{codec}");
            // The spliced stream must reconstruct the sequence about as
            // well as the serial stream does.
            let serial = encode_sequence(codec, seq, frames, &options).unwrap();
            let serial_dec = decode_sequence(codec, &serial.packets, options.simd).unwrap();
            let psnr = |frames_dec: &[hdvb_frame::Frame]| {
                let mut acc = SequencePsnr::new();
                for (i, d) in frames_dec.iter().enumerate() {
                    acc.add(&seq.frame(i as u32), d);
                }
                acc.y_psnr()
            };
            let p_par = psnr(&decoded.frames);
            let p_ser = psnr(&serial_dec.frames);
            assert!(
                (p_par - p_ser).abs() < 3.0,
                "{codec}: parallel {p_par:.2} dB vs serial {p_ser:.2} dB"
            );
        }
    }

    #[test]
    fn gop_parallel_encode_is_deterministic() {
        let pool = ThreadPool::new(4);
        let options = CodingOptions::default();
        let seq = Sequence::new(SequenceId::Riverbed, hdvb_frame::Resolution::new(96, 80));
        for codec in CodecId::ALL {
            let (a, _) = encode_sequence_parallel(codec, seq, 12, &options, &pool, 4).unwrap();
            let (b, _) = encode_sequence_parallel(codec, seq, 12, &options, &pool, 4).unwrap();
            let pa: Vec<&[u8]> = a.packets.iter().map(|p| p.data.as_slice()).collect();
            let pb: Vec<&[u8]> = b.packets.iter().map(|p| p.data.as_slice()).collect();
            assert_eq!(pa, pb, "{codec}");
        }
    }

    #[test]
    fn single_chunk_parallel_encode_matches_serial_exactly() {
        let pool = ThreadPool::new(2);
        let options = CodingOptions::default();
        let seq = Sequence::new(SequenceId::BlueSky, hdvb_frame::Resolution::new(96, 80));
        for codec in CodecId::ALL {
            let (par, stats) = encode_sequence_parallel(codec, seq, 7, &options, &pool, 1).unwrap();
            assert_eq!(stats.chunks, 1);
            let serial = encode_sequence(codec, seq, 7, &options).unwrap();
            assert_eq!(par.packets.len(), serial.packets.len(), "{codec}");
            for (p, s) in par.packets.iter().zip(&serial.packets) {
                assert_eq!(p.data, s.data, "{codec}");
                assert_eq!(p.display_index, s.display_index, "{codec}");
            }
            assert_eq!(par.bits, serial.bits, "{codec}");
        }
    }

    #[test]
    fn parallel_runner_serial_path_has_no_pool() {
        let r = ParallelRunner::new(1);
        assert!(r.pool().is_none());
        assert_eq!(r.threads(), 1);
        let r = ParallelRunner::new(3);
        assert!(r.pool().is_some());
        assert_eq!(r.threads(), 3);
        assert!(ParallelRunner::new(0).threads() >= 1);
    }

    #[test]
    fn table5_rows_parallel_matches_serial() {
        let resolutions = [hdvb_frame::Resolution::new(64, 48)];
        let options = CodingOptions::default();
        let serial = ParallelRunner::new(1);
        let parallel = ParallelRunner::new(4);
        let (rows_s, rep_s) = serial.table5_rows(&resolutions, 4, &options).unwrap();
        let (rows_p, rep_p) = parallel.table5_rows(&resolutions, 4, &options).unwrap();
        assert_eq!(rows_s.len(), rows_p.len());
        assert_eq!(rep_s.cells, rep_p.cells);
        for (s, p) in rows_s.iter().zip(&rows_p) {
            assert_eq!(s.sequence, p.sequence);
            for (ps, pp) in s.points.iter().zip(&p.points) {
                // Bit-identical cells: f64 equality is intentional.
                assert_eq!(ps.0.to_bits(), pp.0.to_bits());
                assert_eq!(ps.1.to_bits(), pp.1.to_bits());
            }
        }
        assert!(rep_p.summary().contains("cells"));
    }
}
