//! The HD-VideoBench benchmark harness.
//!
//! This crate is the paper's actual contribution: a curated set of video
//! codecs ([`CodecId`]), input sequences (re-exported from `hdvb-seq`),
//! tuned coding options ([`CodingOptions`], Section IV of the paper) and
//! a measurement runner that produces the paper's evaluation
//! artifacts — the rate-distortion comparison of Table V and the
//! decode/encode throughput bars of Figure 1.
//!
//! # Example
//!
//! ```
//! use hdvb_core::{encode_sequence, decode_sequence, CodecId, CodingOptions};
//! use hdvb_frame::Resolution;
//! use hdvb_seq::{Sequence, SequenceId};
//!
//! let seq = Sequence::new(SequenceId::RushHour, Resolution::new(64, 48));
//! let options = CodingOptions::default();
//! let encoded = encode_sequence(CodecId::Mpeg2, seq, 3, &options)?;
//! let decoded = decode_sequence(CodecId::Mpeg2, &encoded.packets, options.simd)?;
//! assert_eq!(decoded.frames.len(), 3);
//! # Ok::<(), hdvb_core::BenchError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod codec;
mod error;
mod faults;
mod journal;
mod ladder;
mod options;
mod parallel;
mod report;
mod runner;
mod session;
mod spec;
mod stream;
mod sweep;

pub use codec::{
    create_decoder, create_encoder, CodecId, Packet, PacketKind, VideoDecoder, VideoEncoder,
};
pub use error::BenchError;
pub use faults::{splitmix64, FaultPlan};
pub use hdvb_bits::CorruptKind;
pub use journal::{
    fnv1a64, load_journal, truncate_journal, JournalLoad, JournalOutcome, JournalRecord,
    JournalWriter,
};
pub use ladder::{run_ladder, FrameScaler, LadderResult, LadderSpec, RungResult};
pub use options::{h264_qp_for_mpeg_qscale, CodingOptions};
pub use parallel::{
    encode_sequence_parallel, ExecutionReport, Figure1Part, ParallelEncodeStats, ParallelRunner,
};
pub use report::{
    cpu_model, figure1_markdown, machine_attribution, table5_markdown, Figure1Row, Table5Row,
};
pub use runner::{
    decode_sequence, decode_sequence_cancellable, decode_sequence_resilient, encode_sequence,
    encode_sequence_cancellable, measure_figure1_row, measure_figure1_row_cancellable,
    measure_rd_point, measure_rd_point_cancellable, DecodeResult, EncodeResult, RdPoint,
    ResilientDecode, Throughput,
};
pub use session::{CodecSession, SessionInput, SessionOutput};
pub use spec::{Priority, SessionKind, SessionSpec};
pub use stream::{read_stream, write_stream, StreamHeader};
pub use sweep::{CellOutcome, CellReport, CellTimeout, CellValue, FtSweepReport, SweepPolicy};
