//! Timed measurement runner.
//!
//! Timing accumulates only the codec calls (frame generation and PSNR
//! bookkeeping are excluded), mirroring the original benchmark's use of
//! `mplayer -benchmark`, which disables video output and reports codec
//! time.

use crate::{create_decoder, create_encoder, BenchError, CodecId, CodingOptions, Packet};
use hdvb_dsp::SimdLevel;
use hdvb_frame::{Frame, SequencePsnr, Ssim};
use hdvb_par::CancelToken;
use hdvb_seq::Sequence;
use std::time::{Duration, Instant};

/// Result of encoding a sequence.
#[derive(Debug)]
pub struct EncodeResult {
    /// The coded packets in coding order.
    pub packets: Vec<Packet>,
    /// Number of source frames.
    pub frames: u32,
    /// Accumulated encoder time.
    pub elapsed: Duration,
    /// Total coded bits.
    pub bits: u64,
    /// Frames per second of the video (for bitrate conversion).
    pub video_fps: f64,
}

impl EncodeResult {
    /// Encoder throughput in frames per second.
    pub fn encode_fps(&self) -> f64 {
        f64::from(self.frames) / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Bitrate of the coded stream in kilobits per second at the video's
    /// frame rate (the unit of the paper's Table V).
    pub fn bitrate_kbps(&self) -> f64 {
        self.bits as f64 * self.video_fps / f64::from(self.frames.max(1)) / 1000.0
    }
}

/// Result of decoding a packet stream.
#[derive(Debug)]
pub struct DecodeResult {
    /// Decoded frames in display order.
    pub frames: Vec<Frame>,
    /// Accumulated decoder time.
    pub elapsed: Duration,
}

impl DecodeResult {
    /// Decoder throughput in frames per second.
    pub fn decode_fps(&self) -> f64 {
        self.frames.len() as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Encodes `frames` frames of `seq` with `codec`, timing only the
/// encoder.
///
/// # Errors
///
/// Propagates codec configuration errors.
pub fn encode_sequence(
    codec: CodecId,
    seq: Sequence,
    frames: u32,
    options: &CodingOptions,
) -> Result<EncodeResult, BenchError> {
    encode_sequence_cancellable(codec, seq, frames, options, &CancelToken::never())
}

/// [`encode_sequence`] with a cooperative cancellation token: the token
/// is installed on the encoder (checked at picture boundaries) and also
/// checked here before each frame, so an expired cell deadline stops the
/// encode with [`BenchError::Cancelled`] within one frame's work.
///
/// # Errors
///
/// Propagates codec errors; [`BenchError::Cancelled`] once the token
/// fires.
pub fn encode_sequence_cancellable(
    codec: CodecId,
    seq: Sequence,
    frames: u32,
    options: &CodingOptions,
    cancel: &CancelToken,
) -> Result<EncodeResult, BenchError> {
    if frames == 0 {
        return Err(BenchError::BadRequest("cannot encode zero frames"));
    }
    let mut enc = create_encoder(codec, seq.resolution(), options)?;
    enc.set_cancel(cancel.clone());
    let mut packets = Vec::new();
    let mut elapsed = Duration::ZERO;
    for i in 0..frames {
        if cancel.is_cancelled() {
            return Err(BenchError::Cancelled);
        }
        let frame = seq.frame(i); // untimed: input generation
        let t0 = Instant::now();
        let out = enc.encode_frame(&frame)?;
        elapsed += t0.elapsed();
        packets.extend(out);
    }
    let t0 = Instant::now();
    let tail = enc.finish()?;
    elapsed += t0.elapsed();
    packets.extend(tail);
    let bits = packets.iter().map(Packet::bits).sum();
    Ok(EncodeResult {
        packets,
        frames,
        elapsed,
        bits,
        video_fps: seq.format().frame_rate.as_f64(),
    })
}

/// Decodes a packet stream, timing only the decoder.
///
/// # Errors
///
/// [`BenchError::Bitstream`] on malformed packets.
pub fn decode_sequence(
    codec: CodecId,
    packets: &[Packet],
    simd: SimdLevel,
) -> Result<DecodeResult, BenchError> {
    decode_sequence_cancellable(codec, packets, simd, &CancelToken::never())
}

/// [`decode_sequence`] with a cooperative cancellation token, checked
/// at every packet boundary.
///
/// # Errors
///
/// [`BenchError::Bitstream`] on malformed packets;
/// [`BenchError::Cancelled`] once the token fires.
pub fn decode_sequence_cancellable(
    codec: CodecId,
    packets: &[Packet],
    simd: SimdLevel,
    cancel: &CancelToken,
) -> Result<DecodeResult, BenchError> {
    let mut dec = create_decoder(codec, simd);
    dec.set_cancel(cancel.clone());
    let mut frames = Vec::new();
    let mut elapsed = Duration::ZERO;
    for p in packets {
        let t0 = Instant::now();
        let out = dec.decode_packet(&p.data)?;
        elapsed += t0.elapsed();
        frames.extend(out);
    }
    let t0 = Instant::now();
    let tail = dec.finish();
    elapsed += t0.elapsed();
    frames.extend(tail);
    Ok(DecodeResult { frames, elapsed })
}

/// Outcome of a [`decode_sequence_resilient`] run.
#[derive(Debug)]
pub struct ResilientDecode {
    /// Frames recovered from the packets that decoded cleanly.
    pub frames: Vec<Frame>,
    /// Packets that were dropped: input index plus the typed error.
    pub dropped: Vec<(usize, BenchError)>,
}

/// Decodes a packet stream, dropping malformed packets instead of
/// aborting: one corrupt packet costs its frame(s), not the stream.
///
/// Every decoder guarantees that a failed packet leaves its reference
/// state untouched, so decoding simply resumes at the next packet —
/// the container-level equivalent of resynchronising on the next start
/// code.
pub fn decode_sequence_resilient(
    codec: CodecId,
    packets: &[Packet],
    simd: SimdLevel,
) -> ResilientDecode {
    let mut dec = create_decoder(codec, simd);
    let mut frames = Vec::new();
    let mut dropped = Vec::new();
    for (i, p) in packets.iter().enumerate() {
        match dec.decode_packet(&p.data) {
            Ok(out) => frames.extend(out),
            Err(e) => dropped.push((i, e)),
        }
    }
    frames.extend(dec.finish());
    ResilientDecode { frames, dropped }
}

/// One rate-distortion point: the paper's Table V cell (plus a mean
/// luma SSIM, an extended metric beyond the paper).
#[derive(Clone, Copy, Debug)]
pub struct RdPoint {
    /// Average luma PSNR in dB (Table V's PSNR column).
    pub psnr_y: f64,
    /// Combined 4:2:0-weighted PSNR in dB.
    pub psnr_combined: f64,
    /// Mean luma SSIM over the clip.
    pub ssim_y: f64,
    /// Bitrate in kbit/s at the sequence frame rate.
    pub bitrate_kbps: f64,
}

/// Measures the rate-distortion point of a codec on a sequence:
/// encode, decode, and compare against the regenerated originals.
///
/// # Errors
///
/// Propagates codec errors; fails if the decoder returns the wrong
/// number of frames.
pub fn measure_rd_point(
    codec: CodecId,
    seq: Sequence,
    frames: u32,
    options: &CodingOptions,
) -> Result<RdPoint, BenchError> {
    measure_rd_point_cancellable(codec, seq, frames, options, &CancelToken::never())
}

/// [`measure_rd_point`] with a cooperative cancellation token threaded
/// through the encode, the decode, and the PSNR comparison loop.
///
/// # Errors
///
/// Propagates codec errors; [`BenchError::Cancelled`] once the token
/// fires.
pub fn measure_rd_point_cancellable(
    codec: CodecId,
    seq: Sequence,
    frames: u32,
    options: &CodingOptions,
    cancel: &CancelToken,
) -> Result<RdPoint, BenchError> {
    let encoded = encode_sequence_cancellable(codec, seq, frames, options, cancel)?;
    let decoded = decode_sequence_cancellable(codec, &encoded.packets, options.simd, cancel)?;
    if decoded.frames.len() != frames as usize {
        return Err(BenchError::Bitstream(format!(
            "decoder returned {} of {} frames",
            decoded.frames.len(),
            frames
        )));
    }
    let mut acc = SequencePsnr::new();
    let mut ssim_sum = 0.0;
    for (i, d) in decoded.frames.iter().enumerate() {
        if cancel.is_cancelled() {
            return Err(BenchError::Cancelled);
        }
        let original = seq.frame(i as u32);
        acc.add(&original, d);
        ssim_sum += Ssim::measure(&original, d).value;
    }
    Ok(RdPoint {
        psnr_y: acc.y_psnr(),
        psnr_combined: acc.combined_psnr(),
        ssim_y: ssim_sum / decoded.frames.len().max(1) as f64,
        bitrate_kbps: encoded.bitrate_kbps(),
    })
}

/// Throughput of one Figure-1 bar: encode and decode fps for a codec on
/// a sequence at a SIMD level, plus per-stage codec time when tracing
/// is enabled (all zeros otherwise).
#[derive(Clone, Copy, Debug)]
pub struct Throughput {
    /// Encoder frames per second.
    pub encode_fps: f64,
    /// Decoder frames per second.
    pub decode_fps: f64,
    /// Encoder stage time in nanoseconds, in
    /// [`hdvb_trace::CODEC_STAGES`] order.
    pub encode_stage_ns: [u64; 6],
    /// Decoder stage time in nanoseconds, same order.
    pub decode_stage_ns: [u64; 6],
}

fn stage_delta(after: [u64; 6], before: [u64; 6]) -> [u64; 6] {
    let mut out = [0u64; 6];
    for i in 0..6 {
        out[i] = after[i].saturating_sub(before[i]);
    }
    out
}

/// Measures one Figure-1 data point (both encode and decode fps).
///
/// The cell runs wholly on the calling thread, so deltas of the
/// thread-local stage accumulators around the encode and decode
/// attribute stage time to this cell exactly.
///
/// # Errors
///
/// Propagates codec errors.
pub fn measure_figure1_row(
    codec: CodecId,
    seq: Sequence,
    frames: u32,
    options: &CodingOptions,
) -> Result<Throughput, BenchError> {
    measure_figure1_row_cancellable(codec, seq, frames, options, &CancelToken::never())
}

/// [`measure_figure1_row`] with a cooperative cancellation token.
///
/// On cancellation the error carries no stage attribution; the caller
/// can diff [`hdvb_trace::codec_stage_totals_local`] around the call to
/// attribute the partial work (that is what the fault-tolerant sweep
/// runner reports for `CellOutcome::TimedOut`).
///
/// # Errors
///
/// Propagates codec errors; [`BenchError::Cancelled`] once the token
/// fires.
pub fn measure_figure1_row_cancellable(
    codec: CodecId,
    seq: Sequence,
    frames: u32,
    options: &CodingOptions,
    cancel: &CancelToken,
) -> Result<Throughput, BenchError> {
    let s0 = hdvb_trace::codec_stage_totals_local();
    let encoded = encode_sequence_cancellable(codec, seq, frames, options, cancel)?;
    let s1 = hdvb_trace::codec_stage_totals_local();
    let decoded = decode_sequence_cancellable(codec, &encoded.packets, options.simd, cancel)?;
    let s2 = hdvb_trace::codec_stage_totals_local();
    Ok(Throughput {
        encode_fps: encoded.encode_fps(),
        decode_fps: decoded.decode_fps(),
        encode_stage_ns: stage_delta(s1, s0),
        decode_stage_ns: stage_delta(s2, s1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdvb_frame::Resolution;
    use hdvb_seq::SequenceId;

    fn small_seq(id: SequenceId) -> Sequence {
        Sequence::new(id, Resolution::new(64, 48))
    }

    #[test]
    fn encode_then_decode_counts_match() {
        let seq = small_seq(SequenceId::RushHour);
        let options = CodingOptions::default();
        for codec in CodecId::ALL {
            let enc = encode_sequence(codec, seq, 4, &options).unwrap();
            assert_eq!(enc.packets.len(), 4, "{codec}");
            assert!(enc.bits > 0);
            let dec = decode_sequence(codec, &enc.packets, options.simd).unwrap();
            assert_eq!(dec.frames.len(), 4, "{codec}");
        }
    }

    #[test]
    fn resilient_decode_drops_bad_packets_and_continues() {
        let seq = small_seq(SequenceId::RushHour);
        let options = CodingOptions::default();
        for codec in CodecId::ALL {
            let enc = encode_sequence(codec, seq, 4, &options).unwrap();
            let mut packets = enc.packets;
            // Corrupt the second packet's payload beyond recognition.
            packets[1].data = vec![0xFF; 40];
            let out = decode_sequence_resilient(codec, &packets, options.simd);
            // The corrupted anchor is dropped; B packets that referenced
            // it may cascade, but every drop carries typed attribution.
            assert_eq!(out.dropped[0].0, 1, "{codec}");
            for (i, e) in &out.dropped {
                assert!(
                    matches!(e, BenchError::Corrupt { codec: c, .. } if *c == codec),
                    "{codec} packet {i}: {e:?}"
                );
            }
            // The stream is not dead: the I picture still decodes.
            assert!(!out.frames.is_empty(), "{codec}");
            assert!(
                out.dropped.len() < packets.len(),
                "{codec}: every packet dropped"
            );
        }
    }

    #[test]
    fn zero_frames_is_rejected() {
        let seq = small_seq(SequenceId::BlueSky);
        assert!(matches!(
            encode_sequence(CodecId::Mpeg2, seq, 0, &CodingOptions::default()),
            Err(BenchError::BadRequest(_))
        ));
    }

    #[test]
    fn rd_point_is_sane_for_all_codecs() {
        let seq = small_seq(SequenceId::PedestrianArea);
        let options = CodingOptions::default();
        for codec in CodecId::ALL {
            let rd = measure_rd_point(codec, seq, 4, &options).unwrap();
            assert!(
                rd.psnr_y > 25.0 && rd.psnr_y < 60.0,
                "{codec}: psnr {:.1}",
                rd.psnr_y
            );
            assert!(
                rd.ssim_y > 0.7 && rd.ssim_y <= 1.0,
                "{codec}: ssim {}",
                rd.ssim_y
            );
            assert!(rd.bitrate_kbps > 0.0);
        }
    }

    #[test]
    fn cancelled_token_stops_encode_and_decode() {
        let seq = small_seq(SequenceId::RushHour);
        let options = CodingOptions::default();
        let cancel = hdvb_par::CancelToken::new();
        cancel.cancel();
        for codec in CodecId::ALL {
            assert!(
                matches!(
                    encode_sequence_cancellable(codec, seq, 4, &options, &cancel),
                    Err(BenchError::Cancelled)
                ),
                "{codec}: pre-cancelled encode must stop at the first checkpoint"
            );
            let encoded = encode_sequence(codec, seq, 4, &options).unwrap();
            assert!(
                matches!(
                    decode_sequence_cancellable(codec, &encoded.packets, options.simd, &cancel),
                    Err(BenchError::Cancelled)
                ),
                "{codec}: pre-cancelled decode must stop at the first packet"
            );
            // A live token leaves the measurement untouched.
            let live = hdvb_par::CancelToken::new();
            let a = measure_rd_point(codec, seq, 4, &options).unwrap();
            let b = measure_rd_point_cancellable(codec, seq, 4, &options, &live).unwrap();
            assert_eq!(a.psnr_y.to_bits(), b.psnr_y.to_bits(), "{codec}");
            assert_eq!(
                a.bitrate_kbps.to_bits(),
                b.bitrate_kbps.to_bits(),
                "{codec}"
            );
        }
    }

    #[test]
    fn bitrate_formula_uses_video_fps() {
        // 4 frames at 25 fps carrying 1000 bytes total = 8000 bits ->
        // 8000 * 25 / 4 = 50000 bps = 50 kbps.
        let r = EncodeResult {
            packets: Vec::new(),
            frames: 4,
            elapsed: Duration::from_secs(1),
            bits: 8000,
            video_fps: 25.0,
        };
        assert!((r.bitrate_kbps() - 50.0).abs() < 1e-9);
        assert!((r.encode_fps() - 4.0).abs() < 1e-9);
    }
}
