//! Fault-tolerant sweep execution: panic isolation, per-cell deadline
//! budgets, retry with jittered backoff, and checkpoint/resume through
//! the [`crate::journal`].
//!
//! The plain [`ParallelRunner`] grid methods abort the whole sweep on
//! the first failing cell — fine for short runs, unacceptable for a
//! multi-hour 2160p sweep. The `_ft` variants here
//! ([`ParallelRunner::table5_rows_ft`],
//! [`ParallelRunner::figure1_rows_ft`]) instead resolve **every** cell
//! to a typed [`CellOutcome`]:
//!
//! * a panicking cell is caught (via `hdvb-par`'s per-slot
//!   [`TaskPanic`] isolation), retried up to the policy's limit with
//!   jittered exponential backoff, and reported as
//!   [`CellOutcome::Failed`] only when every attempt panicked;
//! * a cell that overruns its wall-clock budget is cancelled
//!   *cooperatively* at the next frame/packet boundary (the codecs
//!   check a [`CancelToken`] between pictures) and reported as
//!   [`CellOutcome::TimedOut`] with whatever per-stage attribution
//!   `hdvb-trace` collected before the deadline. Timeouts are not
//!   retried in-run — a cell that blew its budget once will blow it
//!   again — but a `--resume` pass re-runs them;
//! * completed cells are journaled (inputs hash + result as `f64` bit
//!   patterns + attempt count) so an interrupted sweep resumes by
//!   restoring finished cells **bit-identically** and re-running only
//!   the failed/timed-out/missing ones.
//!
//! Failed cells surface as `NaN` entries in the assembled rows (the
//! report renders them as `n/a`) so one bad cell no longer takes down
//! the other hundreds.

use crate::faults::{splitmix64, FaultPlan};
use crate::journal::{
    fnv1a64, load_journal, truncate_journal, JournalOutcome, JournalRecord, JournalWriter,
};
use crate::parallel::{ExecutionReport, Figure1Part, ParallelRunner};
use crate::runner::{
    measure_figure1_row_cancellable, measure_rd_point_cancellable, RdPoint, Throughput,
};
use crate::{BenchError, CodecId, CodingOptions, Figure1Row, Table5Row};
use hdvb_frame::Resolution;
use hdvb_par::{CancelToken, TaskPanic, WorkerStats};
use hdvb_seq::{Sequence, SequenceId};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-cell wall-clock budget policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellTimeout {
    /// No deadline: cells run to completion.
    Off,
    /// Budget derived from the cell's size:
    /// `frames × megapixels × 2 s`, clamped to `[120 s, 7200 s]` — a
    /// generous multiple of any sane per-cell cost, so it only fires on
    /// genuinely wedged cells.
    Auto,
    /// A fixed budget for every cell.
    Fixed(Duration),
}

impl CellTimeout {
    /// The budget for one cell of `frames` frames at `resolution`, or
    /// `None` when deadlines are off.
    pub fn budget_for(self, resolution: Resolution, frames: u32) -> Option<Duration> {
        match self {
            CellTimeout::Off => None,
            CellTimeout::Fixed(d) => Some(d),
            CellTimeout::Auto => {
                let megapixels = (resolution.width() * resolution.height()) as f64 / 1e6;
                let secs = (f64::from(frames) * megapixels * 2.0).clamp(120.0, 7200.0);
                Some(Duration::from_secs_f64(secs))
            }
        }
    }
}

/// Retry, deadline, and fault-injection policy for a fault-tolerant
/// sweep.
#[derive(Debug)]
pub struct SweepPolicy {
    /// Extra attempts after the first for a failed or panicked cell
    /// (timeouts are never retried in-run).
    pub max_retries: u32,
    /// Per-cell wall-clock budget.
    pub cell_timeout: CellTimeout,
    /// Base delay of the exponential backoff before a retry; the actual
    /// delay adds deterministic jitter keyed on the cell and attempt.
    pub backoff_base: Duration,
    /// Seed for the backoff jitter.
    pub seed: u64,
    /// Deterministic fault injection (tests and the CI chaos smoke).
    pub faults: FaultPlan,
}

impl Default for SweepPolicy {
    fn default() -> Self {
        SweepPolicy {
            max_retries: 2,
            cell_timeout: CellTimeout::Auto,
            backoff_base: Duration::from_millis(10),
            seed: 0,
            faults: FaultPlan::none(),
        }
    }
}

/// How one grid cell resolved.
#[derive(Clone, Debug, PartialEq)]
pub enum CellOutcome {
    /// The cell produced its value on attempt `attempts`.
    Completed {
        /// 1-based attempt number that succeeded.
        attempts: u32,
    },
    /// The cell's value was restored bit-identically from a resume
    /// journal; it was not re-run.
    Restored,
    /// Every attempt failed; the sweep carries on without this cell.
    Failed {
        /// The final attempt's error (or panic message).
        error: String,
        /// Whether the final attempt panicked (vs. returned an error).
        panicked: bool,
        /// Total attempts made.
        attempts: u32,
    },
    /// The cell overran its wall-clock budget and was cancelled at a
    /// frame/packet boundary.
    TimedOut {
        /// The budget it overran.
        budget: Duration,
        /// Attempts made (always the attempt that timed out).
        attempts: u32,
        /// Per-stage codec nanoseconds attributed before the deadline,
        /// in [`hdvb_trace::CODEC_STAGES`] order (all zero when the
        /// sweep ran untraced).
        stage_ns: [u64; 6],
    },
}

impl CellOutcome {
    /// True for [`Completed`] and [`Restored`] — the cell has a value.
    ///
    /// [`Completed`]: CellOutcome::Completed
    /// [`Restored`]: CellOutcome::Restored
    pub fn is_ok(&self) -> bool {
        matches!(self, CellOutcome::Completed { .. } | CellOutcome::Restored)
    }

    /// A short label for tables: `completed`, `restored`, `failed`,
    /// `failed (panic)`, or `timed-out`.
    pub fn label(&self) -> &'static str {
        match self {
            CellOutcome::Completed { .. } => "completed",
            CellOutcome::Restored => "restored",
            CellOutcome::Failed { panicked: true, .. } => "failed (panic)",
            CellOutcome::Failed { .. } => "failed",
            CellOutcome::TimedOut { .. } => "timed-out",
        }
    }
}

/// One cell's identity and outcome in a fault-tolerant sweep.
#[derive(Clone, Debug)]
pub struct CellReport {
    /// Position in grid order (the fault-injection index space).
    pub index: usize,
    /// Human-readable cell description, e.g. `576p25 rush_hour h264`.
    pub label: String,
    /// The journal key (FNV-1a 64 of the canonical inputs).
    pub key: u64,
    /// How the cell resolved.
    pub outcome: CellOutcome,
}

/// The outcome of a fault-tolerant sweep: execution statistics plus a
/// typed per-cell accounting.
#[derive(Debug)]
pub struct FtSweepReport {
    /// Wall/CPU/worker statistics for the whole sweep.
    pub execution: ExecutionReport,
    /// One entry per grid cell, in grid order.
    pub cells: Vec<CellReport>,
    /// Journal lines skipped during resume because their checksum or
    /// parse failed (torn writes, garbled records).
    pub journal_bad_lines: usize,
}

impl FtSweepReport {
    /// Cells restored from the resume journal without re-running.
    pub fn restored(&self) -> usize {
        self.count(|o| matches!(o, CellOutcome::Restored))
    }

    /// Cells that completed in this run.
    pub fn completed(&self) -> usize {
        self.count(|o| matches!(o, CellOutcome::Completed { .. }))
    }

    /// Cells that exhausted their attempts.
    pub fn failed(&self) -> usize {
        self.count(|o| matches!(o, CellOutcome::Failed { .. }))
    }

    /// Cells that overran their deadline budget.
    pub fn timed_out(&self) -> usize {
        self.count(|o| matches!(o, CellOutcome::TimedOut { .. }))
    }

    /// True when every cell has a value.
    pub fn all_ok(&self) -> bool {
        self.cells.iter().all(|c| c.outcome.is_ok())
    }

    fn count(&self, f: impl Fn(&CellOutcome) -> bool) -> usize {
        self.cells.iter().filter(|c| f(&c.outcome)).count()
    }

    /// A human-readable accounting of the sweep: one headline, then a
    /// table of every cell that did *not* produce a value (empty when
    /// the sweep was clean).
    pub fn failure_summary(&self) -> String {
        let mut out = format!(
            "cells: {} completed, {} restored, {} failed, {} timed out",
            self.completed(),
            self.restored(),
            self.failed(),
            self.timed_out(),
        );
        if self.journal_bad_lines > 0 {
            out.push_str(&format!(
                "\nwarning: {} journal record(s) failed checksum and were skipped; affected cells were re-run",
                self.journal_bad_lines
            ));
        }
        let bad: Vec<&CellReport> = self.cells.iter().filter(|c| !c.outcome.is_ok()).collect();
        if bad.is_empty() {
            out.push('\n');
            return out;
        }
        out.push_str("\n\n| # | cell | outcome | attempts | detail |\n");
        out.push_str("|--:|---|---|--:|---|\n");
        for c in bad {
            let (attempts, detail) = match &c.outcome {
                CellOutcome::Failed {
                    error, attempts, ..
                } => (*attempts, error.clone()),
                CellOutcome::TimedOut {
                    budget,
                    attempts,
                    stage_ns,
                } => (
                    *attempts,
                    format!(
                        "budget {:.1}s; {}",
                        budget.as_secs_f64(),
                        hdvb_trace::stage_breakdown(stage_ns)
                    ),
                ),
                _ => unreachable!("only non-ok outcomes reach here"),
            };
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} |\n",
                c.index,
                c.label,
                c.outcome.label(),
                attempts,
                detail.replace('|', "\\|"),
            ));
        }
        out
    }
}

/// A cell result that can round-trip through journal words
/// (`f64::to_bits` / raw `u64`) without losing a bit.
pub trait CellValue: Sized {
    /// Encodes the value as journal words.
    fn to_words(&self) -> Vec<u64>;
    /// Decodes journal words; `None` when the word count is wrong
    /// (a record from an incompatible sweep).
    fn from_words(words: &[u64]) -> Option<Self>;
}

impl CellValue for RdPoint {
    fn to_words(&self) -> Vec<u64> {
        vec![
            self.psnr_y.to_bits(),
            self.psnr_combined.to_bits(),
            self.ssim_y.to_bits(),
            self.bitrate_kbps.to_bits(),
        ]
    }

    fn from_words(words: &[u64]) -> Option<Self> {
        let [a, b, c, d] = *words else { return None };
        Some(RdPoint {
            psnr_y: f64::from_bits(a),
            psnr_combined: f64::from_bits(b),
            ssim_y: f64::from_bits(c),
            bitrate_kbps: f64::from_bits(d),
        })
    }
}

impl CellValue for Throughput {
    fn to_words(&self) -> Vec<u64> {
        let mut words = vec![self.encode_fps.to_bits(), self.decode_fps.to_bits()];
        words.extend_from_slice(&self.encode_stage_ns);
        words.extend_from_slice(&self.decode_stage_ns);
        words
    }

    fn from_words(words: &[u64]) -> Option<Self> {
        if words.len() != 14 {
            return None;
        }
        let mut encode_stage_ns = [0u64; 6];
        let mut decode_stage_ns = [0u64; 6];
        encode_stage_ns.copy_from_slice(&words[2..8]);
        decode_stage_ns.copy_from_slice(&words[8..14]);
        Some(Throughput {
            encode_fps: f64::from_bits(words[0]),
            decode_fps: f64::from_bits(words[1]),
            encode_stage_ns,
            decode_stage_ns,
        })
    }
}

/// The canonical inputs hash identifying a cell across runs: kind,
/// geometry, sequence, codec, and every coding option. A journal
/// record only restores a cell whose key matches exactly.
fn cell_key(
    kind: &str,
    resolution: Resolution,
    sequence: SequenceId,
    codec: CodecId,
    frames: u32,
    options: &CodingOptions,
) -> u64 {
    let canon = format!(
        "{kind}|{}x{}|{}|{}|simd={}|frames={frames}|q={}|b={}|sr={}|ip={:?}|refs={}|qpoff={}",
        resolution.width(),
        resolution.height(),
        sequence.name(),
        codec.name(),
        options.simd.label(),
        options.mpeg_qscale,
        options.b_frames,
        options.search_range,
        options.intra_period,
        options.h264_refs,
        options.h264_qp_offset,
    );
    fnv1a64(canon.as_bytes())
}

/// One dispatchable cell: its descriptor, display label, journal key,
/// and deadline budget.
struct FtCell<C> {
    desc: C,
    label: String,
    key: u64,
    budget: Option<Duration>,
}

/// Why a dispatched attempt did not produce a value.
enum CellErr {
    Timeout { stage_ns: [u64; 6] },
    Fail(String),
}

/// Renders a panic payload as text the way `hdvb-par` does, containing
/// payloads whose own `Drop` panics.
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    };
    let _ = catch_unwind(AssertUnwindSafe(move || drop(payload)));
    message
}

/// Deterministic jittered exponential backoff before retry `attempt`
/// (2-based): `base × 2^(attempt-2)` plus up to the same again of
/// jitter keyed on `(seed, cell key, attempt)`, capped at 200 ms.
fn backoff_jitter(seed: u64, base: Duration, key: u64, attempt: u32) -> Duration {
    let base_ms = (base.as_millis() as u64).max(1);
    let exp = base_ms.saturating_mul(1u64 << attempt.saturating_sub(2).min(4));
    let jitter = splitmix64(seed ^ key ^ u64::from(attempt)) % exp;
    Duration::from_millis((exp + jitter).min(200))
}

fn journal_io(path: &Path, e: std::io::Error) -> BenchError {
    BenchError::Journal(format!("{}: {e}", path.display()))
}

/// The fault-tolerant sweep engine shared by the Table V and Figure 1
/// grids: resume restore, round-based dispatch with panic isolation,
/// retry with backoff, deadline tokens, and journaling.
fn run_ft_cells<C, V, F>(
    runner: &ParallelRunner,
    kind: &'static str,
    cells: Vec<FtCell<C>>,
    policy: &SweepPolicy,
    journal_path: Option<&Path>,
    resume_path: Option<&Path>,
    f: F,
) -> Result<(Vec<Option<V>>, FtSweepReport), BenchError>
where
    C: Copy + Send + Sync,
    V: CellValue + Send,
    F: Fn(C, &CancelToken) -> Result<V, BenchError> + Sync,
{
    let n = cells.len();
    let t0 = Instant::now();

    let mut values: Vec<Option<V>> = (0..n).map(|_| None).collect();
    let mut outcomes: Vec<Option<CellOutcome>> = vec![None; n];
    let mut journal_bad_lines = 0;
    if let Some(path) = resume_path {
        let load = load_journal(path).map_err(|e| journal_io(path, e))?;
        journal_bad_lines = load.bad_lines;
        let restorable = load.restorable(kind);
        for (i, cell) in cells.iter().enumerate() {
            if let Some(rec) = restorable.get(&cell.key) {
                if let Some(v) = V::from_words(&rec.words) {
                    values[i] = Some(v);
                    outcomes[i] = Some(CellOutcome::Restored);
                }
            }
        }
    }

    let writer = match journal_path {
        Some(p) => Some(Mutex::new(
            JournalWriter::append_to(p).map_err(|e| journal_io(p, e))?,
        )),
        None => None,
    };
    // The first journal I/O error inside a worker, surfaced after the
    // sweep (workers cannot return it through the cell result).
    let journal_err: Mutex<Option<std::io::Error>> = Mutex::new(None);
    let journal_append = |record: JournalRecord| {
        if let Some(w) = &writer {
            let mut w = w.lock().unwrap_or_else(|e| e.into_inner());
            if let Err(e) = w.append(&record) {
                let mut slot = journal_err.lock().unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(e);
            }
        }
    };

    let mut pending: Vec<usize> = (0..n).filter(|&i| outcomes[i].is_none()).collect();
    if let Some(pool) = runner.pool() {
        pool.reset_stats();
    }

    let max_attempts = policy.max_retries.saturating_add(1);
    let mut attempt = 0u32;
    while !pending.is_empty() && attempt < max_attempts {
        attempt += 1;
        let round = std::mem::take(&mut pending);
        let items: Vec<(usize, u32)> = round.iter().map(|&i| (i, attempt)).collect();

        let run_one = |(idx, attempt): (usize, u32)| -> Result<V, CellErr> {
            let cell = &cells[idx];
            if attempt > 1 {
                std::thread::sleep(backoff_jitter(
                    policy.seed,
                    policy.backoff_base,
                    cell.key,
                    attempt,
                ));
            }
            // The deadline clock starts before fault injection so an
            // injected stall counts against the budget (that is how the
            // chaos smoke produces a timeout).
            let token = match cell.budget {
                None => CancelToken::never(),
                Some(budget) => CancelToken::with_budget(budget),
            };
            policy.faults.before_cell(idx, attempt);
            let _span = hdvb_trace::span!(hdvb_trace::Stage::Cell);
            let s0 = hdvb_trace::codec_stage_totals_local();
            match f(cell.desc, &token) {
                Ok(v) => {
                    journal_append(JournalRecord {
                        key: cell.key,
                        kind: kind.to_string(),
                        outcome: JournalOutcome::Ok,
                        attempts: attempt,
                        words: v.to_words(),
                    });
                    Ok(v)
                }
                Err(BenchError::Cancelled) => {
                    let s1 = hdvb_trace::codec_stage_totals_local();
                    let mut stage_ns = [0u64; 6];
                    for (d, (a, b)) in stage_ns.iter_mut().zip(s1.iter().zip(&s0)) {
                        *d = a.saturating_sub(*b);
                    }
                    journal_append(JournalRecord {
                        key: cell.key,
                        kind: kind.to_string(),
                        outcome: JournalOutcome::TimedOut,
                        attempts: attempt,
                        words: stage_ns.to_vec(),
                    });
                    Err(CellErr::Timeout { stage_ns })
                }
                Err(e) => {
                    journal_append(JournalRecord {
                        key: cell.key,
                        kind: kind.to_string(),
                        outcome: JournalOutcome::Failed,
                        attempts: attempt,
                        words: Vec::new(),
                    });
                    Err(CellErr::Fail(e.to_string()))
                }
            }
        };

        let results: Vec<Result<Result<V, CellErr>, TaskPanic>> = match runner.pool() {
            Some(pool) => pool.par_map_catch(items, run_one),
            None => items
                .into_iter()
                .enumerate()
                .map(|(slot, item)| {
                    catch_unwind(AssertUnwindSafe(|| run_one(item))).map_err(|payload| TaskPanic {
                        index: slot,
                        message: panic_message(payload),
                    })
                })
                .collect(),
        };

        for (&idx, result) in round.iter().zip(results) {
            let cell = &cells[idx];
            match result {
                Ok(Ok(v)) => {
                    values[idx] = Some(v);
                    outcomes[idx] = Some(CellOutcome::Completed { attempts: attempt });
                }
                Ok(Err(CellErr::Timeout { stage_ns })) => {
                    // Not retried in-run: the same budget would be
                    // overrun again. A resume pass re-runs it.
                    outcomes[idx] = Some(CellOutcome::TimedOut {
                        budget: cell.budget.unwrap_or(Duration::ZERO),
                        attempts: attempt,
                        stage_ns,
                    });
                }
                Ok(Err(CellErr::Fail(error))) => {
                    if attempt < max_attempts {
                        pending.push(idx);
                    } else {
                        outcomes[idx] = Some(CellOutcome::Failed {
                            error,
                            panicked: false,
                            attempts: attempt,
                        });
                    }
                }
                Err(panic) => {
                    // The worker could not journal a panicked attempt;
                    // record it here so a resume knows it was tried.
                    journal_append(JournalRecord {
                        key: cell.key,
                        kind: kind.to_string(),
                        outcome: JournalOutcome::Failed,
                        attempts: attempt,
                        words: Vec::new(),
                    });
                    if attempt < max_attempts {
                        pending.push(idx);
                    } else {
                        outcomes[idx] = Some(CellOutcome::Failed {
                            error: panic.message,
                            panicked: true,
                            attempts: attempt,
                        });
                    }
                }
            }
        }
    }

    let wall = t0.elapsed();
    let (cpu, workers, caller) = match runner.pool() {
        Some(pool) => {
            let stats = pool.stats();
            (stats.total_busy(), stats.workers, stats.caller)
        }
        None => (wall, Vec::new(), WorkerStats::default()),
    };

    drop(writer);
    if let Some(e) = journal_err.into_inner().unwrap_or_else(|e| e.into_inner()) {
        let path = journal_path.expect("journal error implies a journal path");
        return Err(journal_io(path, e));
    }
    // The torn-write fault fires after the journal is closed, so the
    // file looks exactly like a mid-run kill.
    if let (Some(path), Some(bytes)) = (journal_path, policy.faults.journal_truncate_bytes()) {
        truncate_journal(path, bytes).map_err(|e| journal_io(path, e))?;
    }

    let execution = ExecutionReport {
        threads: runner.threads(),
        wall,
        cpu,
        cells: n,
        workers,
        caller,
    };
    let cell_reports = cells
        .iter()
        .zip(outcomes)
        .enumerate()
        .map(|(index, (cell, outcome))| CellReport {
            index,
            label: cell.label.clone(),
            key: cell.key,
            outcome: outcome.expect("every cell resolves to an outcome"),
        })
        .collect();
    let report = FtSweepReport {
        execution,
        cells: cell_reports,
        journal_bad_lines,
    };
    Ok((values, report))
}

impl ParallelRunner {
    /// The fault-tolerant Table V sweep: like
    /// [`table5_rows`](ParallelRunner::table5_rows) but each cell
    /// resolves to a [`CellOutcome`] instead of aborting the run, with
    /// optional journaling (`journal`) and resume (`resume`). Failed
    /// cells surface as `NaN` points, rendered `n/a` by the report.
    ///
    /// Resumed or not, the assembled values are bit-identical to an
    /// uninterrupted serial sweep: cells are deterministic and the
    /// journal stores `f64` bit patterns.
    ///
    /// # Errors
    ///
    /// Only infrastructure failures (journal I/O); cell failures are
    /// reported in the [`FtSweepReport`].
    pub fn table5_rows_ft(
        &self,
        resolutions: &[Resolution],
        frames: u32,
        options: &CodingOptions,
        policy: &SweepPolicy,
        journal: Option<&Path>,
        resume: Option<&Path>,
    ) -> Result<(Vec<Table5Row>, FtSweepReport), BenchError> {
        let mut cells = Vec::new();
        for &resolution in resolutions {
            for sid in SequenceId::ALL {
                for codec in CodecId::ALL {
                    cells.push(FtCell {
                        desc: (resolution, sid, codec),
                        label: format!("{} {} {}", resolution.label(), sid.name(), codec.name()),
                        key: cell_key("table5", resolution, sid, codec, frames, options),
                        budget: policy.cell_timeout.budget_for(resolution, frames),
                    });
                }
            }
        }
        let opts = *options;
        let (points, report) = run_ft_cells(
            self,
            "table5",
            cells,
            policy,
            journal,
            resume,
            move |(resolution, sid, codec): (Resolution, SequenceId, CodecId), cancel| {
                let seq = Sequence::new(sid, resolution);
                measure_rd_point_cancellable(codec, seq, frames, &opts, cancel)
            },
        )?;

        let missing = RdPoint {
            psnr_y: f64::NAN,
            psnr_combined: f64::NAN,
            ssim_y: f64::NAN,
            bitrate_kbps: f64::NAN,
        };
        let codecs = CodecId::ALL.len();
        let mut rows = Vec::new();
        let mut it = points.into_iter();
        for &resolution in resolutions {
            for sid in SequenceId::ALL {
                let mut row_points = [(0.0, 0.0); 3];
                for slot in row_points.iter_mut().take(codecs) {
                    let rd = it.next().expect("cell count mismatch").unwrap_or(missing);
                    *slot = (rd.psnr_y, rd.bitrate_kbps);
                }
                rows.push(Table5Row {
                    resolution,
                    sequence: sid,
                    points: row_points,
                });
            }
        }
        Ok((rows, report))
    }

    /// The fault-tolerant Figure 1 sweep: like
    /// [`figure1_rows`](ParallelRunner::figure1_rows) but each cell
    /// resolves to a [`CellOutcome`], with optional journaling and
    /// resume. A missing cell contributes `NaN` to its bar's average,
    /// rendered `n/a` by the report.
    ///
    /// # Errors
    ///
    /// Only infrastructure failures (journal I/O); cell failures are
    /// reported in the [`FtSweepReport`].
    // One argument over clippy's limit, but every caller passes all of
    // them and a config struct would just restate `SweepPolicy`.
    #[allow(clippy::too_many_arguments)]
    pub fn figure1_rows_ft(
        &self,
        resolutions: &[Resolution],
        frames: u32,
        options: &CodingOptions,
        part: Figure1Part,
        policy: &SweepPolicy,
        journal: Option<&Path>,
        resume: Option<&Path>,
    ) -> Result<(Vec<Figure1Row>, FtSweepReport), BenchError> {
        let levels = hdvb_dsp::SimdLevel::supported_tiers();
        let mut cells = Vec::new();
        for &resolution in resolutions {
            for &simd in &levels {
                let is_simd = simd.is_accelerated();
                if !part.includes(true, is_simd) && !part.includes(false, is_simd) {
                    continue;
                }
                for codec in CodecId::ALL {
                    for sid in SequenceId::ALL {
                        cells.push(FtCell {
                            desc: (resolution, simd, codec, sid),
                            label: format!(
                                "{} {} {} {}",
                                resolution.label(),
                                simd.label(),
                                codec.name(),
                                sid.name()
                            ),
                            key: cell_key(
                                "figure1",
                                resolution,
                                sid,
                                codec,
                                frames,
                                &options.with_simd(simd),
                            ),
                            budget: policy.cell_timeout.budget_for(resolution, frames),
                        });
                    }
                }
            }
        }
        let opts = *options;
        let (throughputs, report) = run_ft_cells(
            self,
            "figure1",
            cells,
            policy,
            journal,
            resume,
            move |(resolution, simd, codec, sid): (
                Resolution,
                hdvb_dsp::SimdLevel,
                CodecId,
                SequenceId,
            ),
                  cancel| {
                let seq = Sequence::new(sid, resolution);
                measure_figure1_row_cancellable(codec, seq, frames, &opts.with_simd(simd), cancel)
            },
        )?;

        let missing = Throughput {
            encode_fps: f64::NAN,
            decode_fps: f64::NAN,
            encode_stage_ns: [0; 6],
            decode_stage_ns: [0; 6],
        };
        let mut rows = Vec::new();
        let mut it = throughputs.into_iter();
        let n_seqs = SequenceId::ALL.len() as f64;
        for &resolution in resolutions {
            for &simd in &levels {
                let is_simd = simd.is_accelerated();
                if !part.includes(true, is_simd) && !part.includes(false, is_simd) {
                    continue;
                }
                let mut enc_fps = [0.0; 3];
                let mut dec_fps = [0.0; 3];
                let mut enc_stages = [[0u64; 6]; 3];
                let mut dec_stages = [[0u64; 6]; 3];
                for ci in 0..CodecId::ALL.len() {
                    let mut enc_sum = 0.0;
                    let mut dec_sum = 0.0;
                    for _ in SequenceId::ALL {
                        let t = it.next().expect("cell count mismatch").unwrap_or(missing);
                        enc_sum += t.encode_fps;
                        dec_sum += t.decode_fps;
                        for (k, (e, d)) in
                            t.encode_stage_ns.iter().zip(&t.decode_stage_ns).enumerate()
                        {
                            enc_stages[ci][k] += e;
                            dec_stages[ci][k] += d;
                        }
                    }
                    enc_fps[ci] = enc_sum / n_seqs;
                    dec_fps[ci] = dec_sum / n_seqs;
                }
                if part.includes(true, is_simd) {
                    rows.push(Figure1Row {
                        resolution,
                        decode: true,
                        tier: simd,
                        fps: dec_fps,
                        stages: dec_stages,
                    });
                }
                if part.includes(false, is_simd) {
                    rows.push(Figure1Row {
                        resolution,
                        decode: false,
                        tier: simd,
                        fps: enc_fps,
                        stages: enc_stages,
                    });
                }
            }
        }
        Ok((rows, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_cells(n: usize) -> Vec<FtCell<usize>> {
        synthetic_cells_with_budget(n, None)
    }

    fn synthetic_cells_with_budget(n: usize, budget: Option<Duration>) -> Vec<FtCell<usize>> {
        (0..n)
            .map(|i| FtCell {
                desc: i,
                label: format!("cell {i}"),
                key: fnv1a64(format!("synthetic|{i}").as_bytes()),
                budget,
            })
            .collect()
    }

    fn value(i: usize) -> RdPoint {
        RdPoint {
            psnr_y: i as f64 + 0.25,
            psnr_combined: i as f64 + 0.5,
            ssim_y: 0.9,
            bitrate_kbps: 1000.0 + i as f64,
        }
    }

    fn temp_journal(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hdvb-sweep-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn cell_keys_distinguish_every_input() {
        let opts = CodingOptions::default();
        let res = Resolution::new(64, 48);
        let base = cell_key(
            "table5",
            res,
            SequenceId::RushHour,
            CodecId::Mpeg2,
            4,
            &opts,
        );
        assert_eq!(
            base,
            cell_key(
                "table5",
                res,
                SequenceId::RushHour,
                CodecId::Mpeg2,
                4,
                &opts
            ),
            "key must be stable"
        );
        for other in [
            cell_key(
                "figure1",
                res,
                SequenceId::RushHour,
                CodecId::Mpeg2,
                4,
                &opts,
            ),
            cell_key("table5", res, SequenceId::BlueSky, CodecId::Mpeg2, 4, &opts),
            cell_key("table5", res, SequenceId::RushHour, CodecId::H264, 4, &opts),
            cell_key(
                "table5",
                res,
                SequenceId::RushHour,
                CodecId::Mpeg2,
                5,
                &opts,
            ),
            cell_key(
                "table5",
                res,
                SequenceId::RushHour,
                CodecId::Mpeg2,
                4,
                &opts.with_qscale(6),
            ),
        ] {
            assert_ne!(base, other);
        }
    }

    #[test]
    fn auto_budget_clamps() {
        let small = CellTimeout::Auto
            .budget_for(Resolution::new(64, 48), 4)
            .unwrap();
        assert_eq!(small, Duration::from_secs(120), "floor");
        let huge = CellTimeout::Auto
            .budget_for(Resolution::new(3840, 2160), 100_000)
            .unwrap();
        assert_eq!(huge, Duration::from_secs(7200), "ceiling");
        assert_eq!(
            CellTimeout::Off.budget_for(Resolution::new(64, 48), 4),
            None
        );
    }

    #[test]
    fn panicking_cell_is_retried_and_heals() {
        for threads in [1, 3] {
            let runner = ParallelRunner::new(threads);
            let policy = SweepPolicy {
                faults: FaultPlan::parse("panic@1x1").unwrap(),
                ..SweepPolicy::default()
            };
            let (values, report) = run_ft_cells(
                &runner,
                "table5",
                synthetic_cells(4),
                &policy,
                None,
                None,
                |i, _cancel: &CancelToken| Ok(value(i)),
            )
            .unwrap();
            assert!(report.all_ok(), "threads {threads}");
            for (i, v) in values.iter().enumerate() {
                assert_eq!(
                    v.as_ref().unwrap().psnr_y.to_bits(),
                    value(i).psnr_y.to_bits()
                );
            }
            assert_eq!(
                report.cells[1].outcome,
                CellOutcome::Completed { attempts: 2 },
                "threads {threads}: the panicked cell needed a retry"
            );
            assert_eq!(
                report.cells[0].outcome,
                CellOutcome::Completed { attempts: 1 }
            );
        }
    }

    #[test]
    fn exhausted_retries_become_failed_with_panic_flag() {
        let runner = ParallelRunner::new(2);
        let policy = SweepPolicy {
            max_retries: 1,
            faults: FaultPlan::parse("panic@0x9").unwrap(),
            ..SweepPolicy::default()
        };
        let (values, report) = run_ft_cells(
            &runner,
            "table5",
            synthetic_cells(2),
            &policy,
            None,
            None,
            |i, _cancel: &CancelToken| Ok(value(i)),
        )
        .unwrap();
        assert!(values[0].is_none());
        match &report.cells[0].outcome {
            CellOutcome::Failed {
                panicked,
                attempts,
                error,
            } => {
                assert!(*panicked);
                assert_eq!(*attempts, 2);
                assert!(error.contains("injected fault"), "{error}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert_eq!(report.failed(), 1);
        assert!(report.failure_summary().contains("failed (panic)"));
    }

    #[test]
    fn deadline_overrun_times_out_without_retry() {
        let runner = ParallelRunner::new(1);
        let policy = SweepPolicy {
            faults: FaultPlan::parse("stall@1:80").unwrap(),
            ..SweepPolicy::default()
        };
        let (values, report) = run_ft_cells(
            &runner,
            "table5",
            synthetic_cells_with_budget(3, Some(Duration::from_millis(20))),
            &policy,
            None,
            None,
            |i, cancel: &CancelToken| {
                // A cooperative cell: checks its token like the codecs
                // do at picture boundaries.
                if cancel.is_cancelled() {
                    return Err(BenchError::Cancelled);
                }
                Ok(value(i))
            },
        )
        .unwrap();
        assert!(values[1].is_none());
        match &report.cells[1].outcome {
            CellOutcome::TimedOut {
                budget, attempts, ..
            } => {
                assert_eq!(*budget, Duration::from_millis(20));
                assert_eq!(*attempts, 1, "timeouts are not retried in-run");
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
        assert_eq!(report.timed_out(), 1);
        assert!(report.failure_summary().contains("timed-out"));
        assert!(values[0].is_some() && values[2].is_some());
    }

    #[test]
    fn journal_resume_restores_bit_identical_values() {
        let path = temp_journal("resume.journal");
        let runner = ParallelRunner::new(2);

        // First run: one cell fails every attempt, the rest complete
        // and are journaled.
        let policy = SweepPolicy {
            max_retries: 0,
            faults: FaultPlan::parse("panic@2x9").unwrap(),
            ..SweepPolicy::default()
        };
        let (first_vals, first) = run_ft_cells(
            &runner,
            "table5",
            synthetic_cells(5),
            &policy,
            Some(&path),
            None,
            |i, _cancel: &CancelToken| Ok(value(i)),
        )
        .unwrap();
        assert_eq!(first.failed(), 1);
        assert_eq!(first.completed(), 4);

        // Resume: completed cells restore without re-running (inject a
        // panic for every completed cell to prove they are skipped);
        // the failed cell re-runs and heals.
        let policy = SweepPolicy {
            faults: FaultPlan::parse("panic@0x9,panic@1x9,panic@3x9,panic@4x9").unwrap(),
            ..SweepPolicy::default()
        };
        let (vals, resumed) = run_ft_cells(
            &runner,
            "table5",
            synthetic_cells(5),
            &policy,
            Some(&path),
            Some(&path),
            |i, _cancel: &CancelToken| Ok(value(i)),
        )
        .unwrap();
        assert!(resumed.all_ok());
        assert_eq!(resumed.restored(), 4);
        assert_eq!(resumed.completed(), 1);
        assert_eq!(
            resumed.cells[2].outcome,
            CellOutcome::Completed { attempts: 1 }
        );
        for i in 0..5 {
            let got = vals[i].as_ref().unwrap();
            let want = value(i);
            assert_eq!(got.psnr_y.to_bits(), want.psnr_y.to_bits());
            assert_eq!(got.psnr_combined.to_bits(), want.psnr_combined.to_bits());
            assert_eq!(got.ssim_y.to_bits(), want.ssim_y.to_bits());
            assert_eq!(got.bitrate_kbps.to_bits(), want.bitrate_kbps.to_bits());
            if i != 2 {
                assert_eq!(
                    first_vals[i].as_ref().unwrap().psnr_y.to_bits(),
                    got.psnr_y.to_bits()
                );
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_journal_records_are_skipped_and_rerun() {
        let path = temp_journal("torn.journal");
        let runner = ParallelRunner::new(1);

        // Clean run journals all 3 cells, then the injected torn write
        // chops the file mid-record.
        let full_len = {
            let policy = SweepPolicy::default();
            run_ft_cells(
                &runner,
                "table5",
                synthetic_cells(3),
                &policy,
                Some(&path),
                None,
                |i, _c: &CancelToken| Ok(value(i)),
            )
            .unwrap();
            std::fs::metadata(&path).unwrap().len()
        };
        let policy = SweepPolicy {
            faults: FaultPlan::parse(&format!("truncate-journal@{}", full_len - 7)).unwrap(),
            ..SweepPolicy::default()
        };
        // Re-running with the truncation fault leaves a torn tail.
        run_ft_cells(
            &runner,
            "table5",
            synthetic_cells(3),
            &policy,
            Some(&path),
            Some(&path),
            |i, _c: &CancelToken| Ok(value(i)),
        )
        .unwrap();

        // Resume from the torn journal: the garbled record is counted,
        // its cell re-runs, the others restore.
        let (vals, report) = run_ft_cells(
            &runner,
            "table5",
            synthetic_cells(3),
            &SweepPolicy::default(),
            Some(&path),
            Some(&path),
            |i, _c: &CancelToken| Ok(value(i)),
        )
        .unwrap();
        assert!(report.journal_bad_lines >= 1);
        assert!(report.all_ok());
        assert_eq!(report.restored() + report.completed(), 3);
        assert!(report.completed() >= 1, "the torn cell must re-run");
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(
                v.as_ref().unwrap().psnr_y.to_bits(),
                value(i).psnr_y.to_bits()
            );
        }
        assert!(report.failure_summary().contains("journal record"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn ft_sweep_matches_plain_sweep_bit_identically() {
        let resolutions = [Resolution::new(64, 48)];
        let options = CodingOptions::default();
        let runner = ParallelRunner::new(2);
        let (plain, _) = runner.table5_rows(&resolutions, 4, &options).unwrap();
        let (ft, report) = runner
            .table5_rows_ft(
                &resolutions,
                4,
                &options,
                &SweepPolicy::default(),
                None,
                None,
            )
            .unwrap();
        assert!(report.all_ok());
        assert_eq!(plain.len(), ft.len());
        for (a, b) in plain.iter().zip(&ft) {
            assert_eq!(a.sequence, b.sequence);
            for (pa, pb) in a.points.iter().zip(&b.points) {
                assert_eq!(pa.0.to_bits(), pb.0.to_bits());
                assert_eq!(pa.1.to_bits(), pb.1.to_bits());
            }
        }
    }
}
