//! Declarative session descriptions and priority classes.
//!
//! A serving front end opens sessions from *data* — an OPEN message on a
//! wire, a load-generator config, a CLI flag — not from code that calls
//! [`CodecSession::encoder`] directly. [`SessionSpec`] is that data: the
//! codec-facing subset of an open request, wire-representable (every
//! field round-trips through small scalars) and buildable into a live
//! [`CodecSession`] on the server side, where the server — not the
//! client — picks the SIMD tier. [`Priority`] is the scheduling class
//! attached to the open request, honoured by the serve layer at
//! queue-claim time.

use crate::{BenchError, CodecId, CodecSession, CodingOptions};
use hdvb_dsp::SimdLevel;
use hdvb_frame::Resolution;

/// Scheduling class of a serve session. `Live` sessions are claimed
/// before `Batch` sessions whenever pool workers pick the next ready
/// session, and admission control holds `Batch` to a tighter latency
/// threshold so interactive traffic keeps headroom under overload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Interactive/low-latency traffic; claimed first.
    Live,
    /// Throughput traffic; claimed when no live session is ready and
    /// rejected first under overload.
    Batch,
}

impl Default for Priority {
    /// Callers that do not care about scheduling get throughput class.
    fn default() -> Self {
        Priority::Batch
    }
}

impl Priority {
    /// Both classes, claim order first.
    pub const ALL: [Priority; 2] = [Priority::Live, Priority::Batch];

    /// Dense index for per-class arrays (`Live` = 0, `Batch` = 1).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Priority::Live => 0,
            Priority::Batch => 1,
        }
    }

    /// Wire byte for this class.
    pub fn as_u8(self) -> u8 {
        match self {
            Priority::Live => 0,
            Priority::Batch => 1,
        }
    }

    /// Parses a wire byte.
    pub fn from_u8(b: u8) -> Option<Priority> {
        match b {
            0 => Some(Priority::Live),
            1 => Some(Priority::Batch),
            _ => None,
        }
    }

    /// Short name used in reports and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Live => "live",
            Priority::Batch => "batch",
        }
    }

    /// Parses a short name.
    pub fn from_name(name: &str) -> Option<Priority> {
        Priority::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// What a session does with its inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SessionKind {
    /// Raw frames in, `codec` packets out.
    Encode,
    /// `codec` packets in, raw frames out.
    Decode,
    /// `source` packets in, `codec` packets out.
    Transcode,
}

impl SessionKind {
    /// All kinds.
    pub const ALL: [SessionKind; 3] = [
        SessionKind::Encode,
        SessionKind::Decode,
        SessionKind::Transcode,
    ];

    /// Wire byte for this kind.
    pub fn as_u8(self) -> u8 {
        match self {
            SessionKind::Encode => 0,
            SessionKind::Decode => 1,
            SessionKind::Transcode => 2,
        }
    }

    /// Parses a wire byte.
    pub fn from_u8(b: u8) -> Option<SessionKind> {
        match b {
            0 => Some(SessionKind::Encode),
            1 => Some(SessionKind::Decode),
            2 => Some(SessionKind::Transcode),
            _ => None,
        }
    }

    /// Short name used in reports and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            SessionKind::Encode => "encode",
            SessionKind::Decode => "decode",
            SessionKind::Transcode => "transcode",
        }
    }

    /// Parses a short name.
    pub fn from_name(name: &str) -> Option<SessionKind> {
        SessionKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// A wire-representable description of a [`CodecSession`] to open.
///
/// Carries only what the *client* legitimately decides (workload shape
/// and operating point); execution policy like the SIMD tier is supplied
/// by the server at [`build`](Self::build) time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionSpec {
    /// Encode, decode or transcode.
    pub kind: SessionKind,
    /// The output codec (encode/transcode) or input codec (decode).
    pub codec: CodecId,
    /// Transcode source codec; ignored for encode/decode.
    pub source: CodecId,
    /// Frame dimensions (encode/transcode; decoders learn it from the
    /// bitstream but admission sizing still uses it).
    pub resolution: Resolution,
    /// MPEG quantiser scale for the operating point (paper default 5).
    pub qscale: u16,
    /// B pictures between anchors (paper default 2).
    pub b_frames: u8,
    /// Drop corrupt packets instead of failing the session.
    pub resilient: bool,
}

impl SessionSpec {
    /// An encode session at the paper's default operating point.
    pub fn encode(codec: CodecId, resolution: Resolution) -> SessionSpec {
        SessionSpec {
            kind: SessionKind::Encode,
            codec,
            source: codec,
            resolution,
            qscale: 5,
            b_frames: 2,
            resilient: false,
        }
    }

    /// A decode session.
    pub fn decode(codec: CodecId, resolution: Resolution) -> SessionSpec {
        SessionSpec {
            kind: SessionKind::Decode,
            ..SessionSpec::encode(codec, resolution)
        }
    }

    /// A transcode session (`source` packets re-encoded as `target`).
    pub fn transcode(source: CodecId, target: CodecId, resolution: Resolution) -> SessionSpec {
        SessionSpec {
            kind: SessionKind::Transcode,
            source,
            ..SessionSpec::encode(target, resolution)
        }
    }

    /// Returns a copy at a different quantiser scale.
    pub fn with_qscale(mut self, qscale: u16) -> SessionSpec {
        self.qscale = qscale;
        self
    }

    /// Returns a copy with a different B-frame count.
    pub fn with_b_frames(mut self, b: u8) -> SessionSpec {
        self.b_frames = b;
        self
    }

    /// Returns a copy with resilient decoding enabled.
    pub fn with_resilience(mut self) -> SessionSpec {
        self.resilient = true;
        self
    }

    /// The coding options this spec implies under the server's chosen
    /// SIMD tier.
    pub fn options(&self, simd: SimdLevel) -> CodingOptions {
        CodingOptions::default()
            .with_qscale(self.qscale)
            .with_b_frames(self.b_frames)
            .with_simd(simd)
    }

    /// Builds the live session this spec describes.
    ///
    /// # Errors
    ///
    /// [`BenchError::Codec`] if the implied options are invalid for the
    /// codec.
    pub fn build(&self, simd: SimdLevel) -> Result<CodecSession, BenchError> {
        let options = self.options(simd);
        let session = match self.kind {
            SessionKind::Encode => CodecSession::encoder(self.codec, self.resolution, &options)?,
            SessionKind::Decode => CodecSession::decoder(self.codec, simd),
            SessionKind::Transcode => {
                CodecSession::transcoder(self.source, self.codec, self.resolution, &options)?
            }
        };
        Ok(if self.resilient {
            session.with_resilience()
        } else {
            session
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SessionInput;
    use hdvb_frame::Frame;

    #[test]
    fn priority_and_kind_round_trip_their_wire_bytes() {
        for p in Priority::ALL {
            assert_eq!(Priority::from_u8(p.as_u8()), Some(p));
            assert_eq!(Priority::from_name(p.name()), Some(p));
        }
        assert_eq!(Priority::from_u8(9), None);
        for k in SessionKind::ALL {
            assert_eq!(SessionKind::from_u8(k.as_u8()), Some(k));
            assert_eq!(SessionKind::from_name(k.name()), Some(k));
        }
        assert_eq!(SessionKind::from_u8(9), None);
    }

    #[test]
    fn built_encode_session_matches_a_hand_built_one() {
        let res = Resolution::new(96, 80);
        let spec = SessionSpec::encode(CodecId::Mpeg2, res).with_qscale(7);
        let simd = SimdLevel::Scalar;
        let mut from_spec = spec.build(simd).expect("spec build");
        let mut by_hand = CodecSession::encoder(
            CodecId::Mpeg2,
            res,
            &CodingOptions::default().with_qscale(7).with_simd(simd),
        )
        .expect("hand build");

        let mut frame = Frame::new(res.width(), res.height());
        for (i, b) in frame.y_mut().data_mut().iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..4 {
            a.extend(
                from_spec
                    .push(SessionInput::Frame(frame.clone()))
                    .expect("push")
                    .packets,
            );
            b.extend(
                by_hand
                    .push(SessionInput::Frame(frame.clone()))
                    .expect("push")
                    .packets,
            );
        }
        a.extend(from_spec.finish().expect("finish").packets);
        b.extend(by_hand.finish().expect("finish").packets);
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.data, y.data);
        }
    }

    #[test]
    fn transcode_and_resilient_specs_build() {
        let res = Resolution::new(96, 80);
        let spec = SessionSpec::transcode(CodecId::Mpeg2, CodecId::H264, res);
        assert!(spec.build(SimdLevel::Scalar).is_ok());
        let spec = SessionSpec::decode(CodecId::Mpeg4, res).with_resilience();
        assert!(spec.build(SimdLevel::Scalar).is_ok());
    }
}
