use crate::CodecId;
use hdvb_bits::CorruptKind;
use std::fmt;

/// Errors surfaced by the benchmark harness.
#[derive(Debug)]
#[non_exhaustive]
pub enum BenchError {
    /// A codec rejected its configuration or input.
    Codec(String),
    /// The bitstream under measurement is invalid.
    Bitstream(String),
    /// A decoder detected bitstream corruption, with typed attribution.
    ///
    /// The differential fuzzing harness compares `(codec, offset, kind)`
    /// across SIMD tiers and thread counts: the parse path is
    /// tier-independent, so a malformed packet must fail identically
    /// everywhere.
    Corrupt {
        /// Which codec's decoder rejected the packet.
        codec: CodecId,
        /// Bit offset in the packet where the parse stopped.
        offset: u64,
        /// Classification of the corruption.
        kind: CorruptKind,
        /// Human-readable detail for diagnostics.
        detail: String,
    },
    /// The requested measurement is impossible (e.g. zero frames).
    BadRequest(&'static str),
    /// Reading or writing a sweep journal failed (I/O, not content:
    /// torn or garbled *records* are skipped and counted, not errors).
    Journal(String),
    /// The operation was cancelled cooperatively (cell deadline or
    /// shutdown) at a frame/GOP boundary. Work up to the checkpoint is
    /// intact; the fault-tolerant sweep runner maps this to
    /// `CellOutcome::TimedOut` rather than a failure.
    Cancelled,
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Codec(msg) => write!(f, "codec error: {msg}"),
            BenchError::Bitstream(msg) => write!(f, "bitstream error: {msg}"),
            BenchError::Corrupt {
                codec,
                offset,
                kind,
                detail,
            } => write!(
                f,
                "{codec}: corrupt bitstream at bit {offset} ({kind}): {detail}"
            ),
            BenchError::BadRequest(msg) => write!(f, "bad benchmark request: {msg}"),
            BenchError::Journal(msg) => write!(f, "sweep journal error: {msg}"),
            BenchError::Cancelled => f.write_str("cancelled at a frame/GOP boundary"),
        }
    }
}

impl std::error::Error for BenchError {}

impl From<hdvb_mpeg2::CodecError> for BenchError {
    fn from(e: hdvb_mpeg2::CodecError) -> Self {
        match e {
            hdvb_mpeg2::CodecError::Cancelled => BenchError::Cancelled,
            other => BenchError::Codec(other.to_string()),
        }
    }
}

impl From<hdvb_mpeg4::CodecError> for BenchError {
    fn from(e: hdvb_mpeg4::CodecError) -> Self {
        match e {
            hdvb_mpeg4::CodecError::Cancelled => BenchError::Cancelled,
            other => BenchError::Codec(other.to_string()),
        }
    }
}

impl From<hdvb_h264::CodecError> for BenchError {
    fn from(e: hdvb_h264::CodecError) -> Self {
        match e {
            hdvb_h264::CodecError::Cancelled => BenchError::Cancelled,
            other => BenchError::Codec(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<BenchError>();
    }

    #[test]
    fn display_messages() {
        assert!(BenchError::BadRequest("zero frames")
            .to_string()
            .contains("zero frames"));
    }
}
