//! A minimal file container for coded HD-VideoBench streams ("HVB1"),
//! so the CLI can write encode output to disk and decode it back — the
//! role the AVI/raw files play in the original benchmark's Table IV
//! commands.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "HVB1" | codec u8 | width u32 | height u32 | fps_num u32 |
//! fps_den u32 | packet_count u32 | packets...
//! packet: kind u8 ('I'/'P'/'B') | display_index u32 | len u32 | data
//! ```

use crate::{BenchError, CodecId, Packet, PacketKind};
use hdvb_frame::{FrameRate, Resolution, VideoFormat};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"HVB1";

/// Stream-level metadata stored in the container header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamHeader {
    /// Which codec produced the packets.
    pub codec: CodecId,
    /// Video geometry and frame rate.
    pub format: VideoFormat,
}

fn codec_byte(c: CodecId) -> u8 {
    match c {
        CodecId::Mpeg2 => 2,
        CodecId::Mpeg4 => 4,
        CodecId::H264 => 64,
    }
}

fn codec_from_byte(b: u8) -> Option<CodecId> {
    match b {
        2 => Some(CodecId::Mpeg2),
        4 => Some(CodecId::Mpeg4),
        64 => Some(CodecId::H264),
        _ => None,
    }
}

fn kind_byte(k: PacketKind) -> u8 {
    match k {
        PacketKind::I => b'I',
        PacketKind::P => b'P',
        PacketKind::B => b'B',
    }
}

fn kind_from_byte(b: u8) -> Option<PacketKind> {
    match b {
        b'I' => Some(PacketKind::I),
        b'P' => Some(PacketKind::P),
        b'B' => Some(PacketKind::B),
        _ => None,
    }
}

/// Writes a coded stream to `writer`.
///
/// # Errors
///
/// Propagates I/O errors as [`BenchError::Bitstream`].
pub fn write_stream<W: Write>(
    mut writer: W,
    header: &StreamHeader,
    packets: &[Packet],
) -> Result<(), BenchError> {
    let io = |e: std::io::Error| BenchError::Bitstream(format!("write failed: {e}"));
    writer.write_all(MAGIC).map_err(io)?;
    writer.write_all(&[codec_byte(header.codec)]).map_err(io)?;
    writer
        .write_all(&(header.format.resolution.width() as u32).to_le_bytes())
        .map_err(io)?;
    writer
        .write_all(&(header.format.resolution.height() as u32).to_le_bytes())
        .map_err(io)?;
    writer
        .write_all(&header.format.frame_rate.num().to_le_bytes())
        .map_err(io)?;
    writer
        .write_all(&header.format.frame_rate.den().to_le_bytes())
        .map_err(io)?;
    writer
        .write_all(&(packets.len() as u32).to_le_bytes())
        .map_err(io)?;
    for p in packets {
        writer.write_all(&[kind_byte(p.kind)]).map_err(io)?;
        writer
            .write_all(&p.display_index.to_le_bytes())
            .map_err(io)?;
        writer
            .write_all(&(p.data.len() as u32).to_le_bytes())
            .map_err(io)?;
        writer.write_all(&p.data).map_err(io)?;
    }
    Ok(())
}

/// Reads a coded stream from `reader`.
///
/// # Errors
///
/// [`BenchError::Bitstream`] on a malformed or truncated container.
pub fn read_stream<R: Read>(mut reader: R) -> Result<(StreamHeader, Vec<Packet>), BenchError> {
    let bad = |msg: &str| BenchError::Bitstream(msg.to_string());
    let mut buf4 = [0u8; 4];
    let mut buf1 = [0u8; 1];
    reader
        .read_exact(&mut buf4)
        .map_err(|_| bad("truncated header"))?;
    if &buf4 != MAGIC {
        return Err(bad("not an HVB1 stream"));
    }
    reader
        .read_exact(&mut buf1)
        .map_err(|_| bad("truncated header"))?;
    let codec = codec_from_byte(buf1[0]).ok_or_else(|| bad("unknown codec id"))?;
    let read_u32 = |r: &mut R| -> Result<u32, BenchError> {
        let mut b = [0u8; 4];
        r.read_exact(&mut b).map_err(|_| bad("truncated header"))?;
        Ok(u32::from_le_bytes(b))
    };
    let width = read_u32(&mut reader)?;
    let height = read_u32(&mut reader)?;
    if width < 16
        || height < 16
        || width > 16384
        || height > 16384
        || width % 2 != 0
        || height % 2 != 0
    {
        return Err(bad("implausible stream geometry"));
    }
    let num = read_u32(&mut reader)?.max(1);
    let den = read_u32(&mut reader)?.max(1);
    let count = read_u32(&mut reader)?;
    if count > 1_000_000 {
        return Err(bad("implausible packet count"));
    }
    let mut packets = Vec::with_capacity(count as usize);
    for _ in 0..count {
        reader
            .read_exact(&mut buf1)
            .map_err(|_| bad("truncated packet header"))?;
        let kind = kind_from_byte(buf1[0]).ok_or_else(|| bad("bad packet kind"))?;
        let display_index = read_u32(&mut reader)?;
        let len = read_u32(&mut reader)? as usize;
        // Cap matches MAX_DECODE_PIXELS: no legitimate packet outgrows
        // an uncompressed 64-Mpixel picture, and a forged length field
        // must not drive a giant allocation before read_exact fails.
        if len > 1 << 26 {
            return Err(bad("implausible packet size"));
        }
        let mut data = vec![0u8; len];
        reader
            .read_exact(&mut data)
            .map_err(|_| bad("truncated packet body"))?;
        packets.push(Packet {
            data,
            kind,
            display_index,
        });
    }
    Ok((
        StreamHeader {
            codec,
            format: VideoFormat {
                resolution: Resolution::new(width, height),
                frame_rate: FrameRate::new(num, den),
            },
        },
        packets,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (StreamHeader, Vec<Packet>) {
        (
            StreamHeader {
                codec: CodecId::Mpeg4,
                format: VideoFormat::at_25fps(Resolution::new(64, 48)),
            },
            vec![
                Packet {
                    data: vec![1, 2, 3],
                    kind: PacketKind::I,
                    display_index: 0,
                },
                Packet {
                    data: vec![9; 100],
                    kind: PacketKind::B,
                    display_index: 1,
                },
            ],
        )
    }

    #[test]
    fn roundtrip() {
        let (h, ps) = sample();
        let mut buf = Vec::new();
        write_stream(&mut buf, &h, &ps).unwrap();
        let (h2, ps2) = read_stream(&buf[..]).unwrap();
        assert_eq!(h, h2);
        assert_eq!(ps, ps2);
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(read_stream(&b"RIFFxxxx"[..]).is_err());
        let (h, ps) = sample();
        let mut buf = Vec::new();
        write_stream(&mut buf, &h, &ps).unwrap();
        for cut in [0, 3, 5, 10, buf.len() - 1] {
            assert!(read_stream(&buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn all_codec_ids_roundtrip() {
        for c in CodecId::ALL {
            assert_eq!(codec_from_byte(codec_byte(c)), Some(c));
        }
        assert_eq!(codec_from_byte(99), None);
    }
}
