//! Report formatting: the paper's Table V (rate-distortion) and
//! Figure 1 (throughput) as markdown/CSV-friendly tables.

use crate::CodecId;
use hdvb_dsp::SimdLevel;
use hdvb_frame::Resolution;
use hdvb_seq::SequenceId;
use std::fmt::Write as _;

/// One row of Table V: a (resolution, sequence) pair with PSNR and
/// bitrate for each codec.
#[derive(Clone, Debug)]
pub struct Table5Row {
    /// Resolution of this row's block.
    pub resolution: Resolution,
    /// Input sequence.
    pub sequence: SequenceId,
    /// `(psnr_y_db, bitrate_kbps)` per codec, in [`CodecId::ALL`] order.
    pub points: [(f64, f64); 3],
}

/// Formats `v` to `prec` decimals, or `n/a` for non-finite values — a
/// cell the fault-tolerant sweep could not measure.
fn fmt_or_na(v: f64, prec: usize) -> String {
    if v.is_finite() {
        format!("{v:.prec$}")
    } else {
        "n/a".to_string()
    }
}

/// Renders Table V in the paper's layout.
pub fn table5_markdown(rows: &[Table5Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| Resolution | Input | MPEG-2 PSNR | MPEG-2 kbps | MPEG-4 PSNR | MPEG-4 kbps | H.264 PSNR | H.264 kbps |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
    for row in rows {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            row.resolution.label(),
            row.sequence.name(),
            fmt_or_na(row.points[0].0, 2),
            fmt_or_na(row.points[0].1, 0),
            fmt_or_na(row.points[1].0, 2),
            fmt_or_na(row.points[1].1, 0),
            fmt_or_na(row.points[2].0, 2),
            fmt_or_na(row.points[2].1, 0),
        );
    }
    // Compression-gain summary (the paper quotes these percentages in
    // Section VI). Rows with an unmeasured cell (`NaN` from a failed
    // fault-tolerant sweep cell) are left out of the averages.
    if !rows.is_empty() {
        let gain = |target: usize, base: usize| -> f64 {
            let ratios: Vec<f64> = rows
                .iter()
                .filter(|r| r.points[base].1 > 0.0 && r.points[target].1.is_finite())
                .map(|r| 1.0 - r.points[target].1 / r.points[base].1)
                .collect();
            100.0 * ratios.iter().sum::<f64>() / ratios.len().max(1) as f64
        };
        let m4 = gain(1, 0);
        let h264_vs_m2 = gain(2, 0);
        let h264_vs_m4 = gain(2, 1);
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Average compression gain vs MPEG-2: MPEG-4 {m4:.1}%, H.264 {h264_vs_m2:.1}% (H.264 vs MPEG-4: {h264_vs_m4:.1}%)."
        );
    }
    out
}

/// One bar group of Figure 1: fps per codec for one (resolution,
/// direction, kernel tier) combination, averaged over the input
/// sequences.
#[derive(Clone, Debug)]
pub struct Figure1Row {
    /// Resolution of the bar group.
    pub resolution: Resolution,
    /// `true` = decoding (Figure 1 a/b), `false` = encoding (c/d).
    pub decode: bool,
    /// Kernel tier this row was measured at. The paper's scalar/SIMD
    /// legend maps to `tier.is_accelerated()`; the exact tier keeps the
    /// result attributable when the CPU supports several.
    pub tier: SimdLevel,
    /// Frames per second per codec, in [`CodecId::ALL`] order.
    pub fps: [f64; 3],
    /// Per-codec stage time in nanoseconds (outer index =
    /// [`CodecId::ALL`] order, inner = [`hdvb_trace::CODEC_STAGES`]
    /// order), summed over the averaged sequences. All zeros unless the
    /// run was traced.
    pub stages: [[u64; 6]; 3],
}

impl Figure1Row {
    /// Whether this row belongs to the paper's SIMD bars (b/d).
    pub fn is_simd(&self) -> bool {
        self.tier.is_accelerated()
    }

    /// Whether any stage time was attributed to this row (i.e. the run
    /// was traced).
    pub fn has_stages(&self) -> bool {
        self.stages.iter().flatten().any(|&ns| ns > 0)
    }
}

/// Renders Figure 1's data as a table (one subfigure per
/// direction × scalar/SIMD combination, one row per measured tier),
/// with the paper's 25-fps real-time marker column.
pub fn figure1_markdown(rows: &[Figure1Row]) -> String {
    let mut out = String::new();
    for (decode, simd, label) in [
        (true, false, "(a) Decoding, scalar"),
        (true, true, "(b) Decoding, SIMD"),
        (false, false, "(c) Encoding, scalar"),
        (false, true, "(d) Encoding, SIMD"),
    ] {
        let part: Vec<&Figure1Row> = rows
            .iter()
            .filter(|r| r.decode == decode && r.is_simd() == simd)
            .collect();
        if part.is_empty() {
            continue;
        }
        let _ = writeln!(out, "### Figure 1{label}");
        let _ = writeln!(
            out,
            "| Resolution | Tier | MPEG-2 fps | MPEG-4 fps | H.264 fps | real-time (25 fps)? |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|");
        for r in &part {
            let rt: Vec<&str> = r
                .fps
                .iter()
                .map(|&f| {
                    if !f.is_finite() {
                        "n/a"
                    } else if f >= 25.0 {
                        "yes"
                    } else {
                        "no"
                    }
                })
                .collect();
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} |",
                r.resolution.label(),
                r.tier.tier_name(),
                fmt_or_na(r.fps[0], 2),
                fmt_or_na(r.fps[1], 2),
                fmt_or_na(r.fps[2], 2),
                rt.join("/"),
            );
        }
        let _ = writeln!(out);
        // Stage attribution columns (traced runs only): per codec, the
        // share of instrumented codec time each stage took.
        if part.iter().any(|r| r.has_stages()) {
            let _ = write!(out, "| Resolution | Tier | Codec |");
            for stage in hdvb_trace::CODEC_STAGES {
                let _ = write!(out, " {} % |", stage.name());
            }
            let _ = writeln!(out);
            let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|");
            for r in part.iter().filter(|r| r.has_stages()) {
                for (ci, codec) in CodecId::ALL.iter().enumerate() {
                    let total: u64 = r.stages[ci].iter().sum();
                    if total == 0 {
                        continue;
                    }
                    let _ = write!(
                        out,
                        "| {} | {} | {} |",
                        r.resolution.label(),
                        r.tier.tier_name(),
                        codec,
                    );
                    for ns in r.stages[ci] {
                        let _ = write!(out, " {:.1} |", 100.0 * ns as f64 / total as f64);
                    }
                    let _ = writeln!(out);
                }
            }
            let _ = writeln!(out);
        }
    }
    // Speed-up summary: each accelerated tier against the matching
    // scalar rows.
    let mut speedups = String::new();
    let mut tiers: Vec<SimdLevel> = rows
        .iter()
        .filter(|r| r.is_simd())
        .map(|r| r.tier)
        .collect();
    tiers.sort_unstable();
    tiers.dedup();
    for decode in [true, false] {
        for tier in &tiers {
            for (ci, codec) in CodecId::ALL.iter().enumerate() {
                let collect = |want: Option<SimdLevel>| -> Vec<f64> {
                    rows.iter()
                        .filter(|r| r.decode == decode && r.tier == want.unwrap_or(r.tier))
                        .filter(|r| want.is_some() || !r.is_simd())
                        .map(|r| r.fps[ci])
                        .collect()
                };
                let scalar = collect(None);
                let simd = collect(Some(*tier));
                if scalar.is_empty() || scalar.len() != simd.len() {
                    continue;
                }
                // Skip pairs with an unmeasured side (`NaN` from a
                // failed fault-tolerant sweep cell).
                let pairs: Vec<(f64, f64)> = simd
                    .iter()
                    .zip(&scalar)
                    .filter(|(s, c)| s.is_finite() && c.is_finite())
                    .map(|(&s, &c)| (s, c))
                    .collect();
                if pairs.is_empty() {
                    continue;
                }
                let ratio: f64 =
                    pairs.iter().map(|(s, c)| s / c.max(1e-9)).sum::<f64>() / pairs.len() as f64;
                let dir = if decode { "decode" } else { "encode" };
                let _ = writeln!(
                    speedups,
                    "- {codec} {dir} {} speed-up: {ratio:.2}x",
                    tier.tier_name()
                );
            }
        }
    }
    if !speedups.is_empty() {
        let _ = writeln!(out, "### SIMD speed-ups");
        out.push_str(&speedups);
    }
    out
}

/// One line attributing a measurement run to the machine and kernel
/// tiers it ran on (CPU model plus every tier the CPU supports and the
/// tier `auto` resolves to), per the reproducibility argument that
/// machines are benchmarked by code: numbers without the executed tier
/// are not comparable across hosts.
pub fn machine_attribution() -> String {
    let tiers: Vec<&str> = SimdLevel::supported_tiers()
        .into_iter()
        .map(|t| t.tier_name())
        .collect();
    format!(
        "Measured on: {} — simd tiers available: {} (auto = {})",
        cpu_model(),
        tiers.join(", "),
        SimdLevel::detect().tier_name(),
    )
}

/// Best-effort CPU model string (`/proc/cpuinfo` on Linux; the target
/// architecture elsewhere). Used by the attribution line and the
/// `BENCH_*.json` trajectory files.
pub fn cpu_model() -> String {
    #[cfg(target_os = "linux")]
    {
        if let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") {
            for line in info.lines() {
                if let Some(rest) = line.strip_prefix("model name") {
                    if let Some((_, model)) = rest.split_once(':') {
                        return model.trim().to_string();
                    }
                }
            }
        }
    }
    format!("unknown CPU ({})", std::env::consts::ARCH)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<Table5Row> {
        vec![Table5Row {
            resolution: Resolution::DVD_576,
            sequence: SequenceId::BlueSky,
            points: [(39.8, 3504.0), (38.7, 1146.0), (39.2, 1095.0)],
        }]
    }

    #[test]
    fn table5_contains_all_cells_and_gains() {
        let md = table5_markdown(&sample_rows());
        assert!(md.contains("576p25"));
        assert!(md.contains("blue_sky"));
        assert!(md.contains("3504"));
        assert!(md.contains("compression gain"));
        // MPEG-4 gain = 1 - 1146/3504 = 67.3%.
        assert!(md.contains("67.3%"));
    }

    #[test]
    fn figure1_groups_and_speedups() {
        let rows = vec![
            Figure1Row {
                resolution: Resolution::DVD_576,
                decode: true,
                tier: SimdLevel::Scalar,
                fps: [88.0, 40.0, 30.0],
                stages: [[0; 6]; 3],
            },
            Figure1Row {
                resolution: Resolution::DVD_576,
                decode: true,
                tier: SimdLevel::Sse2,
                fps: [176.0, 80.0, 45.0],
                stages: [[0; 6]; 3],
            },
        ];
        let md = figure1_markdown(&rows);
        assert!(md.contains("(a) Decoding, scalar"));
        assert!(md.contains("(b) Decoding, SIMD"));
        assert!(!md.contains("(c) Encoding"));
        assert!(md.contains("mpeg2 decode sse2 speed-up: 2.00x"));
        assert!(md.contains("h264 decode sse2 speed-up: 1.50x"));
        assert!(md.contains("yes/yes/yes"));
    }

    #[test]
    fn figure1_reports_each_accelerated_tier() {
        let row = |tier, fps| Figure1Row {
            resolution: Resolution::DVD_576,
            decode: true,
            tier,
            fps,
            stages: [[0; 6]; 3],
        };
        let rows = vec![
            row(SimdLevel::Scalar, [40.0, 40.0, 40.0]),
            row(SimdLevel::Sse2, [80.0, 80.0, 80.0]),
            row(SimdLevel::Avx2, [120.0, 120.0, 120.0]),
        ];
        let md = figure1_markdown(&rows);
        // Both accelerated tiers land in the SIMD subfigure, labelled.
        assert!(md.contains("| sse2 |"));
        assert!(md.contains("| avx2 |"));
        assert!(md.contains("mpeg2 decode sse2 speed-up: 2.00x"));
        assert!(md.contains("mpeg2 decode avx2 speed-up: 3.00x"));
    }

    #[test]
    fn failed_cells_render_as_na() {
        let mut rows = sample_rows();
        rows.push(Table5Row {
            resolution: Resolution::DVD_576,
            sequence: SequenceId::Riverbed,
            points: [(39.8, 3504.0), (f64::NAN, f64::NAN), (39.2, 1095.0)],
        });
        let md = table5_markdown(&rows);
        assert!(md.contains("n/a"), "{md}");
        assert!(!md.contains("NaN"), "{md}");
        // The gain summary still averages over the healthy rows only.
        assert!(md.contains("67.3%"), "{md}");

        let f1 = vec![
            Figure1Row {
                resolution: Resolution::DVD_576,
                decode: true,
                tier: SimdLevel::Scalar,
                fps: [88.0, f64::NAN, 30.0],
                stages: [[0; 6]; 3],
            },
            Figure1Row {
                resolution: Resolution::DVD_576,
                decode: true,
                tier: SimdLevel::Sse2,
                fps: [176.0, 80.0, f64::NAN],
                stages: [[0; 6]; 3],
            },
        ];
        let md = figure1_markdown(&f1);
        assert!(md.contains("n/a"), "{md}");
        assert!(!md.contains("NaN"), "{md}");
        assert!(md.contains("yes/n/a/yes"), "{md}");
        // mpeg2 has both sides measured; mpeg4 and h264 each lose
        // their pair and are skipped rather than reported as NaN.
        assert!(md.contains("mpeg2 decode sse2 speed-up: 2.00x"), "{md}");
        assert!(!md.contains("mpeg4 decode sse2"), "{md}");
        assert!(!md.contains("h264 decode sse2"), "{md}");
    }

    #[test]
    fn real_time_marker() {
        let rows = vec![Figure1Row {
            resolution: Resolution::HD_1088,
            decode: false,
            tier: SimdLevel::Scalar,
            fps: [3.8, 0.5, 0.3],
            stages: [[0; 6]; 3],
        }];
        let md = figure1_markdown(&rows);
        assert!(md.contains("no/no/no"));
    }

    #[test]
    fn attribution_names_the_detected_tier() {
        let line = machine_attribution();
        assert!(line.contains("Measured on:"));
        assert!(line.contains(SimdLevel::detect().tier_name()));
        assert!(line.contains("scalar"));
    }
}
