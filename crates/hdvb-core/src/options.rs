use hdvb_dsp::SimdLevel;

/// Maps an MPEG-2/MPEG-4 quantiser scale to the equivalent H.264 QP via
/// the paper's empirically derived Equation 1:
/// `H264_QP = 12 + 6·log2(MPEG_QP)`, rounded to the nearest integer.
///
/// # Example
///
/// ```
/// use hdvb_core::h264_qp_for_mpeg_qscale;
///
/// // The paper's operating point: vqscale 5 → x264 --qp 26.
/// assert_eq!(h264_qp_for_mpeg_qscale(5), 26);
/// assert_eq!(h264_qp_for_mpeg_qscale(1), 12);
/// assert_eq!(h264_qp_for_mpeg_qscale(4), 24);
/// ```
pub fn h264_qp_for_mpeg_qscale(qscale: u16) -> u8 {
    let q = f64::from(qscale.max(1));
    let qp = 12.0 + 6.0 * q.log2();
    qp.round().clamp(0.0, 51.0) as u8
}

/// The benchmark's coding options (paper Section IV): one-pass constant
/// quantiser, fixed I-P-B-B GOP with only the first frame intra, and the
/// per-codec motion-search settings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodingOptions {
    /// MPEG-2/MPEG-4 quantiser scale (the paper uses `vqscale=5`); the
    /// H.264 QP is derived through Equation 1.
    pub mpeg_qscale: u16,
    /// B pictures between anchors (paper: 2, adaptive placement off).
    pub b_frames: u8,
    /// Motion search range in full pels (paper: `--merange 24`).
    pub search_range: u16,
    /// `None` = only the first frame intra (the paper's setting).
    pub intra_period: Option<u32>,
    /// Kernel dispatch level — the Figure-1 scalar/SIMD axis.
    pub simd: SimdLevel,
    /// H.264 reference-picture count (paper command `--ref 16`, capped
    /// at this implementation's maximum of 4; see DESIGN.md).
    pub h264_refs: u8,
    /// Calibration offset added to the Equation-1 QP. The paper derived
    /// Equation 1 *empirically* for its codecs; re-deriving the constant
    /// for these implementations gives `H264_QP = 7 + 6·log2(q)`
    /// (offset −5), which aligns the codecs' mean PSNR over the four
    /// input sequences at the default operating point (see
    /// EXPERIMENTS.md).
    pub h264_qp_offset: i8,
}

impl Default for CodingOptions {
    fn default() -> Self {
        CodingOptions {
            mpeg_qscale: 5,
            b_frames: 2,
            search_range: 24,
            intra_period: None,
            // `preferred()` honours the HDVB_SIMD env override (used by
            // CI to force the scalar tier) and falls back to runtime
            // feature detection.
            simd: SimdLevel::preferred(),
            h264_refs: 3,
            h264_qp_offset: -5,
        }
    }
}

impl CodingOptions {
    /// The equivalent H.264 QP for this operating point: Equation 1
    /// plus the implementation-calibration offset.
    pub fn h264_qp(&self) -> u8 {
        let qp =
            i16::from(h264_qp_for_mpeg_qscale(self.mpeg_qscale)) + i16::from(self.h264_qp_offset);
        qp.clamp(0, 51) as u8
    }

    /// Returns a copy at a different quantiser scale.
    pub fn with_qscale(mut self, qscale: u16) -> Self {
        self.mpeg_qscale = qscale;
        self
    }

    /// Returns a copy at a different SIMD level.
    pub fn with_simd(mut self, simd: SimdLevel) -> Self {
        self.simd = simd;
        self
    }

    /// Returns a copy with a different B-frame count.
    pub fn with_b_frames(mut self, b: u8) -> Self {
        self.b_frames = b;
        self
    }

    /// Returns a copy with a different search range.
    pub fn with_search_range(mut self, range: u16) -> Self {
        self.search_range = range;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_one_reference_points() {
        // Doubling the MPEG quantiser adds 6 to the H.264 QP.
        assert_eq!(h264_qp_for_mpeg_qscale(2), 18);
        assert_eq!(h264_qp_for_mpeg_qscale(8), 30);
        assert_eq!(h264_qp_for_mpeg_qscale(16), 36);
        assert_eq!(h264_qp_for_mpeg_qscale(32), 42);
    }

    #[test]
    fn equation_one_clamps() {
        assert_eq!(h264_qp_for_mpeg_qscale(0), 12); // treated as 1
        assert!(h264_qp_for_mpeg_qscale(10_000) <= 51);
    }

    #[test]
    fn defaults_match_paper() {
        let o = CodingOptions::default();
        assert_eq!(o.mpeg_qscale, 5);
        assert_eq!(o.b_frames, 2);
        assert_eq!(o.search_range, 24);
        // Equation 1 gives 26; the re-derived constant for these codecs
        // shifts it to 21 (see EXPERIMENTS.md).
        assert_eq!(o.h264_qp(), 21);
        assert!(o.intra_period.is_none());
    }
}
