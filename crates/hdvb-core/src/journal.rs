//! The append-only sweep journal behind `--resume`.
//!
//! Every cell of a fault-tolerant sweep appends one line per resolved
//! attempt, flushed immediately so a killed run leaves at most one torn
//! line. Each line is independently checksummed (FNV-1a 64 over the
//! payload), so the loader can detect truncated or garbled records,
//! skip them with a count, and let the sweep re-run the affected cells.
//!
//! Line format (one record per line, ASCII):
//!
//! ```text
//! J1 <fnv64-hex> key=<hex16> kind=<table5|figure1> outcome=<ok|failed|timeout> attempts=<n> words=<w0>,<w1>,...
//! ```
//!
//! * `key` is the FNV-1a 64 hash of the cell's canonical input string
//!   (resolution, sequence, codec, SIMD tier, frame count, and every
//!   coding option) — a cell is only restored when its inputs match.
//! * `words` carries the cell's result as `f64::to_bits` words in hex,
//!   so a restored value is **bit-identical** to the computed one.
//! * Duplicate keys resolve last-record-wins: a re-run after a failure
//!   appends a newer record that supersedes the old one.

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// FNV-1a 64-bit hash; used for both record checksums and cell keys.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How a journaled attempt resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JournalOutcome {
    /// The cell completed; `words` holds its result.
    Ok,
    /// The cell's final attempt failed (error or panic).
    Failed,
    /// The cell overran its deadline budget.
    TimedOut,
}

impl JournalOutcome {
    fn as_str(self) -> &'static str {
        match self {
            JournalOutcome::Ok => "ok",
            JournalOutcome::Failed => "failed",
            JournalOutcome::TimedOut => "timeout",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "ok" => Some(JournalOutcome::Ok),
            "failed" => Some(JournalOutcome::Failed),
            "timeout" => Some(JournalOutcome::TimedOut),
            _ => None,
        }
    }
}

impl fmt::Display for JournalOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One journal record: a cell's inputs hash, how its attempt resolved,
/// and (for `Ok`) the result encoded as `f64` bit-pattern words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalRecord {
    /// FNV-1a 64 hash of the cell's canonical input description.
    pub key: u64,
    /// Which sweep produced it (`"table5"` or `"figure1"`).
    pub kind: String,
    /// How the attempt resolved.
    pub outcome: JournalOutcome,
    /// Attempt count when the record was written (1-based).
    pub attempts: u32,
    /// The result payload: `f64::to_bits` words for `Ok` records,
    /// per-stage nanoseconds for `TimedOut`, empty for `Failed`.
    pub words: Vec<u64>,
}

impl JournalRecord {
    /// Serialises the record as its payload substring (everything the
    /// checksum covers).
    fn payload(&self) -> String {
        let words: Vec<String> = self.words.iter().map(|w| format!("{w:016x}")).collect();
        format!(
            "key={:016x} kind={} outcome={} attempts={} words={}",
            self.key,
            self.kind,
            self.outcome,
            self.attempts,
            words.join(",")
        )
    }

    /// Serialises the full journal line (with magic and checksum).
    pub fn to_line(&self) -> String {
        let payload = self.payload();
        format!("J1 {:016x} {payload}", fnv1a64(payload.as_bytes()))
    }

    /// Parses a journal line, verifying magic and checksum. Returns
    /// `None` for anything torn, garbled, or from a future format.
    pub fn parse_line(line: &str) -> Option<Self> {
        let rest = line.strip_prefix("J1 ")?;
        let (sum_hex, payload) = rest.split_once(' ')?;
        let sum = u64::from_str_radix(sum_hex, 16).ok()?;
        if sum != fnv1a64(payload.as_bytes()) {
            return None;
        }
        let mut key = None;
        let mut kind = None;
        let mut outcome = None;
        let mut attempts = None;
        let mut words = None;
        for field in payload.split(' ') {
            let (name, value) = field.split_once('=')?;
            match name {
                "key" => key = Some(u64::from_str_radix(value, 16).ok()?),
                "kind" => kind = Some(value.to_string()),
                "outcome" => outcome = Some(JournalOutcome::from_str(value)?),
                "attempts" => attempts = Some(value.parse().ok()?),
                "words" => {
                    let mut ws = Vec::new();
                    if !value.is_empty() {
                        for w in value.split(',') {
                            ws.push(u64::from_str_radix(w, 16).ok()?);
                        }
                    }
                    words = Some(ws);
                }
                _ => return None,
            }
        }
        Some(JournalRecord {
            key: key?,
            kind: kind?,
            outcome: outcome?,
            attempts: attempts?,
            words: words?,
        })
    }
}

/// Appends checksummed records to a journal file, flushing each one so
/// a killed process loses at most the line being written.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
}

impl JournalWriter {
    /// Opens (creating if needed) `path` for appending.
    ///
    /// If the file ends in a torn line (a kill mid-write), a newline is
    /// written first so the torn tail becomes its own bad record
    /// instead of swallowing the next append.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn append_to(path: &Path) -> io::Result<Self> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)?;
        let len = file.metadata()?.len();
        if len > 0 {
            file.seek(SeekFrom::End(-1))?;
            let mut last = [0u8; 1];
            file.read_exact(&mut last)?;
            if last[0] != b'\n' {
                file.write_all(b"\n")?;
            }
        }
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
        })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn append(&mut self, record: &JournalRecord) -> io::Result<()> {
        let mut line = record.to_line();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.flush()
    }
}

/// The result of loading a journal: the surviving records in file
/// order, plus how many lines failed their checksum or parse.
#[derive(Debug, Default)]
pub struct JournalLoad {
    /// Valid records in file order.
    pub records: Vec<JournalRecord>,
    /// Lines skipped because they were torn, garbled, or unparseable.
    pub bad_lines: usize,
}

impl JournalLoad {
    /// Collapses the records last-record-wins per key, keeping only
    /// `Ok` outcomes of the given kind — the restorable set.
    pub fn restorable(&self, kind: &str) -> HashMap<u64, &JournalRecord> {
        let mut map: HashMap<u64, &JournalRecord> = HashMap::new();
        for rec in &self.records {
            if rec.kind == kind {
                map.insert(rec.key, rec);
            }
        }
        map.retain(|_, rec| rec.outcome == JournalOutcome::Ok);
        map
    }
}

/// Loads a journal file, skipping (and counting) bad records.
///
/// # Errors
///
/// Propagates the underlying I/O error; a missing file is an error (the
/// caller asked to resume from it), but bad *records* are not.
pub fn load_journal(path: &Path) -> io::Result<JournalLoad> {
    let reader = BufReader::new(File::open(path)?);
    let mut load = JournalLoad::default();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match JournalRecord::parse_line(&line) {
            Some(rec) => load.records.push(rec),
            None => load.bad_lines += 1,
        }
    }
    Ok(load)
}

/// Truncates a journal file to `bytes` bytes — the fault-injection
/// backend for `truncate-journal@<bytes>`, simulating a torn write.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn truncate_journal(path: &Path, bytes: u64) -> io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(key: u64, outcome: JournalOutcome, words: Vec<u64>) -> JournalRecord {
        JournalRecord {
            key,
            kind: "table5".into(),
            outcome,
            attempts: 1,
            words,
        }
    }

    #[test]
    fn record_line_round_trips() {
        let r = rec(0xdead_beef, JournalOutcome::Ok, vec![1.5f64.to_bits(), 0]);
        let line = r.to_line();
        assert_eq!(JournalRecord::parse_line(&line), Some(r));
    }

    #[test]
    fn f64_bits_survive_round_trip() {
        for v in [0.0, -0.0, 1.0 / 3.0, f64::NAN, f64::INFINITY, 42.123] {
            let r = rec(1, JournalOutcome::Ok, vec![v.to_bits()]);
            let back = JournalRecord::parse_line(&r.to_line()).unwrap();
            assert_eq!(back.words[0], v.to_bits());
        }
    }

    #[test]
    fn garbled_lines_fail_checksum() {
        let line = rec(7, JournalOutcome::Ok, vec![3]).to_line();
        // Flip one payload character.
        let garbled = line.replace("attempts=1", "attempts=2");
        assert!(JournalRecord::parse_line(&garbled).is_none());
        // Truncation mid-line.
        assert!(JournalRecord::parse_line(&line[..line.len() - 4]).is_none());
        assert!(JournalRecord::parse_line("not a record").is_none());
    }

    #[test]
    fn last_record_wins_and_only_ok_restores() {
        let mut load = JournalLoad::default();
        load.records.push(rec(1, JournalOutcome::Failed, vec![]));
        load.records.push(rec(1, JournalOutcome::Ok, vec![9]));
        load.records.push(rec(2, JournalOutcome::Ok, vec![5]));
        load.records.push(rec(2, JournalOutcome::TimedOut, vec![]));
        let map = load.restorable("table5");
        assert_eq!(map.get(&1).map(|r| r.words[0]), Some(9));
        // Key 2's newest record is a timeout: not restorable.
        assert!(!map.contains_key(&2));
        assert!(load.restorable("figure1").is_empty());
    }

    #[test]
    fn writer_and_loader_round_trip_with_truncation() {
        let dir = std::env::temp_dir().join(format!("hdvb-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.journal");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = JournalWriter::append_to(&path).unwrap();
            for k in 0..4u64 {
                w.append(&rec(k, JournalOutcome::Ok, vec![k * 10])).unwrap();
            }
        }
        let full = load_journal(&path).unwrap();
        assert_eq!(full.records.len(), 4);
        assert_eq!(full.bad_lines, 0);

        // Truncate into the middle of the last record: 3 survive, the
        // torn tail is counted as bad.
        let len = std::fs::metadata(&path).unwrap().len();
        truncate_journal(&path, len - 5).unwrap();
        let cut = load_journal(&path).unwrap();
        assert_eq!(cut.records.len(), 3);
        assert_eq!(cut.bad_lines, 1);

        // Appending after truncation keeps working (resume writes to
        // the same file it loaded).
        let mut w = JournalWriter::append_to(&path).unwrap();
        w.append(&rec(3, JournalOutcome::Ok, vec![30])).unwrap();
        drop(w);
        let healed = load_journal(&path).unwrap();
        assert_eq!(healed.records.len(), 4);
        assert_eq!(healed.restorable("table5").len(), 4);
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_dir(&dir);
    }
}
