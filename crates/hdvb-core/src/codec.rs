//! The codec registry: one entry per application of the paper's Table II,
//! unified behind object-safe encoder/decoder traits.

use crate::{BenchError, CodingOptions};
use hdvb_dsp::SimdLevel;
use hdvb_frame::{Frame, Resolution};
use hdvb_par::CancelToken;
use std::fmt;

/// The video standards covered by HD-VideoBench (paper Table II).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CodecId {
    /// MPEG-2 (paper applications: FFmpeg encoder, libmpeg2 decoder).
    Mpeg2,
    /// MPEG-4 ASP (paper application: Xvid).
    Mpeg4,
    /// H.264/AVC (paper applications: x264 encoder, FFmpeg decoder).
    H264,
}

impl CodecId {
    /// All codecs in the paper's order.
    pub const ALL: [CodecId; 3] = [CodecId::Mpeg2, CodecId::Mpeg4, CodecId::H264];

    /// Short name used in reports and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            CodecId::Mpeg2 => "mpeg2",
            CodecId::Mpeg4 => "mpeg4",
            CodecId::H264 => "h264",
        }
    }

    /// The original benchmark's encoder application for this codec.
    pub fn paper_encoder(self) -> &'static str {
        match self {
            CodecId::Mpeg2 => "ffmpeg-mpeg2",
            CodecId::Mpeg4 => "xvid",
            CodecId::H264 => "x264",
        }
    }

    /// The original benchmark's decoder application for this codec.
    pub fn paper_decoder(self) -> &'static str {
        match self {
            CodecId::Mpeg2 => "libmpeg2",
            CodecId::Mpeg4 => "xvid",
            CodecId::H264 => "ffmpeg-h264",
        }
    }

    /// Parses a codec from its short name.
    pub fn from_name(name: &str) -> Option<CodecId> {
        CodecId::ALL.into_iter().find(|c| c.name() == name)
    }
}

impl fmt::Display for CodecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Picture type of a coded packet, unified across codecs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Intra picture.
    I,
    /// Forward-predicted picture.
    P,
    /// Bidirectionally predicted picture.
    B,
}

impl fmt::Display for PacketKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PacketKind::I => "I",
            PacketKind::P => "P",
            PacketKind::B => "B",
        })
    }
}

/// One coded picture, codec-agnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Serialised picture.
    pub data: Vec<u8>,
    /// Picture type.
    pub kind: PacketKind,
    /// Display-order index.
    pub display_index: u32,
}

impl Packet {
    /// Coded size in bits.
    pub fn bits(&self) -> u64 {
        self.data.len() as u64 * 8
    }
}

/// An object-safe encoder: display-order frames in, coding-order packets
/// out.
pub trait VideoEncoder {
    /// Encodes the next display-order frame.
    ///
    /// # Errors
    ///
    /// Codec-specific configuration or geometry errors.
    fn encode_frame(&mut self, frame: &Frame) -> Result<Vec<Packet>, BenchError>;

    /// Flushes buffered frames at end of stream.
    ///
    /// # Errors
    ///
    /// Codec-specific errors.
    fn finish(&mut self) -> Result<Vec<Packet>, BenchError>;

    /// Write-into-caller form of [`encode_frame`](Self::encode_frame):
    /// appends coded packets to `out` instead of allocating a fresh
    /// vector. The built-in codecs route this through their pooled
    /// zero-allocation paths; the default just delegates.
    ///
    /// # Errors
    ///
    /// As [`encode_frame`](Self::encode_frame); packets appended before
    /// an error stay in `out`.
    fn encode_frame_into(
        &mut self,
        frame: &Frame,
        out: &mut Vec<Packet>,
    ) -> Result<(), BenchError> {
        out.extend(self.encode_frame(frame)?);
        Ok(())
    }

    /// Write-into-caller form of [`finish`](Self::finish).
    ///
    /// # Errors
    ///
    /// As [`finish`](Self::finish).
    fn finish_into(&mut self, out: &mut Vec<Packet>) -> Result<(), BenchError> {
        out.extend(self.finish()?);
        Ok(())
    }

    /// Installs a cooperative cancellation token, checked at picture
    /// boundaries; once it fires, encoding stops with
    /// [`BenchError::Cancelled`]. Implementations that cannot cancel
    /// may ignore the token (the default).
    fn set_cancel(&mut self, _cancel: CancelToken) {}
}

/// An object-safe decoder: coding-order packets in, display-order frames
/// out.
pub trait VideoDecoder {
    /// Decodes one packet.
    ///
    /// # Errors
    ///
    /// [`BenchError::Bitstream`] on malformed input.
    fn decode_packet(&mut self, data: &[u8]) -> Result<Vec<Frame>, BenchError>;

    /// Returns the final buffered frames at end of stream.
    fn finish(&mut self) -> Vec<Frame>;

    /// Write-into-caller form of [`decode_packet`](Self::decode_packet):
    /// appends display-order frames to `out`. The built-in codecs route
    /// this through their pooled zero-allocation paths (output frames
    /// come from the global frame pool and can be returned to it); the
    /// default just delegates.
    ///
    /// # Errors
    ///
    /// As [`decode_packet`](Self::decode_packet).
    fn decode_packet_into(&mut self, data: &[u8], out: &mut Vec<Frame>) -> Result<(), BenchError> {
        out.extend(self.decode_packet(data)?);
        Ok(())
    }

    /// Write-into-caller form of [`finish`](Self::finish).
    fn finish_into(&mut self, out: &mut Vec<Frame>) {
        out.extend(self.finish());
    }

    /// Installs a cooperative cancellation token, checked at packet
    /// boundaries; once it fires, decoding stops with
    /// [`BenchError::Cancelled`]. Implementations that cannot cancel
    /// may ignore the token (the default).
    fn set_cancel(&mut self, _cancel: CancelToken) {}
}

/// Creates an encoder for `codec` at the benchmark's coding options.
///
/// # Errors
///
/// [`BenchError::Codec`] if the options are invalid for the codec.
pub fn create_encoder(
    codec: CodecId,
    resolution: Resolution,
    options: &CodingOptions,
) -> Result<Box<dyn VideoEncoder + Send>, BenchError> {
    let (w, h) = (resolution.width(), resolution.height());
    match codec {
        CodecId::Mpeg2 => {
            let config = hdvb_mpeg2::EncoderConfig::new(w, h)
                .with_qscale(options.mpeg_qscale)
                .with_b_frames(options.b_frames)
                .with_search_range(options.search_range)
                .with_intra_period(options.intra_period)
                .with_simd(options.simd);
            Ok(Box::new(Mpeg2Enc::new(hdvb_mpeg2::Mpeg2Encoder::new(
                config,
            )?)))
        }
        CodecId::Mpeg4 => {
            let config = hdvb_mpeg4::EncoderConfig::new(w, h)
                .with_qscale(options.mpeg_qscale)
                .with_b_frames(options.b_frames)
                .with_search_range(options.search_range)
                .with_intra_period(options.intra_period)
                .with_simd(options.simd);
            Ok(Box::new(Mpeg4Enc::new(hdvb_mpeg4::Mpeg4Encoder::new(
                config,
            )?)))
        }
        CodecId::H264 => {
            let config = hdvb_h264::EncoderConfig::new(w, h)
                .with_qp(options.h264_qp())
                .with_b_frames(options.b_frames)
                .with_search_range(options.search_range)
                .with_intra_period(options.intra_period)
                .with_num_refs(options.h264_refs)
                .with_simd(options.simd);
            Ok(Box::new(H264Enc::new(hdvb_h264::H264Encoder::new(config)?)))
        }
    }
}

/// Creates a decoder for `codec` at the given SIMD level.
pub fn create_decoder(codec: CodecId, simd: SimdLevel) -> Box<dyn VideoDecoder + Send> {
    match codec {
        CodecId::Mpeg2 => Box::new(Mpeg2Dec(hdvb_mpeg2::Mpeg2Decoder::with_simd(simd))),
        CodecId::Mpeg4 => Box::new(Mpeg4Dec(hdvb_mpeg4::Mpeg4Decoder::with_simd(simd))),
        CodecId::H264 => Box::new(H264Dec(hdvb_h264::H264Decoder::with_simd(simd))),
    }
}

macro_rules! impl_adapters {
    ($enc:ident, $dec:ident, $enc_ty:ty, $dec_ty:ty, $pkt_ty:ty, $corrupt:path, $cancelled:path, $ft:path, $cid:expr) => {
        struct $enc {
            inner: $enc_ty,
            /// Native-packet staging buffer, drained (moving each
            /// payload, not copying it) into the unified packet type.
            scratch: Vec<$pkt_ty>,
        }

        impl $enc {
            fn new(inner: $enc_ty) -> Self {
                $enc {
                    inner,
                    scratch: Vec::new(),
                }
            }
        }

        impl VideoEncoder for $enc {
            fn encode_frame(&mut self, frame: &Frame) -> Result<Vec<Packet>, BenchError> {
                let mut out = Vec::new();
                self.encode_frame_into(frame, &mut out)?;
                Ok(out)
            }

            fn finish(&mut self) -> Result<Vec<Packet>, BenchError> {
                let mut out = Vec::new();
                self.finish_into(&mut out)?;
                Ok(out)
            }

            fn encode_frame_into(
                &mut self,
                frame: &Frame,
                out: &mut Vec<Packet>,
            ) -> Result<(), BenchError> {
                let _span = hdvb_trace::span!(hdvb_trace::Stage::EncodeFrame);
                let result = self.inner.encode_into(frame, &mut self.scratch);
                out.extend(self.scratch.drain(..).map(convert_packet));
                result?;
                Ok(())
            }

            fn finish_into(&mut self, out: &mut Vec<Packet>) -> Result<(), BenchError> {
                let _span = hdvb_trace::span!(hdvb_trace::Stage::EncodeFrame);
                let result = self.inner.flush_into(&mut self.scratch);
                out.extend(self.scratch.drain(..).map(convert_packet));
                result?;
                Ok(())
            }

            fn set_cancel(&mut self, cancel: CancelToken) {
                self.inner.set_cancel(cancel);
            }
        }

        struct $dec($dec_ty);

        impl VideoDecoder for $dec {
            fn decode_packet(&mut self, data: &[u8]) -> Result<Vec<Frame>, BenchError> {
                let mut out = Vec::new();
                self.decode_packet_into(data, &mut out)?;
                Ok(out)
            }

            fn finish(&mut self) -> Vec<Frame> {
                self.0.flush()
            }

            fn decode_packet_into(
                &mut self,
                data: &[u8],
                out: &mut Vec<Frame>,
            ) -> Result<(), BenchError> {
                let _span = hdvb_trace::span!(hdvb_trace::Stage::DecodeFrame);
                self.0.decode_into(data, out).map_err(|e| match e {
                    $corrupt {
                        offset,
                        kind,
                        detail,
                    } => BenchError::Corrupt {
                        codec: $cid,
                        offset,
                        kind,
                        detail,
                    },
                    $cancelled => BenchError::Cancelled,
                    other => BenchError::Bitstream(other.to_string()),
                })
            }

            fn finish_into(&mut self, out: &mut Vec<Frame>) {
                self.0.flush_into(out);
            }

            fn set_cancel(&mut self, cancel: CancelToken) {
                self.0.set_cancel(cancel);
            }
        }
    };
}

fn kind_of<T: Into<PacketKind>>(t: T) -> PacketKind {
    t.into()
}

impl From<hdvb_mpeg2::FrameType> for PacketKind {
    fn from(t: hdvb_mpeg2::FrameType) -> Self {
        match t {
            hdvb_mpeg2::FrameType::I => PacketKind::I,
            hdvb_mpeg2::FrameType::P => PacketKind::P,
            hdvb_mpeg2::FrameType::B => PacketKind::B,
        }
    }
}

impl From<hdvb_mpeg4::FrameType> for PacketKind {
    fn from(t: hdvb_mpeg4::FrameType) -> Self {
        match t {
            hdvb_mpeg4::FrameType::I => PacketKind::I,
            hdvb_mpeg4::FrameType::P => PacketKind::P,
            hdvb_mpeg4::FrameType::B => PacketKind::B,
        }
    }
}

impl From<hdvb_h264::FrameType> for PacketKind {
    fn from(t: hdvb_h264::FrameType) -> Self {
        match t {
            hdvb_h264::FrameType::I => PacketKind::I,
            hdvb_h264::FrameType::P => PacketKind::P,
            hdvb_h264::FrameType::B => PacketKind::B,
        }
    }
}

trait IntoUnifiedPacket {
    fn into_unified(self) -> Packet;
}

impl IntoUnifiedPacket for hdvb_mpeg2::Packet {
    fn into_unified(self) -> Packet {
        Packet {
            kind: kind_of(self.frame_type),
            display_index: self.display_index,
            data: self.data,
        }
    }
}

impl IntoUnifiedPacket for hdvb_mpeg4::Packet {
    fn into_unified(self) -> Packet {
        Packet {
            kind: kind_of(self.frame_type),
            display_index: self.display_index,
            data: self.data,
        }
    }
}

impl IntoUnifiedPacket for hdvb_h264::Packet {
    fn into_unified(self) -> Packet {
        Packet {
            kind: kind_of(self.frame_type),
            display_index: self.display_index,
            data: self.data,
        }
    }
}

fn convert_packet<P: IntoUnifiedPacket>(p: P) -> Packet {
    p.into_unified()
}

impl_adapters!(
    Mpeg2Enc,
    Mpeg2Dec,
    hdvb_mpeg2::Mpeg2Encoder,
    hdvb_mpeg2::Mpeg2Decoder,
    hdvb_mpeg2::Packet,
    hdvb_mpeg2::CodecError::Corrupt,
    hdvb_mpeg2::CodecError::Cancelled,
    hdvb_mpeg2::FrameType,
    CodecId::Mpeg2
);
impl_adapters!(
    Mpeg4Enc,
    Mpeg4Dec,
    hdvb_mpeg4::Mpeg4Encoder,
    hdvb_mpeg4::Mpeg4Decoder,
    hdvb_mpeg4::Packet,
    hdvb_mpeg4::CodecError::Corrupt,
    hdvb_mpeg4::CodecError::Cancelled,
    hdvb_mpeg4::FrameType,
    CodecId::Mpeg4
);
impl_adapters!(
    H264Enc,
    H264Dec,
    hdvb_h264::H264Encoder,
    hdvb_h264::H264Decoder,
    hdvb_h264::Packet,
    hdvb_h264::CodecError::Corrupt,
    hdvb_h264::CodecError::Cancelled,
    hdvb_h264::FrameType,
    CodecId::H264
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_names_roundtrip() {
        for c in CodecId::ALL {
            assert_eq!(CodecId::from_name(c.name()), Some(c));
        }
        assert_eq!(CodecId::from_name("vc1"), None);
    }

    #[test]
    fn paper_applications_match_table_ii() {
        assert_eq!(CodecId::Mpeg2.paper_decoder(), "libmpeg2");
        assert_eq!(CodecId::Mpeg2.paper_encoder(), "ffmpeg-mpeg2");
        assert_eq!(CodecId::Mpeg4.paper_encoder(), "xvid");
        assert_eq!(CodecId::H264.paper_encoder(), "x264");
        assert_eq!(CodecId::H264.paper_decoder(), "ffmpeg-h264");
    }

    #[test]
    fn every_codec_roundtrips_through_the_trait_objects() {
        let res = Resolution::new(48, 32);
        let options = CodingOptions::default();
        for codec in CodecId::ALL {
            let mut enc = create_encoder(codec, res, &options).unwrap();
            let mut dec = create_decoder(codec, options.simd);
            let frame = Frame::new(48, 32);
            let mut packets = enc.encode_frame(&frame).unwrap();
            packets.extend(enc.finish().unwrap());
            let mut out = Vec::new();
            for p in &packets {
                out.extend(dec.decode_packet(&p.data).unwrap());
            }
            out.extend(dec.finish());
            assert_eq!(out.len(), 1, "{codec}");
            assert_eq!(packets[0].kind, PacketKind::I);
        }
    }

    #[test]
    fn decoders_reject_cross_codec_streams() {
        let res = Resolution::new(48, 32);
        let options = CodingOptions::default();
        let mut enc = create_encoder(CodecId::Mpeg2, res, &options).unwrap();
        let mut packets = enc.encode_frame(&Frame::new(48, 32)).unwrap();
        packets.extend(enc.finish().unwrap());
        let mut dec = create_decoder(CodecId::H264, options.simd);
        assert!(dec.decode_packet(&packets[0].data).is_err());
    }
}
