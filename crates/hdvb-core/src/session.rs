//! The session-facing incremental codec API.
//!
//! The batch runners ([`crate::encode_sequence`] and friends) own the
//! whole input and drive a codec to completion in one call. A serving
//! front end cannot: frames and packets arrive one at a time over the
//! lifetime of a long-running session, interleaved with hundreds of
//! other sessions. [`CodecSession`] is that incremental surface — one
//! state machine per session that accepts inputs as they arrive,
//! returns whatever outputs the codec can emit so far, and flushes the
//! rest on [`finish`](CodecSession::finish).
//!
//! The session calls exactly the same [`VideoEncoder`]/[`VideoDecoder`]
//! trait objects in exactly the same order as the batch path, so a
//! single-session serve run is bit-identical to `encode`/`decode` on
//! the same input and options (enforced by tests here and in
//! `hdvb-serve`).

use crate::{
    create_decoder, create_encoder, BenchError, CodecId, CodingOptions, Packet, VideoDecoder,
    VideoEncoder,
};
use hdvb_dsp::SimdLevel;
use hdvb_frame::{BufferPool, Frame, FramePool, Resolution};
use hdvb_par::CancelToken;

/// One unit of session input: a raw frame (encode, transcode) or a
/// coded packet (decode).
#[derive(Clone, Debug)]
pub enum SessionInput {
    /// A display-order frame for an encode or transcode session.
    Frame(Frame),
    /// A coding-order packet for a decode session.
    Packet(Vec<u8>),
}

/// Outputs produced by one [`CodecSession::push`] or
/// [`CodecSession::finish`] call. Either side may be empty: codecs
/// buffer B-frame lookahead and emit bursts at anchor boundaries.
#[derive(Clone, Debug, Default)]
pub struct SessionOutput {
    /// Coded packets (encode and transcode sessions).
    pub packets: Vec<Packet>,
    /// Decoded frames (decode sessions).
    pub frames: Vec<Frame>,
}

impl SessionOutput {
    /// An empty output, ready to be passed to
    /// [`CodecSession::push_into`].
    pub fn new() -> SessionOutput {
        SessionOutput::default()
    }

    /// True when this step emitted nothing.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty() && self.frames.is_empty()
    }

    /// Number of output items (packets plus frames).
    pub fn len(&self) -> usize {
        self.packets.len() + self.frames.len()
    }

    /// Returns every buffer held by this output to the global pools and
    /// clears both lists. A long-running caller that consumes (copies
    /// out, hashes, discards) each step's outputs can reuse one
    /// `SessionOutput` and recycle it between steps, closing the
    /// producer→consumer loop so steady-state traffic allocates
    /// nothing.
    pub fn recycle(&mut self) {
        for p in self.packets.drain(..) {
            BufferPool::global().put(p.data);
        }
        for f in self.frames.drain(..) {
            FramePool::global().put(f);
        }
    }
}

enum Engine {
    Encode(Box<dyn VideoEncoder + Send>),
    Decode(Box<dyn VideoDecoder + Send>),
    Transcode {
        decoder: Box<dyn VideoDecoder + Send>,
        encoder: Box<dyn VideoEncoder + Send>,
    },
}

/// An incremental encode, decode or transcode state machine.
///
/// Inputs go in one at a time with [`push`](Self::push); buffered
/// lookahead is flushed by [`finish`](Self::finish), after which the
/// session accepts no more input. Sessions are `Send` so a serving
/// front end can migrate them between pool workers (one worker at a
/// time — the codec state is serial).
pub struct CodecSession {
    engine: Engine,
    /// Drop corrupt packets (counted) instead of failing the session.
    resilient: bool,
    /// Checked at every push/finish in addition to the codec's own
    /// picture-boundary checks, so cancellation fires even while the
    /// codec is only buffering lookahead (mirrors
    /// [`crate::encode_sequence_cancellable`]).
    cancel: CancelToken,
    dropped: u64,
    finished: bool,
    /// Transcode staging: decoded frames on their way to the encoder.
    /// Persistent so the decode→encode hop reuses one buffer instead of
    /// allocating a `Vec` per packet; the frames themselves cycle
    /// through the global [`FramePool`].
    frame_buf: Vec<Frame>,
}

impl CodecSession {
    /// An encode session: display-order frames in, packets out.
    ///
    /// # Errors
    ///
    /// [`BenchError::Codec`] if the options are invalid for the codec.
    pub fn encoder(
        codec: CodecId,
        resolution: Resolution,
        options: &CodingOptions,
    ) -> Result<CodecSession, BenchError> {
        Ok(CodecSession {
            engine: Engine::Encode(create_encoder(codec, resolution, options)?),
            resilient: false,
            cancel: CancelToken::never(),
            dropped: 0,
            finished: false,
            frame_buf: Vec::new(),
        })
    }

    /// A decode session: coding-order packets in, display-order frames
    /// out.
    pub fn decoder(codec: CodecId, simd: SimdLevel) -> CodecSession {
        CodecSession {
            engine: Engine::Decode(create_decoder(codec, simd)),
            resilient: false,
            cancel: CancelToken::never(),
            dropped: 0,
            finished: false,
            frame_buf: Vec::new(),
        }
    }

    /// A transcode session: `from`-codec packets in, `to`-codec packets
    /// out, decoding and re-encoding frame by frame.
    ///
    /// # Errors
    ///
    /// [`BenchError::Codec`] if the options are invalid for the target
    /// codec.
    pub fn transcoder(
        from: CodecId,
        to: CodecId,
        resolution: Resolution,
        options: &CodingOptions,
    ) -> Result<CodecSession, BenchError> {
        Ok(CodecSession {
            engine: Engine::Transcode {
                decoder: create_decoder(from, options.simd),
                encoder: create_encoder(to, resolution, options)?,
            },
            resilient: false,
            cancel: CancelToken::never(),
            dropped: 0,
            finished: false,
            frame_buf: Vec::new(),
        })
    }

    /// Enables drop-and-continue decoding: a corrupt packet costs its
    /// frame(s) and bumps [`dropped`](Self::dropped) instead of killing
    /// the session (the per-session form of
    /// [`crate::decode_sequence_resilient`]). Cancellation still
    /// propagates.
    pub fn with_resilience(mut self) -> CodecSession {
        self.resilient = true;
        self
    }

    /// Installs a cooperative cancellation token on the underlying
    /// codec(s), checked at picture/packet boundaries.
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel.clone();
        match &mut self.engine {
            Engine::Encode(enc) => enc.set_cancel(cancel),
            Engine::Decode(dec) => dec.set_cancel(cancel),
            Engine::Transcode { decoder, encoder } => {
                decoder.set_cancel(cancel.clone());
                encoder.set_cancel(cancel);
            }
        }
    }

    /// Packets dropped so far by a resilient session.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Whether [`finish`](Self::finish) has run.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Feeds one input and returns whatever the codec emits for it.
    ///
    /// # Errors
    ///
    /// [`BenchError::BadRequest`] on an input of the wrong kind for the
    /// session or after [`finish`](Self::finish); codec errors
    /// otherwise ([`BenchError::Corrupt`] is swallowed and counted by
    /// resilient sessions).
    pub fn push(&mut self, input: SessionInput) -> Result<SessionOutput, BenchError> {
        let mut out = SessionOutput::default();
        self.push_into(input, &mut out)?;
        Ok(out)
    }

    /// Feeds one input, appending whatever the codec emits to `out`.
    ///
    /// This is the allocation-free form of [`push`](Self::push): input
    /// buffers are returned to the global pools once consumed, output
    /// packets and frames carry pooled buffers, and the caller closes
    /// the loop with [`SessionOutput::recycle`] after consuming them.
    /// In steady state (warm pools, reused `out`) a push allocates
    /// nothing.
    ///
    /// # Errors
    ///
    /// As [`push`](Self::push). `out` keeps anything appended before
    /// the failure.
    pub fn push_into(
        &mut self,
        input: SessionInput,
        out: &mut SessionOutput,
    ) -> Result<(), BenchError> {
        if self.finished {
            return Err(BenchError::BadRequest("push after session finish"));
        }
        if self.cancel.is_cancelled() {
            return Err(BenchError::Cancelled);
        }
        match (&mut self.engine, input) {
            (Engine::Encode(enc), SessionInput::Frame(frame)) => {
                // The encoder copies the frame into its own pooled
                // lookahead slot, so the input can be recycled at once.
                let result = enc.encode_frame_into(&frame, &mut out.packets);
                FramePool::global().put(frame);
                result
            }
            (Engine::Decode(dec), SessionInput::Packet(data)) => {
                let result = Self::decode_step(
                    dec,
                    &data,
                    self.resilient,
                    &mut self.dropped,
                    &mut out.frames,
                );
                BufferPool::global().put(data);
                result.map(|_| ())
            }
            (Engine::Transcode { decoder, encoder }, SessionInput::Packet(data)) => {
                let decoded = Self::decode_step(
                    decoder,
                    &data,
                    self.resilient,
                    &mut self.dropped,
                    &mut self.frame_buf,
                );
                BufferPool::global().put(data);
                if decoded? {
                    Self::encode_all(encoder, &mut self.frame_buf, &mut out.packets)?;
                }
                Ok(())
            }
            (Engine::Encode(_), SessionInput::Packet(_)) => Err(BenchError::BadRequest(
                "encode session expects frames, got a packet",
            )),
            (_, SessionInput::Frame(_)) => Err(BenchError::BadRequest(
                "decode/transcode session expects packets, got a frame",
            )),
        }
    }

    /// Flushes buffered lookahead at end of stream. The session accepts
    /// no further input afterwards.
    ///
    /// # Errors
    ///
    /// Codec errors; [`BenchError::BadRequest`] on a second call.
    pub fn finish(&mut self) -> Result<SessionOutput, BenchError> {
        let mut out = SessionOutput::default();
        self.finish_into(&mut out)?;
        Ok(out)
    }

    /// Flushes buffered lookahead into `out`; the allocation-free form
    /// of [`finish`](Self::finish).
    ///
    /// # Errors
    ///
    /// Codec errors; [`BenchError::BadRequest`] on a second call.
    pub fn finish_into(&mut self, out: &mut SessionOutput) -> Result<(), BenchError> {
        if self.finished {
            return Err(BenchError::BadRequest("session already finished"));
        }
        if self.cancel.is_cancelled() {
            return Err(BenchError::Cancelled);
        }
        self.finished = true;
        match &mut self.engine {
            Engine::Encode(enc) => enc.finish_into(&mut out.packets),
            Engine::Decode(dec) => {
                dec.finish_into(&mut out.frames);
                Ok(())
            }
            Engine::Transcode { decoder, encoder } => {
                decoder.finish_into(&mut self.frame_buf);
                Self::encode_all(encoder, &mut self.frame_buf, &mut out.packets)?;
                encoder.finish_into(&mut out.packets)
            }
        }
    }

    /// One decode step honouring the resilience policy: `Ok(false)`
    /// means the packet was dropped and counted, with any partial
    /// output recycled so `out` is untouched.
    fn decode_step(
        dec: &mut Box<dyn VideoDecoder + Send>,
        data: &[u8],
        resilient: bool,
        dropped: &mut u64,
        out: &mut Vec<Frame>,
    ) -> Result<bool, BenchError> {
        let mark = out.len();
        match dec.decode_packet_into(data, out) {
            Ok(()) => Ok(true),
            // Cancellation is a session-level event, never a drop.
            Err(BenchError::Cancelled) => Err(BenchError::Cancelled),
            Err(e) if resilient => {
                let _ = e;
                *dropped += 1;
                for f in out.drain(mark..) {
                    FramePool::global().put(f);
                }
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    /// Encodes and recycles every staged frame, draining `frames` even
    /// on error so no pooled frame leaks.
    fn encode_all(
        enc: &mut Box<dyn VideoEncoder + Send>,
        frames: &mut Vec<Frame>,
        out: &mut Vec<Packet>,
    ) -> Result<(), BenchError> {
        let mut result = Ok(());
        for f in frames.drain(..) {
            if result.is_ok() {
                result = enc.encode_frame_into(&f, out);
            }
            FramePool::global().put(f);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_sequence, encode_sequence};
    use hdvb_seq::{Sequence, SequenceId};

    fn small_seq() -> Sequence {
        Sequence::new(SequenceId::RushHour, Resolution::new(64, 48))
    }

    #[test]
    fn incremental_encode_is_bit_identical_to_batch() {
        let seq = small_seq();
        let options = CodingOptions::default();
        for codec in CodecId::ALL {
            let batch = encode_sequence(codec, seq, 6, &options).unwrap();
            let mut session = CodecSession::encoder(codec, seq.resolution(), &options).unwrap();
            let mut packets = Vec::new();
            for i in 0..6 {
                let out = session.push(SessionInput::Frame(seq.frame(i))).unwrap();
                assert!(out.frames.is_empty(), "{codec}: encoder emitted frames");
                packets.extend(out.packets);
            }
            packets.extend(session.finish().unwrap().packets);
            assert_eq!(packets, batch.packets, "{codec}");
        }
    }

    #[test]
    fn incremental_decode_is_bit_identical_to_batch() {
        let seq = small_seq();
        let options = CodingOptions::default();
        for codec in CodecId::ALL {
            let encoded = encode_sequence(codec, seq, 6, &options).unwrap();
            let batch = decode_sequence(codec, &encoded.packets, options.simd).unwrap();
            let mut session = CodecSession::decoder(codec, options.simd);
            let mut frames = Vec::new();
            for p in &encoded.packets {
                frames.extend(
                    session
                        .push(SessionInput::Packet(p.data.clone()))
                        .unwrap()
                        .frames,
                );
            }
            frames.extend(session.finish().unwrap().frames);
            assert_eq!(frames, batch.frames, "{codec}");
        }
    }

    #[test]
    fn transcode_session_produces_a_decodable_stream() {
        let seq = small_seq();
        let options = CodingOptions::default();
        let encoded = encode_sequence(CodecId::Mpeg2, seq, 6, &options).unwrap();
        let mut session =
            CodecSession::transcoder(CodecId::Mpeg2, CodecId::H264, seq.resolution(), &options)
                .unwrap();
        let mut packets = Vec::new();
        for p in &encoded.packets {
            packets.extend(
                session
                    .push(SessionInput::Packet(p.data.clone()))
                    .unwrap()
                    .packets,
            );
        }
        packets.extend(session.finish().unwrap().packets);
        let decoded = decode_sequence(CodecId::H264, &packets, options.simd).unwrap();
        assert_eq!(decoded.frames.len(), 6);
    }

    #[test]
    fn resilient_session_drops_corrupt_packets_and_continues() {
        let seq = small_seq();
        let options = CodingOptions::default();
        for codec in CodecId::ALL {
            let encoded = encode_sequence(codec, seq, 4, &options).unwrap();
            let mut session = CodecSession::decoder(codec, options.simd).with_resilience();
            let mut frames = Vec::new();
            for (i, p) in encoded.packets.iter().enumerate() {
                let data = if i == 1 {
                    vec![0xFF; 40]
                } else {
                    p.data.clone()
                };
                frames.extend(session.push(SessionInput::Packet(data)).unwrap().frames);
            }
            frames.extend(session.finish().unwrap().frames);
            assert!(session.dropped() >= 1, "{codec}");
            assert!(!frames.is_empty(), "{codec}: stream died");
        }
    }

    #[test]
    fn strict_session_fails_on_corrupt_packet() {
        let mut session = CodecSession::decoder(CodecId::H264, SimdLevel::Scalar);
        assert!(matches!(
            session.push(SessionInput::Packet(vec![0xFF; 40])),
            Err(BenchError::Corrupt { .. })
        ));
    }

    #[test]
    fn wrong_input_kind_and_push_after_finish_are_rejected() {
        let seq = small_seq();
        let options = CodingOptions::default();
        let mut enc = CodecSession::encoder(CodecId::Mpeg2, seq.resolution(), &options).unwrap();
        assert!(matches!(
            enc.push(SessionInput::Packet(vec![0; 4])),
            Err(BenchError::BadRequest(_))
        ));
        enc.finish().unwrap();
        assert!(matches!(
            enc.push(SessionInput::Frame(seq.frame(0))),
            Err(BenchError::BadRequest(_))
        ));
        assert!(matches!(enc.finish(), Err(BenchError::BadRequest(_))));

        let mut dec = CodecSession::decoder(CodecId::Mpeg2, options.simd);
        assert!(matches!(
            dec.push(SessionInput::Frame(seq.frame(0))),
            Err(BenchError::BadRequest(_))
        ));
    }

    #[test]
    fn cancelled_session_stops_with_cancelled() {
        let seq = small_seq();
        let options = CodingOptions::default();
        let cancel = CancelToken::new();
        let mut session = CodecSession::encoder(CodecId::H264, seq.resolution(), &options).unwrap();
        session.set_cancel(cancel.clone());
        session.push(SessionInput::Frame(seq.frame(0))).unwrap();
        cancel.cancel();
        assert!(matches!(
            session.push(SessionInput::Frame(seq.frame(1))),
            Err(BenchError::Cancelled)
        ));
    }

    #[test]
    fn sessions_are_send() {
        fn check<T: Send>() {}
        check::<CodecSession>();
    }
}
