//! End-to-end fault-tolerance tests driving *real* codec cells (the
//! in-module `sweep` tests use synthetic closures; these run the full
//! encode→decode→PSNR measurement per cell).
//!
//! The flow under test is the one a long benchmark run depends on:
//! inject faults into a journaled Table V sweep, watch it complete
//! with the damage reported instead of aborting, then `--resume` the
//! journal without faults and require the merged results to be
//! bit-identical to an uninterrupted serial run.

use hdvb_core::{CellTimeout, CodingOptions, FaultPlan, ParallelRunner, SweepPolicy, Table5Row};
use hdvb_dsp::SimdLevel;
use hdvb_frame::Resolution;
use std::path::PathBuf;
use std::time::Duration;

/// A tiny grid: one scaled-down resolution, 4 sequences x 3 codecs.
fn grid() -> Vec<Resolution> {
    vec![Resolution::DVD_576.scaled_down(8)]
}

fn options() -> CodingOptions {
    // Pin the tier so journal keys (and values) are machine-independent.
    CodingOptions::default().with_simd(SimdLevel::Scalar)
}

fn tmp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hdvb-ft-{tag}-{}.journal", std::process::id()))
}

/// Every measured f64 of every row, as raw bit patterns.
fn row_bits(rows: &[Table5Row]) -> Vec<u64> {
    rows.iter()
        .flat_map(|r| r.points.iter().flat_map(|p| [p.0.to_bits(), p.1.to_bits()]))
        .collect()
}

#[test]
fn chaos_sweep_reports_damage_and_resume_heals_bit_identically() {
    let frames = 2;
    let journal = tmp_journal("chaos");
    let _ = std::fs::remove_file(&journal);

    // Reference: plain serial sweep, no fault tolerance involved.
    let serial = ParallelRunner::new(1);
    let (reference, _) = serial
        .table5_rows(&grid(), frames, &options())
        .expect("reference sweep");

    // Chaos run: cell 1 panics on every attempt (3 > 1+max_retries
    // exhausts it), cell 5 stalls past a tight fixed budget. The sweep
    // must still complete and account for both.
    let chaos = SweepPolicy {
        max_retries: 1,
        cell_timeout: CellTimeout::Fixed(Duration::from_secs(5)),
        faults: FaultPlan::parse("panic@1x3,stall@5:6000x1,seed=9").expect("fault spec"),
        ..SweepPolicy::default()
    };
    let runner = ParallelRunner::new(2);
    let (rows, report) = runner
        .table5_rows_ft(&grid(), frames, &options(), &chaos, Some(&journal), None)
        .expect("chaos sweep must not abort");
    assert_eq!(report.failed(), 1, "{}", report.failure_summary());
    assert_eq!(report.timed_out(), 1, "{}", report.failure_summary());
    assert_eq!(report.completed(), 10, "{}", report.failure_summary());
    // The failed cell is res0 / sequence 0 / codec 1, the timed-out one
    // is res0 / sequence 1 / codec 2; both render as NaN in their row.
    assert!(rows[0].points[1].0.is_nan() && rows[0].points[1].1.is_nan());
    assert!(rows[1].points[2].0.is_nan() && rows[1].points[2].1.is_nan());
    let summary = report.failure_summary();
    assert!(summary.contains("failed (panic)"), "{summary}");
    assert!(summary.contains("timed-out"), "{summary}");

    // Resume without faults: the 10 good cells restore from the
    // journal, the 2 damaged ones re-run, and the merged table is
    // bit-identical to the uninterrupted serial reference.
    let clean = SweepPolicy::default();
    let (healed, report) = runner
        .table5_rows_ft(
            &grid(),
            frames,
            &options(),
            &clean,
            Some(&journal),
            Some(&journal),
        )
        .expect("resume sweep");
    assert!(report.all_ok(), "{}", report.failure_summary());
    assert_eq!(report.restored(), 10);
    assert_eq!(report.completed(), 2);
    assert_eq!(row_bits(&healed), row_bits(&reference));

    let _ = std::fs::remove_file(&journal);
}

#[test]
fn garbled_journal_records_are_skipped_and_rerun() {
    let frames = 2;
    let journal = tmp_journal("garble");
    let _ = std::fs::remove_file(&journal);

    let runner = ParallelRunner::new(2);
    let policy = SweepPolicy::default();
    let (reference, report) = runner
        .table5_rows_ft(&grid(), frames, &options(), &policy, Some(&journal), None)
        .expect("journaled sweep");
    assert!(report.all_ok(), "{}", report.failure_summary());

    // Flip a byte inside the payload of the third record and chop the
    // final line mid-way: both must fail the checksum, be counted, and
    // only cost a re-run of the affected cells.
    let mut bytes = std::fs::read(&journal).expect("journal exists");
    let third_line_start = bytes
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b == b'\n')
        .map(|(i, _)| i + 1)
        .nth(1)
        .expect("at least 3 records");
    bytes[third_line_start + 40] ^= 0x20;
    let keep = bytes.len() - 7;
    std::fs::write(&journal, &bytes[..keep]).expect("rewrite journal");

    let (healed, report) = runner
        .table5_rows_ft(
            &grid(),
            frames,
            &options(),
            &policy,
            Some(&journal),
            Some(&journal),
        )
        .expect("resume over damaged journal");
    assert!(report.all_ok(), "{}", report.failure_summary());
    assert_eq!(report.journal_bad_lines, 2);
    assert_eq!(report.restored(), 10);
    assert_eq!(report.completed(), 2);
    assert!(report
        .failure_summary()
        .contains("2 journal record(s) failed checksum"));
    assert_eq!(row_bits(&healed), row_bits(&reference));

    let _ = std::fs::remove_file(&journal);
}
