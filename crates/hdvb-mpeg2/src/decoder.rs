use crate::blocks::read_coeffs;
use crate::encoder::{
    build_b_prediction, predict_mb, reconstruct_inter, store_block_clamped, RefPicture, RowState,
    MAGIC,
};
use crate::types::{CodecError, FrameType, MAX_DECODE_PIXELS};
use hdvb_bits::{BitReader, CorruptKind};
use hdvb_dsp::{Dsp, SimdLevel, MPEG_DEFAULT_INTRA};
use hdvb_frame::{align_up, Frame, FramePool};
use hdvb_me::{Mv, MvField};
use hdvb_par::CancelToken;

/// Per-packet working storage, reused while the coded geometry stays the
/// same so steady-state decoding performs no heap allocation. Both
/// buffers are fully overwritten (or cleared) per picture.
struct DecScratch {
    recon: Frame,
    mvs: MvField,
}

/// The MPEG-2-class decoder.
///
/// Packets must be fed in coding order (as produced by
/// [`Mpeg2Encoder`](crate::Mpeg2Encoder)); frames come out in display
/// order. Call [`flush`](Self::flush) after the last packet to obtain the
/// final anchor.
pub struct Mpeg2Decoder {
    dsp: Dsp,
    prev_anchor: Option<RefPicture>,
    last_anchor: Option<RefPicture>,
    /// The newest anchor's displayable frame, held until the next anchor
    /// arrives (display reordering).
    pending: Option<Frame>,
    /// Reusable per-packet working storage.
    scratch: Option<DecScratch>,
    /// Cooperative cancellation, checkpointed at each packet boundary.
    cancel: CancelToken,
}

impl Default for Mpeg2Decoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Mpeg2Decoder {
    /// Creates a decoder at the CPU's best SIMD level.
    pub fn new() -> Self {
        Self::with_simd(SimdLevel::detect())
    }

    /// Creates a decoder at an explicit SIMD level (the Figure-1 axis).
    pub fn with_simd(simd: SimdLevel) -> Self {
        Mpeg2Decoder {
            dsp: Dsp::new(simd),
            prev_anchor: None,
            last_anchor: None,
            pending: None,
            scratch: None,
            cancel: CancelToken::never(),
        }
    }

    /// Installs a cancellation token checked at each packet boundary,
    /// so a deadline or shutdown stops the decoder before the next
    /// packet with [`CodecError::Cancelled`].
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// Decodes one packet; returns zero or more display-order frames.
    ///
    /// # Errors
    ///
    /// [`CodecError::Corrupt`] on malformed or truncated input, carrying
    /// the bit offset the parse stopped at and a [`CorruptKind`]
    /// classification. A failed packet leaves the decoder's reference
    /// state untouched, so subsequent packets can still decode (the
    /// container-level resync in `hdvb-core` relies on this).
    pub fn decode(&mut self, data: &[u8]) -> Result<Vec<Frame>, CodecError> {
        let mut out = Vec::new();
        self.decode_into(data, &mut out)?;
        Ok(out)
    }

    /// Allocation-free form of [`decode`](Self::decode): appends decoded
    /// display-order frames to `out`. Output frames come from the global
    /// [`FramePool`] (return them with `FramePool::global().put(..)` to
    /// close the recycling loop), and per-packet working state is reused
    /// while the coded geometry stays constant — at steady state a
    /// decoded packet performs zero heap allocations.
    ///
    /// # Errors
    ///
    /// As [`decode`](Self::decode); nothing is appended on error.
    pub fn decode_into(&mut self, data: &[u8], out: &mut Vec<Frame>) -> Result<(), CodecError> {
        if self.cancel.is_cancelled() {
            return Err(CodecError::Cancelled);
        }
        let mut r = BitReader::new(data);
        let result = self.decode_inner(&mut r, out);
        let pos = r.bit_pos();
        result.map_err(|e| e.at_bit(pos))
    }

    fn decode_inner(
        &mut self,
        r: &mut BitReader<'_>,
        out: &mut Vec<Frame>,
    ) -> Result<(), CodecError> {
        if r.get_bits(16)? != MAGIC {
            return Err(CodecError::corrupt(
                CorruptKind::BadMagic,
                "bad picture magic",
            ));
        }
        let frame_type = FrameType::from_bits(r.get_bits(2)?)
            .ok_or_else(|| CodecError::corrupt(CorruptKind::BadHeaderField, "bad frame type"))?;
        let _display_index = r.get_bits(32)?;
        let width = r.get_ue()? as usize;
        let height = r.get_ue()? as usize;
        let qscale = r.get_ue()?;
        if width < 16
            || height < 16
            || width > 16384
            || height > 16384
            || !width.is_multiple_of(2)
            || !height.is_multiple_of(2)
            || width.saturating_mul(height) > MAX_DECODE_PIXELS
        {
            return Err(CodecError::corrupt(
                CorruptKind::BadDimensions,
                format!("implausible dimensions {width}x{height}"),
            ));
        }
        if !(1..=62).contains(&qscale) {
            return Err(CodecError::corrupt(
                CorruptKind::BadHeaderField,
                "qscale out of range",
            ));
        }
        let qscale = qscale as u16;
        let aw = align_up(width, 16);
        let ah = align_up(height, 16);
        let (mbs_x, mbs_y) = (aw / 16, ah / 16);

        let mut scratch = match self.scratch.take() {
            Some(s) if s.recon.width() == aw && s.recon.height() == ah => s,
            other => {
                let _z = hdvb_trace::zone!(hdvb_trace::Stage::Reconstruct);
                if let Some(s) = other {
                    FramePool::global().put(s.recon);
                }
                DecScratch {
                    recon: FramePool::global().take(aw, ah),
                    mvs: MvField::new(mbs_x, mbs_y),
                }
            }
        };
        let result = self.decode_picture(r, frame_type, qscale, width, height, &mut scratch, out);
        self.scratch = Some(scratch);
        result
    }

    /// Decodes the picture body into `scratch.recon` and performs display
    /// reordering and anchor rotation. `out` is only appended to after
    /// the whole picture decoded successfully, so a failed packet leaves
    /// the decoder state untouched.
    #[allow(clippy::too_many_arguments)]
    fn decode_picture(
        &mut self,
        r: &mut BitReader<'_>,
        frame_type: FrameType,
        qscale: u16,
        width: usize,
        height: usize,
        scratch: &mut DecScratch,
        out: &mut Vec<Frame>,
    ) -> Result<(), CodecError> {
        let DecScratch { recon, mvs } = scratch;
        let (aw, ah) = (recon.width(), recon.height());
        let (mbs_x, mbs_y) = (aw / 16, ah / 16);
        // Recycled storage: `recon` is fully overwritten by every picture
        // type and the motion field is cleared, matching fresh buffers
        // bit for bit.
        mvs.clear();
        match frame_type {
            FrameType::I => self.decode_i(r, recon, qscale, mbs_x, mbs_y)?,
            FrameType::P => self.decode_p(r, recon, mvs, qscale, mbs_x, mbs_y)?,
            FrameType::B => self.decode_b(r, recon, qscale, mbs_x, mbs_y)?,
        }

        let display = {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::Reconstruct);
            let mut d = FramePool::global().take(width, height);
            d.crop_from(recon);
            d
        };
        if frame_type == FrameType::B {
            out.push(display);
        } else {
            if let Some(prev) = self.pending.take() {
                out.push(prev);
            }
            self.pending = Some(display);
            let recycled = self.prev_anchor.take();
            self.prev_anchor = self.last_anchor.take();
            self.last_anchor = Some(match recycled {
                Some(mut rp) if rp.matches(aw, ah) => {
                    rp.refill_from(recon, mvs);
                    rp
                }
                _ => RefPicture::from_frame(
                    recon,
                    std::mem::replace(mvs, MvField::new(mbs_x, mbs_y)),
                ),
            });
        }
        Ok(())
    }

    /// Returns the final buffered anchor at end of stream.
    pub fn flush(&mut self) -> Vec<Frame> {
        let mut out = Vec::new();
        self.flush_into(&mut out);
        out
    }

    /// Allocation-free form of [`flush`](Self::flush).
    pub fn flush_into(&mut self, out: &mut Vec<Frame>) {
        if let Some(p) = self.pending.take() {
            out.push(p);
        }
    }

    fn decode_i(
        &mut self,
        r: &mut BitReader<'_>,
        recon: &mut Frame,
        qscale: u16,
        mbs_x: usize,
        mbs_y: usize,
    ) -> Result<(), CodecError> {
        for mby in 0..mbs_y {
            let mut row = RowState::new();
            for mbx in 0..mbs_x {
                self.decode_intra_mb(r, recon, qscale, mbx, mby, &mut row.dc_pred)?;
            }
            r.byte_align();
        }
        Ok(())
    }

    fn decode_intra_mb(
        &mut self,
        r: &mut BitReader<'_>,
        recon: &mut Frame,
        qscale: u16,
        mbx: usize,
        mby: usize,
        dc_pred: &mut [i32; 3],
    ) -> Result<(), CodecError> {
        // Phase-split (read all six blocks, then reconstruct all six) so
        // each phase is one trace zone; the bits are consumed in exactly
        // the same order as the interleaved per-block form.
        let mut blocks = [[0i16; 64]; 6];
        let mut dc_levels = [0i32; 6];
        {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
            for (b, block) in blocks.iter_mut().enumerate() {
                let dc_diff = r.get_se()?;
                let comp = match b {
                    0..=3 => 0,
                    4 => 1,
                    _ => 2,
                };
                let dc_level = (dc_pred[comp] + dc_diff).clamp(0, 255);
                dc_pred[comp] = dc_level;
                dc_levels[b] = dc_level;
                read_coeffs(r, block, 1)?;
            }
        }
        let _z = hdvb_trace::zone!(hdvb_trace::Stage::Reconstruct);
        for (b, block) in blocks.iter_mut().enumerate() {
            self.dsp.dequant8(block, &MPEG_DEFAULT_INTRA, qscale, true);
            block[0] = (dc_levels[b] * 8) as i16;
            self.dsp.idct8(block);
            let (plane, bx, by) = match b {
                0..=3 => (
                    recon.y_mut(),
                    mbx * 16 + (b % 2) * 8,
                    mby * 16 + (b / 2) * 8,
                ),
                4 => (recon.cb_mut(), mbx * 8, mby * 8),
                _ => (recon.cr_mut(), mbx * 8, mby * 8),
            };
            store_block_clamped(plane, bx, by, block);
        }
        Ok(())
    }

    fn decode_p(
        &mut self,
        r: &mut BitReader<'_>,
        recon: &mut Frame,
        mvs: &mut MvField,
        qscale: u16,
        mbs_x: usize,
        mbs_y: usize,
    ) -> Result<(), CodecError> {
        // Take the reference out to avoid aliasing self borrows.
        let reference = self.last_anchor.take().ok_or_else(|| {
            CodecError::corrupt(CorruptKind::MissingReference, "P picture without reference")
        })?;
        let result = (|| -> Result<(), CodecError> {
            check_ref_geometry(&reference, mbs_x, mbs_y)?;
            for mby in 0..mbs_y {
                let mut row = RowState::new();
                for mbx in 0..mbs_x {
                    let skip = r.get_bit()?;
                    if skip {
                        let (mut py, mut pcb, mut pcr) = ([0u8; 256], [0u8; 64], [0u8; 64]);
                        predict_mb(
                            &self.dsp,
                            &reference,
                            mbx,
                            mby,
                            Mv::ZERO,
                            &mut py,
                            &mut pcb,
                            &mut pcr,
                        );
                        reconstruct_inter(
                            &self.dsp,
                            recon,
                            mbx,
                            mby,
                            &py,
                            &pcb,
                            &pcr,
                            &[[0i16; 64]; 6],
                            0,
                            qscale,
                        );
                        row.dc_pred = [128; 3];
                        row.reset_mv();
                        continue;
                    }
                    let intra = r.get_bit()?;
                    if intra {
                        self.decode_intra_mb(r, recon, qscale, mbx, mby, &mut row.dc_pred)?;
                        row.reset_mv();
                        continue;
                    }
                    let ec_zone = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
                    let mvd_x = r.get_se()?;
                    let mvd_y = r.get_se()?;
                    let mv = Mv::new(
                        clamp_mv(i32::from(row.mv_pred.x) + mvd_x)?,
                        clamp_mv(i32::from(row.mv_pred.y) + mvd_y)?,
                    );
                    row.mv_pred = mv;
                    check_window(&reference, mbx, mby, mv)?;
                    mvs.set(mbx, mby, Mv::new(mv.x >> 1, mv.y >> 1));
                    let cbp = r.get_bits(6)? as u8;
                    let mut blocks = [[0i16; 64]; 6];
                    for (i, b) in blocks.iter_mut().enumerate() {
                        if cbp & (1 << (5 - i)) != 0 {
                            read_coeffs(r, b, 0)?;
                        }
                    }
                    drop(ec_zone);
                    let (mut py, mut pcb, mut pcr) = ([0u8; 256], [0u8; 64], [0u8; 64]);
                    predict_mb(
                        &self.dsp, &reference, mbx, mby, mv, &mut py, &mut pcb, &mut pcr,
                    );
                    reconstruct_inter(
                        &self.dsp, recon, mbx, mby, &py, &pcb, &pcr, &blocks, cbp, qscale,
                    );
                    row.dc_pred = [128; 3];
                }
                r.byte_align();
            }
            Ok(())
        })();
        self.last_anchor = Some(reference);
        result
    }

    fn decode_b(
        &mut self,
        r: &mut BitReader<'_>,
        recon: &mut Frame,
        qscale: u16,
        mbs_x: usize,
        mbs_y: usize,
    ) -> Result<(), CodecError> {
        let fwd = self.prev_anchor.take().ok_or_else(|| {
            CodecError::corrupt(CorruptKind::MissingReference, "B picture without anchors")
        })?;
        let bwd = match self.last_anchor.take() {
            Some(b) => b,
            None => {
                self.prev_anchor = Some(fwd);
                return Err(CodecError::corrupt(
                    CorruptKind::MissingReference,
                    "B picture without anchors",
                ));
            }
        };
        let result = (|| -> Result<(), CodecError> {
            check_ref_geometry(&fwd, mbs_x, mbs_y)?;
            check_ref_geometry(&bwd, mbs_x, mbs_y)?;
            for mby in 0..mbs_y {
                let mut row = RowState::new();
                for mbx in 0..mbs_x {
                    let skip = r.get_bit()?;
                    let (mut py, mut pcb, mut pcr) = ([0u8; 256], [0u8; 64], [0u8; 64]);
                    if skip {
                        let (mode, mv_f, mv_b) = row.last_b;
                        check_b_window(&fwd, &bwd, mbx, mby, mode, mv_f, mv_b)?;
                        build_b_prediction(
                            &self.dsp, &fwd, &bwd, mbx, mby, mode, mv_f, mv_b, &mut py, &mut pcb,
                            &mut pcr,
                        );
                        reconstruct_inter(
                            &self.dsp,
                            recon,
                            mbx,
                            mby,
                            &py,
                            &pcb,
                            &pcr,
                            &[[0i16; 64]; 6],
                            0,
                            qscale,
                        );
                        continue;
                    }
                    let mode = r.get_bits(2)? as u8;
                    if mode == 3 {
                        self.decode_intra_mb(r, recon, qscale, mbx, mby, &mut row.dc_pred)?;
                        row.reset_mv();
                        continue;
                    }
                    let mut mv_f = row.last_b.1;
                    let mut mv_b = row.last_b.2;
                    if mode == 0 || mode == 2 {
                        let dx = r.get_se()?;
                        let dy = r.get_se()?;
                        mv_f = Mv::new(
                            clamp_mv(i32::from(row.mv_pred.x) + dx)?,
                            clamp_mv(i32::from(row.mv_pred.y) + dy)?,
                        );
                        row.mv_pred = mv_f;
                    }
                    if mode == 1 || mode == 2 {
                        let dx = r.get_se()?;
                        let dy = r.get_se()?;
                        mv_b = Mv::new(
                            clamp_mv(i32::from(row.mv_pred_bwd.x) + dx)?,
                            clamp_mv(i32::from(row.mv_pred_bwd.y) + dy)?,
                        );
                        row.mv_pred_bwd = mv_b;
                    }
                    row.last_b = (mode, mv_f, mv_b);
                    check_b_window(&fwd, &bwd, mbx, mby, mode, mv_f, mv_b)?;
                    let ec_zone = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
                    let cbp = r.get_bits(6)? as u8;
                    let mut blocks = [[0i16; 64]; 6];
                    for (i, b) in blocks.iter_mut().enumerate() {
                        if cbp & (1 << (5 - i)) != 0 {
                            read_coeffs(r, b, 0)?;
                        }
                    }
                    drop(ec_zone);
                    build_b_prediction(
                        &self.dsp, &fwd, &bwd, mbx, mby, mode, mv_f, mv_b, &mut py, &mut pcb,
                        &mut pcr,
                    );
                    reconstruct_inter(
                        &self.dsp, recon, mbx, mby, &py, &pcb, &pcr, &blocks, cbp, qscale,
                    );
                    row.dc_pred = [128; 3];
                }
                r.byte_align();
            }
            Ok(())
        })();
        self.prev_anchor = Some(fwd);
        self.last_anchor = Some(bwd);
        result
    }
}

/// Validates a decoded motion component fits in the i16 vector type
/// (half-pel units); the positional window check happens per use site.
fn clamp_mv(v: i32) -> Result<i16, CodecError> {
    if (-2048..=2047).contains(&v) {
        Ok(v as i16)
    } else {
        Err(CodecError::corrupt(
            CorruptKind::BadMotionVector,
            format!("motion vector component {v} out of range"),
        ))
    }
}

/// Rejects inter pictures whose coded geometry disagrees with the
/// reference they predict from (a corrupt packet can otherwise drive
/// motion compensation beyond the smaller reference's planes).
fn check_ref_geometry(rp: &RefPicture, mbs_x: usize, mbs_y: usize) -> Result<(), CodecError> {
    if rp.y.width() == mbs_x * 16 && rp.y.height() == mbs_y * 16 {
        Ok(())
    } else {
        Err(CodecError::corrupt(
            CorruptKind::MissingReference,
            format!(
                "picture geometry {}x{} does not match reference {}x{}",
                mbs_x * 16,
                mbs_y * 16,
                rp.y.width(),
                rp.y.height()
            ),
        ))
    }
}

/// Validates that motion-compensating macroblock `(mbx, mby)` with `mv`
/// (half-pel units) stays inside the padded reference planes. Mirrors the
/// read windows of `predict_mb`: a 16×16 half-pel luma fetch (17×17
/// worst case) and an 8×8 half-pel chroma fetch (9×9 worst case).
fn check_window(rp: &RefPicture, mbx: usize, mby: usize, mv: Mv) -> Result<(), CodecError> {
    let lx = (mbx * 16) as isize + isize::from(mv.x >> 1);
    let ly = (mby * 16) as isize + isize::from(mv.y >> 1);
    let (cmx, cmy) = (mv.x >> 1, mv.y >> 1);
    let cx = (mbx * 8) as isize + isize::from(cmx >> 1);
    let cy = (mby * 8) as isize + isize::from(cmy >> 1);
    if rp.y.window_in_bounds(lx, ly, 17, 17) && rp.cb.window_in_bounds(cx, cy, 9, 9) {
        Ok(())
    } else {
        Err(CodecError::corrupt(
            CorruptKind::BadMotionVector,
            format!(
                "mv ({},{}) at mb ({mbx},{mby}) reads outside the padded reference",
                mv.x, mv.y
            ),
        ))
    }
}

/// Window-checks the vectors a B macroblock will actually use: forward
/// for modes 0/2, backward for modes 1/2 (mode 3 is intra).
fn check_b_window(
    fwd: &RefPicture,
    bwd: &RefPicture,
    mbx: usize,
    mby: usize,
    mode: u8,
    mv_f: Mv,
    mv_b: Mv,
) -> Result<(), CodecError> {
    if mode == 0 || mode == 2 {
        check_window(fwd, mbx, mby, mv_f)?;
    }
    if mode == 1 || mode == 2 {
        check_window(bwd, mbx, mby, mv_b)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Mpeg2Encoder;
    use crate::types::EncoderConfig;
    use hdvb_frame::SequencePsnr;

    fn moving_frame(w: usize, h: usize, t: f64) -> Frame {
        let mut f = Frame::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let v = 128.0
                    + 50.0 * ((x as f64 - 2.0 * t) * 0.17 + y as f64 * 0.06).sin()
                    + 45.0 * ((y as f64 + t) * 0.11).cos();
                f.y_mut().set(x, y, v.clamp(0.0, 255.0) as u8);
            }
        }
        for y in 0..h / 2 {
            for x in 0..w / 2 {
                f.cb_mut()
                    .set(x, y, (118 + (x + y + t as usize) % 20) as u8);
                f.cr_mut().set(x, y, (134 - (x + 2 * y) % 18) as u8);
            }
        }
        f
    }

    fn roundtrip(qscale: u16, frames: usize, b_frames: u8) -> (Vec<Frame>, Vec<Frame>) {
        let (w, h) = (64, 48);
        let config = EncoderConfig::new(w, h)
            .with_qscale(qscale)
            .with_b_frames(b_frames);
        let mut enc = Mpeg2Encoder::new(config).expect("mpeg2 encoder: config rejected");
        let mut dec = Mpeg2Decoder::new();
        let originals: Vec<Frame> = (0..frames).map(|i| moving_frame(w, h, i as f64)).collect();
        let mut packets = Vec::new();
        for f in &originals {
            packets.extend(enc.encode(f).expect("mpeg2 encoder: encode failed"));
        }
        packets.extend(enc.flush().expect("mpeg2 encoder: flush failed"));
        let mut decoded = Vec::new();
        for p in &packets {
            decoded.extend(dec.decode(&p.data).expect("mpeg2 decoder: packet rejected"));
        }
        decoded.extend(dec.flush());
        (originals, decoded)
    }

    #[test]
    fn single_intra_roundtrip_quality() {
        let (orig, dec) = roundtrip(4, 1, 2);
        assert_eq!(dec.len(), 1);
        let mut acc = SequencePsnr::new();
        acc.add(&orig[0], &dec[0]);
        assert!(acc.y_psnr() > 30.0, "I-frame PSNR {}", acc.y_psnr());
    }

    #[test]
    fn ipbb_stream_roundtrips_in_display_order() {
        let (orig, dec) = roundtrip(4, 7, 2);
        assert_eq!(dec.len(), 7);
        for (i, (o, d)) in orig.iter().zip(&dec).enumerate() {
            let mut acc = SequencePsnr::new();
            acc.add(o, d);
            assert!(
                acc.y_psnr() > 27.0,
                "frame {i} psnr {:.2} too low",
                acc.y_psnr()
            );
        }
    }

    #[test]
    fn ipp_stream_roundtrips() {
        let (orig, dec) = roundtrip(6, 5, 0);
        assert_eq!(dec.len(), 5);
        for (o, d) in orig.iter().zip(&dec) {
            let mut acc = SequencePsnr::new();
            acc.add(o, d);
            assert!(acc.y_psnr() > 26.0);
        }
    }

    #[test]
    fn lower_qscale_gives_higher_quality() {
        let quality = |q: u16| {
            let (orig, dec) = roundtrip(q, 4, 2);
            let mut acc = SequencePsnr::new();
            for (o, d) in orig.iter().zip(&dec) {
                acc.add(o, d);
            }
            acc.y_psnr()
        };
        let hi = quality(2);
        let lo = quality(24);
        assert!(hi > lo + 3.0, "q2 {hi:.1} vs q24 {lo:.1}");
    }

    #[test]
    fn non_aligned_dimensions_roundtrip() {
        let (w, h) = (60, 44);
        let mut enc =
            Mpeg2Encoder::new(EncoderConfig::new(w, h)).expect("mpeg2 encoder: config rejected");
        let mut dec = Mpeg2Decoder::new();
        let f = moving_frame(w, h, 0.0);
        let mut packets = enc.encode(&f).expect("mpeg2 encoder: encode failed");
        packets.extend(enc.flush().expect("mpeg2 encoder: flush failed"));
        let mut out = Vec::new();
        for p in &packets {
            out.extend(dec.decode(&p.data).expect("mpeg2 decoder: packet rejected"));
        }
        out.extend(dec.flush());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].width(), w);
        assert_eq!(out[0].height(), h);
    }

    #[test]
    fn decode_cross_simd_levels_is_identical() {
        // Encode once, decode with scalar and with SIMD: outputs must be
        // bit-identical (the property the Figure-1 harness relies on).
        let (w, h) = (64, 48);
        let mut enc =
            Mpeg2Encoder::new(EncoderConfig::new(w, h)).expect("mpeg2 encoder: config rejected");
        let mut packets = Vec::new();
        for i in 0..5 {
            packets.extend(
                enc.encode(&moving_frame(w, h, i as f64))
                    .expect("mpeg2 encoder: encode failed"),
            );
        }
        packets.extend(enc.flush().expect("mpeg2 encoder: flush failed"));
        let mut d_scalar = Mpeg2Decoder::with_simd(SimdLevel::Scalar);
        let mut d_simd = Mpeg2Decoder::with_simd(SimdLevel::Sse2);
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for p in &packets {
            out_a.extend(
                d_scalar
                    .decode(&p.data)
                    .expect("mpeg2 decoder (scalar): packet rejected"),
            );
            out_b.extend(
                d_simd
                    .decode(&p.data)
                    .expect("mpeg2 decoder (sse2): packet rejected"),
            );
        }
        out_a.extend(d_scalar.flush());
        out_b.extend(d_simd.flush());
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn truncated_and_corrupt_packets_error_not_panic() {
        let (w, h) = (64, 48);
        let mut enc =
            Mpeg2Encoder::new(EncoderConfig::new(w, h)).expect("mpeg2 encoder: config rejected");
        let packets = enc
            .encode(&moving_frame(w, h, 0.0))
            .expect("mpeg2 encoder: encode failed");
        let data = &packets[0].data;
        for cut in [0, 1, 2, 5, data.len() / 2] {
            let mut dec = Mpeg2Decoder::new();
            let _ = dec.decode(&data[..cut]); // must not panic
        }
        let mut corrupt = data.clone();
        if corrupt.len() > 8 {
            corrupt[6] ^= 0xFF;
            corrupt[7] ^= 0xA5;
        }
        let mut dec = Mpeg2Decoder::new();
        let _ = dec.decode(&corrupt); // error or garbage frame, no panic
    }

    #[test]
    fn p_without_reference_is_an_error() {
        // Build a stream then feed the P packet to a fresh decoder.
        let (w, h) = (64, 48);
        let mut enc = Mpeg2Encoder::new(EncoderConfig::new(w, h).with_b_frames(0))
            .expect("mpeg2 encoder: config rejected");
        let _ = enc
            .encode(&moving_frame(w, h, 0.0))
            .expect("mpeg2 encoder: encode failed");
        let p = enc
            .encode(&moving_frame(w, h, 1.0))
            .expect("mpeg2 encoder: encode failed");
        let mut dec = Mpeg2Decoder::new();
        assert!(dec.decode(&p[0].data).is_err());
    }

    #[test]
    fn garbage_input_is_rejected() {
        let mut dec = Mpeg2Decoder::new();
        assert!(dec.decode(&[0xFF; 100]).is_err());
        assert!(dec.decode(&[]).is_err());
    }

    #[test]
    fn out_of_window_motion_vector_is_corrupt_not_panic() {
        // Decode a real I picture, then hand-craft a P packet whose first
        // macroblock carries a vector far outside the padded reference.
        let (w, h) = (16, 16);
        let mut enc = Mpeg2Encoder::new(EncoderConfig::new(w, h).with_b_frames(0))
            .expect("mpeg2 encoder: config rejected");
        let i_packets = enc
            .encode(&moving_frame(w, h, 0.0))
            .expect("mpeg2 encoder: encode failed");
        let mut dec = Mpeg2Decoder::new();
        for p in &i_packets {
            dec.decode(&p.data)
                .expect("mpeg2 decoder: I packet rejected");
        }
        let mut bw = hdvb_bits::BitWriter::new();
        bw.put_bits(MAGIC, 16);
        bw.put_bits(FrameType::P.to_bits(), 2);
        bw.put_bits(1, 32); // display index
        bw.put_ue(w as u32);
        bw.put_ue(h as u32);
        bw.put_ue(5); // qscale
        bw.put_bits(0, 1); // not skipped
        bw.put_bits(0, 1); // not intra
        bw.put_se(1000); // mvd_x: within clamp range, far outside window
        bw.put_se(0);
        let err = dec
            .decode(&bw.finish())
            .expect_err("huge mv must be rejected");
        assert!(
            matches!(
                err,
                CodecError::Corrupt {
                    kind: CorruptKind::BadMotionVector,
                    ..
                }
            ),
            "unexpected error: {err}"
        );
        // The decoder survives: the next valid P packet still decodes.
        let p_packets = enc
            .encode(&moving_frame(w, h, 1.0))
            .expect("mpeg2 encoder: encode failed");
        for p in &p_packets {
            dec.decode(&p.data)
                .expect("mpeg2 decoder: recovery packet rejected");
        }
    }

    #[test]
    fn corrupt_errors_carry_bit_offsets() {
        let mut dec = Mpeg2Decoder::new();
        // Valid magic, then garbage: the error offset must be past the
        // 16-bit magic, and truncation must map to Truncated.
        let mut bw = hdvb_bits::BitWriter::new();
        bw.put_bits(MAGIC, 16);
        bw.put_bits(3, 2); // reserved frame type
        let err = dec.decode(&bw.finish()).expect_err("bad frame type");
        match err {
            CodecError::Corrupt { offset, kind, .. } => {
                assert_eq!(kind, CorruptKind::BadHeaderField);
                assert!(offset >= 16, "offset {offset} should be past the magic");
            }
            other => panic!("unexpected error: {other}"),
        }
        let err = dec.decode(&[]).expect_err("empty packet");
        assert!(matches!(
            err,
            CodecError::Corrupt {
                kind: CorruptKind::Truncated,
                ..
            }
        ));
    }
}
