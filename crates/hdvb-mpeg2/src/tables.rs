//! Entropy-coding tables: the zigzag scan and the run-level VLC.

use hdvb_bits::VlcTable;
use std::sync::OnceLock;

/// The classic 8×8 zigzag scan order.
pub(crate) const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, //
    17, 24, 32, 25, 18, 11, 4, 5, //
    12, 19, 26, 33, 40, 48, 41, 34, //
    27, 20, 13, 6, 7, 14, 21, 28, //
    35, 42, 49, 56, 57, 50, 43, 36, //
    29, 22, 15, 23, 30, 37, 44, 51, //
    58, 59, 52, 45, 38, 31, 39, 46, //
    53, 60, 61, 54, 47, 55, 62, 63,
];

/// Symbol index of the end-of-block marker.
pub(crate) const SYM_EOB: u32 = 0;
/// Symbol index of the escape marker (arbitrary run/level follows).
pub(crate) const SYM_ESCAPE: u32 = 31;
/// Run range covered by the table (0..=MAX_RUN).
pub(crate) const MAX_RUN: u32 = 4;
/// Level magnitude range covered by the table (1..=MAX_LEVEL).
pub(crate) const MAX_LEVEL: u32 = 6;

/// Symbol for a (run, |level|) pair inside the table range.
pub(crate) fn pair_symbol(run: u32, level_abs: u32) -> u32 {
    debug_assert!(run <= MAX_RUN && (1..=MAX_LEVEL).contains(&level_abs));
    1 + run * MAX_LEVEL + (level_abs - 1)
}

/// Decomposes a pair symbol back into (run, |level|).
pub(crate) fn symbol_pair(symbol: u32) -> (u32, u32) {
    debug_assert!((1..SYM_ESCAPE).contains(&symbol));
    let idx = symbol - 1;
    (idx / MAX_LEVEL, idx % MAX_LEVEL + 1)
}

/// Code lengths mirroring the statistics of MPEG-2's table B.14: short
/// codes for EOB and small run/level events, six-bit escape.
const COEF_LENGTHS: [u8; 32] = [
    2, // EOB
    2, 4, 5, 6, 7, 8, // run 0, |level| 1..=6
    3, 6, 8, 9, 10, 10, // run 1
    4, 7, 9, 10, 11, 11, // run 2
    5, 8, 10, 11, 12, 12, // run 3
    6, 9, 11, 12, 13, 13, // run 4
    6,  // ESCAPE
];

/// The shared run-level table (canonical code built once).
pub(crate) fn coef_table() -> &'static VlcTable {
    static TABLE: OnceLock<VlcTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        VlcTable::from_lengths("mpeg2-coef", &COEF_LENGTHS).expect("static table lengths are valid")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &i in &ZIGZAG {
            assert!(!seen[i], "duplicate {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zigzag_starts_at_dc_and_walks_antidiagonals() {
        assert_eq!(ZIGZAG[0], 0);
        assert_eq!(ZIGZAG[1], 1);
        assert_eq!(ZIGZAG[2], 8);
        assert_eq!(ZIGZAG[63], 63);
    }

    #[test]
    fn pair_symbols_roundtrip() {
        for run in 0..=MAX_RUN {
            for level in 1..=MAX_LEVEL {
                let s = pair_symbol(run, level);
                assert!((1..SYM_ESCAPE).contains(&s));
                assert_eq!(symbol_pair(s), (run, level));
            }
        }
    }

    #[test]
    fn table_builds_and_eob_is_short() {
        let t = coef_table();
        assert_eq!(t.len(), 32);
        assert_eq!(t.code_len(SYM_EOB), 2);
        assert_eq!(t.code_len(pair_symbol(0, 1)), 2);
        assert_eq!(t.code_len(SYM_ESCAPE), 6);
    }

    proptest::proptest! {
        // Robustness: the MPEG-2 run/level table fed random bytes must only ever
        // yield Eof/InvalidCode — never a panic — and must terminate
        // within a decode-step budget (each successful decode consumes
        // at least one bit).
        #[test]
        fn byte_soup_coef_table_never_panics(data in proptest::collection::vec(0u8..=255, 0..256)) {
            use hdvb_bits::{BitReader, BitsError};
            let table = coef_table();
            let mut r = BitReader::new(&data);
            let budget = 8 * data.len() + 2;
            let mut steps = 0usize;
            loop {
                steps += 1;
                proptest::prop_assert!(steps <= budget, "vlc decode-step budget exceeded");
                match table.decode(&mut r) {
                    Ok(sym) => proptest::prop_assert!((sym as usize) < table.len()),
                    Err(BitsError::Eof) | Err(BitsError::InvalidCode { .. }) => break,
                    Err(e) => proptest::prop_assert!(false, "unexpected error: {e}"),
                }
            }
        }
    }
}
