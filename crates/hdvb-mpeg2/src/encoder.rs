use crate::blocks::write_coeffs;
use crate::gop::{GopScheduler, Scheduled};
use crate::types::{CodecError, EncoderConfig, FrameType, Packet};
use hdvb_bits::BitWriter;
use hdvb_dsp::{Block8, Dsp, MPEG_DEFAULT_INTRA, MPEG_DEFAULT_NONINTRA};
use hdvb_frame::{align_up, BufferPool, Frame, FramePool, PaddedPlane, Plane};
use hdvb_me::{
    epzs_search, mv_bits, subpel_refine, BlockRef, EpzsThresholds, Mv, MvField, Predictors,
    SearchParams, SubpelStep,
};
use hdvb_par::CancelToken;

/// Magic number opening every coded picture.
pub(crate) const MAGIC: u32 = 0x4D32; // "M2"
/// Luma padding of reference pictures (search range + interpolation).
pub(crate) const LUMA_PAD: usize = 32;
/// Chroma padding of reference pictures.
pub(crate) const CHROMA_PAD: usize = 16;

/// A reconstructed reference picture with padded planes and the motion
/// field that was chosen while coding it (EPZS temporal predictors).
pub(crate) struct RefPicture {
    pub y: PaddedPlane,
    pub cb: PaddedPlane,
    pub cr: PaddedPlane,
    pub mvs: MvField,
}

impl RefPicture {
    pub(crate) fn from_frame(frame: &Frame, mvs: MvField) -> Self {
        // Building the padded planes is reference preparation for the
        // interpolators, so it bills to motion compensation.
        let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionComp);
        RefPicture {
            y: PaddedPlane::from_plane(frame.y(), LUMA_PAD),
            cb: PaddedPlane::from_plane(frame.cb(), CHROMA_PAD),
            cr: PaddedPlane::from_plane(frame.cr(), CHROMA_PAD),
            mvs,
        }
    }

    /// Re-extends a retired reference picture from a new reconstruction
    /// without reallocating its padded planes, and swaps the freshly
    /// coded motion field in (leaving the stale one in `mvs` for the
    /// caller to clear and reuse). Bit-identical to
    /// [`from_frame`](Self::from_frame) on matching geometry.
    pub(crate) fn refill_from(&mut self, frame: &Frame, mvs: &mut MvField) {
        let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionComp);
        self.y.refill(frame.y());
        self.cb.refill(frame.cb());
        self.cr.refill(frame.cr());
        std::mem::swap(&mut self.mvs, mvs);
    }

    /// Whether this reference was built for a `w`×`h` picture.
    pub(crate) fn matches(&self, w: usize, h: usize) -> bool {
        self.y.width() == w && self.y.height() == h
    }
}

/// Motion-compensates one macroblock (luma 16×16 + two chroma 8×8) from
/// `r` at half-pel vector `mv` into the three destination buffers.
/// Shared by the encoder's reconstruction loop and (via re-export) the
/// decoder, so prediction can never diverge.
#[allow(clippy::too_many_arguments)]
pub(crate) fn predict_mb(
    dsp: &Dsp,
    r: &RefPicture,
    mb_x: usize,
    mb_y: usize,
    mv: Mv,
    luma: &mut [u8; 256],
    cb: &mut [u8; 64],
    cr: &mut [u8; 64],
) {
    let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionComp);
    let lx = (mb_x * 16) as isize + isize::from(mv.x >> 1);
    let ly = (mb_y * 16) as isize + isize::from(mv.y >> 1);
    let (fx, fy) = ((mv.x & 1) as u8, (mv.y & 1) as u8);
    dsp.hpel_interp(luma, 16, r.y.row_from(lx, ly), r.y.stride(), fx, fy, 16, 16);
    // Chroma vector: half the luma vector (floor), still in half-pel
    // units of the chroma grid.
    let cmx = mv.x >> 1;
    let cmy = mv.y >> 1;
    let cx = (mb_x * 8) as isize + isize::from(cmx >> 1);
    let cy = (mb_y * 8) as isize + isize::from(cmy >> 1);
    let (cfx, cfy) = ((cmx & 1) as u8, (cmy & 1) as u8);
    dsp.hpel_interp(cb, 8, r.cb.row_from(cx, cy), r.cb.stride(), cfx, cfy, 8, 8);
    dsp.hpel_interp(cr, 8, r.cr.row_from(cx, cy), r.cr.stride(), cfx, cfy, 8, 8);
}

/// Expands `frame` to macroblock-aligned dimensions with edge
/// replication (test reference for [`Frame::replicate_from`]).
#[cfg(test)]
pub(crate) fn align_frame(frame: &Frame, aw: usize, ah: usize) -> Frame {
    let mut out = Frame::new(aw, ah);
    out.replicate_from(frame);
    out
}

/// Crops an aligned frame back to picture dimensions (test reference
/// for [`Frame::crop_from`]).
#[cfg(test)]
pub(crate) fn crop_frame(frame: &Frame, w: usize, h: usize) -> Frame {
    let mut out = Frame::new(w, h);
    out.crop_from(frame);
    out
}

/// Per-row entropy-coding state shared between encoder and decoder: DC
/// predictors (in DC-level units) and motion-vector predictors.
pub(crate) struct RowState {
    pub dc_pred: [i32; 3],
    pub mv_pred: Mv,
    pub mv_pred_bwd: Mv,
    /// Last prediction used, for B-skip repetition: (mode, fwd, bwd).
    pub last_b: (u8, Mv, Mv),
}

impl RowState {
    pub(crate) fn new() -> Self {
        RowState {
            dc_pred: [128; 3],
            mv_pred: Mv::ZERO,
            mv_pred_bwd: Mv::ZERO,
            last_b: (0, Mv::ZERO, Mv::ZERO),
        }
    }

    pub(crate) fn reset_mv(&mut self) {
        self.mv_pred = Mv::ZERO;
        self.mv_pred_bwd = Mv::ZERO;
    }
}

/// Per-picture working storage, reused across the whole encode so the
/// steady-state hot path performs no heap allocation. Taken out of the
/// encoder (`Option` dance) while a picture is being coded to keep the
/// borrow checker happy around `&self` helper calls.
struct EncScratch {
    /// Reconstruction target, `aw`×`ah`; fully overwritten per picture.
    recon: Frame,
    /// Edge-replicated copy of unaligned input (unused when the source
    /// frame is already macroblock-aligned).
    aligned: Frame,
    /// Motion field of the picture being coded (anchors swap it into
    /// their [`RefPicture`] for EPZS temporal prediction).
    mvs: MvField,
    /// B-picture forward field (separate so anchors' fields survive).
    b_mvs: MvField,
}

/// The MPEG-2-class encoder.
///
/// Frames are submitted in display order via [`encode`](Self::encode);
/// packets come back in coding order. Call [`flush`](Self::flush) after
/// the last frame.
pub struct Mpeg2Encoder {
    config: EncoderConfig,
    dsp: Dsp,
    gop: GopScheduler,
    aw: usize,
    ah: usize,
    mbs_x: usize,
    mbs_y: usize,
    /// Older anchor (forward reference for B pictures).
    prev_anchor: Option<RefPicture>,
    /// Newest anchor (reference for P; backward reference for B).
    last_anchor: Option<RefPicture>,
    /// Reusable per-picture working storage.
    scratch: Option<EncScratch>,
    /// Reusable coding-order buffer handed to the GOP scheduler.
    sched: Vec<Scheduled>,
    /// Cooperative cancellation, checkpointed before each coded picture.
    cancel: CancelToken,
}

impl Mpeg2Encoder {
    /// Creates an encoder.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadConfig`] for invalid geometry or quantiser.
    pub fn new(config: EncoderConfig) -> Result<Self, CodecError> {
        config.validate()?;
        let aw = align_up(config.width, 16);
        let ah = align_up(config.height, 16);
        Ok(Mpeg2Encoder {
            config,
            dsp: Dsp::new(config.simd),
            gop: GopScheduler::new(config.b_frames, config.intra_period),
            aw,
            ah,
            mbs_x: aw / 16,
            mbs_y: ah / 16,
            prev_anchor: None,
            last_anchor: None,
            scratch: Some(EncScratch {
                recon: Frame::new(aw, ah),
                aligned: Frame::new(aw, ah),
                mvs: MvField::new(aw / 16, ah / 16),
                b_mvs: MvField::new(aw / 16, ah / 16),
            }),
            sched: Vec::new(),
            cancel: CancelToken::never(),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Installs a cancellation token checked before each coded picture,
    /// so a deadline or shutdown stops the encoder at the next picture
    /// boundary with [`CodecError::Cancelled`].
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// Submits the next display-order frame; returns zero or more coded
    /// packets (coding order).
    ///
    /// # Errors
    ///
    /// [`CodecError::FrameMismatch`] if the frame geometry differs from
    /// the configuration.
    pub fn encode(&mut self, frame: &Frame) -> Result<Vec<Packet>, CodecError> {
        let mut out = Vec::new();
        self.encode_into(frame, &mut out)?;
        Ok(out)
    }

    /// Flushes buffered frames at end of stream.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors (none in normal operation).
    pub fn flush(&mut self) -> Result<Vec<Packet>, CodecError> {
        let mut out = Vec::new();
        self.flush_into(&mut out)?;
        Ok(out)
    }

    /// Allocation-free form of [`encode`](Self::encode): appends coded
    /// packets to `out`. The input frame is copied into a pooled frame
    /// (recycled after coding), packet payloads come from the global
    /// [`BufferPool`], and all per-picture working state is reused — at
    /// steady state a submitted frame performs zero heap allocations.
    ///
    /// # Errors
    ///
    /// As [`encode`](Self::encode); packets appended before an error
    /// stay in `out`.
    pub fn encode_into(&mut self, frame: &Frame, out: &mut Vec<Packet>) -> Result<(), CodecError> {
        if frame.width() != self.config.width || frame.height() != self.config.height {
            return Err(CodecError::FrameMismatch {
                expected: (self.config.width, self.config.height),
                actual: (frame.width(), frame.height()),
            });
        }
        let pooled = {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::Reconstruct);
            let mut f = FramePool::global().take(frame.width(), frame.height());
            f.copy_from(frame);
            f
        };
        let mut sched = std::mem::take(&mut self.sched);
        self.gop.push_into(pooled, &mut sched);
        let result = self.encode_scheduled(&mut sched, out);
        self.sched = sched;
        result
    }

    /// Allocation-free form of [`flush`](Self::flush): appends the
    /// remaining coded packets to `out`.
    ///
    /// # Errors
    ///
    /// As [`flush`](Self::flush).
    pub fn flush_into(&mut self, out: &mut Vec<Packet>) -> Result<(), CodecError> {
        let mut sched = std::mem::take(&mut self.sched);
        self.gop.finish_into(&mut sched);
        let result = self.encode_scheduled(&mut sched, out);
        self.sched = sched;
        result
    }

    /// Codes every scheduled picture, recycling each input frame to the
    /// global pool afterwards (also on error/cancellation).
    fn encode_scheduled(
        &mut self,
        sched: &mut Vec<Scheduled>,
        out: &mut Vec<Packet>,
    ) -> Result<(), CodecError> {
        let mut result = Ok(());
        for s in sched.drain(..) {
            if result.is_ok() {
                if self.cancel.is_cancelled() {
                    result = Err(CodecError::Cancelled);
                } else {
                    out.push(self.encode_picture(&s.frame, s.frame_type, s.display_index));
                }
            }
            FramePool::global().put(s.frame);
        }
        result
    }

    fn encode_picture(
        &mut self,
        frame: &Frame,
        frame_type: FrameType,
        display_index: u32,
    ) -> Packet {
        let mut scratch = self.scratch.take().expect("encoder scratch in use");
        let packet = self.encode_picture_inner(frame, frame_type, display_index, &mut scratch);
        self.scratch = Some(scratch);
        packet
    }

    fn encode_picture_inner(
        &mut self,
        frame: &Frame,
        frame_type: FrameType,
        display_index: u32,
        scratch: &mut EncScratch,
    ) -> Packet {
        let EncScratch {
            recon,
            aligned,
            mvs,
            b_mvs,
        } = scratch;
        let cur: &Frame = if frame.width() == self.aw && frame.height() == self.ah {
            frame
        } else {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::Reconstruct);
            aligned.replicate_from(frame);
            aligned
        };
        let mut w = {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
            let mut w = BitWriter::from_vec(BufferPool::global().take(self.aw * self.ah / 4));
            w.put_bits(MAGIC, 16);
            w.put_bits(frame_type.to_bits(), 2);
            w.put_bits(display_index, 32);
            w.put_ue(self.config.width as u32);
            w.put_ue(self.config.height as u32);
            w.put_ue(u32::from(self.config.qscale));
            w
        };

        // `recon` is fully overwritten by every picture type, and the
        // motion fields are cleared, so the recycled storage is
        // bit-identical to freshly allocated buffers.
        mvs.clear();
        match frame_type {
            FrameType::I => self.encode_i(&mut w, cur, recon),
            FrameType::P => self.encode_p(&mut w, cur, recon, mvs),
            FrameType::B => {
                b_mvs.clear();
                self.encode_b(&mut w, cur, recon, b_mvs);
            }
        }

        if frame_type != FrameType::B {
            let recycled = self.prev_anchor.take();
            self.prev_anchor = self.last_anchor.take();
            self.last_anchor = Some(match recycled {
                Some(mut rp) if rp.matches(self.aw, self.ah) => {
                    rp.refill_from(recon, mvs);
                    rp
                }
                _ => RefPicture::from_frame(
                    recon,
                    std::mem::replace(mvs, MvField::new(self.mbs_x, self.mbs_y)),
                ),
            });
        }
        let data = {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
            w.finish()
        };
        Packet {
            data,
            frame_type,
            display_index,
        }
    }

    // ----------------------------------------------------------- intra --

    fn encode_i(&self, w: &mut BitWriter, cur: &Frame, recon: &mut Frame) {
        for mby in 0..self.mbs_y {
            let mut row = RowState::new();
            for mbx in 0..self.mbs_x {
                self.code_intra_mb(w, cur, recon, mbx, mby, &mut row.dc_pred);
            }
            w.byte_align();
        }
    }

    /// Codes one intra macroblock and reconstructs it.
    fn code_intra_mb(
        &self,
        w: &mut BitWriter,
        cur: &Frame,
        recon: &mut Frame,
        mbx: usize,
        mby: usize,
        dc_pred: &mut [i32; 3],
    ) {
        // Phase-split per macroblock (transform all six blocks, then
        // write, then reconstruct) so each phase is one trace zone; the
        // emitted bits are identical to the interleaved per-block form.
        let mut blocks = [[0i16; 64]; 6];
        let mut dc_levels = [0i32; 6];
        {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::TransformQuant);
            for b in 0..6 {
                let (plane, _, _, bx, by) = block_geometry(cur, recon, mbx, mby, b);
                let block = &mut blocks[b];
                *block = load_block(plane, bx, by);
                self.dsp.fdct8(block);
                dc_levels[b] = ((i32::from(block[0]) + 4) >> 3).clamp(0, 255);
                block[0] = 0;
                self.dsp
                    .quant8(block, &MPEG_DEFAULT_INTRA, self.config.qscale, true);
            }
        }
        {
            let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
            for b in 0..6 {
                let comp = block_geometry(cur, recon, mbx, mby, b).2;
                w.put_se(dc_levels[b] - dc_pred[comp]);
                dc_pred[comp] = dc_levels[b];
                write_coeffs(w, &blocks[b], 1);
            }
        }
        // Reconstruction (must mirror the decoder exactly).
        let _z = hdvb_trace::zone!(hdvb_trace::Stage::Reconstruct);
        for b in 0..6 {
            let (_, rplane, _, bx, by) = block_geometry(cur, recon, mbx, mby, b);
            let block = &mut blocks[b];
            self.dsp
                .dequant8(block, &MPEG_DEFAULT_INTRA, self.config.qscale, true);
            block[0] = (dc_levels[b] * 8) as i16;
            self.dsp.idct8(block);
            store_block_clamped(rplane, bx, by, block);
        }
    }

    // ------------------------------------------------------------ inter --

    fn encode_p(&self, w: &mut BitWriter, cur: &Frame, recon: &mut Frame, mvs: &mut MvField) {
        let reference = self
            .last_anchor
            .as_ref()
            .expect("P picture requires a previous anchor");
        let lambda = u32::from(self.config.qscale).max(1);
        for mby in 0..self.mbs_y {
            let mut row = RowState::new();
            for mbx in 0..self.mbs_x {
                // One zone over the whole search + mode decision
                // (predictor gather, EPZS, half-pel refinement, intra
                // activity); the searches' own zones nest and suppress.
                let me_zone = hdvb_trace::zone!(hdvb_trace::Stage::MotionEstimation);
                // Full-pel EPZS (paper Section IV) with temporal
                // predictors from the reference's own motion field.
                let preds = Predictors::gather(mvs, &reference.mvs, mbx, mby);
                let block = BlockRef {
                    plane: cur.y(),
                    x: mbx * 16,
                    y: mby * 16,
                    w: 16,
                    h: 16,
                };
                let fullpel = epzs_search(
                    &self.dsp,
                    block,
                    &reference.y,
                    &preds,
                    &EpzsThresholds::default(),
                    &SearchParams::new(self.config.search_range, lambda)
                        .with_pred(Mv::new(row.mv_pred.x >> 1, row.mv_pred.y >> 1)),
                );
                // Half-pel refinement against the coding predictor.
                let hpel_pred = row.mv_pred;
                let mut luma_pred = [0u8; 256];
                let mut cost_at = |mv: Mv| {
                    self.mb_luma_pred_sad(cur, reference, mbx, mby, mv, &mut luma_pred)
                        + lambda * mv_bits(mv, hpel_pred)
                };
                let center = fullpel.mv.scaled(2);
                let (mv, inter_cost) =
                    subpel_refine(center, cost_at(center), SubpelStep::Half, &mut cost_at);
                mvs.set(mbx, mby, Mv::new(mv.x >> 1, mv.y >> 1));

                // Intra/inter decision: mean-removed SAD as intra
                // activity, biased toward inter.
                let intra_cost = self.mb_intra_activity(cur, mbx, mby);
                drop(me_zone);
                if intra_cost + 2048 < inter_cost {
                    w.put_bit(false); // not skipped
                    w.put_bit(true); // intra
                    self.code_intra_mb(w, cur, recon, mbx, mby, &mut row.dc_pred);
                    row.reset_mv();
                    continue;
                }

                // Build the full prediction and quantise the residual.
                let (mut py, mut pcb, mut pcr) = ([0u8; 256], [0u8; 64], [0u8; 64]);
                predict_mb(
                    &self.dsp, reference, mbx, mby, mv, &mut py, &mut pcb, &mut pcr,
                );
                let (blocks, cbp) = self.transform_mb(cur, mbx, mby, &py, &pcb, &pcr);

                if mv == Mv::ZERO && cbp == 0 {
                    w.put_bit(true); // skip: zero vector, no residual
                    reconstruct_inter(
                        &self.dsp,
                        recon,
                        mbx,
                        mby,
                        &py,
                        &pcb,
                        &pcr,
                        &blocks,
                        0,
                        self.config.qscale,
                    );
                    row.dc_pred = [128; 3];
                    row.reset_mv();
                    continue;
                }
                {
                    let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
                    w.put_bit(false);
                    w.put_bit(false); // inter
                    w.put_se(i32::from(mv.x - row.mv_pred.x));
                    w.put_se(i32::from(mv.y - row.mv_pred.y));
                    row.mv_pred = mv;
                    w.put_bits(u32::from(cbp), 6);
                    for (i, b) in blocks.iter().enumerate() {
                        if cbp & (1 << (5 - i)) != 0 {
                            write_coeffs(w, b, 0);
                        }
                    }
                }
                reconstruct_inter(
                    &self.dsp,
                    recon,
                    mbx,
                    mby,
                    &py,
                    &pcb,
                    &pcr,
                    &blocks,
                    cbp,
                    self.config.qscale,
                );
                row.dc_pred = [128; 3];
            }
            w.byte_align();
        }
    }

    fn encode_b(&self, w: &mut BitWriter, cur: &Frame, recon: &mut Frame, cur_mvs: &mut MvField) {
        let fwd = self
            .prev_anchor
            .as_ref()
            .expect("B picture requires two anchors");
        let bwd = self
            .last_anchor
            .as_ref()
            .expect("B picture requires two anchors");
        let lambda = u32::from(self.config.qscale).max(1);
        for mby in 0..self.mbs_y {
            let mut row = RowState::new();
            for mbx in 0..self.mbs_x {
                // One zone over both searches, bi-prediction costing and
                // the mode decision; inner search zones suppress.
                let me_zone = hdvb_trace::zone!(hdvb_trace::Stage::MotionEstimation);
                let block = BlockRef {
                    plane: cur.y(),
                    x: mbx * 16,
                    y: mby * 16,
                    w: 16,
                    h: 16,
                };
                // Forward and backward searches (EPZS, spatial predictors
                // from this frame's forward field plus collocated from the
                // backward anchor's field).
                let preds = Predictors::gather(cur_mvs, &bwd.mvs, mbx, mby);
                let params = SearchParams::new(self.config.search_range, lambda)
                    .with_pred(Mv::new(row.mv_pred.x >> 1, row.mv_pred.y >> 1));
                let f = epzs_search(
                    &self.dsp,
                    block,
                    &fwd.y,
                    &preds,
                    &EpzsThresholds::default(),
                    &params,
                );
                let params_b = SearchParams::new(self.config.search_range, lambda)
                    .with_pred(Mv::new(row.mv_pred_bwd.x >> 1, row.mv_pred_bwd.y >> 1));
                let b = epzs_search(
                    &self.dsp,
                    block,
                    &bwd.y,
                    &preds,
                    &EpzsThresholds::default(),
                    &params_b,
                );
                cur_mvs.set(mbx, mby, f.mv);

                // Half-pel refinement per direction.
                let mut tmp = [0u8; 256];
                let fwd_pred_mv = row.mv_pred;
                let mut cost_f = |mv: Mv| {
                    self.mb_luma_pred_sad(cur, fwd, mbx, mby, mv, &mut tmp)
                        + lambda * mv_bits(mv, fwd_pred_mv)
                };
                let fc = f.mv.scaled(2);
                let (mv_f, cost_fh) = subpel_refine(fc, cost_f(fc), SubpelStep::Half, &mut cost_f);
                let bwd_pred_mv = row.mv_pred_bwd;
                let mut tmp2 = [0u8; 256];
                let mut cost_b = |mv: Mv| {
                    self.mb_luma_pred_sad(cur, bwd, mbx, mby, mv, &mut tmp2)
                        + lambda * mv_bits(mv, bwd_pred_mv)
                };
                let bc = b.mv.scaled(2);
                let (mv_b, cost_bh) = subpel_refine(bc, cost_b(bc), SubpelStep::Half, &mut cost_b);

                // Bi-prediction cost with both refined vectors.
                let (mut fy_buf, mut by_buf) = ([0u8; 256], [0u8; 256]);
                let mut pcb = [0u8; 64];
                let mut pcr = [0u8; 64];
                predict_mb(
                    &self.dsp,
                    fwd,
                    mbx,
                    mby,
                    mv_f,
                    &mut fy_buf,
                    &mut pcb,
                    &mut pcr,
                );
                predict_mb(
                    &self.dsp,
                    bwd,
                    mbx,
                    mby,
                    mv_b,
                    &mut by_buf,
                    &mut pcb,
                    &mut pcr,
                );
                let mut bi_buf = [0u8; 256];
                self.dsp
                    .avg_block(&mut bi_buf, 16, &fy_buf, 16, &by_buf, 16, 16, 16);
                let cur_y = &cur.y().data()[mby * 16 * self.aw + mbx * 16..];
                let bi_sad = self.dsp.sad(cur_y, self.aw, &bi_buf, 16, 16, 16);
                let bi_cost =
                    bi_sad + lambda * (mv_bits(mv_f, fwd_pred_mv) + mv_bits(mv_b, bwd_pred_mv));

                let intra_cost = self.mb_intra_activity(cur, mbx, mby);
                let best = [cost_fh, cost_bh, bi_cost]
                    .iter()
                    .copied()
                    .enumerate()
                    .min_by_key(|&(_, c)| c)
                    .map(|(i, c)| (i as u8, c))
                    .unwrap_or((0, u32::MAX));
                drop(me_zone);
                if intra_cost + 2048 < best.1 {
                    w.put_bit(false);
                    w.put_bits(3, 2); // intra mode
                    self.code_intra_mb(w, cur, recon, mbx, mby, &mut row.dc_pred);
                    row.reset_mv();
                    continue;
                }
                let (mode, _) = best;
                // Assemble the chosen prediction.
                let (mut py, mut pcb, mut pcr) = ([0u8; 256], [0u8; 64], [0u8; 64]);
                build_b_prediction(
                    &self.dsp, fwd, bwd, mbx, mby, mode, mv_f, mv_b, &mut py, &mut pcb, &mut pcr,
                );
                let (blocks, cbp) = self.transform_mb(cur, mbx, mby, &py, &pcb, &pcr);

                let same_as_last = (mode, mv_f, mv_b) == row.last_b
                    || (mode == 0 && row.last_b.0 == 0 && mv_f == row.last_b.1)
                    || (mode == 1 && row.last_b.0 == 1 && mv_b == row.last_b.2);
                if cbp == 0 && same_as_last {
                    w.put_bit(true); // B-skip: repeat previous prediction
                    reconstruct_inter(
                        &self.dsp,
                        recon,
                        mbx,
                        mby,
                        &py,
                        &pcb,
                        &pcr,
                        &blocks,
                        0,
                        self.config.qscale,
                    );
                    continue;
                }
                {
                    let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
                    w.put_bit(false);
                    w.put_bits(u32::from(mode), 2);
                    if mode == 0 || mode == 2 {
                        w.put_se(i32::from(mv_f.x - row.mv_pred.x));
                        w.put_se(i32::from(mv_f.y - row.mv_pred.y));
                        row.mv_pred = mv_f;
                    }
                    if mode == 1 || mode == 2 {
                        w.put_se(i32::from(mv_b.x - row.mv_pred_bwd.x));
                        w.put_se(i32::from(mv_b.y - row.mv_pred_bwd.y));
                        row.mv_pred_bwd = mv_b;
                    }
                    row.last_b = (mode, mv_f, mv_b);
                    w.put_bits(u32::from(cbp), 6);
                    for (i, bl) in blocks.iter().enumerate() {
                        if cbp & (1 << (5 - i)) != 0 {
                            write_coeffs(w, bl, 0);
                        }
                    }
                }
                reconstruct_inter(
                    &self.dsp,
                    recon,
                    mbx,
                    mby,
                    &py,
                    &pcb,
                    &pcr,
                    &blocks,
                    cbp,
                    self.config.qscale,
                );
                row.dc_pred = [128; 3];
            }
            w.byte_align();
        }
    }

    /// SAD of the luma prediction at half-pel vector `mv` for macroblock
    /// `(mbx, mby)`.
    fn mb_luma_pred_sad(
        &self,
        cur: &Frame,
        r: &RefPicture,
        mbx: usize,
        mby: usize,
        mv: Mv,
        tmp: &mut [u8; 256],
    ) -> u32 {
        let lx = (mbx * 16) as isize + isize::from(mv.x >> 1);
        let ly = (mby * 16) as isize + isize::from(mv.y >> 1);
        self.dsp.hpel_interp(
            tmp,
            16,
            r.y.row_from(lx, ly),
            r.y.stride(),
            (mv.x & 1) as u8,
            (mv.y & 1) as u8,
            16,
            16,
        );
        let cur_y = &cur.y().data()[mby * 16 * self.aw + mbx * 16..];
        self.dsp.sad(cur_y, self.aw, tmp, 16, 16, 16)
    }

    /// Mean-removed SAD of the luma macroblock — the intra-cost estimate.
    fn mb_intra_activity(&self, cur: &Frame, mbx: usize, mby: usize) -> u32 {
        let data = cur.y().data();
        let base = mby * 16 * self.aw + mbx * 16;
        let mut sum = 0u32;
        for y in 0..16 {
            for x in 0..16 {
                sum += u32::from(data[base + y * self.aw + x]);
            }
        }
        let mean = (sum / 256) as i32;
        let mut act = 0u32;
        for y in 0..16 {
            for x in 0..16 {
                act += (i32::from(data[base + y * self.aw + x]) - mean).unsigned_abs();
            }
        }
        act
    }

    /// Transforms and quantises the six residual blocks of one
    /// macroblock; returns the blocks and the coded-block pattern.
    fn transform_mb(
        &self,
        cur: &Frame,
        mbx: usize,
        mby: usize,
        py: &[u8; 256],
        pcb: &[u8; 64],
        pcr: &[u8; 64],
    ) -> ([Block8; 6], u8) {
        let _z = hdvb_trace::zone!(hdvb_trace::Stage::TransformQuant);
        let mut blocks = [[0i16; 64]; 6];
        let mut cbp = 0u8;
        #[allow(clippy::needless_range_loop)]
        for b in 0..6 {
            let (cur_slice, cur_stride, pred_slice, pred_stride) =
                residual_geometry(cur, mbx, mby, b, py, pcb, pcr);
            let mut block = [0i16; 64];
            self.dsp
                .diff_block8(&mut block, cur_slice, cur_stride, pred_slice, pred_stride);
            self.dsp.fdct8(&mut block);
            let nz = self.dsp.quant8(
                &mut block,
                &MPEG_DEFAULT_NONINTRA,
                self.config.qscale,
                false,
            );
            if nz > 0 {
                cbp |= 1 << (5 - b);
            }
            blocks[b] = block;
        }
        (blocks, cbp)
    }
}

/// Geometry of coded block `b` (0–3 luma, 4 Cb, 5 Cr) inside a
/// macroblock: returns source plane, recon plane, DC component index and
/// block pixel origin.
fn block_geometry<'a>(
    cur: &'a Frame,
    recon: &'a mut Frame,
    mbx: usize,
    mby: usize,
    b: usize,
) -> (&'a Plane, &'a mut Plane, usize, usize, usize) {
    match b {
        0..=3 => {
            let bx = mbx * 16 + (b % 2) * 8;
            let by = mby * 16 + (b / 2) * 8;
            (cur.y(), recon.y_mut(), 0, bx, by)
        }
        4 => (cur.cb(), recon.cb_mut(), 1, mbx * 8, mby * 8),
        _ => (cur.cr(), recon.cr_mut(), 2, mbx * 8, mby * 8),
    }
}

/// Residual geometry: current-frame slice and prediction slice for block
/// `b` of a macroblock.
fn residual_geometry<'a>(
    cur: &'a Frame,
    mbx: usize,
    mby: usize,
    b: usize,
    py: &'a [u8; 256],
    pcb: &'a [u8; 64],
    pcr: &'a [u8; 64],
) -> (&'a [u8], usize, &'a [u8], usize) {
    let aw = cur.width();
    match b {
        0..=3 => {
            let bx = mbx * 16 + (b % 2) * 8;
            let by = mby * 16 + (b / 2) * 8;
            (
                &cur.y().data()[by * aw + bx..],
                aw,
                &py[(b / 2) * 8 * 16 + (b % 2) * 8..],
                16,
            )
        }
        4 => (
            &cur.cb().data()[mby * 8 * (aw / 2) + mbx * 8..],
            aw / 2,
            &pcb[..],
            8,
        ),
        _ => (
            &cur.cr().data()[mby * 8 * (aw / 2) + mbx * 8..],
            aw / 2,
            &pcr[..],
            8,
        ),
    }
}

/// Loads an 8×8 pixel block as i16.
pub(crate) fn load_block(plane: &Plane, bx: usize, by: usize) -> Block8 {
    let mut out = [0i16; 64];
    for y in 0..8 {
        for x in 0..8 {
            out[y * 8 + x] = i16::from(plane.get(bx + x, by + y));
        }
    }
    out
}

/// Stores an 8×8 i16 block, clamping to pixel range.
pub(crate) fn store_block_clamped(plane: &mut Plane, bx: usize, by: usize, block: &Block8) {
    for y in 0..8 {
        for x in 0..8 {
            plane.set(bx + x, by + y, block[y * 8 + x].clamp(0, 255) as u8);
        }
    }
}

/// Builds the B prediction for `mode` (0 fwd, 1 bwd, 2 bi).
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_b_prediction(
    dsp: &Dsp,
    fwd: &RefPicture,
    bwd: &RefPicture,
    mbx: usize,
    mby: usize,
    mode: u8,
    mv_f: Mv,
    mv_b: Mv,
    py: &mut [u8; 256],
    pcb: &mut [u8; 64],
    pcr: &mut [u8; 64],
) {
    let _z = hdvb_trace::zone!(hdvb_trace::Stage::MotionComp);
    match mode {
        0 => predict_mb(dsp, fwd, mbx, mby, mv_f, py, pcb, pcr),
        1 => predict_mb(dsp, bwd, mbx, mby, mv_b, py, pcb, pcr),
        _ => {
            let (mut fy, mut fcb, mut fcr) = ([0u8; 256], [0u8; 64], [0u8; 64]);
            let (mut by, mut bcb, mut bcr) = ([0u8; 256], [0u8; 64], [0u8; 64]);
            predict_mb(dsp, fwd, mbx, mby, mv_f, &mut fy, &mut fcb, &mut fcr);
            predict_mb(dsp, bwd, mbx, mby, mv_b, &mut by, &mut bcb, &mut bcr);
            dsp.avg_block(py, 16, &fy, 16, &by, 16, 16, 16);
            dsp.avg_block(pcb, 8, &fcb, 8, &bcb, 8, 8, 8);
            dsp.avg_block(pcr, 8, &fcr, 8, &bcr, 8, 8, 8);
        }
    }
}

/// Adds the dequantised residual blocks onto the prediction and stores
/// the macroblock into `recon`. Blocks whose cbp bit is clear contribute
/// pure prediction. Shared with the decoder.
#[allow(clippy::too_many_arguments)]
pub(crate) fn reconstruct_inter(
    dsp: &Dsp,
    recon: &mut Frame,
    mbx: usize,
    mby: usize,
    py: &[u8; 256],
    pcb: &[u8; 64],
    pcr: &[u8; 64],
    blocks: &[Block8; 6],
    cbp: u8,
    qscale: u16,
) {
    let aw = recon.width();
    let _z = hdvb_trace::zone!(hdvb_trace::Stage::Reconstruct);
    for b in 0..6 {
        let coded = cbp & (1 << (5 - b)) != 0;
        let (pred_slice, pred_stride): (&[u8], usize) = match b {
            0..=3 => (&py[(b / 2) * 8 * 16 + (b % 2) * 8..], 16),
            4 => (&pcb[..], 8),
            _ => (&pcr[..], 8),
        };
        let (plane, bx, by) = match b {
            0..=3 => (
                recon.y_mut(),
                mbx * 16 + (b % 2) * 8,
                mby * 16 + (b / 2) * 8,
            ),
            4 => (recon.cb_mut(), mbx * 8, mby * 8),
            _ => (recon.cr_mut(), mbx * 8, mby * 8),
        };
        if coded {
            let mut res = blocks[b];
            dsp.dequant8(&mut res, &MPEG_DEFAULT_NONINTRA, qscale, false);
            dsp.idct8(&mut res);
            let stride = plane.stride();
            let base = by * stride + bx;
            dsp.add_residual8(
                &mut plane.data_mut()[base..],
                stride,
                pred_slice,
                pred_stride,
                &res,
            );
        } else {
            let stride = plane.stride();
            let base = by * stride + bx;
            dsp.copy_block(
                &mut plane.data_mut()[base..],
                stride,
                pred_slice,
                pred_stride,
                8,
                8,
            );
        }
        let _ = aw;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdvb_dsp::SimdLevel;

    fn textured_frame(w: usize, h: usize, phase: f64) -> Frame {
        let mut f = Frame::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let v = 128.0
                    + 55.0 * ((x as f64 + phase) * 0.2 + y as f64 * 0.1).sin()
                    + 40.0 * (y as f64 * 0.15 - (x as f64 + phase) * 0.05).cos();
                f.y_mut().set(x, y, v.clamp(0.0, 255.0) as u8);
            }
        }
        for y in 0..h / 2 {
            for x in 0..w / 2 {
                f.cb_mut().set(x, y, 120 + ((x + y) % 16) as u8);
                f.cr_mut().set(x, y, 130 - ((x * 2 + y) % 16) as u8);
            }
        }
        f
    }

    #[test]
    fn first_packet_is_intra() {
        let mut enc = Mpeg2Encoder::new(EncoderConfig::new(64, 48)).unwrap();
        let packets = enc.encode(&textured_frame(64, 48, 0.0)).unwrap();
        assert_eq!(packets.len(), 1);
        assert_eq!(packets[0].frame_type, FrameType::I);
        assert_eq!(packets[0].display_index, 0);
        assert!(!packets[0].data.is_empty());
    }

    #[test]
    fn gop_pattern_in_packet_stream() {
        let mut enc = Mpeg2Encoder::new(EncoderConfig::new(64, 48)).unwrap();
        let mut all = Vec::new();
        for i in 0..7 {
            all.extend(enc.encode(&textured_frame(64, 48, i as f64)).unwrap());
        }
        all.extend(enc.flush().unwrap());
        let types: Vec<FrameType> = all.iter().map(|p| p.frame_type).collect();
        assert_eq!(
            types,
            vec![
                FrameType::I,
                FrameType::P,
                FrameType::B,
                FrameType::B,
                FrameType::P,
                FrameType::B,
                FrameType::B
            ]
        );
        let display: Vec<u32> = all.iter().map(|p| p.display_index).collect();
        assert_eq!(display, vec![0, 3, 1, 2, 6, 4, 5]);
    }

    #[test]
    fn higher_qscale_produces_fewer_bits() {
        let frame = textured_frame(64, 48, 0.0);
        let bits = |q: u16| {
            let mut enc = Mpeg2Encoder::new(EncoderConfig::new(64, 48).with_qscale(q)).unwrap();
            let p = enc.encode(&frame).unwrap();
            p[0].bits()
        };
        assert!(bits(20) < bits(2), "{} !< {}", bits(20), bits(2));
    }

    #[test]
    fn wrong_frame_size_is_rejected() {
        let mut enc = Mpeg2Encoder::new(EncoderConfig::new(64, 48)).unwrap();
        assert!(matches!(
            enc.encode(&Frame::new(32, 32)),
            Err(CodecError::FrameMismatch { .. })
        ));
    }

    #[test]
    fn scalar_and_simd_encoders_produce_identical_streams() {
        let mut scalar =
            Mpeg2Encoder::new(EncoderConfig::new(64, 48).with_simd(SimdLevel::Scalar)).unwrap();
        let mut simd =
            Mpeg2Encoder::new(EncoderConfig::new(64, 48).with_simd(SimdLevel::Sse2)).unwrap();
        for i in 0..5 {
            let f = textured_frame(64, 48, i as f64 * 1.7);
            let a = scalar.encode(&f).unwrap();
            let b = simd.encode(&f).unwrap();
            assert_eq!(a, b, "frame {i}");
        }
        assert_eq!(scalar.flush().unwrap(), simd.flush().unwrap());
    }

    #[test]
    fn static_scene_p_frames_are_tiny() {
        let mut enc = Mpeg2Encoder::new(EncoderConfig::new(64, 48).with_b_frames(0)).unwrap();
        let f = textured_frame(64, 48, 0.0);
        let i_bits = enc.encode(&f).unwrap()[0].bits();
        let p_bits = enc.encode(&f).unwrap()[0].bits();
        // An identical frame codes as skips plus small refinements of the
        // lossy I reconstruction.
        assert!(p_bits * 5 < i_bits, "P {p_bits} vs I {i_bits}");
    }

    #[test]
    fn align_and_crop_are_inverse() {
        let f = textured_frame(60, 44, 0.0);
        let aligned = align_frame(&f, 64, 48);
        assert_eq!(aligned.width(), 64);
        let back = crop_frame(&aligned, 60, 44);
        assert_eq!(back, f);
    }
}
