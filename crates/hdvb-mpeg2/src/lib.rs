//! An MPEG-2-class video encoder and decoder.
//!
//! This is HD-VideoBench's stand-in for the paper's FFmpeg MPEG-2 encoder
//! and `libmpeg2` decoder: a complete codec with the MPEG-2 toolset —
//! 16×16 macroblocks, 8×8 DCT with weighted quantisation, half-pel motion
//! compensation, I/P/B pictures in the paper's I-P-B-B GOP, slice-per-row
//! structure and run-level VLC entropy coding. The bitstream syntax is
//! this crate's own (decoded only by [`Mpeg2Decoder`]), but every coding
//! tool, and therefore the computational profile, matches the MPEG-2
//! generation of codecs.
//!
//! # Example
//!
//! ```
//! use hdvb_frame::Frame;
//! use hdvb_mpeg2::{EncoderConfig, Mpeg2Decoder, Mpeg2Encoder};
//!
//! let config = EncoderConfig::new(64, 48).with_qscale(5);
//! let mut enc = Mpeg2Encoder::new(config)?;
//! let mut dec = Mpeg2Decoder::new();
//!
//! let frame = Frame::new(64, 48);
//! let mut packets = enc.encode(&frame)?;
//! packets.extend(enc.flush()?);
//! let mut decoded = Vec::new();
//! for p in &packets {
//!     decoded.extend(dec.decode(&p.data)?);
//! }
//! decoded.extend(dec.flush());
//! assert_eq!(decoded.len(), 1);
//! # Ok::<(), hdvb_mpeg2::CodecError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod blocks;
mod decoder;
mod encoder;
mod gop;
mod tables;
mod types;

pub use decoder::Mpeg2Decoder;
pub use encoder::Mpeg2Encoder;
pub use types::{CodecError, EncoderConfig, FrameType, Packet};
