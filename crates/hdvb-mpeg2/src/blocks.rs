//! Run-level (de)serialisation of quantised 8×8 coefficient blocks —
//! shared by the encoder and decoder so the two sides cannot drift.

use crate::tables::{
    coef_table, pair_symbol, symbol_pair, MAX_LEVEL, MAX_RUN, SYM_EOB, SYM_ESCAPE, ZIGZAG,
};
use crate::types::CodecError;
use hdvb_bits::{BitReader, BitWriter};
use hdvb_dsp::Block8;

/// Writes the quantised coefficients of `block` in zigzag run-level form.
/// `start` is 1 for intra blocks (DC coded separately) and 0 for inter.
pub(crate) fn write_coeffs(w: &mut BitWriter, block: &Block8, start: usize) {
    let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
    let table = coef_table();
    let mut run = 0u32;
    for &pos in &ZIGZAG[start..] {
        let level = block[pos];
        if level == 0 {
            run += 1;
            continue;
        }
        let abs = level.unsigned_abs() as u32;
        if run <= MAX_RUN && abs <= MAX_LEVEL {
            table.encode(pair_symbol(run, abs), w);
            w.put_bit(level < 0);
        } else {
            table.encode(SYM_ESCAPE, w);
            w.put_bits(run, 6);
            w.put_se(i32::from(level));
        }
        run = 0;
    }
    table.encode(SYM_EOB, w);
}

/// Parses one block's coefficients into `block` (which must be zeroed by
/// the caller). Mirrors [`write_coeffs`].
pub(crate) fn read_coeffs(
    r: &mut BitReader<'_>,
    block: &mut Block8,
    start: usize,
) -> Result<(), CodecError> {
    let table = coef_table();
    let _z = hdvb_trace::zone!(hdvb_trace::Stage::EntropyCoding);
    let mut pos = start;
    loop {
        let symbol = table.decode(r)?;
        if symbol == SYM_EOB {
            return Ok(());
        }
        let (run, level) = if symbol == SYM_ESCAPE {
            let run = r.get_bits(6)?;
            let level = r.get_se()?;
            if level == 0 {
                return Err(CodecError::corrupt(
                    hdvb_bits::CorruptKind::BadCoefficients,
                    "escape level of zero",
                ));
            }
            (run, level)
        } else {
            let (run, abs) = symbol_pair(symbol);
            let neg = r.get_bit()?;
            (run, if neg { -(abs as i32) } else { abs as i32 })
        };
        pos += run as usize;
        if pos >= 64 {
            return Err(CodecError::corrupt(
                hdvb_bits::CorruptKind::BadCoefficients,
                format!("coefficient run overflows block ({pos})"),
            ));
        }
        block[ZIGZAG[pos]] = level.clamp(-2047, 2047) as i16;
        pos += 1;
    }
}

/// Estimated bit cost of a block's coefficients without serialising
/// (kept for rate-estimation extensions; exercised by tests).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn coeff_bits(block: &Block8, start: usize) -> u32 {
    let table = coef_table();
    let mut bits = 0;
    let mut run = 0u32;
    for &pos in &ZIGZAG[start..] {
        let level = block[pos];
        if level == 0 {
            run += 1;
            continue;
        }
        let abs = level.unsigned_abs() as u32;
        if run <= MAX_RUN && abs <= MAX_LEVEL {
            bits += table.code_len(pair_symbol(run, abs)) + 1;
        } else {
            // escape + 6-bit run + se-golomb level
            let mapped = 2 * u64::from(abs);
            let se_len = 2 * (64 - (mapped + 1).leading_zeros()) - 1;
            bits += table.code_len(SYM_ESCAPE) + 6 + se_len;
        }
        run = 0;
    }
    bits + table.code_len(SYM_EOB)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(block: &Block8, start: usize) -> Block8 {
        let mut w = BitWriter::new();
        write_coeffs(&mut w, block, start);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let mut out = [0i16; 64];
        read_coeffs(&mut r, &mut out, start).unwrap();
        out
    }

    #[test]
    fn empty_block_roundtrip() {
        let z = [0i16; 64];
        assert_eq!(roundtrip(&z, 0), z);
        assert_eq!(roundtrip(&z, 1), z);
    }

    #[test]
    fn sparse_block_roundtrip() {
        let mut b = [0i16; 64];
        b[0] = 100;
        b[1] = -3;
        b[8] = 7;
        b[63] = -1;
        assert_eq!(roundtrip(&b, 0), b);
    }

    #[test]
    fn intra_start_skips_dc() {
        let mut b = [0i16; 64];
        b[0] = 999; // DC must NOT be serialised with start == 1
        b[2] = 5;
        let out = roundtrip(&b, 1);
        assert_eq!(out[0], 0);
        assert_eq!(out[2], 5);
    }

    #[test]
    fn escape_paths_roundtrip() {
        let mut b = [0i16; 64];
        b[ZIGZAG[40]] = 900; // large level -> escape
        b[ZIGZAG[63]] = -1; // long run -> escape
        assert_eq!(roundtrip(&b, 0), b);
    }

    #[test]
    fn dense_random_blocks_roundtrip() {
        let mut state = 5u32;
        for _ in 0..50 {
            let mut b = [0i16; 64];
            for v in &mut b {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                if state.is_multiple_of(3) {
                    *v = ((state >> 20) as i16 % 801) - 400;
                }
            }
            assert_eq!(roundtrip(&b, 0), b);
            let mut intra = b;
            intra[0] = 0;
            assert_eq!(roundtrip(&intra, 1), intra);
        }
    }

    #[test]
    fn coeff_bits_matches_actual_encoding() {
        let mut state = 77u32;
        for _ in 0..20 {
            let mut b = [0i16; 64];
            for v in &mut b {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                if state.is_multiple_of(5) {
                    *v = ((state >> 22) as i16 % 41) - 20;
                }
            }
            let mut w = BitWriter::new();
            write_coeffs(&mut w, &b, 0);
            assert_eq!(u64::from(coeff_bits(&b, 0)), w.bit_len());
        }
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let mut b = [0i16; 64];
        b[5] = 3;
        let mut w = BitWriter::new();
        write_coeffs(&mut w, &b, 0);
        let bytes = w.finish();
        // Drop the final byte: EOB disappears.
        let mut r = BitReader::new(&bytes[..bytes.len().saturating_sub(1)]);
        let mut out = [0i16; 64];
        // Must error (or legitimately consume fewer symbols) — never panic.
        let _ = read_coeffs(&mut r, &mut out, 0);
    }

    #[test]
    fn corrupt_run_is_rejected() {
        // Craft: ESCAPE with run 63 then another coefficient overflows.
        let mut w = BitWriter::new();
        let table = coef_table();
        table.encode(SYM_ESCAPE, &mut w);
        w.put_bits(63, 6);
        w.put_se(5);
        table.encode(SYM_ESCAPE, &mut w);
        w.put_bits(10, 6);
        w.put_se(5);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let mut out = [0i16; 64];
        assert!(read_coeffs(&mut r, &mut out, 0).is_err());
    }
}
