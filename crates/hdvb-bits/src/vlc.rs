use crate::{BitReader, BitWriter, BitsError};

/// One codeword of a variable-length-code table: `len` bits whose
/// MSB-first value is `code`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VlcEntry {
    /// Codeword bits, right-aligned.
    pub code: u32,
    /// Codeword length in bits (1..=24).
    pub len: u8,
}

impl VlcEntry {
    /// Convenience constructor.
    pub const fn new(code: u32, len: u8) -> Self {
        VlcEntry { code, len }
    }
}

/// A prefix-free variable-length code over symbols `0..n`.
///
/// Encoding is a direct table lookup; decoding peeks
/// `max_len` bits and resolves the symbol through a dense lookup table,
/// the same technique the optimised codecs in the original benchmark use.
///
/// # Example
///
/// ```
/// use hdvb_bits::{BitReader, BitWriter, VlcEntry, VlcTable};
///
/// // Symbols 0,1,2 with codes "0", "10", "11".
/// let table = VlcTable::new("demo", &[
///     VlcEntry::new(0b0, 1),
///     VlcEntry::new(0b10, 2),
///     VlcEntry::new(0b11, 2),
/// ])?;
/// let mut w = BitWriter::new();
/// table.encode(2, &mut w);
/// table.encode(0, &mut w);
/// let bytes = w.finish();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(table.decode(&mut r)?, 2);
/// assert_eq!(table.decode(&mut r)?, 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct VlcTable {
    name: &'static str,
    entries: Vec<VlcEntry>,
    max_len: u8,
    /// `lookup[prefix]` = `(symbol, len)`, or `(u32::MAX, 0)` for invalid.
    lookup: Vec<(u32, u8)>,
}

/// Error building a [`VlcTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildVlcError {
    /// Two codewords overlap (one is a prefix of the other, or they are
    /// equal).
    NotPrefixFree {
        /// First conflicting symbol.
        a: u32,
        /// Second conflicting symbol.
        b: u32,
    },
    /// A codeword length was zero or above 24 bits.
    BadLength {
        /// The offending symbol.
        symbol: u32,
    },
    /// A codeword value does not fit in its declared length.
    BadCode {
        /// The offending symbol.
        symbol: u32,
    },
}

impl std::fmt::Display for BuildVlcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildVlcError::NotPrefixFree { a, b } => {
                write!(f, "codes for symbols {a} and {b} are not prefix-free")
            }
            BuildVlcError::BadLength { symbol } => {
                write!(f, "symbol {symbol} has an unsupported code length")
            }
            BuildVlcError::BadCode { symbol } => {
                write!(f, "symbol {symbol} has a code wider than its length")
            }
        }
    }
}

impl std::error::Error for BuildVlcError {}

impl VlcTable {
    /// Builds a canonical prefix code from per-symbol code *lengths*
    /// (`lengths[i]` is the codeword length of symbol `i`). Symbols with
    /// shorter lengths receive numerically smaller codes, exactly like a
    /// canonical Huffman code; this is how the codec crates define their
    /// MPEG-style coefficient tables.
    ///
    /// # Errors
    ///
    /// Returns [`BuildVlcError`] if a length is out of range or the
    /// lengths overflow the Kraft inequality (no prefix-free code
    /// exists).
    ///
    /// # Example
    ///
    /// ```
    /// use hdvb_bits::VlcTable;
    ///
    /// let t = VlcTable::from_lengths("demo", &[1, 2, 3, 3])?;
    /// assert_eq!(t.code_len(0), 1);
    /// assert_eq!(t.max_len(), 3);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn from_lengths(name: &'static str, lengths: &[u8]) -> Result<Self, BuildVlcError> {
        for (i, &len) in lengths.iter().enumerate() {
            if len == 0 || len > 24 {
                return Err(BuildVlcError::BadLength { symbol: i as u32 });
            }
        }
        // Kraft check before assigning codes.
        let kraft: u64 = lengths.iter().map(|&l| 1u64 << (24 - l)).sum();
        if kraft > 1 << 24 {
            return Err(BuildVlcError::BadLength {
                symbol: lengths
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &l)| l)
                    .map(|(i, _)| i as u32)
                    .unwrap_or(0),
            });
        }
        // Canonical assignment: stable order by (length, symbol).
        let mut order: Vec<usize> = (0..lengths.len()).collect();
        order.sort_by_key(|&i| (lengths[i], i));
        let mut entries = vec![VlcEntry::new(0, 1); lengths.len()];
        let mut code = 0u32;
        let mut prev_len = 0u8;
        for &i in &order {
            let len = lengths[i];
            code <<= len - prev_len;
            entries[i] = VlcEntry::new(code, len);
            code += 1;
            prev_len = len;
        }
        Self::new(name, &entries)
    }

    /// Builds a table from per-symbol codewords (`entries[i]` codes
    /// symbol `i`).
    ///
    /// # Errors
    ///
    /// Returns [`BuildVlcError`] if any codeword is malformed or the code
    /// is not prefix-free.
    pub fn new(name: &'static str, entries: &[VlcEntry]) -> Result<Self, BuildVlcError> {
        let mut max_len = 0u8;
        for (i, e) in entries.iter().enumerate() {
            if e.len == 0 || e.len > 24 {
                return Err(BuildVlcError::BadLength { symbol: i as u32 });
            }
            if e.len < 32 && e.code >= (1u32 << e.len) {
                return Err(BuildVlcError::BadCode { symbol: i as u32 });
            }
            max_len = max_len.max(e.len);
        }
        let size = 1usize << max_len;
        let mut lookup = vec![(u32::MAX, 0u8); size];
        for (i, e) in entries.iter().enumerate() {
            let shift = max_len - e.len;
            let base = (e.code as usize) << shift;
            for slot in &mut lookup[base..base + (1usize << shift)] {
                if slot.0 != u32::MAX {
                    return Err(BuildVlcError::NotPrefixFree {
                        a: slot.0,
                        b: i as u32,
                    });
                }
                *slot = (i as u32, e.len);
            }
        }
        Ok(VlcTable {
            name,
            entries: entries.to_vec(),
            max_len,
            lookup,
        })
    }

    /// The table's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no symbols.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Longest codeword in bits.
    pub fn max_len(&self) -> u8 {
        self.max_len
    }

    /// Codeword length in bits for `symbol` (for rate estimation without
    /// serialising).
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is out of range.
    pub fn code_len(&self, symbol: u32) -> u32 {
        u32::from(self.entries[symbol as usize].len)
    }

    /// Appends the codeword for `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is out of range.
    #[inline]
    pub fn encode(&self, symbol: u32, w: &mut BitWriter) {
        let e = self.entries[symbol as usize];
        w.put_bits(e.code, u32::from(e.len));
    }

    /// Decodes the next symbol.
    ///
    /// # Errors
    ///
    /// [`BitsError::InvalidCode`] if the upcoming bits match no codeword,
    /// [`BitsError::Eof`] if the stream ends inside a codeword.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u32, BitsError> {
        let prefix = r.peek_bits(u32::from(self.max_len)) as usize;
        let (symbol, len) = self.lookup[prefix];
        if symbol == u32::MAX {
            return Err(BitsError::InvalidCode { table: self.name });
        }
        r.skip_bits(u32::from(len))?;
        Ok(symbol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_table() -> VlcTable {
        VlcTable::new(
            "test",
            &[
                VlcEntry::new(0b1, 1),
                VlcEntry::new(0b01, 2),
                VlcEntry::new(0b001, 3),
                VlcEntry::new(0b000, 3),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_all_symbols() {
        let t = simple_table();
        let mut w = BitWriter::new();
        for s in 0..4 {
            t.encode(s, &mut w);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for s in 0..4 {
            assert_eq!(t.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn rejects_non_prefix_free() {
        let err =
            VlcTable::new("bad", &[VlcEntry::new(0b1, 1), VlcEntry::new(0b11, 2)]).unwrap_err();
        assert!(matches!(err, BuildVlcError::NotPrefixFree { .. }));
    }

    #[test]
    fn rejects_bad_lengths_and_codes() {
        assert!(matches!(
            VlcTable::new("bad", &[VlcEntry::new(0, 0)]),
            Err(BuildVlcError::BadLength { .. })
        ));
        assert!(matches!(
            VlcTable::new("bad", &[VlcEntry::new(0b100, 2)]),
            Err(BuildVlcError::BadCode { .. })
        ));
    }

    #[test]
    fn invalid_bits_report_table_name() {
        // Only "1" and "01" are valid; "00" prefix is invalid.
        let t = VlcTable::new("named", &[VlcEntry::new(0b1, 1), VlcEntry::new(0b01, 2)]).unwrap();
        let bytes = [0b0010_0000u8];
        let mut r = BitReader::new(&bytes);
        match t.decode(&mut r) {
            Err(BitsError::InvalidCode { table }) => assert_eq!(table, "named"),
            other => panic!("expected invalid code, got {other:?}"),
        }
    }

    #[test]
    fn truncated_codeword_is_eof() {
        let t = simple_table();
        let mut w = BitWriter::new();
        t.encode(0, &mut w); // "1" -> one bit, padded to 0b1000_0000
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(t.decode(&mut r).unwrap(), 0);
        // Padding zeros decode as symbol 3 ("000") twice then hit EOF mid-code.
        assert_eq!(t.decode(&mut r).unwrap(), 3);
        assert_eq!(t.decode(&mut r).unwrap(), 3);
        assert_eq!(t.decode(&mut r), Err(BitsError::Eof));
    }

    #[test]
    fn code_len_matches_encoding_cost() {
        let t = simple_table();
        for s in 0..4u32 {
            let mut w = BitWriter::new();
            t.encode(s, &mut w);
            assert_eq!(u64::from(t.code_len(s)), w.bit_len());
        }
    }

    #[test]
    fn max_len_reported() {
        assert_eq!(simple_table().max_len(), 3);
        assert_eq!(simple_table().len(), 4);
        assert!(!simple_table().is_empty());
    }

    #[test]
    fn from_lengths_builds_decodable_canonical_code() {
        let lengths = [2u8, 2, 3, 4, 4, 3];
        let t = VlcTable::from_lengths("canon", &lengths).unwrap();
        let mut w = BitWriter::new();
        for s in 0..lengths.len() as u32 {
            t.encode(s, &mut w);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for s in 0..lengths.len() as u32 {
            assert_eq!(t.decode(&mut r).unwrap(), s);
        }
        for (i, &l) in lengths.iter().enumerate() {
            assert_eq!(t.code_len(i as u32), u32::from(l));
        }
    }

    #[test]
    fn from_lengths_rejects_kraft_violation() {
        // Three 1-bit codes cannot coexist.
        assert!(VlcTable::from_lengths("bad", &[1, 1, 1]).is_err());
    }

    #[test]
    fn from_lengths_single_symbol() {
        let t = VlcTable::from_lengths("one", &[1]).unwrap();
        let mut w = BitWriter::new();
        t.encode(0, &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(t.decode(&mut r).unwrap(), 0);
    }
}
