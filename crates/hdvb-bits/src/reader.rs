use crate::BitsError;

/// An MSB-first bit parser over a byte slice.
///
/// The mirror of [`BitWriter`](crate::BitWriter): every `get_*` method
/// consumes the exact bits the corresponding `put_*` produced. Reading
/// past the end returns [`BitsError::Eof`] instead of panicking, so a
/// truncated stream is always a recoverable error for the decoders.
///
/// # Example
///
/// ```
/// use hdvb_bits::BitReader;
///
/// let mut r = BitReader::new(&[0b1011_0000]);
/// assert!(r.get_bit()?);
/// assert_eq!(r.get_bits(3)?, 0b011);
/// # Ok::<(), hdvb_bits::BitsError>(())
/// ```
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next bit position from the start of `data`.
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0 }
    }

    /// Bits consumed so far.
    pub fn bit_pos(&self) -> u64 {
        self.pos
    }

    /// Bits remaining.
    pub fn bits_left(&self) -> u64 {
        self.data.len() as u64 * 8 - self.pos
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// [`BitsError::Eof`] at end of data.
    #[inline]
    pub fn get_bit(&mut self) -> Result<bool, BitsError> {
        let byte = self
            .data
            .get((self.pos / 8) as usize)
            .ok_or(BitsError::Eof)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Ok(bit == 1)
    }

    /// Reads `n` bits MSB-first.
    ///
    /// # Errors
    ///
    /// [`BitsError::Eof`] if fewer than `n` bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    #[inline]
    pub fn get_bits(&mut self, n: u32) -> Result<u32, BitsError> {
        assert!(n <= 32, "cannot read more than 32 bits at once");
        if self.bits_left() < u64::from(n) {
            self.pos = self.data.len() as u64 * 8;
            return Err(BitsError::Eof);
        }
        let mut v = 0u32;
        for _ in 0..n {
            v = (v << 1) | u32::from(self.get_bit()?);
        }
        Ok(v)
    }

    /// Peeks at the next `n` bits without consuming them; missing bits
    /// beyond the end of data read as zero (standard VLC-lookahead
    /// behaviour).
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn peek_bits(&self, n: u32) -> u32 {
        assert!(n <= 32, "cannot peek more than 32 bits at once");
        let mut clone = self.clone();
        let mut v = 0u32;
        for _ in 0..n {
            v = (v << 1) | u32::from(clone.get_bit().unwrap_or(false));
        }
        v
    }

    /// Consumes `n` bits without interpreting them.
    ///
    /// # Errors
    ///
    /// [`BitsError::Eof`] if fewer than `n` bits remain.
    pub fn skip_bits(&mut self, n: u32) -> Result<(), BitsError> {
        if self.bits_left() < u64::from(n) {
            self.pos = self.data.len() as u64 * 8;
            return Err(BitsError::Eof);
        }
        self.pos += u64::from(n);
        Ok(())
    }

    /// Reads an unsigned Exp-Golomb code (H.264 `ue(v)`).
    ///
    /// # Errors
    ///
    /// [`BitsError::Eof`] on truncation, [`BitsError::Overlong`] if the
    /// code has more than 32 leading zeros (corrupt stream).
    pub fn get_ue(&mut self) -> Result<u32, BitsError> {
        let mut zeros = 0u32;
        while !self.get_bit()? {
            zeros += 1;
            if zeros > 32 {
                return Err(BitsError::Overlong);
            }
        }
        if zeros == 0 {
            return Ok(0);
        }
        let rest = self.get_bits(zeros)?;
        let code = (1u64 << zeros) | u64::from(rest);
        Ok((code - 1) as u32)
    }

    /// Reads a signed Exp-Golomb code (H.264 `se(v)`).
    ///
    /// # Errors
    ///
    /// Same as [`get_ue`](Self::get_ue).
    pub fn get_se(&mut self) -> Result<i32, BitsError> {
        let v = self.get_ue()?;
        Ok(if v % 2 == 1 {
            ((v / 2) + 1) as i32
        } else {
            -((v / 2) as i32)
        })
    }

    /// Skips forward to the next byte boundary (no-op when aligned).
    pub fn byte_align(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }

    /// Reads `len` raw bytes; the reader must be byte-aligned.
    ///
    /// # Errors
    ///
    /// [`BitsError::Eof`] if fewer than `len` bytes remain.
    ///
    /// # Panics
    ///
    /// Panics if the reader is not at a byte boundary.
    pub fn get_bytes(&mut self, len: usize) -> Result<&'a [u8], BitsError> {
        assert_eq!(self.pos % 8, 0, "get_bytes requires byte alignment");
        let start = (self.pos / 8) as usize;
        let end = start.checked_add(len).ok_or(BitsError::Eof)?;
        if end > self.data.len() {
            return Err(BitsError::Eof);
        }
        self.pos += len as u64 * 8;
        Ok(&self.data[start..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitWriter;

    #[test]
    fn reads_what_writer_wrote() {
        let mut w = BitWriter::new();
        w.put_bits(0b1101, 4);
        w.put_bits(0x3FF, 10);
        w.put_bit(false);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(4).unwrap(), 0b1101);
        assert_eq!(r.get_bits(10).unwrap(), 0x3FF);
        assert!(!r.get_bit().unwrap());
    }

    #[test]
    fn eof_is_error_not_panic() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.get_bits(8).unwrap(), 0xFF);
        assert_eq!(r.get_bit(), Err(BitsError::Eof));
        assert_eq!(r.get_bits(4), Err(BitsError::Eof));
        assert_eq!(r.get_ue(), Err(BitsError::Eof));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut r = BitReader::new(&[0b1010_1010]);
        assert_eq!(r.peek_bits(4), 0b1010);
        assert_eq!(r.bit_pos(), 0);
        assert_eq!(r.get_bits(4).unwrap(), 0b1010);
        // Peeking past the end pads with zeros.
        assert_eq!(r.peek_bits(8), 0b1010_0000);
    }

    #[test]
    fn ue_known_values() {
        // "1 010 011 00100" = ue 0,1,2,3
        let mut w = BitWriter::new();
        for v in 0..4 {
            w.put_ue(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for v in 0..4 {
            assert_eq!(r.get_ue().unwrap(), v);
        }
    }

    #[test]
    fn overlong_ue_detected() {
        // 40 zero bits: an impossible exp-golomb prefix.
        let data = [0u8; 5];
        let mut r = BitReader::new(&data);
        assert_eq!(r.get_ue(), Err(BitsError::Overlong));
    }

    #[test]
    fn byte_align_and_bytes() {
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        w.byte_align();
        w.put_bytes(b"hi");
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        r.skip_bits(3).unwrap();
        r.byte_align();
        assert_eq!(r.get_bytes(2).unwrap(), b"hi");
        assert!(r.get_bytes(1).is_err());
    }

    #[test]
    fn skip_past_end_is_eof() {
        let mut r = BitReader::new(&[0, 0]);
        assert!(r.skip_bits(17).is_err());
    }

    #[test]
    fn large_ue_values_roundtrip() {
        let mut w = BitWriter::new();
        for v in [u32::MAX / 2, 1 << 20, 65535, 12345678] {
            w.put_ue(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for v in [u32::MAX / 2, 1 << 20, 65535, 12345678] {
            assert_eq!(r.get_ue().unwrap(), v);
        }
    }
}
