use std::fmt;

/// Errors produced while parsing a bitstream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BitsError {
    /// The reader ran past the end of the buffer.
    Eof,
    /// A variable-length code did not match any table entry.
    InvalidCode {
        /// Name of the VLC table that failed to match.
        table: &'static str,
    },
    /// An Exp-Golomb code exceeded the supported length.
    Overlong,
}

impl fmt::Display for BitsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitsError::Eof => write!(f, "unexpected end of bitstream"),
            BitsError::InvalidCode { table } => {
                write!(f, "invalid variable-length code in table {table}")
            }
            BitsError::Overlong => write!(f, "overlong exp-golomb code"),
        }
    }
}

impl std::error::Error for BitsError {}

/// Classification of a bitstream corruption, shared by every codec's
/// typed decode error and by the fuzzing/differential harness (which
/// compares corruption kinds and offsets across SIMD tiers).
///
/// The enum lives in `hdvb-bits` because it is the one crate every codec
/// already depends on; `hdvb-core` re-exports it alongside
/// `BenchError::Corrupt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CorruptKind {
    /// The stream ended before a complete syntax element was read.
    Truncated,
    /// A variable-length code did not match any table entry.
    InvalidCode,
    /// An Exp-Golomb code exceeded the supported length.
    Overlong,
    /// The packet does not start with the codec's start code / magic.
    BadMagic,
    /// A header field (frame type, qscale, qp, reference count, ...) is
    /// outside its legal range.
    BadHeaderField,
    /// Picture dimensions are zero, oversized, or exceed the area cap.
    BadDimensions,
    /// A motion vector points outside the padded reference window.
    BadMotionVector,
    /// An inter picture arrived without a usable reference, or its
    /// geometry does not match the reference it names.
    MissingReference,
    /// A macroblock mode/type field holds an undefined value.
    BadMacroblockType,
    /// Coefficient/residual data is malformed (bad escape, run overflow).
    BadCoefficients,
}

impl CorruptKind {
    /// Stable lower-case name, used in reports and corpus file names.
    pub fn name(self) -> &'static str {
        match self {
            CorruptKind::Truncated => "truncated",
            CorruptKind::InvalidCode => "invalid-code",
            CorruptKind::Overlong => "overlong",
            CorruptKind::BadMagic => "bad-magic",
            CorruptKind::BadHeaderField => "bad-header-field",
            CorruptKind::BadDimensions => "bad-dimensions",
            CorruptKind::BadMotionVector => "bad-motion-vector",
            CorruptKind::MissingReference => "missing-reference",
            CorruptKind::BadMacroblockType => "bad-macroblock-type",
            CorruptKind::BadCoefficients => "bad-coefficients",
        }
    }
}

impl fmt::Display for CorruptKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl From<&BitsError> for CorruptKind {
    fn from(e: &BitsError) -> Self {
        match e {
            BitsError::Eof => CorruptKind::Truncated,
            BitsError::InvalidCode { .. } => CorruptKind::InvalidCode,
            BitsError::Overlong => CorruptKind::Overlong,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(BitsError::Eof.to_string(), "unexpected end of bitstream");
        assert!(BitsError::InvalidCode { table: "dct" }
            .to_string()
            .contains("dct"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<BitsError>();
    }
}
