use std::fmt;

/// Errors produced while parsing a bitstream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BitsError {
    /// The reader ran past the end of the buffer.
    Eof,
    /// A variable-length code did not match any table entry.
    InvalidCode {
        /// Name of the VLC table that failed to match.
        table: &'static str,
    },
    /// An Exp-Golomb code exceeded the supported length.
    Overlong,
}

impl fmt::Display for BitsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitsError::Eof => write!(f, "unexpected end of bitstream"),
            BitsError::InvalidCode { table } => {
                write!(f, "invalid variable-length code in table {table}")
            }
            BitsError::Overlong => write!(f, "overlong exp-golomb code"),
        }
    }
}

impl std::error::Error for BitsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(BitsError::Eof.to_string(), "unexpected end of bitstream");
        assert!(BitsError::InvalidCode { table: "dct" }
            .to_string()
            .contains("dct"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<BitsError>();
    }
}
