/// An MSB-first bit serialiser.
///
/// Bits are appended most-significant-first, matching the bit order of the
/// MPEG and H.264 bitstream syntaxes. The buffer is zero-padded to a byte
/// boundary by [`finish`](Self::finish).
///
/// # Example
///
/// ```
/// use hdvb_bits::BitWriter;
///
/// let mut w = BitWriter::new();
/// w.put_bit(true);
/// w.put_bits(0b0110, 4);
/// assert_eq!(w.bit_len(), 5);
/// let bytes = w.finish();
/// assert_eq!(bytes, vec![0b1011_0000]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits accumulated in `acc`, 0..=7.
    pending: u32,
    acc: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with capacity for `bytes` output bytes.
    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter {
            bytes: Vec::with_capacity(bytes),
            pending: 0,
            acc: 0,
        }
    }

    /// Creates an empty writer on top of an existing (e.g. pooled)
    /// buffer, clearing its contents but keeping its capacity — the
    /// allocation-free counterpart of [`with_capacity`](Self::with_capacity).
    pub fn from_vec(mut bytes: Vec<u8>) -> Self {
        bytes.clear();
        BitWriter {
            bytes,
            pending: 0,
            acc: 0,
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.bytes.len() as u64 * 8 + u64::from(self.pending)
    }

    /// Appends a single bit.
    #[inline]
    pub fn put_bit(&mut self, bit: bool) {
        self.acc = (self.acc << 1) | u8::from(bit);
        self.pending += 1;
        if self.pending == 8 {
            self.bytes.push(self.acc);
            self.acc = 0;
            self.pending = 0;
        }
    }

    /// Appends the `n` least-significant bits of `value`,
    /// most-significant-first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32` or if `value` has bits set above bit `n`.
    #[inline]
    pub fn put_bits(&mut self, value: u32, n: u32) {
        assert!(n <= 32, "cannot write more than 32 bits at once");
        debug_assert!(
            n == 32 || value < (1u32 << n),
            "value {value:#x} does not fit in {n} bits"
        );
        for i in (0..n).rev() {
            self.put_bit((value >> i) & 1 == 1);
        }
    }

    /// Appends an unsigned Exp-Golomb code (H.264 `ue(v)`).
    pub fn put_ue(&mut self, value: u32) {
        let code = u64::from(value) + 1;
        let len = 64 - code.leading_zeros(); // bits in `code`
        self.put_bits(0, len - 1);
        for i in (0..len).rev() {
            self.put_bit((code >> i) & 1 == 1);
        }
    }

    /// Appends a signed Exp-Golomb code (H.264 `se(v)`).
    pub fn put_se(&mut self, value: i32) {
        let mapped = if value > 0 {
            (value as u32) * 2 - 1
        } else {
            (-(value as i64) as u32) * 2
        };
        self.put_ue(mapped);
    }

    /// Pads with zero bits to the next byte boundary.
    pub fn byte_align(&mut self) {
        while self.pending != 0 {
            self.put_bit(false);
        }
    }

    /// Appends raw bytes; the writer must be byte-aligned.
    ///
    /// # Panics
    ///
    /// Panics if the writer is not at a byte boundary.
    pub fn put_bytes(&mut self, data: &[u8]) {
        assert_eq!(self.pending, 0, "put_bytes requires byte alignment");
        self.bytes.extend_from_slice(data);
    }

    /// Byte-aligns with zero padding and returns the serialised buffer.
    pub fn finish(mut self) -> Vec<u8> {
        self.byte_align();
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_packing_is_msb_first() {
        let mut w = BitWriter::new();
        for _ in 0..4 {
            w.put_bit(true);
        }
        for _ in 0..4 {
            w.put_bit(false);
        }
        assert_eq!(w.finish(), vec![0xF0]);
    }

    #[test]
    fn finish_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.put_bits(0b11, 2);
        assert_eq!(w.finish(), vec![0b1100_0000]);
    }

    #[test]
    fn known_ue_codes() {
        // Exp-Golomb: 0 -> "1", 1 -> "010", 2 -> "011", 3 -> "00100".
        let mut w = BitWriter::new();
        w.put_ue(0);
        w.put_ue(1);
        w.put_ue(2);
        w.put_ue(3);
        assert_eq!(w.bit_len(), 1 + 3 + 3 + 5);
        assert_eq!(w.finish(), vec![0b1010_0110, 0b0100_0000]);
    }

    #[test]
    fn known_se_codes() {
        // se(v): 0->ue(0), 1->ue(1), -1->ue(2), 2->ue(3), -2->ue(4).
        let mut w = BitWriter::new();
        w.put_se(0);
        assert_eq!(w.bit_len(), 1);
        let mut w = BitWriter::new();
        w.put_se(-1);
        assert_eq!(w.bit_len(), 3); // ue(2) = "011"
        let mut w = BitWriter::new();
        w.put_se(i32::MIN / 4);
        assert!(w.bit_len() > 50);
        let _ = w.finish();
    }

    #[test]
    fn byte_align_then_bytes() {
        let mut w = BitWriter::new();
        w.put_bit(true);
        w.byte_align();
        w.put_bytes(&[0xAB, 0xCD]);
        assert_eq!(w.finish(), vec![0x80, 0xAB, 0xCD]);
    }

    #[test]
    fn bit_len_counts_exactly() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.put_bits(0x5, 3);
        assert_eq!(w.bit_len(), 3);
        w.put_bits(0xFFFF, 16);
        assert_eq!(w.bit_len(), 19);
    }

    #[test]
    fn full_32_bit_write() {
        let mut w = BitWriter::new();
        w.put_bits(0xDEAD_BEEF, 32);
        assert_eq!(w.finish(), vec![0xDE, 0xAD, 0xBE, 0xEF]);
    }
}
