//! Bit-level I/O and entropy-coding primitives for the HD-VideoBench
//! codecs.
//!
//! All three codecs in the benchmark are VLC-based (MPEG-2/-4 run-level
//! tables, H.264 Exp-Golomb + CAVLC), so they share this crate's
//! MSB-first [`BitWriter`] / [`BitReader`], Exp-Golomb codes and a generic
//! canonical [`VlcTable`].
//!
//! # Example
//!
//! ```
//! use hdvb_bits::{BitReader, BitWriter};
//!
//! let mut w = BitWriter::new();
//! w.put_bits(0b101, 3);
//! w.put_ue(17);
//! let bytes = w.finish();
//!
//! let mut r = BitReader::new(&bytes);
//! assert_eq!(r.get_bits(3)?, 0b101);
//! assert_eq!(r.get_ue()?, 17);
//! # Ok::<(), hdvb_bits::BitsError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod reader;
mod vlc;
mod writer;

pub use error::{BitsError, CorruptKind};
pub use reader::BitReader;
pub use vlc::{BuildVlcError, VlcEntry, VlcTable};
pub use writer::BitWriter;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn bits_roundtrip(values in proptest::collection::vec((0u32..=u32::MAX, 1u32..=32), 0..64)) {
            let mut w = BitWriter::new();
            for &(v, n) in &values {
                let masked = if n == 32 { v } else { v & ((1 << n) - 1) };
                w.put_bits(masked, n);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &(v, n) in &values {
                let masked = if n == 32 { v } else { v & ((1 << n) - 1) };
                prop_assert_eq!(r.get_bits(n).unwrap(), masked);
            }
        }

        #[test]
        fn ue_roundtrip(values in proptest::collection::vec(0u32..=100_000, 0..64)) {
            let mut w = BitWriter::new();
            for &v in &values {
                w.put_ue(v);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &v in &values {
                prop_assert_eq!(r.get_ue().unwrap(), v);
            }
        }

        #[test]
        fn se_roundtrip(values in proptest::collection::vec(-50_000i32..=50_000, 0..64)) {
            let mut w = BitWriter::new();
            for &v in &values {
                w.put_se(v);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &v in &values {
                prop_assert_eq!(r.get_se().unwrap(), v);
            }
        }

        #[test]
        fn mixed_roundtrip(ops in proptest::collection::vec((0u8..3, 0u32..1000, 1u32..17), 0..100)) {
            let mut w = BitWriter::new();
            for &(kind, v, n) in &ops {
                match kind {
                    0 => w.put_bits(v & ((1 << n) - 1), n),
                    1 => w.put_ue(v),
                    _ => w.put_se(v as i32 - 500),
                }
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &(kind, v, n) in &ops {
                match kind {
                    0 => prop_assert_eq!(r.get_bits(n).unwrap(), v & ((1 << n) - 1)),
                    1 => prop_assert_eq!(r.get_ue().unwrap(), v),
                    _ => prop_assert_eq!(r.get_se().unwrap(), v as i32 - 500),
                }
            }
        }
    }

    // ------------------------------------------------- byte-soup fuzz --
    //
    // Robustness properties: random bytes fed to the readers and to VLC
    // tables must only ever produce Eof/InvalidCode/Overlong errors —
    // never a panic — and must terminate within a decode-step budget
    // (each successful step consumes at least one bit, so `8 * len + 1`
    // steps is a hard upper bound on any loop-free decode).

    fn soup_tables() -> Vec<VlcTable> {
        // A sparse canonical table (leaves many prefixes unassigned, so
        // InvalidCode is reachable) and a dense one (every prefix maps).
        let sparse = VlcTable::from_lengths("soup-sparse", &[1, 3, 3, 5, 5, 8, 8, 12, 12, 16])
            .expect("sparse soup table lengths satisfy Kraft");
        let dense = VlcTable::from_lengths("soup-dense", &[1, 2, 3, 4, 5, 6, 7, 8, 8])
            .expect("dense soup table lengths satisfy Kraft");
        vec![sparse, dense]
    }

    proptest! {
        #[test]
        fn byte_soup_get_bits_never_panics(data in proptest::collection::vec(0u8..=255, 0..256),
                                           widths in proptest::collection::vec(1u32..=32, 1..64)) {
            let mut r = BitReader::new(&data);
            let budget = 8 * data.len() + widths.len() + 1;
            let mut steps = 0usize;
            for &n in &widths {
                steps += 1;
                prop_assert!(steps <= budget, "decode-step budget exceeded");
                if r.get_bits(n).is_err() {
                    // After Eof the reader stays at the end; further reads
                    // keep failing rather than looping or panicking.
                    prop_assert!(r.get_bits(1).is_err());
                    break;
                }
            }
        }

        #[test]
        fn byte_soup_exp_golomb_never_panics(data in proptest::collection::vec(0u8..=255, 0..256)) {
            let budget = 8 * data.len() + 2;
            let mut r = BitReader::new(&data);
            let mut steps = 0usize;
            loop {
                steps += 1;
                prop_assert!(steps <= budget, "get_ue decode-step budget exceeded");
                match r.get_ue() {
                    Ok(_) => {}
                    Err(BitsError::Eof) | Err(BitsError::Overlong) => break,
                    Err(e) => prop_assert!(false, "unexpected error from get_ue: {e}"),
                }
            }
            let mut r = BitReader::new(&data);
            let mut steps = 0usize;
            loop {
                steps += 1;
                prop_assert!(steps <= budget, "get_se decode-step budget exceeded");
                match r.get_se() {
                    Ok(_) => {}
                    Err(BitsError::Eof) | Err(BitsError::Overlong) => break,
                    Err(e) => prop_assert!(false, "unexpected error from get_se: {e}"),
                }
            }
        }

        #[test]
        fn byte_soup_vlc_never_panics(data in proptest::collection::vec(0u8..=255, 0..256)) {
            for table in soup_tables() {
                let mut r = BitReader::new(&data);
                let budget = 8 * data.len() + 2;
                let mut steps = 0usize;
                loop {
                    steps += 1;
                    prop_assert!(steps <= budget, "vlc decode-step budget exceeded");
                    match table.decode(&mut r) {
                        // Every successful decode consumes >= 1 bit.
                        Ok(_) => {}
                        Err(BitsError::Eof) => break,
                        Err(BitsError::InvalidCode { .. }) => break,
                        Err(e) => prop_assert!(false, "unexpected error from vlc: {e}"),
                    }
                }
            }
        }
    }
}
