//! Bit-level I/O and entropy-coding primitives for the HD-VideoBench
//! codecs.
//!
//! All three codecs in the benchmark are VLC-based (MPEG-2/-4 run-level
//! tables, H.264 Exp-Golomb + CAVLC), so they share this crate's
//! MSB-first [`BitWriter`] / [`BitReader`], Exp-Golomb codes and a generic
//! canonical [`VlcTable`].
//!
//! # Example
//!
//! ```
//! use hdvb_bits::{BitReader, BitWriter};
//!
//! let mut w = BitWriter::new();
//! w.put_bits(0b101, 3);
//! w.put_ue(17);
//! let bytes = w.finish();
//!
//! let mut r = BitReader::new(&bytes);
//! assert_eq!(r.get_bits(3)?, 0b101);
//! assert_eq!(r.get_ue()?, 17);
//! # Ok::<(), hdvb_bits::BitsError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod reader;
mod vlc;
mod writer;

pub use error::BitsError;
pub use reader::BitReader;
pub use vlc::{BuildVlcError, VlcEntry, VlcTable};
pub use writer::BitWriter;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn bits_roundtrip(values in proptest::collection::vec((0u32..=u32::MAX, 1u32..=32), 0..64)) {
            let mut w = BitWriter::new();
            for &(v, n) in &values {
                let masked = if n == 32 { v } else { v & ((1 << n) - 1) };
                w.put_bits(masked, n);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &(v, n) in &values {
                let masked = if n == 32 { v } else { v & ((1 << n) - 1) };
                prop_assert_eq!(r.get_bits(n).unwrap(), masked);
            }
        }

        #[test]
        fn ue_roundtrip(values in proptest::collection::vec(0u32..=100_000, 0..64)) {
            let mut w = BitWriter::new();
            for &v in &values {
                w.put_ue(v);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &v in &values {
                prop_assert_eq!(r.get_ue().unwrap(), v);
            }
        }

        #[test]
        fn se_roundtrip(values in proptest::collection::vec(-50_000i32..=50_000, 0..64)) {
            let mut w = BitWriter::new();
            for &v in &values {
                w.put_se(v);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &v in &values {
                prop_assert_eq!(r.get_se().unwrap(), v);
            }
        }

        #[test]
        fn mixed_roundtrip(ops in proptest::collection::vec((0u8..3, 0u32..1000, 1u32..17), 0..100)) {
            let mut w = BitWriter::new();
            for &(kind, v, n) in &ops {
                match kind {
                    0 => w.put_bits(v & ((1 << n) - 1), n),
                    1 => w.put_ue(v),
                    _ => w.put_se(v as i32 - 500),
                }
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &(kind, v, n) in &ops {
                match kind {
                    0 => prop_assert_eq!(r.get_bits(n).unwrap(), v & ((1 << n) - 1)),
                    1 => prop_assert_eq!(r.get_ue().unwrap(), v),
                    _ => prop_assert_eq!(r.get_se().unwrap(), v as i32 - 500),
                }
            }
        }
    }
}
