use std::fmt;

/// A video frame size in pixels.
///
/// The three named constants are the paper's evaluation resolutions
/// (Section IV): DVD 720×576, HD-720 1280×720 and HD-1088 1920×1088.
///
/// # Example
///
/// ```
/// use hdvb_frame::Resolution;
///
/// assert_eq!(Resolution::HD_1088.pixel_count(), 1920 * 1088);
/// assert_eq!(Resolution::DVD_576.label(), "576p25");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Resolution {
    width: u32,
    height: u32,
}

impl Resolution {
    /// DVD resolution, 720×576 ("576p25" in the paper).
    pub const DVD_576: Resolution = Resolution {
        width: 720,
        height: 576,
    };
    /// HD-720 resolution, 1280×720 ("720p25").
    pub const HD_720: Resolution = Resolution {
        width: 1280,
        height: 720,
    };
    /// HD-1088 resolution, 1920×1088 ("1088p25"; 1080 rounded up to a
    /// macroblock multiple, exactly as the paper's input set does).
    pub const HD_1088: Resolution = Resolution {
        width: 1920,
        height: 1088,
    };

    /// The three paper resolutions, smallest first.
    pub const ALL: [Resolution; 3] = [Self::DVD_576, Self::HD_720, Self::HD_1088];

    /// Creates a custom resolution.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or odd.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(
            width > 0 && height > 0 && width.is_multiple_of(2) && height.is_multiple_of(2),
            "resolutions must be even and nonzero"
        );
        Resolution { width, height }
    }

    /// Width in pixels.
    #[inline]
    pub fn width(self) -> usize {
        self.width as usize
    }

    /// Height in pixels.
    #[inline]
    pub fn height(self) -> usize {
        self.height as usize
    }

    /// Total luma pixels per frame.
    #[inline]
    pub fn pixel_count(self) -> usize {
        self.width() * self.height()
    }

    /// The paper's short label for this resolution at 25 fps
    /// (`"576p25"`, `"720p25"`, `"1088p25"`), or `"<w>x<h>"` for custom
    /// sizes.
    pub fn label(self) -> String {
        match self {
            Self::DVD_576 => "576p25".to_owned(),
            Self::HD_720 => "720p25".to_owned(),
            Self::HD_1088 => "1088p25".to_owned(),
            _ => format!("{}x{}", self.width, self.height),
        }
    }

    /// A proportionally scaled-down resolution with both dimensions kept
    /// even and at least 16; used by tests and quick benchmark modes.
    pub fn scaled_down(self, divisor: u32) -> Resolution {
        assert!(divisor > 0, "divisor must be nonzero");
        let even_min16 = |v: u32| ((v / divisor).max(16) + 1) & !1;
        Resolution::new(even_min16(self.width), even_min16(self.height))
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

/// A frame rate expressed as a rational number of frames per second.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FrameRate {
    num: u32,
    den: u32,
}

impl FrameRate {
    /// 25 frames per second — the rate of every HD-VideoBench sequence.
    pub const FPS_25: FrameRate = FrameRate { num: 25, den: 1 };

    /// Creates a frame rate of `num/den` frames per second.
    ///
    /// # Panics
    ///
    /// Panics if either term is zero.
    pub fn new(num: u32, den: u32) -> Self {
        assert!(num > 0 && den > 0, "frame rate terms must be nonzero");
        FrameRate { num, den }
    }

    /// Numerator.
    #[inline]
    pub fn num(self) -> u32 {
        self.num
    }

    /// Denominator.
    #[inline]
    pub fn den(self) -> u32 {
        self.den
    }

    /// Frames per second as a float.
    #[inline]
    pub fn as_f64(self) -> f64 {
        f64::from(self.num) / f64::from(self.den)
    }
}

impl Default for FrameRate {
    fn default() -> Self {
        Self::FPS_25
    }
}

impl fmt::Display for FrameRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{} fps", self.num)
        } else {
            write!(f, "{}/{} fps", self.num, self.den)
        }
    }
}

/// Resolution plus frame rate: everything a codec needs to know about the
/// raw video format (chroma is always 4:2:0 progressive).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VideoFormat {
    /// Frame size.
    pub resolution: Resolution,
    /// Frames per second.
    pub frame_rate: FrameRate,
}

impl VideoFormat {
    /// Creates a format at the benchmark's standard 25 fps.
    pub fn at_25fps(resolution: Resolution) -> Self {
        VideoFormat {
            resolution,
            frame_rate: FrameRate::FPS_25,
        }
    }

    /// Raw bytes per 4:2:0 frame.
    pub fn frame_bytes(self) -> usize {
        self.resolution.pixel_count() * 3 / 2
    }
}

impl fmt::Display for VideoFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.resolution, self.frame_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_resolutions() {
        assert_eq!(Resolution::DVD_576.to_string(), "720x576");
        assert_eq!(Resolution::HD_720.to_string(), "1280x720");
        assert_eq!(Resolution::HD_1088.to_string(), "1920x1088");
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Resolution::HD_720.label(), "720p25");
        assert_eq!(Resolution::new(100, 80).label(), "100x80");
    }

    #[test]
    fn scaled_down_stays_even_and_large_enough() {
        let r = Resolution::HD_1088.scaled_down(10);
        assert!(r.width().is_multiple_of(2) && r.height().is_multiple_of(2));
        assert!(r.width() >= 16 && r.height() >= 16);
        let tiny = Resolution::DVD_576.scaled_down(1000);
        assert_eq!((tiny.width(), tiny.height()), (16, 16));
    }

    #[test]
    fn frame_rate_display_and_value() {
        assert_eq!(FrameRate::FPS_25.to_string(), "25 fps");
        assert!((FrameRate::new(30000, 1001).as_f64() - 29.97).abs() < 0.01);
    }

    #[test]
    fn format_frame_bytes() {
        let f = VideoFormat::at_25fps(Resolution::DVD_576);
        assert_eq!(f.frame_bytes(), 720 * 576 * 3 / 2);
    }
}
