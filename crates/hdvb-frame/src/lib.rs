//! YUV 4:2:0 frame representation, pixel planes, quality metrics and raw
//! video I/O for HD-VideoBench.
//!
//! This crate is the lowest layer of the benchmark: every codec, the
//! sequence generators and the harness all exchange [`Frame`]s. A frame
//! holds three [`Plane`]s (luma plus two chroma planes subsampled 2×2,
//! i.e. 4:2:0 — the chroma format used by all HD-VideoBench inputs).
//!
//! # Example
//!
//! ```
//! use hdvb_frame::{Frame, Resolution};
//!
//! let res = Resolution::DVD_576; // 720x576, the paper's "576p25"
//! let mut frame = Frame::new(res.width(), res.height());
//! frame.y_mut().fill(128);
//! assert_eq!(frame.width(), 720);
//! assert_eq!(frame.cb().width(), 360);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod frame;
mod io;
mod metrics;
mod pad;
mod plane;
mod pool;
mod region;
mod video;

pub use error::FrameError;
pub use frame::Frame;
pub use io::{read_i420, read_i420_into, write_i420, Y4mReader, Y4mWriter};
pub use metrics::{psnr_from_mse, FramePsnr, PlanePsnr, SequencePsnr, Ssim};
pub use pad::PaddedPlane;
pub use plane::Plane;
pub use pool::{BufferPool, FramePool, PoolStats, PooledBuf, PooledFrame};
pub use region::{align_up, mb_count, Rect};
pub use video::{FrameRate, Resolution, VideoFormat};
