//! Raw planar video I/O: bare I420 and the YUV4MPEG2 ("Y4M") container.
//!
//! The original benchmark feeds the encoders raw `.yuv` files; these
//! helpers let the Rust harness and the `hdvb` CLI exchange the same raw
//! formats with external tools.

use std::io::{Read, Write};

use crate::{Frame, FrameError, FrameRate, Plane, Resolution};

/// Reads one I420 frame (`w*h` luma bytes then two quarter-size chroma
/// planes) from `reader`.
///
/// Returns `Ok(None)` on a clean end-of-stream (zero bytes available) and
/// an error if the stream ends mid-frame.
///
/// Note that a `&mut R` reader also works, per the standard `Read` blanket
/// impl.
///
/// # Errors
///
/// [`FrameError::UnexpectedEof`] on a truncated frame, or
/// [`FrameError::Io`] for transport errors.
pub fn read_i420<R: Read>(
    mut reader: R,
    resolution: Resolution,
) -> Result<Option<Frame>, FrameError> {
    let (w, h) = (resolution.width(), resolution.height());
    let mut y = vec![0u8; w * h];
    match read_exact_or_eof(&mut reader, &mut y)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Full => {}
        ReadOutcome::Partial => return Err(FrameError::UnexpectedEof),
    }
    let mut cb = vec![0u8; w * h / 4];
    let mut cr = vec![0u8; w * h / 4];
    reader.read_exact(&mut cb).map_err(map_eof)?;
    reader.read_exact(&mut cr).map_err(map_eof)?;
    let frame = Frame::from_planes(
        Plane::from_vec(w, h, y),
        Plane::from_vec(w / 2, h / 2, cb),
        Plane::from_vec(w / 2, h / 2, cr),
    )?;
    Ok(Some(frame))
}

/// Reads one I420 frame directly into `frame`'s existing planes —
/// the zero-allocation variant of [`read_i420`] for per-frame loops.
///
/// Returns `Ok(false)` on a clean end-of-stream (zero bytes available;
/// `frame` then holds its previous contents) and `Ok(true)` when every
/// plane was filled.
///
/// # Errors
///
/// [`FrameError::UnexpectedEof`] on a truncated frame, or
/// [`FrameError::Io`] for transport errors.
pub fn read_i420_into<R: Read>(mut reader: R, frame: &mut Frame) -> Result<bool, FrameError> {
    let (y, cb, cr) = frame.planes_mut();
    match read_exact_or_eof(&mut reader, y.data_mut())? {
        ReadOutcome::Eof => return Ok(false),
        ReadOutcome::Full => {}
        ReadOutcome::Partial => return Err(FrameError::UnexpectedEof),
    }
    reader.read_exact(cb.data_mut()).map_err(map_eof)?;
    reader.read_exact(cr.data_mut()).map_err(map_eof)?;
    Ok(true)
}

/// Writes one frame as raw I420 bytes.
///
/// # Errors
///
/// Propagates any I/O error from `writer`.
pub fn write_i420<W: Write>(mut writer: W, frame: &Frame) -> Result<(), FrameError> {
    writer.write_all(frame.y().data())?;
    writer.write_all(frame.cb().data())?;
    writer.write_all(frame.cr().data())?;
    Ok(())
}

fn map_eof(e: std::io::Error) -> FrameError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        FrameError::UnexpectedEof
    } else {
        FrameError::Io(e)
    }
}

enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

fn read_exact_or_eof<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<ReadOutcome, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(ReadOutcome::Full)
}

/// Writes a YUV4MPEG2 stream (the format produced by
/// `mplayer -vo yuv4mpeg` in the original benchmark's tool chain).
#[derive(Debug)]
pub struct Y4mWriter<W: Write> {
    inner: W,
    wrote_header: bool,
    resolution: Resolution,
    frame_rate: FrameRate,
}

impl<W: Write> Y4mWriter<W> {
    /// Creates a writer for the given geometry; the stream header is
    /// emitted lazily with the first frame.
    pub fn new(inner: W, resolution: Resolution, frame_rate: FrameRate) -> Self {
        Y4mWriter {
            inner,
            wrote_header: false,
            resolution,
            frame_rate,
        }
    }

    /// Appends one frame.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadDimensions`] if the frame size differs from the
    /// stream geometry, otherwise any underlying I/O error.
    pub fn write_frame(&mut self, frame: &Frame) -> Result<(), FrameError> {
        if frame.width() != self.resolution.width() || frame.height() != self.resolution.height() {
            return Err(FrameError::BadDimensions {
                width: frame.width(),
                height: frame.height(),
                constraint: "frame size must match the y4m stream header",
            });
        }
        if !self.wrote_header {
            writeln!(
                self.inner,
                "YUV4MPEG2 W{} H{} F{}:{} Ip A1:1 C420jpeg",
                self.resolution.width(),
                self.resolution.height(),
                self.frame_rate.num(),
                self.frame_rate.den()
            )?;
            self.wrote_header = true;
        }
        writeln!(self.inner, "FRAME")?;
        write_i420(&mut self.inner, frame)
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the flush error.
    pub fn into_inner(mut self) -> Result<W, FrameError> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Reads a YUV4MPEG2 stream.
#[derive(Debug)]
pub struct Y4mReader<R: Read> {
    inner: R,
    resolution: Resolution,
    frame_rate: FrameRate,
}

impl<R: Read> Y4mReader<R> {
    /// Parses the stream header.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadHeader`] if the signature or geometry is missing
    /// or malformed.
    pub fn new(mut inner: R) -> Result<Self, FrameError> {
        let header = read_line(&mut inner)?;
        let mut parts = header.split(' ');
        if parts.next() != Some("YUV4MPEG2") {
            return Err(FrameError::BadHeader("missing YUV4MPEG2 signature".into()));
        }
        let (mut w, mut h, mut num, mut den) = (0u32, 0u32, 25u32, 1u32);
        for p in parts {
            let (tag, val) = p.split_at(1);
            match tag {
                "W" => w = parse_u32(val)?,
                "H" => h = parse_u32(val)?,
                "F" => {
                    let mut it = val.split(':');
                    num = parse_u32(it.next().unwrap_or(""))?;
                    den = parse_u32(it.next().unwrap_or("1"))?;
                }
                "C" if !val.starts_with("420") => {
                    return Err(FrameError::BadHeader(format!(
                        "unsupported chroma format C{val}"
                    )));
                }
                _ => {} // interlacing / aspect tags ignored
            }
        }
        if w == 0 || h == 0 || !w.is_multiple_of(2) || !h.is_multiple_of(2) {
            return Err(FrameError::BadHeader(format!("bad geometry {w}x{h}")));
        }
        Ok(Y4mReader {
            inner,
            resolution: Resolution::new(w, h),
            frame_rate: FrameRate::new(num.max(1), den.max(1)),
        })
    }

    /// Stream resolution from the header.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Stream frame rate from the header.
    pub fn frame_rate(&self) -> FrameRate {
        self.frame_rate
    }

    /// Reads the next frame; `Ok(None)` at end of stream.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadHeader`] on a malformed FRAME marker,
    /// [`FrameError::UnexpectedEof`] on truncation.
    pub fn read_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let line = match read_line_or_eof(&mut self.inner)? {
            None => return Ok(None),
            Some(l) => l,
        };
        if !line.starts_with("FRAME") {
            return Err(FrameError::BadHeader(format!(
                "expected FRAME marker, found {line:?}"
            )));
        }
        match read_i420(&mut self.inner, self.resolution)? {
            Some(f) => Ok(Some(f)),
            None => Err(FrameError::UnexpectedEof),
        }
    }

    /// Reads the next frame into an existing frame's planes (the
    /// zero-allocation variant of [`read_frame`](Self::read_frame)).
    /// Returns `Ok(false)` at end of stream.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadDimensions`] if `frame` does not match the
    /// stream geometry, [`FrameError::BadHeader`] on a malformed FRAME
    /// marker, [`FrameError::UnexpectedEof`] on truncation.
    pub fn read_frame_into(&mut self, frame: &mut Frame) -> Result<bool, FrameError> {
        if frame.width() != self.resolution.width() || frame.height() != self.resolution.height() {
            return Err(FrameError::BadDimensions {
                width: frame.width(),
                height: frame.height(),
                constraint: "frame size must match the y4m stream header",
            });
        }
        let line = match read_line_or_eof(&mut self.inner)? {
            None => return Ok(false),
            Some(l) => l,
        };
        if !line.starts_with("FRAME") {
            return Err(FrameError::BadHeader(format!(
                "expected FRAME marker, found {line:?}"
            )));
        }
        if read_i420_into(&mut self.inner, frame)? {
            Ok(true)
        } else {
            Err(FrameError::UnexpectedEof)
        }
    }
}

fn parse_u32(s: &str) -> Result<u32, FrameError> {
    s.parse()
        .map_err(|_| FrameError::BadHeader(format!("bad integer {s:?}")))
}

fn read_line<R: Read>(r: &mut R) -> Result<String, FrameError> {
    read_line_or_eof(r)?.ok_or(FrameError::UnexpectedEof)
}

fn read_line_or_eof<R: Read>(r: &mut R) -> Result<Option<String>, FrameError> {
    let mut out = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => {
                return if out.is_empty() {
                    Ok(None)
                } else {
                    Err(FrameError::UnexpectedEof)
                }
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    return Ok(Some(String::from_utf8_lossy(&out).into_owned()));
                }
                if out.len() > 256 {
                    return Err(FrameError::BadHeader("header line too long".into()));
                }
                out.push(byte[0]);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_frame(seed: u8) -> Frame {
        let mut f = Frame::new(32, 16);
        for (i, v) in f.y_mut().data_mut().iter_mut().enumerate() {
            *v = (i as u8).wrapping_mul(3).wrapping_add(seed);
        }
        for v in f.cb_mut().data_mut() {
            *v = seed.wrapping_add(50);
        }
        f
    }

    #[test]
    fn i420_roundtrip() {
        let f = test_frame(7);
        let mut buf = Vec::new();
        write_i420(&mut buf, &f).unwrap();
        assert_eq!(buf.len(), 32 * 16 * 3 / 2);
        let back = read_i420(&buf[..], Resolution::new(32, 16))
            .unwrap()
            .unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn i420_eof_and_truncation() {
        let r = Resolution::new(32, 16);
        assert!(read_i420(&[][..], r).unwrap().is_none());
        let half = [0u8; 100];
        assert!(matches!(
            read_i420(&half[..], r),
            Err(FrameError::UnexpectedEof)
        ));
    }

    #[test]
    fn read_into_matches_allocating_read() {
        let f = test_frame(42);
        let mut buf = Vec::new();
        write_i420(&mut buf, &f).unwrap();
        let mut reused = test_frame(99); // stale contents, fully overwritten
        assert!(read_i420_into(&buf[..], &mut reused).unwrap());
        assert_eq!(reused, f);
        // Clean EOF leaves the frame untouched and reports false.
        assert!(!read_i420_into(&[][..], &mut reused).unwrap());
        assert_eq!(reused, f);
        // Truncation errors.
        assert!(matches!(
            read_i420_into(&buf[..100], &mut reused),
            Err(FrameError::UnexpectedEof)
        ));
    }

    #[test]
    fn y4m_read_frame_into_reuses_one_frame() {
        let f1 = test_frame(1);
        let f2 = test_frame(200);
        let mut w = Y4mWriter::new(Vec::new(), Resolution::new(32, 16), FrameRate::FPS_25);
        w.write_frame(&f1).unwrap();
        w.write_frame(&f2).unwrap();
        let bytes = w.into_inner().unwrap();
        let mut r = Y4mReader::new(&bytes[..]).unwrap();
        let mut frame = Frame::new(32, 16);
        assert!(r.read_frame_into(&mut frame).unwrap());
        assert_eq!(frame, f1);
        assert!(r.read_frame_into(&mut frame).unwrap());
        assert_eq!(frame, f2);
        assert!(!r.read_frame_into(&mut frame).unwrap());
        // Geometry mismatch is rejected up front.
        let mut wrong = Frame::new(16, 16);
        let mut r2 = Y4mReader::new(&bytes[..]).unwrap();
        assert!(r2.read_frame_into(&mut wrong).is_err());
    }

    #[test]
    fn y4m_roundtrip_two_frames() {
        let f1 = test_frame(1);
        let f2 = test_frame(200);
        let mut w = Y4mWriter::new(Vec::new(), Resolution::new(32, 16), FrameRate::FPS_25);
        w.write_frame(&f1).unwrap();
        w.write_frame(&f2).unwrap();
        let bytes = w.into_inner().unwrap();
        let mut r = Y4mReader::new(&bytes[..]).unwrap();
        assert_eq!(r.resolution(), Resolution::new(32, 16));
        assert_eq!(r.frame_rate(), FrameRate::FPS_25);
        assert_eq!(r.read_frame().unwrap().unwrap(), f1);
        assert_eq!(r.read_frame().unwrap().unwrap(), f2);
        assert!(r.read_frame().unwrap().is_none());
    }

    #[test]
    fn y4m_rejects_wrong_size_frame() {
        let mut w = Y4mWriter::new(Vec::new(), Resolution::new(32, 16), FrameRate::FPS_25);
        let wrong = Frame::new(16, 16);
        assert!(w.write_frame(&wrong).is_err());
    }

    #[test]
    fn y4m_rejects_garbage_header() {
        assert!(Y4mReader::new(&b"RIFFxxxx"[..]).is_err());
        assert!(Y4mReader::new(&b"YUV4MPEG2 W0 H16\n"[..]).is_err());
        assert!(Y4mReader::new(&b"YUV4MPEG2 W32 H16 C444\n"[..]).is_err());
    }

    #[test]
    fn y4m_truncated_frame_errors() {
        let mut bytes = Vec::new();
        {
            let mut w = Y4mWriter::new(&mut bytes, Resolution::new(32, 16), FrameRate::FPS_25);
            w.write_frame(&test_frame(9)).unwrap();
        }
        bytes.truncate(bytes.len() - 10);
        let mut r = Y4mReader::new(&bytes[..]).unwrap();
        assert!(r.read_frame().is_err());
    }
}
