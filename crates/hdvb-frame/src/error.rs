use std::fmt;

/// Errors produced by frame construction and raw video I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum FrameError {
    /// A dimension was zero or not a multiple of the required alignment.
    BadDimensions {
        /// Requested width in pixels.
        width: usize,
        /// Requested height in pixels.
        height: usize,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// The input ended before a complete frame could be read.
    UnexpectedEof,
    /// A stream header (e.g. Y4M) could not be parsed.
    BadHeader(String),
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadDimensions {
                width,
                height,
                constraint,
            } => write!(f, "bad frame dimensions {width}x{height}: {constraint}"),
            FrameError::UnexpectedEof => write!(f, "unexpected end of stream"),
            FrameError::BadHeader(msg) => write!(f, "bad stream header: {msg}"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let e = FrameError::UnexpectedEof;
        let s = e.to_string();
        assert!(s.starts_with(char::is_lowercase));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrameError>();
    }

    #[test]
    fn io_error_source_is_preserved() {
        use std::error::Error;
        let e = FrameError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
