use crate::{FrameError, Plane};

/// A progressive YUV 4:2:0 video frame.
///
/// The luma plane has the frame's full resolution; the two chroma planes
/// (Cb, Cr) are subsampled by two in each dimension, so frame dimensions
/// must be even. All HD-VideoBench content is 4:2:0 progressive, matching
/// the paper's input sequences.
///
/// # Example
///
/// ```
/// use hdvb_frame::Frame;
///
/// let f = Frame::new(176, 144);
/// assert_eq!((f.y().width(), f.y().height()), (176, 144));
/// assert_eq!((f.cb().width(), f.cr().height()), (88, 72));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    y: Plane,
    cb: Plane,
    cr: Plane,
}

impl Frame {
    /// Creates a mid-grey frame of the given luma dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or odd (4:2:0 requires even
    /// dimensions).
    pub fn new(width: usize, height: usize) -> Self {
        Self::try_new(width, height).expect("invalid frame dimensions")
    }

    /// Fallible variant of [`Frame::new`].
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::BadDimensions`] if either dimension is zero or
    /// odd.
    pub fn try_new(width: usize, height: usize) -> Result<Self, FrameError> {
        if width == 0 || height == 0 || !width.is_multiple_of(2) || !height.is_multiple_of(2) {
            return Err(FrameError::BadDimensions {
                width,
                height,
                constraint: "4:2:0 frames need even, nonzero dimensions",
            });
        }
        Ok(Frame {
            y: Plane::new(width, height),
            cb: Plane::new(width / 2, height / 2),
            cr: Plane::new(width / 2, height / 2),
        })
    }

    /// Builds a frame from three existing planes.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::BadDimensions`] if the chroma planes are not
    /// exactly half the luma dimensions.
    pub fn from_planes(y: Plane, cb: Plane, cr: Plane) -> Result<Self, FrameError> {
        let ok = cb.width() == y.width() / 2
            && cb.height() == y.height() / 2
            && cr.width() == cb.width()
            && cr.height() == cb.height()
            && y.width().is_multiple_of(2)
            && y.height().is_multiple_of(2);
        if !ok {
            return Err(FrameError::BadDimensions {
                width: y.width(),
                height: y.height(),
                constraint: "chroma planes must be half the luma dimensions",
            });
        }
        Ok(Frame { y, cb, cr })
    }

    /// Luma width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.y.width()
    }

    /// Luma height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.y.height()
    }

    /// The luma plane.
    #[inline]
    pub fn y(&self) -> &Plane {
        &self.y
    }

    /// The blue-difference chroma plane.
    #[inline]
    pub fn cb(&self) -> &Plane {
        &self.cb
    }

    /// The red-difference chroma plane.
    #[inline]
    pub fn cr(&self) -> &Plane {
        &self.cr
    }

    /// Mutable luma plane.
    #[inline]
    pub fn y_mut(&mut self) -> &mut Plane {
        &mut self.y
    }

    /// Mutable blue-difference chroma plane.
    #[inline]
    pub fn cb_mut(&mut self) -> &mut Plane {
        &mut self.cb
    }

    /// Mutable red-difference chroma plane.
    #[inline]
    pub fn cr_mut(&mut self) -> &mut Plane {
        &mut self.cr
    }

    /// Returns `(y, cb, cr)` planes as mutable references simultaneously.
    pub fn planes_mut(&mut self) -> (&mut Plane, &mut Plane, &mut Plane) {
        (&mut self.y, &mut self.cb, &mut self.cr)
    }

    /// Overwrites this frame with the contents of `src` (no allocation —
    /// the pooled replacement for `src.clone()`).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn copy_from(&mut self, src: &Frame) {
        self.y.copy_from(&src.y);
        self.cb.copy_from(&src.cb);
        self.cr.copy_from(&src.cr);
    }

    /// Overwrites this frame with the top-left window of a same-size-or-
    /// larger `src` (crop to display size). Every sample is written, so
    /// a recycled pool frame is fully refreshed.
    ///
    /// # Panics
    ///
    /// Panics if `src` is smaller in either dimension.
    pub fn crop_from(&mut self, src: &Frame) {
        self.y.crop_from(&src.y);
        self.cb.crop_from(&src.cb);
        self.cr.crop_from(&src.cr);
    }

    /// Overwrites this frame with `src` extended to `self`'s (equal or
    /// larger) dimensions by edge replication (macroblock alignment).
    /// Every sample is written, so a recycled pool frame is fully
    /// refreshed.
    ///
    /// # Panics
    ///
    /// Panics if `src` is larger in either dimension.
    pub fn replicate_from(&mut self, src: &Frame) {
        self.y.replicate_from(&src.y);
        self.cb.replicate_from(&src.cb);
        self.cr.replicate_from(&src.cr);
    }

    /// Total number of samples across all three planes (the figure used to
    /// convert throughput to "pixels per second").
    pub fn sample_count(&self) -> usize {
        self.y.data().len() + self.cb.data().len() + self.cr.data().len()
    }

    /// Number of luma pixels (`width * height`).
    pub fn pixel_count(&self) -> usize {
        self.width() * self.height()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chroma_is_half_resolution() {
        let f = Frame::new(64, 48);
        assert_eq!(f.cb().width(), 32);
        assert_eq!(f.cb().height(), 24);
        assert_eq!(f.cr().width(), 32);
    }

    #[test]
    fn odd_dimensions_rejected() {
        assert!(Frame::try_new(63, 48).is_err());
        assert!(Frame::try_new(64, 47).is_err());
        assert!(Frame::try_new(0, 48).is_err());
    }

    #[test]
    fn sample_count_is_1_5x_pixels() {
        let f = Frame::new(32, 32);
        assert_eq!(f.sample_count(), 32 * 32 * 3 / 2);
        assert_eq!(f.pixel_count(), 1024);
    }

    #[test]
    fn from_planes_validates_chroma() {
        let y = Plane::new(16, 16);
        let cb = Plane::new(8, 8);
        let cr = Plane::new(8, 8);
        assert!(Frame::from_planes(y.clone(), cb.clone(), cr.clone()).is_ok());
        let bad_cr = Plane::new(4, 8);
        assert!(Frame::from_planes(y, cb, bad_cr).is_err());
    }
}
