//! Frame and bitstream-buffer pools for the zero-copy hot path.
//!
//! Steady-state encode/decode/serve traffic must not touch the heap per
//! frame (ROADMAP item 1). These pools recycle the two storage shapes
//! the hot path consumes — whole [`Frame`]s and `Vec<u8>` bitstream
//! buffers — through mutex-guarded free lists:
//!
//! * [`BufferPool`] buckets byte buffers by power-of-two capacity
//!   class, so an encoder asking for a ~20 KiB packet buffer and a
//!   loader asking for a 1.5 MiB I420 frame never thrash each other's
//!   storage.
//! * [`FramePool`] keeps per-resolution free lists (sharded by a hash
//!   of the geometry), so mixed-resolution fleets reuse frames of the
//!   right size instead of reallocating.
//!
//! Ownership rules: `take` transfers ownership to the caller; storage
//! comes back either through an explicit `put` (the codec-internal
//! style) or by dropping a [`PooledFrame`]/[`PooledBuf`] RAII handle
//! (the session/serve style). Returned buffers keep their capacity but
//! lose their contents: a pooled `Vec<u8>` comes back cleared (length
//! zero) and a pooled `Frame` comes back with *stale pixels* — every
//! consumer must fully overwrite it (all the in-tree users do: frame
//! copies, crops, edge replication and reconstruction write every
//! sample, which is also what keeps pooled paths bit-identical to the
//! allocating ones).
//!
//! Sizing policy: free lists are bounded (32 entries per bucket/bin);
//! beyond that, returns fall through to the real allocator so a burst
//! cannot permanently pin memory. Buffers below 64 bytes are not worth
//! pooling and are dropped.

use crate::Frame;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Smallest pooled capacity class, as a power of two (2^6 = 64 bytes).
const MIN_CLASS: u32 = 6;
/// Number of capacity classes (2^6 ..= 2^28, i.e. 64 B to 256 MiB).
const NUM_CLASSES: usize = 23;
/// Free-list bound per capacity class / per resolution bin.
const MAX_FREE: usize = 32;

/// A point-in-time snapshot of a pool's traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `take` calls served.
    pub takes: u64,
    /// `take` calls satisfied from a free list (no heap allocation).
    pub hits: u64,
    /// `take` calls that fell through to the allocator.
    pub misses: u64,
    /// Storage returned to a free list.
    pub returns: u64,
    /// Returns dropped because the free list was full (or the buffer
    /// was too small to pool).
    pub dropped: u64,
}

impl PoolStats {
    /// The traffic between an `earlier` snapshot and this one — how a
    /// benchmark isolates its own pool usage from whatever warmed the
    /// global pools before it started.
    pub fn delta_since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            takes: self.takes.saturating_sub(earlier.takes),
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            returns: self.returns.saturating_sub(earlier.returns),
            dropped: self.dropped.saturating_sub(earlier.dropped),
        }
    }

    /// Fraction of `take` calls served without touching the allocator
    /// (1.0 when there was no traffic — nothing missed).
    pub fn hit_rate(&self) -> f64 {
        if self.takes == 0 {
            1.0
        } else {
            self.hits as f64 / self.takes as f64
        }
    }
}

#[derive(Default)]
struct Counters {
    takes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
    dropped: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> PoolStats {
        PoolStats {
            takes: self.takes.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            returns: self.returns.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

/// A pool of `Vec<u8>` bitstream/sample buffers, bucketed by
/// power-of-two capacity class.
pub struct BufferPool {
    buckets: Vec<Mutex<Vec<Vec<u8>>>>,
    counters: Counters,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> BufferPool {
        BufferPool {
            buckets: (0..NUM_CLASSES).map(|_| Mutex::new(Vec::new())).collect(),
            counters: Counters::default(),
        }
    }

    /// The process-wide pool used by the codecs, sessions and serve
    /// layer.
    pub fn global() -> &'static BufferPool {
        static POOL: OnceLock<BufferPool> = OnceLock::new();
        POOL.get_or_init(BufferPool::new)
    }

    fn class_of(capacity: usize) -> usize {
        let c = capacity.max(1).ilog2().saturating_sub(MIN_CLASS) as usize;
        c.min(NUM_CLASSES - 1)
    }

    /// Takes a cleared buffer with at least `min_capacity` bytes of
    /// capacity, reusing a pooled one when available.
    pub fn take(&self, min_capacity: usize) -> Vec<u8> {
        bump(&self.counters.takes);
        let want = min_capacity.max(64).next_power_of_two();
        let k0 = Self::class_of(want);
        // A buffer in class k has capacity >= 2^(k+MIN_CLASS) >= want;
        // also scan two classes up so slightly-grown returns get reused.
        for k in k0..(k0 + 3).min(NUM_CLASSES) {
            let popped = lock(&self.buckets[k]).pop();
            if let Some(v) = popped {
                if v.capacity() >= min_capacity {
                    bump(&self.counters.hits);
                    debug_assert!(v.is_empty());
                    return v;
                }
                // Undersized stray (clamped top class): put it back.
                lock(&self.buckets[k]).push(v);
                break;
            }
        }
        bump(&self.counters.misses);
        Vec::with_capacity(want)
    }

    /// Returns a buffer to the pool. The contents are discarded; the
    /// capacity is kept for reuse.
    pub fn put(&self, mut v: Vec<u8>) {
        if v.capacity() < 64 {
            bump(&self.counters.dropped);
            return;
        }
        v.clear();
        let k = Self::class_of(v.capacity());
        let mut bucket = lock(&self.buckets[k]);
        if bucket.len() < MAX_FREE {
            bucket.push(v);
            drop(bucket);
            bump(&self.counters.returns);
        } else {
            drop(bucket);
            bump(&self.counters.dropped);
        }
    }

    /// Current traffic counters.
    pub fn stats(&self) -> PoolStats {
        self.counters.snapshot()
    }

    /// Buffers currently sitting in the free lists.
    pub fn free_buffers(&self) -> usize {
        self.buckets.iter().map(|b| lock(b).len()).sum()
    }
}

/// Number of independent free-list shards in a [`FramePool`].
const FRAME_SHARDS: usize = 8;

struct FrameBin {
    width: usize,
    height: usize,
    frames: Vec<Frame>,
}

/// A pool of [`Frame`]s, free-listed per resolution.
pub struct FramePool {
    shards: Vec<Mutex<Vec<FrameBin>>>,
    counters: Counters,
}

impl Default for FramePool {
    fn default() -> Self {
        Self::new()
    }
}

impl FramePool {
    /// An empty pool.
    pub fn new() -> FramePool {
        FramePool {
            shards: (0..FRAME_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            counters: Counters::default(),
        }
    }

    /// The process-wide pool used by the codecs, sessions and serve
    /// layer.
    pub fn global() -> &'static FramePool {
        static POOL: OnceLock<FramePool> = OnceLock::new();
        POOL.get_or_init(FramePool::new)
    }

    fn shard_of(width: usize, height: usize) -> usize {
        (width.wrapping_mul(31).wrapping_add(height)) % FRAME_SHARDS
    }

    /// Takes a `width`×`height` frame. A recycled frame carries **stale
    /// pixel data** — the caller must overwrite every sample before the
    /// contents are observable.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions are zero or odd (as [`Frame::new`]).
    pub fn take(&self, width: usize, height: usize) -> Frame {
        bump(&self.counters.takes);
        {
            let mut shard = lock(&self.shards[Self::shard_of(width, height)]);
            if let Some(bin) = shard
                .iter_mut()
                .find(|b| b.width == width && b.height == height)
            {
                if let Some(f) = bin.frames.pop() {
                    bump(&self.counters.hits);
                    return f;
                }
            }
        }
        bump(&self.counters.misses);
        Frame::new(width, height)
    }

    /// Returns a frame to its resolution's free list.
    pub fn put(&self, frame: Frame) {
        let (w, h) = (frame.width(), frame.height());
        let mut shard = lock(&self.shards[Self::shard_of(w, h)]);
        let bin = match shard.iter_mut().find(|b| b.width == w && b.height == h) {
            Some(bin) => bin,
            None => {
                shard.push(FrameBin {
                    width: w,
                    height: h,
                    frames: Vec::new(),
                });
                shard.last_mut().expect("bin just pushed")
            }
        };
        if bin.frames.len() < MAX_FREE {
            bin.frames.push(frame);
            drop(shard);
            bump(&self.counters.returns);
        } else {
            drop(shard);
            bump(&self.counters.dropped);
        }
    }

    /// Current traffic counters.
    pub fn stats(&self) -> PoolStats {
        self.counters.snapshot()
    }

    /// Frames currently sitting in the free lists.
    pub fn free_frames(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock(s).iter().map(|b| b.frames.len()).sum::<usize>())
            .sum()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// An RAII frame handle that returns its storage to the global
/// [`FramePool`] on drop.
#[derive(Debug)]
pub struct PooledFrame {
    frame: Option<Frame>,
}

impl PooledFrame {
    /// Takes a `width`×`height` frame from the global pool. As with
    /// [`FramePool::take`], recycled pixels are stale.
    pub fn take(width: usize, height: usize) -> PooledFrame {
        PooledFrame {
            frame: Some(FramePool::global().take(width, height)),
        }
    }

    /// Wraps an existing frame so it is recycled on drop.
    pub fn from_frame(frame: Frame) -> PooledFrame {
        PooledFrame { frame: Some(frame) }
    }

    /// Detaches the frame from the handle (it will no longer be
    /// recycled automatically).
    pub fn into_inner(mut self) -> Frame {
        self.frame.take().expect("pooled frame already taken")
    }
}

impl std::ops::Deref for PooledFrame {
    type Target = Frame;
    fn deref(&self) -> &Frame {
        self.frame.as_ref().expect("pooled frame already taken")
    }
}

impl std::ops::DerefMut for PooledFrame {
    fn deref_mut(&mut self) -> &mut Frame {
        self.frame.as_mut().expect("pooled frame already taken")
    }
}

impl Drop for PooledFrame {
    fn drop(&mut self) {
        if let Some(f) = self.frame.take() {
            FramePool::global().put(f);
        }
    }
}

/// An RAII byte-buffer handle that returns its storage to the global
/// [`BufferPool`] on drop.
#[derive(Debug)]
pub struct PooledBuf {
    buf: Option<Vec<u8>>,
}

impl PooledBuf {
    /// Takes a cleared buffer with at least `min_capacity` bytes of
    /// capacity from the global pool.
    pub fn take(min_capacity: usize) -> PooledBuf {
        PooledBuf {
            buf: Some(BufferPool::global().take(min_capacity)),
        }
    }

    /// Wraps an existing buffer so it is recycled on drop.
    pub fn from_vec(buf: Vec<u8>) -> PooledBuf {
        PooledBuf { buf: Some(buf) }
    }

    /// Detaches the buffer from the handle.
    pub fn into_inner(mut self) -> Vec<u8> {
        self.buf.take().expect("pooled buffer already taken")
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        self.buf.as_ref().expect("pooled buffer already taken")
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        self.buf.as_mut().expect("pooled buffer already taken")
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(b) = self.buf.take() {
            BufferPool::global().put(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_roundtrip_reuses_the_same_allocation() {
        let pool = BufferPool::new();
        let mut v = pool.take(1000);
        assert!(v.capacity() >= 1000);
        v.extend_from_slice(&[1, 2, 3]);
        let ptr = v.as_ptr();
        pool.put(v);
        let v2 = pool.take(900);
        assert_eq!(v2.as_ptr(), ptr, "same-class take must reuse storage");
        assert!(v2.is_empty(), "pooled buffers come back cleared");
        let s = pool.stats();
        assert_eq!((s.takes, s.hits, s.misses, s.returns), (2, 1, 1, 1));
    }

    #[test]
    fn buffer_classes_do_not_thrash_each_other() {
        let pool = BufferPool::new();
        let small = pool.take(100);
        let big = pool.take(1 << 20);
        pool.put(small);
        pool.put(big);
        // A large request must not consume the small buffer.
        let v = pool.take(1 << 20);
        assert!(v.capacity() >= 1 << 20);
        assert_eq!(pool.free_buffers(), 1);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn tiny_buffers_are_not_pooled() {
        let pool = BufferPool::new();
        pool.put(Vec::new());
        assert_eq!(pool.free_buffers(), 0);
        assert_eq!(pool.stats().dropped, 1);
    }

    #[test]
    fn buffer_free_lists_are_bounded() {
        let pool = BufferPool::new();
        for _ in 0..(MAX_FREE + 10) {
            pool.put(Vec::with_capacity(128));
        }
        assert_eq!(pool.free_buffers(), MAX_FREE);
        assert_eq!(pool.stats().dropped, 10);
    }

    #[test]
    fn frame_roundtrip_reuses_the_same_allocation() {
        let pool = FramePool::new();
        let mut f = pool.take(32, 16);
        f.y_mut().fill(7);
        let ptr = f.y().data().as_ptr();
        pool.put(f);
        let f2 = pool.take(32, 16);
        assert_eq!(
            f2.y().data().as_ptr(),
            ptr,
            "same-geometry take must reuse storage"
        );
        let s = pool.stats();
        assert_eq!((s.takes, s.hits, s.misses, s.returns), (2, 1, 1, 1));
    }

    #[test]
    fn mixed_resolutions_get_separate_bins() {
        let pool = FramePool::new();
        pool.put(Frame::new(32, 16));
        pool.put(Frame::new(64, 48));
        let f = pool.take(64, 48);
        assert_eq!((f.width(), f.height()), (64, 48));
        assert_eq!(pool.free_frames(), 1);
        let f2 = pool.take(32, 16);
        assert_eq!((f2.width(), f2.height()), (32, 16));
        assert_eq!(pool.stats().hits, 2);
    }

    #[test]
    fn pooled_handles_return_storage_on_drop() {
        // Use distinctive geometry to avoid interference from other
        // tests sharing the global pools.
        let before = FramePool::global().stats().returns;
        {
            let mut f = PooledFrame::take(46, 34);
            f.y_mut().fill(1);
        }
        assert!(FramePool::global().stats().returns > before);

        let before = BufferPool::global().stats().returns;
        {
            let mut b = PooledBuf::take(4096);
            b.push(9);
        }
        assert!(BufferPool::global().stats().returns > before);
    }

    #[test]
    fn into_inner_detaches_from_the_pool() {
        let pool_frames = FramePool::global().free_frames();
        let f = PooledFrame::take(38, 22).into_inner();
        drop(f);
        // The detached frame must not have been returned.
        assert!(FramePool::global().free_frames() <= pool_frames + 1);
    }
}
