//! Objective quality metrics: PSNR (the paper's Table V metric) and a
//! luma SSIM used by the extended analyses.

use crate::{Frame, Plane};

/// Converts a mean-squared error into PSNR in decibels for 8-bit content.
///
/// Returns `f64::INFINITY` for `mse == 0` (identical pictures).
///
/// # Example
///
/// ```
/// use hdvb_frame::psnr_from_mse;
///
/// assert!(psnr_from_mse(0.0).is_infinite());
/// assert!((psnr_from_mse(1.0) - 48.13).abs() < 0.01);
/// ```
pub fn psnr_from_mse(mse: f64) -> f64 {
    if mse <= 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

/// PSNR of one plane pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlanePsnr {
    /// Mean squared error.
    pub mse: f64,
    /// PSNR in dB (infinite when `mse == 0`).
    pub psnr: f64,
}

impl PlanePsnr {
    /// Measures the PSNR between a reference plane and a distorted plane.
    ///
    /// # Panics
    ///
    /// Panics if the plane dimensions differ.
    pub fn measure(reference: &Plane, distorted: &Plane) -> Self {
        let ssd = reference.ssd(distorted);
        let mse = ssd as f64 / reference.data().len() as f64;
        PlanePsnr {
            mse,
            psnr: psnr_from_mse(mse),
        }
    }
}

/// Per-plane and combined PSNR of one frame pair.
///
/// The combined value uses the conventional 4:2:0 weighting
/// `(4·Y + Cb + Cr) / 6`, which matches how the encoders in the original
/// benchmark (x264, FFmpeg with `psnr` enabled) report a global number.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FramePsnr {
    /// Luma PSNR.
    pub y: PlanePsnr,
    /// Cb PSNR.
    pub cb: PlanePsnr,
    /// Cr PSNR.
    pub cr: PlanePsnr,
}

impl FramePsnr {
    /// Measures PSNR between a reference frame and a distorted frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame dimensions differ.
    pub fn measure(reference: &Frame, distorted: &Frame) -> Self {
        FramePsnr {
            y: PlanePsnr::measure(reference.y(), distorted.y()),
            cb: PlanePsnr::measure(reference.cb(), distorted.cb()),
            cr: PlanePsnr::measure(reference.cr(), distorted.cr()),
        }
    }

    /// Combined PSNR computed from the 4:2:0-weighted MSE.
    pub fn combined(&self) -> f64 {
        let mse = (4.0 * self.y.mse + self.cb.mse + self.cr.mse) / 6.0;
        psnr_from_mse(mse)
    }
}

/// Accumulates per-frame PSNR into a sequence average.
///
/// Averaging is done in the MSE domain (then converted to dB), which is the
/// statistically meaningful way to average PSNR over frames.
///
/// # Example
///
/// ```
/// use hdvb_frame::{Frame, SequencePsnr};
///
/// let a = Frame::new(32, 32);
/// let mut acc = SequencePsnr::new();
/// acc.add(&a, &a);
/// assert!(acc.y_psnr().is_infinite());
/// assert_eq!(acc.frames(), 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SequencePsnr {
    frames: u64,
    y_mse: f64,
    cb_mse: f64,
    cr_mse: f64,
}

impl SequencePsnr {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one reference/distorted frame pair.
    ///
    /// # Panics
    ///
    /// Panics if the frame dimensions differ.
    pub fn add(&mut self, reference: &Frame, distorted: &Frame) {
        let p = FramePsnr::measure(reference, distorted);
        self.add_frame_psnr(&p);
    }

    /// Adds an already-measured frame PSNR.
    pub fn add_frame_psnr(&mut self, p: &FramePsnr) {
        self.frames += 1;
        self.y_mse += p.y.mse;
        self.cb_mse += p.cb.mse;
        self.cr_mse += p.cr.mse;
    }

    /// Number of accumulated frames.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Average luma PSNR in dB.
    pub fn y_psnr(&self) -> f64 {
        psnr_from_mse(self.mean(self.y_mse))
    }

    /// Average Cb PSNR in dB.
    pub fn cb_psnr(&self) -> f64 {
        psnr_from_mse(self.mean(self.cb_mse))
    }

    /// Average Cr PSNR in dB.
    pub fn cr_psnr(&self) -> f64 {
        psnr_from_mse(self.mean(self.cr_mse))
    }

    /// Average combined (4:2:0-weighted) PSNR in dB.
    pub fn combined_psnr(&self) -> f64 {
        let mse =
            (4.0 * self.mean(self.y_mse) + self.mean(self.cb_mse) + self.mean(self.cr_mse)) / 6.0;
        psnr_from_mse(mse)
    }

    fn mean(&self, total: f64) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            total / self.frames as f64
        }
    }
}

/// Structural similarity (SSIM) over the luma plane, computed on 8×8
/// windows with the standard `K1 = 0.01`, `K2 = 0.03` constants.
///
/// Returns values in `(0, 1]`; 1 means identical.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ssim {
    /// Mean SSIM over all windows.
    pub value: f64,
}

impl Ssim {
    /// Measures luma SSIM between two frames.
    ///
    /// # Panics
    ///
    /// Panics if the frame dimensions differ or are smaller than 8×8.
    pub fn measure(reference: &Frame, distorted: &Frame) -> Self {
        Self::measure_planes(reference.y(), distorted.y())
    }

    /// Measures SSIM between two planes.
    ///
    /// # Panics
    ///
    /// Panics if the plane dimensions differ or are smaller than 8×8.
    pub fn measure_planes(a: &Plane, b: &Plane) -> Self {
        assert_eq!((a.width(), a.height()), (b.width(), b.height()));
        assert!(a.width() >= 8 && a.height() >= 8, "ssim needs at least 8x8");
        const C1: f64 = (0.01 * 255.0) * (0.01 * 255.0);
        const C2: f64 = (0.03 * 255.0) * (0.03 * 255.0);
        let mut total = 0.0;
        let mut windows = 0u64;
        let mut ay = 0;
        while ay + 8 <= a.height() {
            let mut ax = 0;
            while ax + 8 <= a.width() {
                let (mut sa, mut sb, mut saa, mut sbb, mut sab) = (0f64, 0f64, 0f64, 0f64, 0f64);
                for dy in 0..8 {
                    for dx in 0..8 {
                        let va = f64::from(a.get(ax + dx, ay + dy));
                        let vb = f64::from(b.get(ax + dx, ay + dy));
                        sa += va;
                        sb += vb;
                        saa += va * va;
                        sbb += vb * vb;
                        sab += va * vb;
                    }
                }
                let n = 64.0;
                let mu_a = sa / n;
                let mu_b = sb / n;
                let var_a = saa / n - mu_a * mu_a;
                let var_b = sbb / n - mu_b * mu_b;
                let cov = sab / n - mu_a * mu_b;
                let ssim = ((2.0 * mu_a * mu_b + C1) * (2.0 * cov + C2))
                    / ((mu_a * mu_a + mu_b * mu_b + C1) * (var_a + var_b + C2));
                total += ssim;
                windows += 1;
                ax += 8;
            }
            ay += 8;
        }
        Ssim {
            value: total / windows as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_pair(w: usize, h: usize, noise: i32) -> (Frame, Frame) {
        let mut a = Frame::new(w, h);
        let mut b = Frame::new(w, h);
        let mut state = 12345u32;
        for y in 0..h {
            for x in 0..w {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                let v = (state >> 24) as u8;
                a.y_mut().set(x, y, v);
                let n = ((state >> 16) as i32 % (2 * noise + 1)) - noise;
                b.y_mut().set(x, y, (i32::from(v) + n).clamp(0, 255) as u8);
            }
        }
        (a, b)
    }

    #[test]
    fn identical_frames_are_infinite_psnr_and_unit_ssim() {
        let f = Frame::new(32, 32);
        let p = FramePsnr::measure(&f, &f);
        assert!(p.y.psnr.is_infinite());
        assert!(p.combined().is_infinite());
        let s = Ssim::measure(&f, &f);
        assert!((s.value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let (a, b1) = noisy_pair(64, 64, 2);
        let (c, b2) = noisy_pair(64, 64, 20);
        let low_noise = FramePsnr::measure(&a, &b1).y.psnr;
        let high_noise = FramePsnr::measure(&c, &b2).y.psnr;
        assert!(low_noise > high_noise + 5.0, "{low_noise} vs {high_noise}");
    }

    #[test]
    fn known_mse_value() {
        // Every pixel differs by exactly 5 => MSE 25 => PSNR ~34.15 dB.
        let mut a = Frame::new(16, 16);
        let mut b = Frame::new(16, 16);
        a.y_mut().fill(100);
        b.y_mut().fill(105);
        let p = PlanePsnr::measure(a.y(), b.y());
        assert!((p.mse - 25.0).abs() < 1e-9);
        assert!((p.psnr - 34.1514).abs() < 0.001);
    }

    #[test]
    fn sequence_average_is_mse_domain() {
        let mut a = Frame::new(16, 16);
        let mut b = Frame::new(16, 16);
        a.y_mut().fill(100);
        b.y_mut().fill(110); // MSE 100
        let mut acc = SequencePsnr::new();
        acc.add(&a, &b);
        acc.add(&a, &a); // MSE 0
                         // Mean MSE = 50 -> PSNR ~31.14 (not the dB average, which would be inf).
        assert!((acc.y_psnr() - psnr_from_mse(50.0)).abs() < 1e-9);
        assert_eq!(acc.frames(), 2);
    }

    #[test]
    fn ssim_penalises_structure_loss_more_than_bias() {
        let (a, _) = noisy_pair(64, 64, 0);
        // Uniform bias of +3: structure preserved.
        let mut biased = a.clone();
        for v in biased.y_mut().data_mut() {
            *v = v.saturating_add(3);
        }
        // Heavy noise: structure destroyed.
        let (_, noisy) = noisy_pair(64, 64, 60);
        let s_bias = Ssim::measure(&a, &biased).value;
        let s_noise = Ssim::measure(&a, &noisy).value;
        assert!(s_bias > s_noise);
    }
}
