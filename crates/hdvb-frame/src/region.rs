/// An axis-aligned pixel rectangle, used to describe macroblock and
/// partition geometry.
///
/// # Example
///
/// ```
/// use hdvb_frame::Rect;
///
/// let mb = Rect::new(16, 32, 16, 16);
/// assert!(mb.contains(20, 40));
/// assert_eq!(mb.area(), 256);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Left edge in pixels.
    pub x: usize,
    /// Top edge in pixels.
    pub y: usize,
    /// Width in pixels.
    pub w: usize,
    /// Height in pixels.
    pub h: usize,
}

impl Rect {
    /// Creates a rectangle from its top-left corner and size.
    pub fn new(x: usize, y: usize, w: usize, h: usize) -> Self {
        Rect { x, y, w, h }
    }

    /// Whether the point `(px, py)` lies inside the rectangle.
    pub fn contains(&self, px: usize, py: usize) -> bool {
        px >= self.x && px < self.x + self.w && py >= self.y && py < self.y + self.h
    }

    /// Area in pixels.
    pub fn area(&self) -> usize {
        self.w * self.h
    }

    /// The rectangle clipped against a `width`×`height` plane.
    pub fn clipped(&self, width: usize, height: usize) -> Rect {
        let x = self.x.min(width);
        let y = self.y.min(height);
        Rect {
            x,
            y,
            w: self.w.min(width - x),
            h: self.h.min(height - y),
        }
    }
}

/// Rounds `v` up to the next multiple of `align`.
///
/// # Panics
///
/// Panics if `align` is zero.
///
/// # Example
///
/// ```
/// use hdvb_frame::align_up;
///
/// assert_eq!(align_up(1080, 16), 1088); // why HD-1088 is 1088 tall
/// assert_eq!(align_up(64, 16), 64);
/// ```
pub fn align_up(v: usize, align: usize) -> usize {
    assert!(align > 0, "alignment must be nonzero");
    v.div_ceil(align) * align
}

/// Number of whole-or-partial macroblocks covering a `width`×`height`
/// frame, as `(mbs_x, mbs_y)`.
pub fn mb_count(width: usize, height: usize, mb_size: usize) -> (usize, usize) {
    (width.div_ceil(mb_size), height.div_ceil(mb_size))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_is_half_open() {
        let r = Rect::new(0, 0, 4, 4);
        assert!(r.contains(0, 0));
        assert!(r.contains(3, 3));
        assert!(!r.contains(4, 0));
        assert!(!r.contains(0, 4));
    }

    #[test]
    fn clipping_truncates() {
        let r = Rect::new(8, 8, 16, 16).clipped(12, 20);
        assert_eq!(r, Rect::new(8, 8, 4, 12));
    }

    #[test]
    fn align_up_cases() {
        assert_eq!(align_up(0, 16), 0);
        assert_eq!(align_up(1, 16), 16);
        assert_eq!(align_up(16, 16), 16);
        assert_eq!(align_up(17, 16), 32);
    }

    #[test]
    fn mb_counts_for_paper_resolutions() {
        assert_eq!(mb_count(720, 576, 16), (45, 36));
        assert_eq!(mb_count(1280, 720, 16), (80, 45));
        assert_eq!(mb_count(1920, 1088, 16), (120, 68));
    }
}
