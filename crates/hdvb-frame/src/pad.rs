use crate::Plane;

/// An edge-extended copy of a [`Plane`] for unchecked motion-compensated
/// access.
///
/// Motion vectors routinely point outside the picture; every real codec
/// extends the reference picture by replicating its border pixels so that
/// interpolation kernels can read out-of-frame positions without branching.
/// `PaddedPlane` materialises that extension once per reference frame.
///
/// # Example
///
/// ```
/// use hdvb_frame::{PaddedPlane, Plane};
///
/// let mut p = Plane::new(16, 16);
/// p.set(0, 0, 42);
/// let padded = PaddedPlane::from_plane(&p, 8);
/// assert_eq!(padded.pixel(-5, -3), 42); // border replication
/// assert_eq!(padded.pixel(0, 0), 42);
/// ```
#[derive(Clone, Debug)]
pub struct PaddedPlane {
    width: usize,
    height: usize,
    pad: usize,
    stride: usize,
    data: Vec<u8>,
}

impl PaddedPlane {
    /// Builds a padded copy of `plane` with `pad` pixels of border
    /// replication on every side.
    pub fn from_plane(plane: &Plane, pad: usize) -> Self {
        let width = plane.width();
        let height = plane.height();
        let stride = width + 2 * pad;
        let padded_h = height + 2 * pad;
        let mut pp = PaddedPlane {
            width,
            height,
            pad,
            stride,
            data: vec![0u8; stride * padded_h],
        };
        pp.fill_from(plane);
        pp
    }

    /// Re-extends this padded plane from a new source picture without
    /// reallocating — the pool-recycling path for reference pictures.
    ///
    /// # Panics
    ///
    /// Panics if `plane`'s dimensions differ from the geometry this
    /// padded plane was built with.
    pub fn refill(&mut self, plane: &Plane) {
        assert_eq!(
            (self.width, self.height),
            (plane.width(), plane.height()),
            "padded plane geometry mismatch"
        );
        self.fill_from(plane);
    }

    /// Writes every byte of `self.data` from `plane` (interior rows with
    /// horizontal extension, then vertical replication). Allocation-free.
    fn fill_from(&mut self, plane: &Plane) {
        let (width, height, pad, stride) = (self.width, self.height, self.pad, self.stride);
        let padded_h = height + 2 * pad;
        let data = &mut self.data;
        // Interior rows with horizontal extension.
        for y in 0..height {
            let src = plane.row(y);
            let dst = &mut data[(y + pad) * stride..(y + pad + 1) * stride];
            dst[..pad].fill(src[0]);
            dst[pad..pad + width].copy_from_slice(src);
            dst[pad + width..].fill(src[width - 1]);
        }
        // Vertical extension: replicate first/last interior rows.
        let first_interior = pad * stride;
        for y in 0..pad {
            data.copy_within(first_interior..first_interior + stride, y * stride);
        }
        let last_interior = (pad + height - 1) * stride;
        for y in pad + height..padded_h {
            data.copy_within(last_interior..last_interior + stride, y * stride);
        }
    }

    /// Width of the unpadded picture.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height of the unpadded picture.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Border size in pixels.
    #[inline]
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// Row stride of the padded buffer.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Reads pixel `(x, y)` in picture coordinates; positions up to
    /// `pad` pixels outside the picture are valid and return the
    /// replicated border.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds, via slice indexing) if the coordinate lies
    /// beyond the padded area.
    #[inline]
    pub fn pixel(&self, x: isize, y: isize) -> u8 {
        let xi = (x + self.pad as isize) as usize;
        let yi = (y + self.pad as isize) as usize;
        self.data[yi * self.stride + xi]
    }

    /// Returns a slice starting at picture coordinate `(x, y)` and running
    /// to the end of the padded buffer; the caller may read `len` bytes of
    /// one row plus use [`stride`](Self::stride) to walk rows.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` lies beyond the padded area.
    #[inline]
    pub fn row_from(&self, x: isize, y: isize) -> &[u8] {
        let xi = (x + self.pad as isize) as usize;
        let yi = (y + self.pad as isize) as usize;
        &self.data[yi * self.stride + xi..]
    }

    /// Returns `true` when a `w`×`h` read window whose top-left corner is
    /// at picture coordinate `(x, y)` lies entirely inside the padded
    /// buffer, i.e. [`row_from`](Self::row_from) followed by `h` strided
    /// row reads of `w` bytes is in bounds.
    ///
    /// Decoders use this to validate motion vectors parsed from untrusted
    /// bitstreams before handing them to the unchecked interpolation
    /// kernels.
    #[inline]
    pub fn window_in_bounds(&self, x: isize, y: isize, w: usize, h: usize) -> bool {
        let pad = self.pad as isize;
        x >= -pad
            && y >= -pad
            && x + w as isize <= self.width as isize + pad
            && y + h as isize <= self.height as isize + pad
    }

    /// Copies a `bw`×`bh` block whose top-left corner is at picture
    /// coordinate `(x, y)` (may be negative / beyond the edge up to the
    /// padding) into `dst`.
    pub fn copy_block_to(&self, x: isize, y: isize, bw: usize, bh: usize, dst: &mut [u8]) {
        for by in 0..bh {
            let src = self.row_from(x, y + by as isize);
            dst[by * bw..(by + 1) * bw].copy_from_slice(&src[..bw]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_plane(w: usize, h: usize) -> Plane {
        let mut p = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                p.set(x, y, (x * 3 + y * 7) as u8);
            }
        }
        p
    }

    #[test]
    fn interior_matches_source() {
        let p = gradient_plane(12, 10);
        let pp = PaddedPlane::from_plane(&p, 4);
        for y in 0..10 {
            for x in 0..12 {
                assert_eq!(pp.pixel(x as isize, y as isize), p.get(x, y));
            }
        }
    }

    #[test]
    fn corners_replicate() {
        let p = gradient_plane(8, 8);
        let pp = PaddedPlane::from_plane(&p, 3);
        assert_eq!(pp.pixel(-3, -3), p.get(0, 0));
        assert_eq!(pp.pixel(10, -1), p.get(7, 0));
        assert_eq!(pp.pixel(-1, 10), p.get(0, 7));
        assert_eq!(pp.pixel(10, 10), p.get(7, 7));
    }

    #[test]
    fn window_bounds_match_padded_extent() {
        let p = gradient_plane(16, 8);
        let pp = PaddedPlane::from_plane(&p, 4);
        // Fully interior and fully padded-corner windows are fine.
        assert!(pp.window_in_bounds(0, 0, 16, 8));
        assert!(pp.window_in_bounds(-4, -4, 24, 16));
        // One pixel beyond the padding in any direction is rejected.
        assert!(!pp.window_in_bounds(-5, 0, 8, 8));
        assert!(!pp.window_in_bounds(0, -5, 8, 8));
        assert!(!pp.window_in_bounds(13, 0, 8, 8));
        assert!(!pp.window_in_bounds(0, 5, 8, 8));
        // Wildly out-of-range vectors (the fuzzer's bread and butter).
        assert!(!pp.window_in_bounds(-10_000, 0, 8, 8));
        assert!(!pp.window_in_bounds(0, 10_000, 8, 8));
    }

    #[test]
    fn refill_is_bit_identical_to_from_plane() {
        let a = gradient_plane(12, 10);
        let mut b = Plane::new(12, 10);
        for y in 0..10 {
            for x in 0..12 {
                b.set(x, y, (x * 5 + y * 11 + 3) as u8);
            }
        }
        let fresh = PaddedPlane::from_plane(&b, 4);
        let mut recycled = PaddedPlane::from_plane(&a, 4);
        recycled.refill(&b);
        assert_eq!(recycled.data, fresh.data);
    }

    #[test]
    fn block_copy_spanning_edge() {
        let p = gradient_plane(8, 8);
        let pp = PaddedPlane::from_plane(&p, 4);
        let mut out = vec![0u8; 4 * 4];
        pp.copy_block_to(-2, -2, 4, 4, &mut out);
        // First row: two border-replicated pixels then the first two real.
        assert_eq!(
            &out[..4],
            &[p.get(0, 0), p.get(0, 0), p.get(0, 0), p.get(1, 0)]
        );
    }
}
