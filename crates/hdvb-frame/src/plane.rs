use std::fmt;

/// A single rectangular plane of 8-bit samples (one colour component).
///
/// Rows are stored contiguously with `stride == width`; the plane owns its
/// pixel buffer. Samples are full-range `u8` as used throughout the
/// benchmark's codecs.
///
/// # Example
///
/// ```
/// use hdvb_frame::Plane;
///
/// let mut p = Plane::new(16, 8);
/// p.set(3, 2, 200);
/// assert_eq!(p.get(3, 2), 200);
/// assert_eq!(p.row(2)[3], 200);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Plane {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Plane {
    /// Creates a plane of the given dimensions, filled with mid-grey (128).
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "plane dimensions must be nonzero");
        Plane {
            width,
            height,
            data: vec![128; width * height],
        }
    }

    /// Creates a plane from an existing row-major sample buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height` or a dimension is zero.
    pub fn from_vec(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert!(width > 0 && height > 0, "plane dimensions must be nonzero");
        assert_eq!(data.len(), width * height, "buffer size mismatch");
        Plane {
            width,
            height,
            data,
        }
    }

    /// Width in samples.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in samples.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Distance in samples between vertically adjacent samples.
    ///
    /// Currently always equal to [`width`](Self::width); exposed separately
    /// so kernels can be written stride-correct.
    #[inline]
    pub fn stride(&self) -> usize {
        self.width
    }

    /// Borrows the whole sample buffer, row-major.
    #[inline]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutably borrows the whole sample buffer, row-major.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Returns the sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.data[y * self.width + x]
    }

    /// Sets the sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        self.data[y * self.width + x] = v;
    }

    /// Borrows row `y`.
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    #[inline]
    pub fn row(&self, y: usize) -> &[u8] {
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Mutably borrows row `y`.
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [u8] {
        &mut self.data[y * self.width..(y + 1) * self.width]
    }

    /// Fills the entire plane with `v`.
    pub fn fill(&mut self, v: u8) {
        self.data.fill(v);
    }

    /// Overwrites this plane with the contents of `src` (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn copy_from(&mut self, src: &Plane) {
        assert_eq!(
            (self.width, self.height),
            (src.width, src.height),
            "plane size mismatch"
        );
        self.data.copy_from_slice(&src.data);
    }

    /// Overwrites this plane with the top-left window of a same-size-or-
    /// larger `src` (a crop; equal dimensions degenerate to a full
    /// copy). Every sample of `self` is written.
    ///
    /// # Panics
    ///
    /// Panics if `src` is smaller than `self` in either dimension.
    pub fn crop_from(&mut self, src: &Plane) {
        assert!(
            self.width <= src.width && self.height <= src.height,
            "crop source smaller than destination"
        );
        if self.width == src.width && self.height == src.height {
            self.data.copy_from_slice(&src.data);
            return;
        }
        for y in 0..self.height {
            let dst = &mut self.data[y * self.width..(y + 1) * self.width];
            dst.copy_from_slice(&src.data[y * src.width..y * src.width + self.width]);
        }
    }

    /// Overwrites this plane with `src` extended to `self`'s (equal or
    /// larger) dimensions by replicating the right column and bottom row
    /// — the alignment step every codec applies before coding. Every
    /// sample of `self` is written.
    ///
    /// # Panics
    ///
    /// Panics if `src` is larger than `self` in either dimension.
    pub fn replicate_from(&mut self, src: &Plane) {
        assert!(
            src.width <= self.width && src.height <= self.height,
            "replicate source larger than destination"
        );
        for y in 0..src.height {
            let dst = &mut self.data[y * self.width..(y + 1) * self.width];
            dst[..src.width].copy_from_slice(src.row(y));
            let last = dst[src.width - 1];
            dst[src.width..].fill(last);
        }
        for y in src.height..self.height {
            let from = (src.height - 1) * self.width;
            self.data
                .copy_within(from..from + self.width, y * self.width);
        }
    }

    /// Copies a `bw`×`bh` block with top-left corner `(x, y)` into `dst`
    /// (row-major, length `bw * bh`).
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the plane bounds or `dst` is too small.
    pub fn copy_block_to(&self, x: usize, y: usize, bw: usize, bh: usize, dst: &mut [u8]) {
        assert!(
            x + bw <= self.width && y + bh <= self.height,
            "block out of bounds"
        );
        for by in 0..bh {
            let src = &self.data[(y + by) * self.width + x..(y + by) * self.width + x + bw];
            dst[by * bw..(by + 1) * bw].copy_from_slice(src);
        }
    }

    /// Writes a `bw`×`bh` block from `src` (row-major) at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the plane bounds or `src` is too small.
    pub fn put_block(&mut self, x: usize, y: usize, bw: usize, bh: usize, src: &[u8]) {
        assert!(
            x + bw <= self.width && y + bh <= self.height,
            "block out of bounds"
        );
        for by in 0..bh {
            let dst = &mut self.data[(y + by) * self.width + x..(y + by) * self.width + x + bw];
            dst.copy_from_slice(&src[by * bw..(by + 1) * bw]);
        }
    }

    /// Reads a block clamped to the plane edges: coordinates outside the
    /// plane replicate the nearest edge sample. Used by motion search at
    /// frame borders.
    pub fn copy_block_clamped(&self, x: isize, y: isize, bw: usize, bh: usize, dst: &mut [u8]) {
        for by in 0..bh {
            let sy = (y + by as isize).clamp(0, self.height as isize - 1) as usize;
            for bx in 0..bw {
                let sx = (x + bx as isize).clamp(0, self.width as isize - 1) as usize;
                dst[by * bw + bx] = self.data[sy * self.width + sx];
            }
        }
    }

    /// Sum of absolute differences against another plane of identical size.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn sad(&self, other: &Plane) -> u64 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "plane size mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (i32::from(a) - i32::from(b)).unsigned_abs() as u64)
            .sum()
    }

    /// Sum of squared differences against another plane of identical size.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn ssd(&self, other: &Plane) -> u64 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "plane size mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = i64::from(a) - i64::from(b);
                (d * d) as u64
            })
            .sum()
    }
}

impl fmt::Debug for Plane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Plane")
            .field("width", &self.width)
            .field("height", &self.height)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_fills_mid_grey() {
        let p = Plane::new(4, 3);
        assert!(p.data().iter().all(|&v| v == 128));
        assert_eq!(p.data().len(), 12);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_panics() {
        let _ = Plane::new(0, 4);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut p = Plane::new(5, 5);
        p.set(4, 4, 7);
        p.set(0, 0, 9);
        assert_eq!(p.get(4, 4), 7);
        assert_eq!(p.get(0, 0), 9);
    }

    #[test]
    fn block_roundtrip() {
        let mut p = Plane::new(8, 8);
        let block: Vec<u8> = (0..16).collect();
        p.put_block(2, 3, 4, 4, &block);
        let mut out = vec![0u8; 16];
        p.copy_block_to(2, 3, 4, 4, &mut out);
        assert_eq!(out, block);
    }

    #[test]
    fn clamped_block_replicates_edges() {
        let mut p = Plane::new(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                p.set(x, y, (y * 4 + x) as u8);
            }
        }
        let mut out = vec![0u8; 4];
        p.copy_block_clamped(-1, -1, 2, 2, &mut out);
        // (-1,-1)->(0,0)=0, (0,-1)->(0,0)=0, (-1,0)->(0,0)=0, (0,0)=0
        assert_eq!(out, vec![0, 0, 0, 0]);
        p.copy_block_clamped(3, 3, 2, 2, &mut out);
        assert_eq!(out, vec![15, 15, 15, 15]);
    }

    #[test]
    fn sad_and_ssd_of_identical_planes_is_zero() {
        let p = Plane::new(16, 16);
        assert_eq!(p.sad(&p.clone()), 0);
        assert_eq!(p.ssd(&p.clone()), 0);
    }

    #[test]
    fn sad_counts_differences() {
        let a = Plane::from_vec(2, 1, vec![10, 20]);
        let b = Plane::from_vec(2, 1, vec![13, 15]);
        assert_eq!(a.sad(&b), 8);
        assert_eq!(a.ssd(&b), 9 + 25);
    }
}
