//! Property tests of the raw-video I/O layer: arbitrary frames must
//! survive I420 and Y4M round trips exactly, and malformed inputs must
//! fail cleanly.

use hdvb_frame::{
    read_i420, write_i420, Frame, FrameRate, Plane, Resolution, Y4mReader, Y4mWriter,
};
use proptest::prelude::*;

fn frame_strategy() -> impl Strategy<Value = Frame> {
    // Even dimensions from 2 to 64.
    (1usize..=32, 1usize..=32).prop_flat_map(|(hw, hh)| {
        let (w, h) = (hw * 2, hh * 2);
        (
            proptest::collection::vec(any::<u8>(), w * h),
            proptest::collection::vec(any::<u8>(), w * h / 4),
            proptest::collection::vec(any::<u8>(), w * h / 4),
        )
            .prop_map(move |(y, cb, cr)| {
                Frame::from_planes(
                    Plane::from_vec(w, h, y),
                    Plane::from_vec(w / 2, h / 2, cb),
                    Plane::from_vec(w / 2, h / 2, cr),
                )
                .expect("valid 4:2:0 geometry")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn i420_roundtrip_any_frame(frame in frame_strategy()) {
        let mut buf = Vec::new();
        write_i420(&mut buf, &frame).unwrap();
        prop_assert_eq!(buf.len(), frame.sample_count());
        let res = Resolution::new(frame.width() as u32, frame.height() as u32);
        let back = read_i420(&buf[..], res).unwrap().unwrap();
        prop_assert_eq!(back, frame);
    }

    #[test]
    fn y4m_roundtrip_any_clip(frames in proptest::collection::vec(frame_strategy(), 1..4)) {
        // All frames in a stream share the first frame's geometry.
        let res = Resolution::new(frames[0].width() as u32, frames[0].height() as u32);
        let mut w = Y4mWriter::new(Vec::new(), res, FrameRate::FPS_25);
        let mut expected = Vec::new();
        for f in &frames {
            if f.width() == res.width() && f.height() == res.height() {
                w.write_frame(f).unwrap();
                expected.push(f.clone());
            } else {
                prop_assert!(w.write_frame(f).is_err());
            }
        }
        let bytes = w.into_inner().unwrap();
        let mut r = Y4mReader::new(&bytes[..]).unwrap();
        prop_assert_eq!(r.resolution(), res);
        for f in &expected {
            prop_assert_eq!(&r.read_frame().unwrap().unwrap(), f);
        }
        prop_assert!(r.read_frame().unwrap().is_none());
    }

    #[test]
    fn truncated_y4m_never_panics(frame in frame_strategy(), cut_fraction in 0.0f64..1.0) {
        let res = Resolution::new(frame.width() as u32, frame.height() as u32);
        let mut w = Y4mWriter::new(Vec::new(), res, FrameRate::FPS_25);
        w.write_frame(&frame).unwrap();
        let bytes = w.into_inner().unwrap();
        let cut = (bytes.len() as f64 * cut_fraction) as usize;
        // A truncated header is a plain Err; a truncated body must be an
        // error or None from read_frame, never a panic.
        if let Ok(mut r) = Y4mReader::new(&bytes[..cut]) {
            let _ = r.read_frame();
        }
    }

    #[test]
    fn random_bytes_never_panic_y4m_reader(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(mut r) = Y4mReader::new(&data[..]) {
            let _ = r.read_frame();
        }
    }
}
