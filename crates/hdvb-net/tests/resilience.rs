//! Chaos-layer integration tests over real loopback TCP: mid-handshake
//! disconnects, silent-peer reaping, and client-side fault recovery.
//!
//! The thread-leak assertions read the process-wide OS thread count, so
//! every test in this file serialises on [`LOCK`] — a neighbour test's
//! short-lived connection threads would otherwise show up as phantom
//! leaks.

use hdvb_core::{encode_sequence, CodecId, Priority, SessionInput, SessionSpec};
use hdvb_dsp::SimdLevel;
use hdvb_frame::Resolution;
use hdvb_net::wire::{self, Msg};
use hdvb_net::{NetClient, NetConfig, NetFaultPlan, NetServer, RetryClient, RetryPolicy};
use hdvb_seq::{Sequence, SequenceId};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

static LOCK: Mutex<()> = Mutex::new(());

fn serialise() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn thread_count() -> usize {
    hdvb_serve::os_thread_count().expect("/proc/self/status")
}

fn qcif() -> Resolution {
    Resolution::new(96, 80)
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

/// A hand-driven wire client for poking at the handshake byte by byte.
struct RawClient {
    sock: TcpStream,
    seq: u32,
}

impl RawClient {
    fn connect(addr: SocketAddr) -> RawClient {
        RawClient {
            sock: TcpStream::connect(addr).expect("raw connect"),
            seq: 0,
        }
    }

    fn send(&mut self, msg: &Msg) {
        let mut buf = Vec::new();
        wire::encode(msg, self.seq, &mut buf);
        self.seq += 1;
        self.sock.write_all(&buf).expect("raw send");
    }

    /// Half-closes the write side (a clean FIN, never an RST) and
    /// drains whatever the server still has to say, so nothing the
    /// server wrote is torn down mid-flight.
    fn hang_up(self) {
        let _ = self.sock.shutdown(Shutdown::Write);
        let mut sink = Vec::new();
        let mut sock = self.sock;
        let _ = sock.set_read_timeout(Some(Duration::from_secs(5)));
        let _ = sock.read_to_end(&mut sink);
    }
}

/// Satellite: clients that vanish at every handshake stage — before
/// HELLO, after HELLO, after a resumable OPEN, and mid-FRAME — leave no
/// session, no registry entry, and no thread behind, while a neighbour
/// session on the same server stays byte-identical to the batch path.
#[test]
fn mid_handshake_disconnects_recycle_sessions_and_leak_nothing() {
    let _guard = serialise();
    let baseline = thread_count();
    {
        let net = NetServer::bind(
            "127.0.0.1:0",
            NetConfig {
                heartbeat: Duration::from_millis(200),
                resume_window: Duration::from_millis(300),
                ..NetConfig::default()
            },
        )
        .expect("bind loopback");
        let addr = net.local_addr();
        let spec = SessionSpec::encode(CodecId::Mpeg2, qcif());
        let seq = Sequence::new(SequenceId::BlueSky, qcif());

        // Stage 0: connect and say nothing, then FIN.
        RawClient::connect(addr).hang_up();

        // Stage 1: drop right after HELLO.
        let mut c = RawClient::connect(addr);
        c.send(&Msg::Hello { server: false });
        c.hang_up();

        // Stage 2: drop after a *resumable* OPEN. The session parks,
        // nobody resumes it, and the expiry sweep must reap it.
        let mut c = RawClient::connect(addr);
        c.send(&Msg::Hello { server: false });
        c.send(&Msg::Open {
            spec,
            priority: Priority::Batch,
            resume: true,
        });
        c.hang_up();

        // Stage 3: drop mid-FRAME. A plain OPEN, one whole frame, then
        // half of a second frame's bytes.
        let mut c = RawClient::connect(addr);
        c.send(&Msg::Hello { server: false });
        c.send(&Msg::Open {
            spec,
            priority: Priority::Batch,
            resume: false,
        });
        c.send(&Msg::Frame(seq.frame(0)));
        let mut partial = Vec::new();
        wire::encode(&Msg::Frame(seq.frame(1)), 3, &mut partial);
        partial.truncate(partial.len() / 2);
        c.sock.write_all(&partial).expect("partial frame");
        c.hang_up();

        // The neighbour runs a full session while the wreckage above is
        // being cleaned up.
        let frames = 8u32;
        let mut neighbour = NetClient::connect(addr).expect("neighbour connect");
        neighbour
            .open(spec, Priority::Live)
            .expect("neighbour open");
        for i in 0..frames {
            neighbour
                .send(SessionInput::Frame(seq.frame(i)))
                .expect("neighbour send");
        }
        let result = neighbour.finish().expect("neighbour finish");

        let reference = encode_sequence(
            CodecId::Mpeg2,
            seq,
            frames,
            &spec.options(SimdLevel::preferred()),
        )
        .expect("reference");
        assert_eq!(result.packets.len(), reference.packets.len());
        for (a, b) in result.packets.iter().zip(&reference.packets) {
            assert_eq!(a.data, b.data, "neighbour output corrupted by teardown");
        }

        assert!(
            wait_until(Duration::from_secs(10), || {
                let s = net.stats();
                s.expired >= 1 && net.active_sessions() == 0 && net.resumable_sessions() == 0
            }),
            "sessions not recycled: {:?}, active {}, resumable {}",
            net.stats(),
            net.active_sessions(),
            net.resumable_sessions(),
        );
        let stats = net.stats();
        assert_eq!(stats.connections, 5);
        assert_eq!(stats.expired, 1, "parked OPEN not expired");
        assert!(
            stats.disconnects >= 2,
            "resumable + mid-frame drops: {stats:?}"
        );
        net.shutdown();
    }
    assert!(
        wait_until(Duration::from_secs(5), || thread_count() <= baseline),
        "threads leaked: {} > baseline {} — {:?}",
        thread_count(),
        baseline,
        std::fs::read_dir("/proc/self/task")
            .unwrap()
            .map(|e| std::fs::read_to_string(e.unwrap().path().join("comm"))
                .unwrap_or_default()
                .trim()
                .to_string())
            .collect::<Vec<_>>(),
    );
}

/// Satellite + acceptance: a peer that completes the handshake and then
/// goes silent — no FIN, no heartbeat — is reaped within twice the
/// heartbeat interval, with its session cancelled and nothing leaked.
#[test]
fn silent_peer_is_reaped_within_twice_the_heartbeat() {
    let _guard = serialise();
    let heartbeat = Duration::from_millis(500);
    let baseline = thread_count();
    {
        let net = NetServer::bind(
            "127.0.0.1:0",
            NetConfig {
                heartbeat,
                ..NetConfig::default()
            },
        )
        .expect("bind loopback");
        let spec = SessionSpec::encode(CodecId::Mpeg2, qcif());

        let mut c = RawClient::connect(net.local_addr());
        c.send(&Msg::Hello { server: false });
        c.send(&Msg::Open {
            spec,
            priority: Priority::Live,
            resume: false,
        });
        let opened = Instant::now();
        // Silence. The socket stays open — only the liveness deadline
        // can end this connection.
        assert!(
            wait_until(Duration::from_secs(10), || net.stats().timeouts >= 1),
            "silent peer never reaped: {:?}",
            net.stats(),
        );
        let reaped_after = opened.elapsed();
        // The deadline is 2×heartbeat and detection granularity is one
        // poll quantum; a second of slack absorbs scheduler noise
        // without weakening the bound's order of magnitude.
        assert!(
            reaped_after <= heartbeat * 2 + Duration::from_secs(1),
            "reap took {reaped_after:?}, liveness limit is {:?}",
            heartbeat * 2,
        );
        assert!(
            wait_until(Duration::from_secs(5), || net.active_sessions() == 0),
            "dead peer's session still active"
        );
        drop(c);
        net.shutdown();
    }
    assert!(
        wait_until(Duration::from_secs(5), || thread_count() <= baseline),
        "threads leaked: {} > baseline {}",
        thread_count(),
        baseline,
    );
}

/// Client-side recovery at every handshake stage: the fault plan severs
/// the very first HELLO, then an OPEN, then truncates a frame
/// mid-stream. The retrying client still produces output byte-identical
/// to a fault-free plain client on the same server.
#[test]
fn retry_client_survives_handshake_and_stream_faults_byte_identically() {
    let _guard = serialise();
    let net = NetServer::bind(
        "127.0.0.1:0",
        NetConfig {
            heartbeat: Duration::from_millis(200),
            ..NetConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = net.local_addr();
    let spec = SessionSpec::encode(CodecId::Mpeg2, qcif());
    let seq = Sequence::new(SequenceId::RushHour, qcif());
    let frames = 8u32;

    let mut reference = NetClient::connect(addr).expect("plain connect");
    reference.open(spec, Priority::Batch).expect("plain open");
    for i in 0..frames {
        reference
            .send(SessionInput::Frame(seq.frame(i)))
            .expect("plain send");
    }
    let plain = reference.finish().expect("plain finish");

    // Message clock: 0 = first HELLO (dropped), 1/2 = HELLO+OPEN of the
    // second dial (OPEN dropped), 3/4 = third dial's handshake, 5 =
    // frame 0 (truncated mid-message), then HELLO+RESUME+replay.
    let plan = Arc::new(NetFaultPlan::parse("drop@0,drop@2,truncate@5:9,seed=3").expect("plan"));
    let mut client = RetryClient::with_faults(
        addr,
        RetryPolicy {
            base_backoff: Duration::from_millis(5),
            ..RetryPolicy::default()
        },
        Some(Arc::clone(&plan)),
    )
    .expect("retry client");
    client.open(spec, Priority::Batch).expect("faulted open");
    for i in 0..frames {
        client
            .send(SessionInput::Frame(seq.frame(i)))
            .expect("faulted send");
    }
    let (faulted, retry) = client.finish().expect("faulted finish");

    assert_eq!(plan.fired(), 3, "all three faults fired");
    assert!(retry.attempts >= 3, "{retry:?}");
    assert!(retry.reconnects >= 1, "{retry:?}");
    assert_eq!(faulted.stats.completed, u64::from(frames));
    assert_eq!(plain.packets.len(), faulted.packets.len());
    for (a, b) in plain.packets.iter().zip(&faulted.packets) {
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.display_index, b.display_index);
        assert_eq!(a.data, b.data, "faulted output diverged");
    }
    let stats = net.stats();
    assert!(stats.resumes >= 1, "{stats:?}");
    net.shutdown();
}
