//! End-to-end tests over real loopback TCP connections.

use hdvb_core::{encode_sequence, CodecId, Priority, SessionInput, SessionSpec};
use hdvb_dsp::SimdLevel;
use hdvb_frame::Resolution;
use hdvb_net::{NetClient, NetConfig, NetError, NetServer, SloPolicy};
use hdvb_seq::{Sequence, SequenceId};
use hdvb_serve::{Server, ServerConfig};
use std::time::{Duration, Instant};

fn qcif() -> Resolution {
    Resolution::new(176, 144)
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

/// The tentpole acceptance criterion: a transcode pushed over loopback
/// TCP produces byte-identical packets to the same session pumped
/// in-process through `hdvb_serve::Server`.
#[test]
fn loopback_transcode_is_byte_identical_to_in_process_serve() {
    let spec = SessionSpec::transcode(CodecId::Mpeg2, CodecId::H264, qcif());
    let simd = SimdLevel::preferred();
    let seq = Sequence::new(SequenceId::BlueSky, qcif());
    let source = encode_sequence(CodecId::Mpeg2, seq, 12, &spec.options(simd))
        .expect("mpeg-2 source stream");

    // In-process: one session on the serve pool, outputs retained.
    let server = Server::new(ServerConfig::default());
    let handle = server.open(spec.build(simd).expect("local session"), true);
    for p in &source.packets {
        handle
            .submit(SessionInput::Packet(p.data.clone()))
            .expect("local submit");
    }
    handle.finish();
    let local = handle.wait();
    server.drain();
    assert!(
        local.error.is_none(),
        "local transcode failed: {:?}",
        local.error
    );

    // Over TCP: same spec, same inputs, outputs streamed back.
    let net = NetServer::bind("127.0.0.1:0", NetConfig::default()).expect("bind loopback");
    let mut client = NetClient::connect(net.local_addr()).expect("connect");
    client.open(spec, Priority::Live).expect("open");
    for p in &source.packets {
        client.send_packet(p.clone()).expect("send");
    }
    let remote = client.finish().expect("finish");
    net.shutdown();

    assert_eq!(remote.stats.completed, source.packets.len() as u64);
    assert_eq!(local.packets.len(), remote.packets.len());
    for (a, b) in local.packets.iter().zip(&remote.packets) {
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.display_index, b.display_index);
        assert_eq!(a.data, b.data, "packet bytes diverged over the wire");
    }
}

/// Satellite 1: a client that vanishes mid-stream takes down only its
/// own session. A neighbour session running on the same server keeps
/// its output byte-identical to the batch path, and the server ends
/// with zero active sessions.
#[test]
fn mid_stream_disconnect_tears_down_only_that_session() {
    let net = NetServer::bind("127.0.0.1:0", NetConfig::default()).expect("bind loopback");
    let addr = net.local_addr();
    let spec = SessionSpec::encode(CodecId::Mpeg2, qcif());
    let seq = Sequence::new(SequenceId::PedestrianArea, qcif());
    let frames = 10u32;

    // The victim: opens, sends a few frames, then drops the socket
    // without FLUSH or CLOSE — a simulated crash.
    let mut victim = NetClient::connect(addr).expect("victim connect");
    victim.open(spec, Priority::Batch).expect("victim open");
    for i in 0..3 {
        victim
            .send(SessionInput::Frame(seq.frame(i)))
            .expect("victim send");
    }

    // The neighbour starts while the victim is still open.
    let mut neighbour = NetClient::connect(addr).expect("neighbour connect");
    neighbour
        .open(spec, Priority::Live)
        .expect("neighbour open");
    for i in 0..frames / 2 {
        neighbour
            .send(SessionInput::Frame(seq.frame(i)))
            .expect("neighbour send");
    }

    victim.abort();

    for i in frames / 2..frames {
        neighbour
            .send(SessionInput::Frame(seq.frame(i)))
            .expect("neighbour send after abort");
    }
    let result = neighbour.finish().expect("neighbour finish");

    // The neighbour's output is exactly what the batch encoder makes of
    // the same frames — the victim's teardown recycled its buffers
    // without corrupting shared pool state.
    let simd = SimdLevel::preferred();
    let reference =
        encode_sequence(CodecId::Mpeg2, seq, frames, &spec.options(simd)).expect("reference");
    assert_eq!(result.packets.len(), reference.packets.len());
    for (a, b) in result.packets.iter().zip(&reference.packets) {
        assert_eq!(a.data, b.data, "neighbour output corrupted by teardown");
    }

    assert!(
        wait_until(Duration::from_secs(5), || net.stats().disconnects == 1),
        "server never counted the disconnect"
    );
    assert!(
        wait_until(Duration::from_secs(5), || net.active_sessions() == 0),
        "victim session leaked: {} still active",
        net.active_sessions()
    );
    let stats = net.stats();
    assert_eq!(stats.admitted, [1, 1]);
    net.shutdown();
}

/// Admission control over the wire: with a batch threshold far below
/// any achievable latency (and the live SLO far above it), batch OPENs
/// are rejected once the rolling window has evidence, while live OPENs
/// keep being admitted.
#[test]
fn batch_opens_are_rejected_while_live_is_still_admitted() {
    let net = NetServer::bind(
        "127.0.0.1:0",
        NetConfig {
            slo: Some(SloPolicy {
                p99: Duration::from_secs(10),
                min_samples: 4,
                // 10 s × 1e-8 = 100 ns: any real frame latency exceeds
                // the batch threshold, none approaches the live SLO.
                batch_headroom: 1e-8,
            }),
            ..NetConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = net.local_addr();
    let spec = SessionSpec::encode(CodecId::Mpeg2, qcif());
    let seq = Sequence::new(SequenceId::RushHour, qcif());

    // Warm-up: below min_samples everything is admitted, including batch.
    let mut warm = NetClient::connect(addr).expect("warm connect");
    warm.open(spec, Priority::Batch)
        .expect("warm-up batch open admitted");
    for i in 0..6 {
        warm.send(SessionInput::Frame(seq.frame(i)))
            .expect("warm send");
    }
    warm.finish().expect("warm finish");

    // The window now holds ≥ min_samples completions: batch must bounce.
    let mut batch = NetClient::connect(addr).expect("batch connect");
    match batch.open(spec, Priority::Batch) {
        Err(NetError::Remote { code, detail }) => {
            assert_eq!(code, hdvb_net::ErrorCode::Rejected);
            assert!(detail.contains("batch threshold"), "detail: {detail}");
        }
        other => panic!("batch OPEN should have been rejected, got {other:?}"),
    }

    // Live still clears its (10 s) threshold.
    let mut live = NetClient::connect(addr).expect("live connect");
    live.open(spec, Priority::Live)
        .expect("live open still admitted");
    for i in 0..4 {
        live.send(SessionInput::Frame(seq.frame(i)))
            .expect("live send");
    }
    let live_result = live.finish().expect("live finish");
    assert_eq!(live_result.stats.completed, 4);

    let stats = net.stats();
    assert_eq!(stats.rejected, [0, 1], "exactly the batch OPEN rejected");
    assert_eq!(stats.admitted[Priority::Live.index()], 1);
    net.shutdown();
}

/// Token-bucket shaping: a rate-limited connection takes at least
/// `overdraw / rate` longer than an unlimited one would.
#[test]
fn rate_limited_connection_is_shaped_to_its_contract() {
    let net = NetServer::bind(
        "127.0.0.1:0",
        NetConfig {
            rate_limit: Some(20), // burst 20, refill 20/s
            ..NetConfig::default()
        },
    )
    .expect("bind loopback");
    let spec = SessionSpec::encode(CodecId::Mpeg2, Resolution::new(48, 32));
    let seq = Sequence::new(SequenceId::Riverbed, Resolution::new(48, 32));

    let mut client = NetClient::connect(net.local_addr()).expect("connect");
    client.open(spec, Priority::Live).expect("open");
    let start = Instant::now();
    // 30 inputs against burst 20 ⇒ 10 tokens of debt ⇒ ≥ 500 ms shaped.
    for i in 0..30 {
        client
            .send(SessionInput::Frame(seq.frame(i)))
            .expect("send");
    }
    let result = client.finish().expect("finish");
    let elapsed = start.elapsed();
    net.shutdown();

    assert_eq!(result.stats.completed, 30);
    assert!(
        elapsed >= Duration::from_millis(400),
        "30 inputs at rate 20/s finished in {elapsed:?} — bucket not applied"
    );
}
